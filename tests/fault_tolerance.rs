//! Fault tolerance: with a seeded `FaultPlan` dropping, delaying, and
//! duplicating halo messages, the reliable-delivery layer (retransmit on
//! timeout + epoch-tagged dedup) must make the run complete and match the
//! fault-free run bitwise. A planned rank kill unwinds the world; the
//! resilient driver restarts the cohort from the last complete checkpoint
//! set and still reproduces the fault-free result exactly.

use pf_core::dist::{run_distributed, run_distributed_resilient, CheckpointConfig, DistConfig};
use pf_core::generate_kernels;
use pf_fields::FieldArray;
use pf_grid::FaultPlan;
use pf_ir::GenOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn mini() -> pf_core::ModelParams {
    let mut p = pf_core::p1();
    p.phases = 2;
    p.components = 2;
    p.dim = 2;
    p.dt = 0.005;
    p.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    p.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    p.diffusivity = vec![1.0, 0.1];
    p.a_coeff = vec![vec![-0.5], vec![-0.5]];
    p.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    p.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    p.orientation = vec![0.0, 0.0];
    p.temperature.gradient = 0.0;
    p.fluctuation_amplitude = 0.0;
    p
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pf-fault-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

type Blocks = Vec<([i64; 3], FieldArray, FieldArray)>;

fn init_phi(global: [usize; 3]) -> impl Fn(i64, i64, i64) -> Vec<f64> + Sync {
    move |x, y, z| {
        let d = (((x as f64 - global[0] as f64 / 2.0).powi(2)
            + (y as f64 - global[1] as f64 / 2.0).powi(2)
            + (z as f64 - global[2] as f64 / 2.0).powi(2))
        .sqrt()
            - 4.0)
            / 2.5;
        let s = 0.5 * (1.0 - d.tanh());
        vec![1.0 - s, s]
    }
}

fn init_mu(x: i64, y: i64, _z: i64) -> Vec<f64> {
    vec![0.05 + 0.001 * ((x + y) % 5) as f64]
}

fn assert_blocks_bitwise(got: &Blocks, want: &Blocks, phases: usize, num_mu: usize) {
    assert_eq!(got.len(), want.len());
    for ((origin, phi, mu), (worigin, wphi, wmu)) in got.iter().zip(want) {
        assert_eq!(origin, worigin);
        let shape = phi.shape();
        for z in 0..shape[2] as isize {
            for y in 0..shape[1] as isize {
                for x in 0..shape[0] as isize {
                    for a in 0..phases {
                        assert_eq!(
                            phi.get(a, x, y, z).to_bits(),
                            wphi.get(a, x, y, z).to_bits(),
                            "phi[{a}] differs at ({x},{y},{z}), origin {origin:?}"
                        );
                    }
                    for i in 0..num_mu {
                        assert_eq!(
                            mu.get(i, x, y, z).to_bits(),
                            wmu.get(i, x, y, z).to_bits(),
                            "mu[{i}] differs at ({x},{y},{z}), origin {origin:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn message_faults_do_not_change_the_result() {
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let global = [16usize, 16, 1];
    let steps = 4;
    let base = DistConfig::new(global, 4);
    let clean = run_distributed(&p, &ks, &base, steps, init_phi(global), init_mu, |sim| {
        (sim.origin, sim.phi().clone(), sim.mu().clone())
    });

    // Aggressive but survivable: a fifth of halo messages dropped, a fifth
    // duplicated, a third held back and reordered.
    let mut faulty = base.clone();
    faulty.faults = Some(
        FaultPlan::new(0xFA117)
            .drop_prob(0.2)
            .dup_prob(0.2)
            .delay_prob(0.3),
    );
    let perturbed = run_distributed(&p, &ks, &faulty, steps, init_phi(global), init_mu, |sim| {
        (sim.origin, sim.phi().clone(), sim.mu().clone())
    });

    assert_blocks_bitwise(&perturbed, &clean, p.phases, p.num_mu());
}

#[test]
fn every_fault_kind_alone_is_survived() {
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let global = [12usize, 12, 1];
    let steps = 3;
    let base = DistConfig::new(global, 4);
    let clean = run_distributed(&p, &ks, &base, steps, init_phi(global), init_mu, |sim| {
        (sim.origin, sim.phi().clone(), sim.mu().clone())
    });

    for (name, plan) in [
        ("drop", FaultPlan::new(7).drop_prob(0.4)),
        ("duplicate", FaultPlan::new(7).dup_prob(0.6)),
        ("delay", FaultPlan::new(7).delay_prob(0.6)),
    ] {
        let mut faulty = base.clone();
        faulty.faults = Some(plan);
        let perturbed =
            run_distributed(&p, &ks, &faulty, steps, init_phi(global), init_mu, |sim| {
                (sim.origin, sim.phi().clone(), sim.mu().clone())
            });
        assert_eq!(perturbed.len(), clean.len(), "{name}: wrong world size");
        assert_blocks_bitwise(&perturbed, &clean, p.phases, p.num_mu());
    }
}

#[test]
fn killed_rank_is_recovered_from_checkpoint() {
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let global = [16usize, 16, 1];
    let steps = 6;
    let base = DistConfig::new(global, 4);
    let clean = run_distributed(&p, &ks, &base, steps, init_phi(global), init_mu, |sim| {
        (sim.origin, sim.phi().clone(), sim.mu().clone())
    });

    // Rank 2 dies at step 4; checkpoints exist at steps 2 and 4 (written
    // before the kill check of step 4 fires on the restarted cohort's
    // behalf — the kill is disarmed on restart).
    let scratch = Scratch::new("kill");
    let mut faulty = base.clone();
    faulty.checkpoint = Some(CheckpointConfig::new(&scratch.0).every(2));
    faulty.faults = Some(FaultPlan::new(99).kill_rank_at_step(2, 4));
    let recovered =
        run_distributed_resilient(&p, &ks, &faulty, steps, init_phi(global), init_mu, |sim| {
            (sim.origin, sim.phi().clone(), sim.mu().clone())
        });

    assert_blocks_bitwise(&recovered, &clean, p.phases, p.num_mu());
}

/// 256-rank soak: three distinct ranks die at three distinct steps, each
/// kill unwinding the whole world, with incremental (dirty-region)
/// checkpointing on by default between the failures. Every restart
/// replays a full-snapshot + increment chain on all 256 ranks; the final
/// fields must still match the uninterrupted 256-rank run bit for bit.
/// This exercises the restart budget exactly (MAX_RESTARTS kills), the
/// chain restore at scale, and the termination protocol on a world that
/// heavily oversubscribes the host.
#[test]
fn soak_256_ranks_recover_bitwise_from_three_staggered_kills() {
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let global = [32usize, 32, 1];
    let steps = 6;
    let base = DistConfig::new(global, 256);
    let clean = run_distributed(&p, &ks, &base, steps, init_phi(global), init_mu, |sim| {
        (sim.origin, sim.phi().clone(), sim.mu().clone())
    });

    let scratch = Scratch::new("soak");
    let mut faulty = base.clone();
    faulty.checkpoint = Some(CheckpointConfig::new(&scratch.0).every(2));
    faulty.faults = Some(
        FaultPlan::new(0x50AC)
            .kill_rank_at_step(17, 2)
            .kill_rank_at_step(130, 4)
            .kill_rank_at_step(255, 5),
    );
    let incs0 = counter("checkpoint.incremental_writes");
    let recovered =
        run_distributed_resilient(&p, &ks, &faulty, steps, init_phi(global), init_mu, |sim| {
            (sim.origin, sim.phi().clone(), sim.mu().clone())
        });
    if pf_trace::enabled() {
        assert!(
            counter("checkpoint.incremental_writes") > incs0,
            "the soak must actually exercise incremental checkpointing"
        );
    }

    assert_blocks_bitwise(&recovered, &clean, p.phases, p.num_mu());
}

fn counter(name: &str) -> u64 {
    pf_trace::snapshot()
        .counters
        .get(name)
        .map(|c| c.total)
        .unwrap_or(0)
}

#[test]
fn kill_with_message_faults_and_no_prior_checkpoint_restarts_from_scratch() {
    // The kill fires before the first periodic set is written, so the
    // replacement cohort restarts from the initial conditions — and still
    // matches, because there is no state outside the simulation.
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let global = [12usize, 12, 1];
    let steps = 4;
    let base = DistConfig::new(global, 2);
    let clean = run_distributed(&p, &ks, &base, steps, init_phi(global), init_mu, |sim| {
        (sim.origin, sim.phi().clone(), sim.mu().clone())
    });

    let scratch = Scratch::new("early-kill");
    let mut faulty = base.clone();
    faulty.checkpoint = Some(CheckpointConfig::new(&scratch.0).every(3));
    faulty.faults = Some(
        FaultPlan::new(5)
            .drop_prob(0.15)
            .delay_prob(0.2)
            .kill_rank_at_step(1, 1),
    );
    let recovered =
        run_distributed_resilient(&p, &ks, &faulty, steps, init_phi(global), init_mu, |sim| {
            (sim.origin, sim.phi().clone(), sim.mu().clone())
        });

    assert_blocks_bitwise(&recovered, &clean, p.phases, p.num_mu());
}
