//! Property tests over the runtime substrates: ghost-layer packing,
//! domain decomposition, the LRU cache model, and field storage.

use pf_fields::{FieldArray, Layout};
use pf_grid::{pack_face, unpack_face, Decomposition};
use pf_perfmodel::Lru;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pack on one side, unpack on the neighbour's opposite side: the
    /// neighbour's ghost layer must equal the sender's boundary interior.
    #[test]
    fn halo_pack_unpack_roundtrip(
        nx in 2usize..6,
        ny in 2usize..6,
        nz in 1usize..5,
        comps in 1usize..4,
        dim in 0usize..3,
        seed in 0u64..1000,
    ) {
        let shape = [nx, ny, nz];
        let mut a = FieldArray::new("pr_a", shape, comps, 1, Layout::Fzyx);
        let mut v = seed;
        let mut next = move || {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (v >> 33) as f64 / (1u64 << 31) as f64
        };
        for c in 0..comps {
            a.fill_with(c, |_, _, _| next());
        }
        let buf = pack_face(&a, dim, 1);
        let mut b = FieldArray::new("pr_b", shape, comps, 1, Layout::Fzyx);
        unpack_face(&mut b, dim, -1, &buf);
        // b's low ghost along `dim` equals a's high interior slab.
        let hi = shape[dim] as isize - 1;
        for c in 0..comps {
            for t1 in 0..shape[(dim + 1) % 3] as isize {
                for t2 in 0..shape[(dim + 2) % 3] as isize {
                    let mut src = [0isize; 3];
                    src[dim] = hi;
                    src[(dim + 1) % 3] = t1;
                    src[(dim + 2) % 3] = t2;
                    let mut dst = src;
                    dst[dim] = -1;
                    prop_assert_eq!(
                        b.get(c, dst[0], dst[1], dst[2]),
                        a.get(c, src[0], src[1], src[2])
                    );
                }
            }
        }
    }

    /// Decompositions tile the domain exactly: every cell belongs to
    /// exactly one block, neighbours are mutual, and rank↔coords roundtrip.
    #[test]
    fn decomposition_tiles_and_neighbors_are_mutual(
        px in 1usize..5,
        py in 1usize..4,
        pz in 1usize..3,
        bs in 2usize..6,
    ) {
        let ranks = px * py * pz;
        let global = [px * bs, py * bs, pz * bs];
        let dec = Decomposition::new(global, ranks, [true; 3]);
        let mut covered = 0usize;
        for r in 0..dec.nranks() {
            prop_assert_eq!(dec.rank_of(dec.coords_of(r)), r);
            let b = dec.block(r);
            covered += b.shape.iter().product::<usize>();
            for d in 0..3 {
                for side in [-1i32, 1] {
                    if let Some(nb) = dec.neighbor(r, d, side) {
                        prop_assert_eq!(dec.neighbor(nb, d, -side), Some(r));
                    }
                }
            }
        }
        prop_assert_eq!(covered, global.iter().product::<usize>());
    }

    /// The O(1) linked-list LRU matches a naive reference implementation.
    #[test]
    fn lru_matches_reference(ops in proptest::collection::vec(0u64..24, 1..250)) {
        let cap = 6usize;
        let mut fast = Lru::new(cap);
        let mut reference: Vec<u64> = Vec::new(); // front = most recent
        for line in ops {
            let (hit, evicted) = fast.access(line);
            // Reference semantics.
            let ref_hit = reference.contains(&line);
            reference.retain(|&l| l != line);
            reference.insert(0, line);
            let ref_evicted = if reference.len() > cap {
                reference.pop()
            } else {
                None
            };
            prop_assert_eq!(hit, ref_hit, "hit mismatch on {}", line);
            prop_assert_eq!(evicted, ref_evicted, "eviction mismatch on {}", line);
        }
    }

    /// Field arrays: every (comp, cell) in the ghosted extent has a unique
    /// linear index for both layouts.
    #[test]
    fn field_indexing_is_injective(
        nx in 1usize..5,
        ny in 1usize..5,
        nz in 1usize..4,
        comps in 1usize..3,
        fzyx in any::<bool>(),
    ) {
        let layout = if fzyx { Layout::Fzyx } else { Layout::Zyxf };
        let f = FieldArray::new("pr_idx", [nx, ny, nz], comps, 1, layout);
        let mut seen = std::collections::HashSet::new();
        for c in 0..comps {
            for z in -1..=(nz as isize) {
                for y in -1..=(ny as isize) {
                    for x in -1..=(nx as isize) {
                        let idx = f.index(c, x, y, z);
                        prop_assert!(idx < f.len());
                        prop_assert!(seen.insert(idx), "collision at {c},{x},{y},{z}");
                    }
                }
            }
        }
    }
}

#[test]
fn load_balancing_is_within_the_largest_weight() {
    // Greedy longest-processing-time balancing: the max/min rank load gap
    // never exceeds the largest single block weight.
    let weights: Vec<f64> = (0..23).map(|i| 1.0 + (i % 5) as f64).collect();
    let ranks = 4;
    let assign = Decomposition::balance(&weights, ranks);
    let mut loads = vec![0.0; ranks];
    for (w, r) in weights.iter().zip(&assign) {
        loads[*r] += w;
    }
    let max = loads.iter().cloned().fold(f64::MIN, f64::max);
    let min = loads.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min <= 5.0 + 1e-12, "imbalance {max} vs {min}");
}
