//! Differential testing of the native codegen backend: generated machine
//! code ([`ExecMode::Native`] — tape → Rust source → `rustc` cdylib →
//! `dlopen`) must be **bitwise identical** to the scalar-serial and
//! strip-mined vectorized interpreters. The generated source reproduces
//! the interpreter's f64 operation sequence exactly (constants via
//! `from_bits`, inlined Philox, same libm, no fast-math), so a single
//! differing bit anywhere is a codegen bug.
//!
//! Covered on full P1 *and* P2 physics plus proptest-random expression
//! trees:
//! - remainder widths and both LICM loop orders,
//! - Philox fluctuation kernels (the RNG is inlined textually in the
//!   generated source — integer-exact),
//! - GPU-rescheduled non-monotone tapes (hoisted sections collapse into
//!   the cell loop, same as the interpreters),
//! - cache poisoning: a corrupt cached cdylib is detected and recompiled
//!   mid-run,
//! - forced `rustc` failure: execution degrades to the vectorized
//!   interpreter with identical results and a bumped
//!   `exec.native.compile_fail` counter.
//!
//! Native launches compile through the process-global artifact cache and
//! mutate `PF_NATIVE_*` env vars, so tests serialize on a mutex and each
//! uses its own scratch cache directory (parallel `cargo test` processes
//! never race on a shared artifact path).

use pf_backend::{ExecMode, FieldStore, RunCtx};
use pf_core::{generate_kernels, BcKind, KernelSet, ModelParams, SimConfig, Simulation};
use pf_fields::Layout;
use pf_ir::{
    apply_loop_order, generate, insert_fences, rematerialize, schedule_min_live, GenOptions,
};
use pf_stencil::{Assignment, StencilKernel};
use pf_symbolic::{Access, Expr, Field};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// Per-test scratch artifact directory, removed on drop (flake guard:
/// no two tests — or parallel test processes — share artifact paths).
struct ScratchCache(PathBuf);

impl ScratchCache {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pf-nateq-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch cache dir");
        std::env::set_var("PF_NATIVE_CACHE_DIR", &dir);
        ScratchCache(dir)
    }
}

impl Drop for ScratchCache {
    fn drop(&mut self) {
        std::env::remove_var("PF_NATIVE_CACHE_DIR");
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Loud skip when the sandbox cannot produce cdylibs; every test that
/// needs a real compile gates on this instead of failing confusingly.
fn native_or_skip(test: &str) -> bool {
    if pf_backend::native_available() {
        true
    } else {
        eprintln!("SKIPPED {test}: rustc cannot produce loadable cdylibs in this sandbox");
        false
    }
}

fn p1_2d() -> ModelParams {
    let mut p = pf_core::p1();
    p.dim = 2;
    p.dt = 0.005;
    p.temperature.gradient = 0.0;
    p
}

fn p2_2d() -> ModelParams {
    let mut p = pf_core::p2();
    p.dim = 2;
    p.dt = 0.002;
    p.temperature.gradient = 0.0;
    p
}

/// Build a simulation with a non-trivial initial state and run `steps`.
fn run(
    p: &ModelParams,
    ks: &KernelSet,
    shape: [usize; 3],
    mode: ExecMode,
    steps: usize,
) -> Simulation {
    let mut cfg = SimConfig::new(shape);
    cfg.bc = [BcKind::Periodic; 3];
    cfg.mode = mode;
    let mut sim = Simulation::new(p.clone(), ks.clone(), cfg);
    let phases = p.phases;
    sim.init_phi(move |x, y, _| {
        let mut v = vec![0.0; phases];
        let cx = shape[0] as f64 / 2.0;
        let cy = shape[1] as f64 / 2.0;
        let d = (((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt() - 3.0) / 2.0;
        let s = 0.5 * (1.0 - d.tanh());
        v[0] = 1.0 - s;
        v[1 + (x / 3) % (phases - 1)] = s;
        v
    });
    let comps = p.components;
    sim.init_mu(move |x, _, _| {
        (0..comps - 1)
            .map(|i| 0.1 - 0.001 * x as f64 - 0.05 * i as f64)
            .collect()
    });
    for _ in 0..steps {
        sim.step();
    }
    sim
}

/// Serial == Vectorized == Native, bit for bit, on both state fields.
fn assert_native_agrees(p: &ModelParams, ks: &KernelSet, shape: [usize; 3], steps: usize) {
    let serial = run(p, ks, shape, ExecMode::Serial, steps);
    for mode in [ExecMode::Vectorized, ExecMode::Native] {
        let other = run(p, ks, shape, mode, steps);
        assert_eq!(
            serial.phi().max_abs_diff(other.phi()),
            0.0,
            "phi diverged from Serial under {mode:?} on shape {shape:?}"
        );
        assert_eq!(
            serial.mu().max_abs_diff(other.mu()),
            0.0,
            "mu diverged from Serial under {mode:?} on shape {shape:?}"
        );
    }
}

#[test]
fn native_agrees_on_full_p1_physics_with_remainder_widths() {
    let _g = lock();
    if !native_or_skip("native_agrees_on_full_p1_physics_with_remainder_widths") {
        return;
    }
    let _scratch = ScratchCache::new("p1");
    let p = p1_2d();
    let ks = generate_kernels(&p, &GenOptions::default());
    // 20 = strips + remainder; 13 = one strip + 5-cell teardown.
    assert_native_agrees(&p, &ks, [20, 12, 1], 2);
    assert_native_agrees(&p, &ks, [13, 9, 1], 2);
}

#[test]
fn native_agrees_on_full_p2_physics() {
    let _g = lock();
    if !native_or_skip("native_agrees_on_full_p2_physics") {
        return;
    }
    let _scratch = ScratchCache::new("p2");
    let p = p2_2d();
    let ks = generate_kernels(&p, &GenOptions::default());
    assert_native_agrees(&p, &ks, [14, 10, 1], 1);
}

#[test]
fn native_agrees_under_both_licm_loop_orders() {
    let _g = lock();
    if !native_or_skip("native_agrees_under_both_licm_loop_orders") {
        return;
    }
    let _scratch = ScratchCache::new("order");
    let p = p1_2d();
    for order in [[2, 1, 0], [1, 2, 0]] {
        let mut ks = generate_kernels(&p, &GenOptions::default());
        apply_loop_order(&mut ks.phi_full, order);
        apply_loop_order(&mut ks.mu_full, order);
        assert_eq!(ks.phi_full.loop_order, order);
        assert_native_agrees(&p, &ks, [20, 10, 1], 2);
    }
}

#[test]
fn native_reproduces_philox_fluctuations_bitwise() {
    let _g = lock();
    if !native_or_skip("native_reproduces_philox_fluctuations_bitwise") {
        return;
    }
    let _scratch = ScratchCache::new("philox");
    // The generated source carries its own textual copy of Philox 4x32-10;
    // integer ops are exact, so the streams must agree to the last bit.
    let mut p = p1_2d();
    p.fluctuation_amplitude = 1e-3;
    let ks = generate_kernels(&p, &GenOptions::default());
    assert!(
        ks.phi_full
            .instrs
            .iter()
            .any(|op| matches!(op, pf_ir::TapeOp::Rand(_))),
        "fluctuation amplitude must inject Rand ops"
    );
    assert_native_agrees(&p, &ks, [20, 10, 1], 2);
}

#[test]
fn native_runs_gpu_rescheduled_non_monotone_tapes() {
    let _g = lock();
    if !native_or_skip("native_runs_gpu_rescheduled_non_monotone_tapes") {
        return;
    }
    let _scratch = ScratchCache::new("gpu");
    // The GPU register-pressure chain destroys level monotonicity; the
    // native emitter must collapse every hoisted section into the cell
    // loop — exactly like the interpreters — and still match bitwise.
    let p = p1_2d();
    let mut ks = generate_kernels(&p, &GenOptions::default());
    let mut t = insert_fences(&schedule_min_live(&rematerialize(&ks.phi_full, 2), 20), 48);
    t.name = "phi_full_gpu_native".into();
    assert!(
        t.levels.windows(2).any(|w| w[1] < w[0]),
        "reschedule should produce a non-monotone level sequence"
    );
    ks.phi_full = t;
    assert_native_agrees(&p, &ks, [20, 10, 1], 2);
}

#[test]
fn corrupt_disk_artifact_is_recompiled_mid_run() {
    let _g = lock();
    if !native_or_skip("corrupt_disk_artifact_is_recompiled_mid_run") {
        return;
    }
    let scratch = ScratchCache::new("poison");
    let p = p1_2d();
    let ks = generate_kernels(&p, &GenOptions::default());
    let reference = run(&p, &ks, [13, 9, 1], ExecMode::Serial, 2);

    // First native run populates the disk cache.
    let first = run(&p, &ks, [13, 9, 1], ExecMode::Native, 2);
    assert_eq!(reference.phi().max_abs_diff(first.phi()), 0.0);

    // Poison every cached artifact on disk, then drop the in-memory
    // function pointers so the next run must go back to disk.
    let mut poisoned = 0;
    for entry in std::fs::read_dir(&scratch.0).expect("cache dir readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "so") {
            // Swap in the garbage via rename (a fresh inode): truncating a
            // still-mapped artifact in place would SIGBUS the live process,
            // which is exactly why the production path installs artifacts
            // the same way.
            let tmp = path.with_extension("poison.tmp");
            std::fs::write(&tmp, b"garbage, not an ELF").expect("write poison");
            std::fs::rename(&tmp, &path).expect("install poison");
            poisoned += 1;
        }
    }
    assert!(
        poisoned > 0,
        "native run must have cached artifacts on disk"
    );
    pf_backend::clear_memory_cache();

    let stale = pf_trace::counter("exec.native.stale");
    let before = stale.value();
    let second = run(&p, &ks, [13, 9, 1], ExecMode::Native, 2);
    assert_eq!(
        reference.phi().max_abs_diff(second.phi()),
        0.0,
        "recompiled artifacts must still match Serial bitwise"
    );
    assert_eq!(reference.mu().max_abs_diff(second.mu()), 0.0);
    if pf_trace::enabled() {
        assert!(
            stale.value() >= before + poisoned as u64,
            "every poisoned artifact must be detected and replaced"
        );
    }
}

#[test]
fn forced_rustc_failure_falls_back_to_vectorized_bitwise() {
    let _g = lock();
    let _scratch = ScratchCache::new("fallback");
    let p = p1_2d();
    let ks = generate_kernels(&p, &GenOptions::default());
    let reference = run(&p, &ks, [20, 12, 1], ExecMode::Vectorized, 2);

    // Break the compiler and drop any kernels already resolved in this
    // process, so every native launch actually attempts (and fails) a
    // compile before degrading.
    std::env::set_var("PF_NATIVE_RUSTC", "/nonexistent/pf-rustc-gone");
    pf_backend::clear_memory_cache();
    let fails = pf_trace::counter("exec.native.compile_fail");
    let fallbacks = pf_trace::counter(&format!("exec.fallback.{}", ks.phi_full.name));
    let (f0, b0) = (fails.value(), fallbacks.value());
    let degraded = run(&p, &ks, [20, 12, 1], ExecMode::Native, 2);
    std::env::remove_var("PF_NATIVE_RUSTC");
    pf_backend::clear_memory_cache();

    assert_eq!(
        reference.phi().max_abs_diff(degraded.phi()),
        0.0,
        "the degraded run must be bitwise identical to the vectorized engine"
    );
    assert_eq!(reference.mu().max_abs_diff(degraded.mu()), 0.0);
    if pf_trace::enabled() {
        assert!(
            fails.value() > f0,
            "failed compiles must bump exec.native.compile_fail"
        );
        assert!(
            fallbacks.value() > b0,
            "the degraded launches must bump exec.fallback.<kernel>"
        );
    }
}

/// Shared fields for random tapes (field registration is global, so reuse
/// one pair across cases).
fn prop_src() -> Field {
    static F: OnceLock<Field> = OnceLock::new();
    *F.get_or_init(|| Field::new("nateq_src", 2, 3))
}

fn prop_dst() -> Field {
    static F: OnceLock<Field> = OnceLock::new();
    *F.get_or_init(|| Field::new("nateq_dst", 1, 3))
}

/// A strategy for random, numerically tame expressions over one 2-component
/// source field (denominators ≥ 1, sqrt args > 0, offsets within the
/// single ghost layer) plus the occasional Philox `Rand` leaf.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (1i32..40).prop_map(|v| Expr::num(v as f64 / 8.0)),
        Just(Expr::rand(0)),
        (0usize..2, -1i32..=1, -1i32..=1).prop_map(|(c, ox, oy)| Expr::access(Access::at(
            prop_src(),
            c,
            [ox, oy, 0]
        ))),
    ];
    leaf.prop_recursive(4, 40, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a / (Expr::powi(b, 2) + 1.0)),
            inner
                .clone()
                .prop_map(|a| Expr::sqrt(Expr::powi(a, 2) + 0.5)),
            inner
                .clone()
                .prop_map(|a| Expr::rsqrt(Expr::powi(a, 2) + 1.0)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::max(a, b)),
            inner.clone().prop_map(Expr::abs),
        ]
    })
}

/// Run one random tape through one engine over a small block and return
/// the destination bit patterns.
fn run_tape_bits(tape: &pf_ir::Tape, mode: ExecMode) -> Vec<u64> {
    let shape = [13usize, 7, 1];
    let mut store = FieldStore::new();
    store
        .allocate(prop_src(), shape, 1, Layout::Fzyx)
        .fill_with(0, |x, y, _| 0.1 + ((x * 13 + y * 29) % 17) as f64 / 16.0);
    store
        .get_mut(prop_src())
        .fill_with(1, |x, y, _| 0.2 + ((x * 7 + y * 3) % 11) as f64 / 8.0);
    store.allocate(prop_dst(), shape, 1, Layout::Fzyx);
    let ctx = RunCtx {
        seed: 11,
        timestep: 2,
        origin: [1, -2, 0],
        ..RunCtx::default()
    };
    pf_backend::run_kernel(tape, &mut store, &[], shape, &ctx, mode);
    store
        .take(prop_dst())
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

proptest! {
    // Every distinct case costs one rustc compile (~1s), so the case count
    // stays small; the physics tests above cover breadth, this covers
    // random operator composition.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_expression_tapes_agree_across_all_three_engines(e in arb_expr()) {
        let _g = lock();
        if !native_or_skip("random_expression_tapes_agree_across_all_three_engines") {
            return;
        }
        let _scratch = ScratchCache::new("prop");
        let k = StencilKernel::new(
            "nateq_prop",
            vec![Assignment::store(Access::center(prop_dst(), 0), e)],
        );
        let tape = generate(&k, &GenOptions::default());
        let serial = run_tape_bits(&tape, ExecMode::Serial);
        let vectorized = run_tape_bits(&tape, ExecMode::Vectorized);
        let native = run_tape_bits(&tape, ExecMode::Native);
        prop_assert_eq!(&serial, &vectorized, "vectorized diverged");
        prop_assert_eq!(&serial, &native, "native diverged");
    }
}
