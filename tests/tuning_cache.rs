//! Robustness of the on-disk tuning cache (crates/core/src/tune.rs).
//!
//! The contract under test: a damaged or foreign cache can cost speed but
//! never correctness or availability. Corrupted, truncated, or
//! version-mismatched entries are rejected with typed counters and the
//! selection falls back to the static ECM heuristic — producing exactly
//! the choice an empty cache produces — and concurrent ranks sharing one
//! cache directory never observe a half-written entry (installs are
//! unique-tmp + atomic rename).

use pf_backend::ExecMode;
use pf_core::{
    family_fingerprint, generate_kernels, select_variants, select_variants_tuned_in, ChoiceSource,
    Family, KernelSet, TuneCache, TuneEntry, Variant,
};
use pf_ir::GenOptions;
use pf_machine::{skylake_8174, CpuSocket};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pf-tunecache-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Small 2-phase model — fast to generate, same code paths as P1/P2.
fn mini() -> pf_core::ModelParams {
    let mut p = pf_core::p1();
    p.name = "tunecache-mini".into();
    p.phases = 2;
    p.components = 2;
    p.dim = 2;
    p.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    p.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    p.diffusivity = vec![1.0, 0.1];
    p.a_coeff = vec![vec![-0.5], vec![-0.5]];
    p.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    p.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    p.orientation = vec![0.0, 0.0];
    p.temperature.gradient = 0.0;
    p
}

fn kernels() -> KernelSet {
    generate_kernels(&mini(), &GenOptions::default())
}

fn entry(mode: ExecMode, mlups: f64) -> TuneEntry {
    TuneEntry {
        variant: Variant::Split,
        mode,
        block: [24, 24, 8],
        loop_order: [2, 1, 0],
        strip_width: 8,
        measured_mlups: mlups,
        predicted_mlups: 10.0 * mlups,
    }
}

fn counter(name: &str) -> u64 {
    pf_trace::snapshot()
        .counters
        .get(name)
        .map(|c| c.total)
        .unwrap_or(0)
}

/// Seed both family entries so the all-or-nothing consult can hit.
fn store_both(cache: &TuneCache, ks: &KernelSet, sock: &CpuSocket, shape: [usize; 3]) {
    let fp = sock.fingerprint();
    cache
        .store(
            fp,
            family_fingerprint(ks, Family::Phi),
            shape,
            &entry(ExecMode::Serial, 0.5),
        )
        .expect("store phi entry");
    cache
        .store(
            fp,
            family_fingerprint(ks, Family::Mu),
            shape,
            &entry(ExecMode::Vectorized, 1.0),
        )
        .expect("store mu entry");
}

const SHAPE: [usize; 3] = [16, 12, 1];
const BLOCK: [usize; 3] = [24, 24, 8];

#[test]
fn roundtrip_preserves_the_entry_bit_for_bit() {
    let scratch = Scratch::new("roundtrip");
    let cache = TuneCache::at(&scratch.0);
    let want = entry(ExecMode::Native, 12.345678901234567);
    cache.store(1, 2, SHAPE, &want).expect("store");
    let got = cache.load(1, 2, SHAPE).expect("load back");
    assert_eq!(got, want);
    // A different key must miss, not alias.
    assert!(cache.load(1, 3, SHAPE).is_none());
    assert!(cache.load(1, 2, [16, 12, 2]).is_none());
}

#[test]
fn warm_hit_flips_selection_and_damage_falls_back_to_the_static_choice() {
    let ks = kernels();
    let sock = skylake_8174();
    let scratch = Scratch::new("damage");
    let cache = TuneCache::at(&scratch.0);
    let stat = select_variants(&ks, &sock, sock.cores, BLOCK);

    // Warm: both families hit; the slower family (phi, 0.5 MLUP/s) pins
    // the engine.
    store_both(&cache, &ks, &sock, SHAPE);
    let tuned = select_variants_tuned_in(Some(&cache), &ks, &sock, sock.cores, BLOCK, SHAPE);
    assert_eq!(tuned.source, ChoiceSource::Tuned);
    assert_eq!(tuned.mode, Some(ExecMode::Serial));
    assert_eq!((tuned.phi, tuned.mu), (Variant::Split, Variant::Split));

    // Corrupt one entry: flip a byte past the header so the checksum
    // breaks. Selection must equal the static heuristic's choice exactly.
    let phi_path = cache.entry_path(
        sock.fingerprint(),
        family_fingerprint(&ks, Family::Phi),
        SHAPE,
    );
    let mut bytes = std::fs::read(&phi_path).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&phi_path, &bytes).expect("rewrite corrupted");
    let corrupt0 = counter("tune.cache.corrupt");
    let fell_back = select_variants_tuned_in(Some(&cache), &ks, &sock, sock.cores, BLOCK, SHAPE);
    assert_eq!(fell_back.source, ChoiceSource::Static);
    assert_eq!(
        fell_back.mode, None,
        "static fallback keeps the shape default"
    );
    assert_eq!((fell_back.phi, fell_back.mu), (stat.phi, stat.mu));
    assert_eq!(
        fell_back.predicted_mlups, stat.predicted_mlups,
        "fallback re-rates with the same ECM model, bit for bit"
    );
    if pf_trace::enabled() {
        assert!(
            counter("tune.cache.corrupt") > corrupt0,
            "typed corrupt counter"
        );
    }

    // Truncate it instead: same fallback, still the corrupt counter.
    std::fs::write(&phi_path, &bytes[..10]).expect("truncate");
    let corrupt1 = counter("tune.cache.corrupt");
    let truncated = select_variants_tuned_in(Some(&cache), &ks, &sock, sock.cores, BLOCK, SHAPE);
    assert_eq!(truncated.source, ChoiceSource::Static);
    assert_eq!((truncated.phi, truncated.mu), (stat.phi, stat.mu));
    if pf_trace::enabled() {
        assert!(
            counter("tune.cache.corrupt") > corrupt1,
            "truncated counts as corrupt"
        );
    }
}

#[test]
fn version_mismatched_entries_are_rejected_before_the_checksum() {
    let ks = kernels();
    let sock = skylake_8174();
    let scratch = Scratch::new("version");
    let cache = TuneCache::at(&scratch.0);
    store_both(&cache, &ks, &sock, SHAPE);

    // Patch the version field (bytes 8..12, after the magic) of one entry.
    // The reader checks the version *before* the checksum, so a future
    // format is cleanly "unsupported version", not "corrupt" — and the
    // consult falls back statically either way.
    let mu_path = cache.entry_path(
        sock.fingerprint(),
        family_fingerprint(&ks, Family::Mu),
        SHAPE,
    );
    let mut bytes = std::fs::read(&mu_path).expect("read entry");
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&mu_path, &bytes).expect("rewrite versioned");

    let vm0 = counter("tune.cache.version_mismatch");
    let corrupt0 = counter("tune.cache.corrupt");
    let choice = select_variants_tuned_in(Some(&cache), &ks, &sock, sock.cores, BLOCK, SHAPE);
    assert_eq!(
        choice.source,
        ChoiceSource::Static,
        "lone phi hit is not enough"
    );
    if pf_trace::enabled() {
        assert!(
            counter("tune.cache.version_mismatch") > vm0,
            "typed version_mismatch counter"
        );
        assert_eq!(
            counter("tune.cache.corrupt"),
            corrupt0,
            "a version mismatch is not misreported as corruption"
        );
    }
}

#[test]
fn lone_family_hit_keeps_the_static_choice() {
    let ks = kernels();
    let sock = skylake_8174();
    let scratch = Scratch::new("lone");
    let cache = TuneCache::at(&scratch.0);
    // Only phi present: all-or-nothing selection must not half-apply.
    cache
        .store(
            sock.fingerprint(),
            family_fingerprint(&ks, Family::Phi),
            SHAPE,
            &entry(ExecMode::Serial, 0.5),
        )
        .expect("store phi entry");
    let stat = select_variants(&ks, &sock, sock.cores, BLOCK);
    let choice = select_variants_tuned_in(Some(&cache), &ks, &sock, sock.cores, BLOCK, SHAPE);
    assert_eq!(choice.source, ChoiceSource::Static);
    assert_eq!(choice.mode, None);
    assert_eq!((choice.phi, choice.mu), (stat.phi, stat.mu));
}

/// Concurrent ranks hammering one cache directory — mixed stores of
/// different winners and loads of the same key — must never observe a
/// torn entry: every load either misses or decodes to one of the exact
/// entries some thread stored (atomic unique-tmp + rename installs).
#[test]
fn concurrent_ranks_sharing_a_cache_dir_never_see_torn_entries() {
    let scratch = Scratch::new("race");
    let dir = scratch.0.clone();
    let candidates: Vec<TuneEntry> = vec![
        entry(ExecMode::Serial, 1.0),
        entry(ExecMode::Vectorized, 2.0),
        entry(ExecMode::Native, 3.0),
        entry(ExecMode::Parallel, 4.0),
    ];
    let corrupt0 = counter("tune.cache.corrupt");
    std::thread::scope(|s| {
        for (t, mine) in candidates.iter().enumerate() {
            let dir = dir.clone();
            let candidates = &candidates;
            s.spawn(move || {
                let cache = TuneCache::at(dir);
                for round in 0..25 {
                    cache
                        .store(7, 42, SHAPE, mine)
                        .unwrap_or_else(|e| panic!("thread {t} round {round}: store failed: {e}"));
                    if let Some(seen) = cache.load(7, 42, SHAPE) {
                        assert!(
                            candidates.contains(&seen),
                            "thread {t} round {round}: read an entry nobody wrote: {seen:?}"
                        );
                    }
                }
            });
        }
    });
    if pf_trace::enabled() {
        assert_eq!(
            counter("tune.cache.corrupt"),
            corrupt0,
            "no load ever saw a half-installed entry"
        );
    }
    // The survivor is whichever store landed last — still a valid entry.
    let survivor = TuneCache::at(&scratch.0)
        .load(7, 42, SHAPE)
        .expect("entry survives");
    assert!(candidates.contains(&survivor));
}

#[test]
fn kill_switch_and_cache_dir_env_are_respected() {
    // `tune_enabled` is pure env parsing; exercise all spellings. The
    // PF_TUNE mutations are benign for concurrent tests in this binary:
    // nothing else here consults `TuneCache::from_env`, and the dist
    // launch consult it gates only flips bitwise-identical engines.
    for off in ["off", "0", "false"] {
        std::env::set_var("PF_TUNE", off);
        assert!(
            !pf_core::tune_enabled(),
            "PF_TUNE={off} must disable tuning"
        );
        assert!(
            TuneCache::from_env().is_none(),
            "disabled tuning must yield no cache"
        );
    }
    std::env::set_var("PF_TUNE", "on");
    assert!(pf_core::tune_enabled());
    std::env::remove_var("PF_TUNE");
    assert!(pf_core::tune_enabled(), "unset leaves tuning on");
}
