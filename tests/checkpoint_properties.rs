//! Property tests for the checkpoint format: any simulation state encodes
//! and decodes back bitwise, re-encoding is byte-identical, and *any*
//! truncation or byte corruption of a valid checkpoint is rejected with a
//! typed `CheckpointError` — never a panic, and never silently accepted
//! state (the simulation is left untouched on failure).

use pf_core::checkpoint::{decode_into, encode, parse_header};
use pf_core::{generate_kernels, CheckpointError, RankMeta, SimConfig, Simulation, Variant};
use pf_ir::GenOptions;
use proptest::prelude::*;

fn mini() -> pf_core::ModelParams {
    let mut p = pf_core::p1();
    p.phases = 2;
    p.components = 2;
    p.dim = 2;
    p.dt = 0.005;
    p.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    p.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    p.diffusivity = vec![1.0, 0.1];
    p.a_coeff = vec![vec![-0.5], vec![-0.5]];
    p.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    p.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    p.orientation = vec![0.0, 0.0];
    p.temperature.gradient = 0.0;
    p.fluctuation_amplitude = 0.0;
    p
}

/// A small simulation advanced a few steps so the fields hold non-trivial
/// values; `salt` varies the initial condition between proptest cases.
fn advanced_sim(nx: usize, ny: usize, steps: usize, salt: f64) -> (Simulation, RankMeta) {
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let mut cfg = SimConfig::new([nx, ny, 1]);
    cfg.phi_variant = Variant::Full;
    cfg.mu_variant = Variant::Split;
    let mut sim = Simulation::new(p, ks, cfg);
    sim.init_phi(|x, y, _| {
        let d = ((x as f64 - nx as f64 / 2.0).powi(2) + (y as f64 - ny as f64 / 2.0).powi(2))
            .sqrt()
            - 3.0
            - salt;
        let s = 0.5 * (1.0 - (d / 2.0).tanh());
        vec![1.0 - s, s]
    });
    sim.init_mu(|x, y, _| vec![0.05 + 0.002 * salt + 0.001 * ((x + y) % 3) as f64]);
    sim.run_steps(steps);
    let meta = RankMeta::single([nx, ny, 1]);
    (sim, meta)
}

fn snapshot(sim: &Simulation) -> Vec<u64> {
    let mut out = Vec::new();
    let shape = sim.phi().shape();
    for (arr, comps) in [(sim.phi(), 2usize), (sim.mu(), 1usize)] {
        for c in 0..comps {
            for z in 0..shape[2] as isize {
                for y in 0..shape[1] as isize {
                    for x in 0..shape[0] as isize {
                        out.push(arr.get(c, x, y, z).to_bits());
                    }
                }
            }
        }
    }
    out
}

proptest! {
    // Each case regenerates kernels (expensive); a modest deterministic
    // case count keeps the suite fast while still sweeping shapes, cut
    // points, and corruption positions.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn round_trip_is_bitwise_for_any_state(
        nx in 6usize..14,
        ny in 6usize..14,
        steps in 0usize..4,
        salt in 0.0f64..2.0,
    ) {
        let (sim, meta) = advanced_sim(nx, ny, steps, salt);
        let bytes = encode(&sim, &meta);

        // Decode into a freshly built, differently initialized sim.
        let (mut other, _) = advanced_sim(nx, ny, 0, salt + 0.5);
        decode_into(&mut other, &meta, &bytes).expect("round trip");
        prop_assert_eq!(snapshot(&other), snapshot(&sim));
        prop_assert_eq!(other.step_count, sim.step_count);

        // Re-encoding the restored state reproduces the bytes exactly.
        prop_assert_eq!(encode(&other, &meta), bytes);
    }

    #[test]
    fn any_truncation_is_a_typed_error(
        cut_frac in 0.0f64..1.0,
    ) {
        let (sim, meta) = advanced_sim(8, 8, 1, 0.0);
        let bytes = encode(&sim, &meta);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let truncated = &bytes[..cut];

        let (mut victim, _) = advanced_sim(8, 8, 1, 1.0);
        let before = snapshot(&victim);
        let err = decode_into(&mut victim, &meta, truncated)
            .expect_err("truncated checkpoint must be rejected");
        prop_assert!(
            matches!(err, CheckpointError::Truncated | CheckpointError::ChecksumMismatch),
            "unexpected error kind: {err}"
        );
        // The failed restore must not have touched the simulation.
        prop_assert_eq!(snapshot(&victim), before);

        // Header parsing of the truncation must not panic either.
        let _ = parse_header(truncated);
    }

    #[test]
    fn any_single_byte_corruption_is_a_typed_error(
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let (sim, meta) = advanced_sim(8, 8, 1, 0.0);
        let mut bytes = encode(&sim, &meta);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;

        let (mut victim, _) = advanced_sim(8, 8, 1, 1.0);
        let before = snapshot(&victim);
        let err = decode_into(&mut victim, &meta, &bytes)
            .expect_err("corrupted checkpoint must be rejected");
        prop_assert!(
            matches!(err, CheckpointError::ChecksumMismatch),
            "corruption at byte {pos} gave {err}"
        );
        prop_assert_eq!(snapshot(&victim), before);
    }

    #[test]
    fn arbitrary_garbage_never_panics(
        garbage in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        // Random bytes derived from the bool vector (the shim has no u8
        // strategy; two bools per bit-pair spread over the byte).
        let bytes: Vec<u8> = garbage
            .chunks(2)
            .map(|c| {
                ((c.first().copied().unwrap_or(false) as u8) * 0x5A) ^ ((c.get(1).copied().unwrap_or(false) as u8) * 0xA5)
            })
            .collect();
        let (mut victim, meta) = advanced_sim(8, 8, 0, 0.0);
        let r = decode_into(&mut victim, &meta, &bytes);
        prop_assert!(r.is_err());
        let _ = parse_header(&bytes);
    }
}
