//! Physical invariants of the generated simulations: simplex constraint,
//! boundedness, conservation behaviour, interface dynamics, stochastic
//! reproducibility.

use pf_core::analysis;
use pf_core::{generate_kernels, BcKind, SimConfig, Simulation, Variant};
use pf_ir::GenOptions;

fn mini() -> pf_core::ModelParams {
    let mut p = pf_core::p1();
    p.phases = 2;
    p.components = 2;
    p.dim = 2;
    p.dt = 0.005;
    p.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    p.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    p.diffusivity = vec![1.0, 0.1];
    p.a_coeff = vec![vec![-0.5], vec![-0.5]];
    p.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    p.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    p.orientation = vec![0.0, 0.0];
    p.temperature.gradient = 0.0;
    p.fluctuation_amplitude = 0.0;
    p
}

fn circle_sim(p: &pf_core::ModelParams, n: usize, r: f64, mu0: f64) -> Simulation {
    let ks = generate_kernels(p, &GenOptions::default());
    let mut cfg = SimConfig::new([n, n, 1]);
    cfg.bc = [BcKind::Periodic; 3];
    let mut sim = Simulation::new(p.clone(), ks, cfg);
    let c = n as f64 / 2.0;
    let eps = p.eps;
    sim.init_phi(move |x, y, _| {
        let d = (((x as f64 - c).powi(2) + (y as f64 - c).powi(2)).sqrt() - r) / eps;
        let s = 0.5 * (1.0 - d.tanh());
        vec![1.0 - s, s]
    });
    sim.init_mu(move |_, _, _| vec![mu0]);
    sim
}

#[test]
fn phase_fields_stay_on_the_gibbs_simplex() {
    let p = mini();
    let mut sim = circle_sim(&p, 24, 7.0, 0.2);
    sim.run_steps(40);
    let phi = sim.phi();
    for y in 0..24isize {
        for x in 0..24isize {
            let a = phi.get(0, x, y, 0);
            let b = phi.get(1, x, y, 0);
            assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b));
            assert!((a + b - 1.0).abs() < 1e-12);
        }
    }
}

#[test]
fn fields_remain_finite_over_long_runs() {
    let p = mini();
    let mut sim = circle_sim(&p, 20, 6.0, 0.3);
    sim.run_steps(400);
    for arr in [sim.phi(), sim.mu()] {
        for v in arr.data() {
            assert!(v.is_finite(), "non-finite value after long run");
        }
    }
}

#[test]
fn total_solute_is_approximately_conserved_under_periodic_bcs() {
    // The µ equation is a conservation law in c (divergence form); with
    // periodic boundaries the explicit scheme conserves total solute up to
    // the interpolation/anti-trapping discretization error.
    let p = mini();
    let mut sim = circle_sim(&p, 24, 7.0, 0.15);
    let before = analysis::total_solute(&sim, 0);
    sim.run_steps(80);
    let after = analysis::total_solute(&sim, 0);
    let rel = (after - before).abs() / before.abs().max(1e-12);
    assert!(
        rel < 0.05,
        "solute drifted {:.2}% over 80 steps ({before} → {after})",
        rel * 100.0
    );
}

#[test]
fn curvature_drives_small_disks_to_shrink() {
    let p = mini();
    let mut sim = circle_sim(&p, 32, 8.0, 0.0);
    let r0 = analysis::disk_radius(sim.phi(), 1);
    sim.run_steps(150);
    let r1 = analysis::disk_radius(sim.phi(), 1);
    assert!(r1 < r0 - 0.05, "no curvature shrinkage: {r0} → {r1}");
}

#[test]
fn driving_force_overcomes_curvature_for_supersaturated_melts() {
    let p = mini();
    let mut sim = circle_sim(&p, 32, 8.0, 0.5);
    let r0 = analysis::disk_radius(sim.phi(), 1);
    sim.run_steps(250);
    let r1 = analysis::disk_radius(sim.phi(), 1);
    // Growth is slow (solute is consumed at the moving front) but must be
    // monotone upward at this supersaturation, where curvature shrinkage
    // alone would clearly reduce r (see the µ=0 test above).
    assert!(r1 > r0 + 0.02, "seed should grow at µ=0.5: {r0} → {r1}");
}

#[test]
fn interface_width_stays_bounded_and_stabilizes() {
    // The profile relaxes from the tanh seed to the model's own (wider)
    // equilibrium shape; it must neither collapse to a grid artifact nor
    // keep smearing out indefinitely.
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let mut cfg = SimConfig::new([48, 8, 1]);
    cfg.bc = [BcKind::Periodic; 3];
    let mut sim = Simulation::new(p.clone(), ks, cfg);
    let eps = p.eps;
    sim.init_phi(move |x, _, _| {
        let d = (x as f64 - 24.0) / eps;
        let s = 0.5 * (1.0 - d.tanh());
        vec![1.0 - s, s]
    });
    sim.init_mu(|_, _, _| vec![0.0]);
    sim.run_steps(200);
    let w_mid = analysis::interface_width_x(sim.phi(), 1, 4, 0).expect("interface exists");
    sim.run_steps(200);
    let w_late = analysis::interface_width_x(sim.phi(), 1, 4, 0).expect("interface exists");
    assert!(w_mid > 2.0, "interface collapsed: {w_mid}");
    assert!(w_mid < 32.0, "interface filled the domain: {w_mid}");
    assert!(
        w_late <= w_mid + 0.1,
        "interface keeps smearing: {w_mid} → {w_late}"
    );
}

#[test]
fn fluctuations_are_reproducible_and_bounded() {
    let mut p = mini();
    p.fluctuation_amplitude = 1e-3;
    let run = |seed: u32| {
        let ks = generate_kernels(&p, &GenOptions::default());
        let mut cfg = SimConfig::new([16, 16, 1]);
        cfg.bc = [BcKind::Periodic; 3];
        cfg.seed = seed;
        let mut sim = Simulation::new(p.clone(), ks, cfg);
        sim.init_phi(|x, _, _| {
            let s = 0.5 * (1.0 - ((x as f64 - 8.0) / 3.0).tanh());
            vec![1.0 - s, s]
        });
        sim.init_mu(|_, _, _| vec![0.1]);
        sim.run_steps(10);
        sim.phi().clone()
    };
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a.max_abs_diff(&b), 0.0, "same seed must reproduce bitwise");
    assert!(a.max_abs_diff(&c) > 0.0, "different seeds must differ");
}

#[test]
fn full_p1_model_runs_stably_in_3d() {
    // The complete paper model — 4 phases, 3 components, anti-trapping,
    // frozen temperature gradient — on a small 3D block.
    let mut p = pf_core::p1();
    p.dt = 0.002;
    let ks = generate_kernels(&p, &GenOptions::default());
    let mut cfg = SimConfig::new([10, 10, 10]);
    cfg.bc = [BcKind::Periodic, BcKind::Periodic, BcKind::Neumann];
    cfg.phi_variant = Variant::Full;
    cfg.mu_variant = Variant::Split;
    let mut sim = Simulation::new(p.clone(), ks, cfg);
    sim.init_phi(|x, _, z| {
        let mut v = vec![0.0; 4];
        let s = 0.5 * (1.0 - ((z as f64 - 4.0) / 1.5).tanh());
        v[0] = 1.0 - s;
        v[1 + x % 3] = s;
        v
    });
    sim.init_mu(|_, _, _| vec![0.05, 0.05]);
    sim.run_steps(10);
    let phi = sim.phi();
    for z in 0..10isize {
        for y in 0..10isize {
            for x in 0..10isize {
                let s: f64 = (0..4).map(|a| phi.get(a, x, y, z)).sum();
                assert!((s - 1.0).abs() < 1e-12);
                for a in 0..4 {
                    assert!(phi.get(a, x, y, z).is_finite());
                }
            }
        }
    }
}
