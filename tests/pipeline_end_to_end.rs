//! End-to-end pipeline integration: paper parameterizations through the
//! full stack (energy functional → variational derivatives → discretization
//! → IR → executor), kernel-variant equivalence, and generation
//! determinism.

use pf_core::{generate_kernels, p1, BcKind, SimConfig, Simulation, Variant};
use pf_ir::GenOptions;
use pf_perfmodel::{census, CountScope};

fn p1_2d() -> pf_core::ModelParams {
    // The full P1 physics (4 phases, 3 components, anti-trapping) on a 2D
    // slice so debug-mode tests stay fast.
    let mut p = p1();
    p.dim = 2;
    p.dt = 0.005;
    p.temperature.gradient = 0.0;
    p
}

#[test]
fn p1_kernels_have_the_papers_structure() {
    let p = p1_2d();
    let ks = generate_kernels(&p, &GenOptions::default());
    // One store per phase / µ component.
    assert_eq!(ks.phi_full.stores().count(), 4);
    assert_eq!(ks.mu_full.stores().count(), 2);
    // Table 1 headline: the split µ kernel needs fewer per-cell FLOPs than
    // the full version (staggered values are cached, not recomputed).
    let mu_full = census(&ks.mu_full, CountScope::PerCell).normalized_flops();
    let mu_split: usize = ks
        .mu_split
        .flux_tapes
        .iter()
        .chain([&ks.mu_split.update])
        .map(|t| census(t, CountScope::PerCell).normalized_flops())
        .sum();
    assert!(
        mu_split < mu_full,
        "split ({mu_split}) must beat full ({mu_full})"
    );
    // Divisions and rsqrts present (mobility/susceptibility/anti-trapping).
    let c = census(&ks.mu_full, CountScope::PerCell);
    assert!(c.divs > 0, "µ kernel needs divisions");
    assert!(c.rsqrts > 0, "anti-trapping needs inverse square roots");
}

#[test]
fn kernel_generation_is_deterministic() {
    let p = p1_2d();
    let a = generate_kernels(&p, &GenOptions::default());
    let b = generate_kernels(&p, &GenOptions::default());
    // Bitwise-identical instruction streams across independent builds —
    // names, canonical ordering and CSE numbering are all reproducible.
    assert_eq!(a.phi_full.instrs, b.phi_full.instrs);
    assert_eq!(a.mu_full.instrs, b.mu_full.instrs);
    assert_eq!(a.mu_split.update.instrs, b.mu_split.update.instrs);
    for (x, y) in a.mu_split.flux_tapes.iter().zip(&b.mu_split.flux_tapes) {
        assert_eq!(x.instrs, y.instrs);
    }
}

#[test]
fn all_variant_combinations_agree_on_p1_physics() {
    let p = p1_2d();
    let ks = generate_kernels(&p, &GenOptions::default());
    let run = |phi_v: Variant, mu_v: Variant| {
        let mut cfg = SimConfig::new([16, 16, 1]);
        cfg.bc = [BcKind::Periodic; 3];
        cfg.phi_variant = phi_v;
        cfg.mu_variant = mu_v;
        let mut sim = Simulation::new(p.clone(), ks.clone(), cfg);
        sim.init_phi(|x, y, _| {
            let mut v = vec![0.0; 4];
            let d = (((x as f64 - 8.0).powi(2) + (y as f64 - 8.0).powi(2)).sqrt() - 4.0) / 3.0;
            let s = 0.5 * (1.0 - d.tanh());
            v[0] = 1.0 - s;
            v[1 + (x / 3) % 3] = s;
            v
        });
        sim.init_mu(|_, _, _| vec![0.1, -0.05]);
        sim.run_steps(3);
        (sim.phi().clone(), sim.mu().clone())
    };
    let (phi_ref, mu_ref) = run(Variant::Full, Variant::Full);
    for (pv, mv) in [
        (Variant::Full, Variant::Split),
        (Variant::Split, Variant::Full),
        (Variant::Split, Variant::Split),
    ] {
        let (phi, mu) = run(pv, mv);
        let dp = phi_ref.max_abs_diff(&phi);
        let dm = mu_ref.max_abs_diff(&mu);
        assert!(dp < 1e-11, "{pv:?}/{mv:?}: phi diverges by {dp}");
        assert!(dm < 1e-11, "{pv:?}/{mv:?}: mu diverges by {dm}");
    }
}

#[test]
fn compile_time_parameter_folding_prunes_generic_kernels() {
    // §5.1: a generic kernel with runtime parameters spends FLOPs that the
    // specialised (compile-time bound) kernel folds away. We approximate
    // the comparison by disabling all optimizing passes.
    let p = p1_2d();
    let m = pf_core::build_model(&p);
    let disc = pf_stencil::Discretization::new(p.dim, [p.dx; 3]);
    let k = pf_stencil::StencilKernel::new("mu", pf_stencil::discretize_full(&disc, &m.mu_updates));
    let optimized = pf_ir::generate(&k, &GenOptions::default());
    let naive = pf_ir::generate(&k, &GenOptions::naive());
    let co = census(&optimized, CountScope::PerCell).normalized_flops();
    let cn = census(&naive, CountScope::PerCell).normalized_flops();
    assert!(
        co < cn,
        "optimized ({co}) must need fewer per-cell FLOPs than naive ({cn})"
    );
}

#[test]
fn generated_c_and_cuda_cover_all_kernels() {
    let p = p1_2d();
    let ks = generate_kernels(&p, &GenOptions::default());
    for tape in [&ks.phi_full, &ks.mu_full, &ks.mu_split.update] {
        let c = pf_backend::emit_c(tape);
        assert!(c.contains("#pragma omp parallel for"));
        assert!(c.contains(&format!("kernel_{}", tape.name.replace('-', "_"))));
        let cu = pf_backend::emit_cuda(tape, pf_backend::ThreadMapping::Linear1D { threads: 256 });
        assert!(cu.contains("__global__"));
        // Every store of the tape appears as an array write.
        let stores = tape.stores().count();
        let writes = cu.lines().filter(|l| l.contains("] = r")).count();
        assert_eq!(stores, writes);
    }
}
