//! Seeded-mutation suite for the pf-analyze v2 passes (interval dataflow
//! and the symbolic comm-protocol verifier): each bug class the lint layer
//! claims to catch is injected into otherwise-sound artifacts — real
//! generated kernels, the real overlapped-schedule protocol model — and
//! must come back as exactly the advertised diagnostic code. This is the
//! soundness complement to the clean-run tests in `analyze_verifier.rs`:
//! those prove zero false positives, this file proves non-zero true
//! positives.

use pf_analyze::{
    check_comm_script, check_frontier, check_halo, check_protocol, render, CommOp, DiagKind,
    DimClass, FieldAlloc, ProtoEvent,
};
use pf_core::{dim_classes, overlap_protocol_model, ModelParams, TempModel, Variant};
use pf_grid::Decomposition;
use pf_ir::{GenOptions, Tape, TapeOp, VReg, CF};

/// The same minimal 2-phase / 2-component model pf-core's unit tests use:
/// heavy enough to produce real stencil kernels, light enough that the
/// mutation suite stays fast.
fn mini_model() -> ModelParams {
    ModelParams {
        name: "mini".into(),
        phases: 2,
        components: 2,
        dim: 2,
        dx: 1.0,
        dt: 0.01,
        eps: 3.0,
        gamma: vec![vec![0.0, 0.4], vec![0.4, 0.0]],
        gamma_third: 0.0,
        tau: vec![vec![0.0, 1.0], vec![1.0, 0.0]],
        diffusivity: vec![1.0, 0.1],
        a_coeff: vec![vec![-0.5], vec![-0.5]],
        b_coeff: vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]],
        c_coeff: vec![(0.01, 0.0), (0.01, 0.0)],
        anisotropy: None,
        orientation: vec![0.0, 0.0],
        temperature: TempModel {
            t0: 1.0,
            gradient: 0.0,
            velocity: 0.0,
        },
        fluctuation_amplitude: 0.0,
        liquid_phase: 0,
        antitrapping: true,
        eta: 1e-9,
    }
}

fn codes(diags: &[pf_analyze::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.kind.code()).collect()
}

// --- Mutation: widened stencil ------------------------------------------

/// Widen one load of a generated kernel past the single exchanged ghost
/// layer (the classic "someone bumped the stencil order without bumping
/// GHOST_LAYERS" bug) — `halo.overflow`, as an error, locating the load.
#[test]
fn widened_stencil_overflows_the_halo() {
    let p = mini_model();
    let ks = pf_core::generate_kernels(&p, &GenOptions::default());
    let mut tape: Tape = ks.mu_full.clone();
    let idx = tape
        .instrs
        .iter()
        .position(|op| matches!(op, TapeOp::Load { off, .. } if off[0] == 1))
        .expect("mu_full has a +x neighbour load");
    let TapeOp::Load { off, .. } = &mut tape.instrs[idx] else {
        unreachable!()
    };
    off[0] = 2;

    let allocs = vec![FieldAlloc::ghosted(pf_grid::GHOST_LAYERS); tape.fields.len()];
    let d = check_halo(&tape, &allocs);
    assert!(
        d.iter().any(|d| {
            matches!(
                d.kind,
                DiagKind::HaloOverflow {
                    dim: 0,
                    reach: 2,
                    is_store: false,
                    ..
                }
            ) && d.instr == Some(idx)
                && d.is_error()
        }),
        "{}",
        render(&d)
    );
}

/// The same widened load makes the interior/frontier split of the
/// overlapped schedule unsound when the shells stay one cell wide:
/// `frontier.too-narrow` — the static form of the runtime check that
/// `dist.rs` demoted to a debug assertion.
#[test]
fn widened_stencil_breaks_the_frontier_split() {
    let p = mini_model();
    let ks = pf_core::generate_kernels(&p, &GenOptions::default());
    let allocs = vec![FieldAlloc::ghosted(pf_grid::GHOST_LAYERS); ks.mu_full.fields.len()];

    // Sound form: one-cell shells cover the one-cell stencil reach.
    let clean = check_frontier(&ks.mu_full, &allocs, [1, 1, 0], [1, 1, 0]);
    assert!(clean.is_empty(), "{}", render(&clean));

    // Narrowed shell: the interior now issues ghost reads mid-exchange.
    let d = check_frontier(&ks.mu_full, &allocs, [0, 1, 0], [1, 1, 0]);
    assert!(
        d.iter().any(|d| matches!(
            d.kind,
            DiagKind::FrontierTooNarrow {
                dim: 0,
                upper: false,
                needed: 1,
                given: 0,
                ..
            }
        ) && d.is_error()),
        "{}",
        render(&d)
    );
}

// --- Mutation: swapped exchange order -----------------------------------

/// Swapping the two begin_exchange calls of the overlapped schedule (the
/// µ exchange before the φ one) regresses the epoch sequence — caught
/// symbolically, for every rank count, as `protocol.epoch-regression`.
#[test]
fn swapped_exchange_order_regresses_epochs() {
    let p = mini_model();
    let ks = pf_core::generate_kernels(&p, &GenOptions::default());
    let dims = dim_classes(&Decomposition::new([8, 8, 8], 8, [true; 3]));
    let mut m = overlap_protocol_model(&ks, Variant::Full, Variant::Full, dims);
    assert!(check_protocol(&m).is_empty(), "baseline must be sound");

    m.events.swap(0, 1); // begin(µ) now precedes begin(φ) with a later epoch
    let d = check_protocol(&m);
    assert!(
        codes(&d).contains(&"protocol.epoch-regression"),
        "{}",
        render(&d)
    );
}

/// The raw-script form of the same bug class: a rank that posts its recv
/// before the matching send exists anywhere in the SPMD script deadlocks —
/// `protocol.deadlock` from the script checker directly.
#[test]
fn recv_before_send_is_a_deadlock() {
    let script = vec![
        CommOp::Recv {
            field: "phi".into(),
            dim: 2,
            epoch: 0,
        },
        CommOp::Send {
            field: "phi".into(),
            dim: 2,
            epoch: 0,
        },
    ];
    let d = check_comm_script("swapped", &script);
    assert!(codes(&d).contains(&"protocol.deadlock"), "{}", render(&d));
}

// --- Mutation: dropped finish_exchange ----------------------------------

/// Deleting a finish_exchange leaves the φ_dst exchange permanently in
/// flight: `protocol.dropped-finish` at the orphaned begin, plus the µ
/// frontier reading mid-flight ghosts (`protocol.frontier-before-finish`).
#[test]
fn dropped_finish_exchange_is_caught() {
    let p = mini_model();
    let ks = pf_core::generate_kernels(&p, &GenOptions::default());
    let dims = dim_classes(&Decomposition::new([8, 8, 8], 8, [true; 3]));
    let mut m = overlap_protocol_model(&ks, Variant::Full, Variant::Split, dims);
    assert!(check_protocol(&m).is_empty(), "baseline must be sound");

    let phi_dst = ks.fields.phi_dst.name();
    m.events
        .retain(|e| !matches!(e, ProtoEvent::Finish { field } if *field == phi_dst));
    let d = check_protocol(&m);
    let c = codes(&d);
    assert!(c.contains(&"protocol.dropped-finish"), "{}", render(&d));
    assert!(
        c.contains(&"protocol.frontier-before-finish"),
        "{}",
        render(&d)
    );
}

/// A frontier sweep reading ghosts that no exchange ever refreshed this
/// step: `protocol.stale-ghost`.
#[test]
fn never_exchanged_ghost_read_is_stale() {
    let m = pf_analyze::ProtocolModel {
        name: "stale".into(),
        dims: [DimClass {
            divided: true,
            periodic: true,
        }; 3],
        epoch_stride: 4,
        events: vec![ProtoEvent::Frontier {
            ghost_reads: vec!["phi".into()],
            writes: vec![],
        }],
    };
    let d = check_protocol(&m);
    assert!(
        codes(&d).contains(&"protocol.stale-ghost"),
        "{}",
        render(&d)
    );
}

// --- Mutation: unbounded divisor ----------------------------------------

/// Strip the range contract from a divisor field: the interval pass can no
/// longer bound it away from zero and must warn `interval.div-maybe-zero`;
/// restoring the contract silences it. This is the exact regression the
/// contract plumbing in `generate_kernels` exists to prevent.
#[test]
fn unbounded_divisor_warns_until_contracted() {
    let src = pf_symbolic::Field::new("mut_div_src", 1, 3);
    let out = pf_symbolic::Field::new("mut_div_out", 1, 3);
    let mut tape = Tape {
        name: "div_mut".into(),
        fields: vec![src, out],
        params: Vec::new(),
        instrs: vec![
            TapeOp::Const(CF(1.0)),
            TapeOp::Load {
                field: 0,
                comp: 0,
                off: [0; 3],
            },
            TapeOp::Div(VReg(0), VReg(1)),
            TapeOp::Store {
                field: 1,
                comp: 0,
                off: [0; 3],
                val: VReg(2),
            },
        ],
        iter_extent: [0; 3],
        levels: vec![3; 4],
        loop_order: [2, 1, 0],
        approx: pf_ir::ApproxOptions::default(),
        field_ranges: Vec::new(), // mutation: contract dropped
    };

    let d = pf_analyze::check_intervals(&tape);
    assert!(
        d.iter()
            .any(|d| matches!(d.kind, DiagKind::IntervalDivMaybeZero { .. })
                && d.instr == Some(2)
                && !d.is_error()),
        "{}",
        render(&d)
    );

    tape.field_ranges = vec![Some((0.5, 2.0)), None];
    let d = pf_analyze::check_intervals(&tape);
    assert!(
        d.is_empty(),
        "contracted divisor must be clean: {}",
        render(&d)
    );
}

/// A divisor *provably* zero on its whole contracted range is an error,
/// not a warning — the lint gate (and the pipeline hook) must fail it.
#[test]
fn provably_zero_divisor_is_an_error() {
    let src = pf_symbolic::Field::new("mut_zero_src", 1, 3);
    let out = pf_symbolic::Field::new("mut_zero_out", 1, 3);
    let tape = Tape {
        name: "zero_mut".into(),
        fields: vec![src, out],
        params: Vec::new(),
        instrs: vec![
            TapeOp::Const(CF(1.0)),
            TapeOp::Load {
                field: 0,
                comp: 0,
                off: [0; 3],
            },
            TapeOp::Div(VReg(0), VReg(1)),
            TapeOp::Store {
                field: 1,
                comp: 0,
                off: [0; 3],
                val: VReg(2),
            },
        ],
        iter_extent: [0; 3],
        levels: vec![3; 4],
        loop_order: [2, 1, 0],
        approx: pf_ir::ApproxOptions::default(),
        field_ranges: vec![Some((0.0, 0.0)), None],
    };
    let d = pf_analyze::check_intervals(&tape);
    assert!(
        d.iter()
            .any(|d| matches!(d.kind, DiagKind::IntervalDivByZero) && d.is_error()),
        "{}",
        render(&d)
    );
}
