//! Property tests for the version-2 *incremental* checkpoint format:
//! any random sequence of dirty regions replays back bitwise through the
//! increment chain, a version-1 reader rejects v2 bytes with a typed
//! `UnsupportedVersion`, misapplication to the wrong base state is a
//! typed `Incompatible`, and any truncation or byte corruption of an
//! increment is rejected — never a panic, never silently wrong state,
//! and the victim simulation is left untouched on every failure path.

use pf_core::checkpoint::{
    apply_incremental, decode_into, encode_incremental, incremental_base_step, peek_version,
    IncrementalBase, VERSION_INCREMENTAL,
};
use pf_core::{generate_kernels, CheckpointError, RankMeta, SimConfig, Simulation, Variant};
use pf_ir::GenOptions;
use proptest::prelude::*;

fn mini() -> pf_core::ModelParams {
    let mut p = pf_core::p1();
    p.phases = 2;
    p.components = 2;
    p.dim = 2;
    p.dt = 0.005;
    p.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    p.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    p.diffusivity = vec![1.0, 0.1];
    p.a_coeff = vec![vec![-0.5], vec![-0.5]];
    p.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    p.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    p.orientation = vec![0.0, 0.0];
    p.temperature.gradient = 0.0;
    p.fluctuation_amplitude = 0.0;
    p
}

/// A deterministic simulation at `steps` steps; `salt` varies the initial
/// condition (and with it which rows each step dirties) between cases.
fn sim_at(nx: usize, ny: usize, steps: usize, salt: f64) -> (Simulation, RankMeta) {
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let mut cfg = SimConfig::new([nx, ny, 1]);
    cfg.phi_variant = Variant::Full;
    cfg.mu_variant = Variant::Split;
    let mut sim = Simulation::new(p, ks, cfg);
    sim.init_phi(|x, y, _| {
        let d = ((x as f64 - nx as f64 / 2.0).powi(2) + (y as f64 - ny as f64 / 2.0).powi(2))
            .sqrt()
            - 3.0
            - salt;
        let s = 0.5 * (1.0 - (d / 2.0).tanh());
        vec![1.0 - s, s]
    });
    sim.init_mu(|x, y, _| vec![0.05 + 0.002 * salt + 0.001 * ((x + y) % 3) as f64]);
    sim.run_steps(steps);
    let meta = RankMeta::single([nx, ny, 1]);
    (sim, meta)
}

fn snapshot(sim: &Simulation) -> Vec<u64> {
    let mut out = Vec::new();
    let shape = sim.phi().shape();
    for (arr, comps) in [(sim.phi(), 2usize), (sim.mu(), 1usize)] {
        for c in 0..comps {
            for z in 0..shape[2] as isize {
                for y in 0..shape[1] as isize {
                    for x in 0..shape[0] as isize {
                        out.push(arr.get(c, x, y, z).to_bits());
                    }
                }
            }
        }
    }
    out
}

proptest! {
    // Each case regenerates kernels (expensive); a modest deterministic
    // case count keeps the suite fast while still sweeping shapes, chain
    // lengths, and corruption positions.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Evolve a front through a random-length sequence of increments —
    /// each step dirties a different shell of rows, so the dirty-region
    /// pattern varies per increment and per case — then replay the chain
    /// onto a fresh simulation parked at the base step. The replayed
    /// state must equal the source bitwise at every link, exactly as a
    /// full snapshot would.
    #[test]
    fn random_dirty_region_sequences_replay_bitwise(
        nx in 6usize..14,
        ny in 6usize..14,
        base_steps in 0usize..3,
        increments in 1usize..5,
        stride in 1usize..3,
        salt in 0.0f64..2.0,
    ) {
        let (mut sim, meta) = sim_at(nx, ny, base_steps, salt);
        let mut base = IncrementalBase::capture(&sim);
        let mut chain = Vec::new();
        for _ in 0..increments {
            sim.run_steps(stride);
            let inc = encode_incremental(&sim, &meta, &base);
            prop_assert_eq!(peek_version(&inc).unwrap(), VERSION_INCREMENTAL);
            prop_assert_eq!(incremental_base_step(&inc).unwrap(), base.step);
            chain.push(inc);
            base = IncrementalBase::capture(&sim);
        }

        // The replay victim reproduces the base state independently, then
        // walks the chain forward.
        let (mut victim, _) = sim_at(nx, ny, base_steps, salt);
        for inc in &chain {
            apply_incremental(&mut victim, &meta, inc).expect("apply increment");
        }
        prop_assert_eq!(snapshot(&victim), snapshot(&sim));
        prop_assert_eq!(victim.step_count, sim.step_count);
    }

    /// A version-1 reader handed version-2 bytes must fail with the typed
    /// `UnsupportedVersion`, not misparse the delta as a full snapshot.
    #[test]
    fn version_one_readers_reject_any_increment(
        steps in 1usize..4,
        salt in 0.0f64..2.0,
    ) {
        let (mut sim, meta) = sim_at(8, 8, 0, salt);
        let base = IncrementalBase::capture(&sim);
        sim.run_steps(steps);
        let inc = encode_incremental(&sim, &meta, &base);

        let (mut victim, _) = sim_at(8, 8, 0, salt);
        let before = snapshot(&victim);
        let err = decode_into(&mut victim, &meta, &inc)
            .expect_err("a v1 reader must reject v2 bytes");
        prop_assert!(
            matches!(err, CheckpointError::UnsupportedVersion(v) if v == VERSION_INCREMENTAL),
            "unexpected error kind: {err}"
        );
        prop_assert_eq!(snapshot(&victim), before);
    }

    /// Applying an increment to a state that is not its base — too early,
    /// too late, or differently initialized — is a typed error and leaves
    /// the victim untouched; it never splices rows onto the wrong state.
    #[test]
    fn misapplication_to_the_wrong_base_is_typed(
        extra in 1usize..3,
        salt in 0.0f64..2.0,
    ) {
        let (mut sim, meta) = sim_at(8, 8, 1, salt);
        let base = IncrementalBase::capture(&sim);
        sim.run_steps(1);
        let inc = encode_incremental(&sim, &meta, &base);

        // Victim sits `extra` steps past the base step.
        let (mut victim, _) = sim_at(8, 8, 1 + extra, salt);
        let before = snapshot(&victim);
        let err = apply_incremental(&mut victim, &meta, &inc)
            .expect_err("wrong-base apply must be rejected");
        prop_assert!(
            matches!(err, CheckpointError::Incompatible(_)),
            "unexpected error kind: {err}"
        );
        prop_assert_eq!(snapshot(&victim), before);
    }

    /// Any truncation of a valid increment is a typed error, and the
    /// victim state survives the failed apply unchanged.
    #[test]
    fn any_truncation_of_an_increment_is_typed(
        cut_frac in 0.0f64..1.0,
    ) {
        let (mut sim, meta) = sim_at(8, 8, 1, 0.0);
        let base = IncrementalBase::capture(&sim);
        sim.run_steps(1);
        let inc = encode_incremental(&sim, &meta, &base);
        let cut = ((inc.len() - 1) as f64 * cut_frac) as usize;
        let truncated = &inc[..cut];

        let (mut victim, _) = sim_at(8, 8, 1, 0.0);
        let before = snapshot(&victim);
        let err = apply_incremental(&mut victim, &meta, truncated)
            .expect_err("truncated increment must be rejected");
        prop_assert!(
            matches!(err, CheckpointError::Truncated | CheckpointError::ChecksumMismatch),
            "unexpected error kind: {err}"
        );
        prop_assert_eq!(snapshot(&victim), before);
        // Version sniffing of the truncation must not panic either.
        let _ = peek_version(truncated);
        let _ = incremental_base_step(truncated);
    }

    /// Any single-byte corruption of an increment trips the checksum —
    /// the trailer covers header, row index, and payload alike.
    #[test]
    fn any_single_byte_corruption_of_an_increment_is_typed(
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let (mut sim, meta) = sim_at(8, 8, 1, 0.0);
        let base = IncrementalBase::capture(&sim);
        sim.run_steps(1);
        let mut inc = encode_incremental(&sim, &meta, &base);
        let pos = ((inc.len() - 1) as f64 * pos_frac) as usize;
        inc[pos] ^= flip;

        let (mut victim, _) = sim_at(8, 8, 1, 0.0);
        let before = snapshot(&victim);
        let err = apply_incremental(&mut victim, &meta, &inc)
            .expect_err("corrupted increment must be rejected");
        prop_assert!(
            matches!(err, CheckpointError::ChecksumMismatch),
            "corruption at byte {pos} gave {err}"
        );
        prop_assert_eq!(snapshot(&victim), before);
    }
}
