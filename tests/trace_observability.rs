//! Integration coverage for the observability layer: the pf-trace
//! registry observed from outside the crate, through the same probe API
//! the instrumented crates use.
//!
//! The registry is process-global, so tests that reset it or toggle the
//! runtime switch serialize on a mutex (cargo runs test fns on threads
//! within one process).

use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn nested_spans_attribute_child_time_to_parent() {
    let _g = lock();
    pf_trace::reset();
    pf_trace::set_enabled(true);
    {
        let _outer = pf_trace::span("it.outer");
        std::thread::sleep(Duration::from_millis(4));
        {
            let _inner = pf_trace::span("it.inner");
            std::thread::sleep(Duration::from_millis(8));
        }
    }
    let r = pf_trace::snapshot();
    let outer = &r.spans["it.outer"].agg;
    let inner = &r.spans["it.inner"].agg;
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 1);
    // Everything the inner span measured is accounted as the outer span's
    // child time, so outer self-time excludes it.
    assert!(outer.child_ns >= inner.total_ns);
    assert!(outer.total_ns >= outer.child_ns);
    assert!(outer.self_ns() < outer.total_ns);
}

#[test]
fn concurrent_counter_increments_from_worker_pool_all_land() {
    let _g = lock();
    pf_trace::reset();
    pf_trace::set_enabled(true);
    let touched = AtomicUsize::new(0);
    (0..64usize).into_par_iter().for_each(|i| {
        pf_trace::counter("it.pool_hits").incr(1);
        pf_trace::counter_at("it.rank_hits", i % 4).incr(1);
        touched.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(touched.load(Ordering::SeqCst), 64);
    let r = pf_trace::snapshot();
    let hits = &r.counters["it.pool_hits"];
    assert_eq!(hits.total, 64);
    let ranked = &r.counters["it.rank_hits"];
    assert_eq!(ranked.total, 64);
    assert_eq!(ranked.by_rank.len(), 4);
    assert!(ranked.by_rank.values().all(|&v| v == 16));
}

#[test]
fn disabled_mode_records_nothing() {
    let _g = lock();
    pf_trace::reset();
    pf_trace::set_enabled(false);
    pf_trace::counter("it.dark").incr(7);
    pf_trace::gauge("it.dark_gauge").set(1.5);
    {
        let _s = pf_trace::span("it.dark_span");
    }
    let mut built = false;
    {
        let _s = pf_trace::span_lazy(|| {
            built = true;
            "it.dark_lazy".to_string()
        });
    }
    assert!(!built, "span_lazy must not build its name when disabled");
    pf_trace::set_enabled(true);
    let r = pf_trace::snapshot();
    assert!(r.counters.is_empty());
    assert!(r.gauges.is_empty());
    assert!(r.spans.is_empty());
}

#[test]
fn fallback_counters_roundtrip_through_report_json() {
    let _g = lock();
    pf_trace::reset();
    pf_trace::set_enabled(true);
    // Drive a real degraded launch: a store offset along the outer loop
    // dimension forces the infallible API to rerun serially, which must
    // surface as both the mode-specific and the engine-neutral
    // `exec.fallback.<kernel>` counters.
    use pf_backend::{run_kernel, ExecMode, FieldStore, RunCtx};
    use pf_stencil::{Assignment, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};
    let src = Field::new("it_fb_src", 1, 3);
    let dst = Field::new("it_fb_dst", 1, 3);
    let k = StencilKernel::new(
        "it_fb_kernel",
        vec![Assignment::store(
            Access::at(dst, 0, [0, 0, 1]),
            Expr::access(Access::center(src, 0)),
        )],
    );
    let tape = pf_ir::generate(&k, &pf_ir::GenOptions::default());
    let mut store = FieldStore::new();
    store
        .allocate(src, [8, 4, 4], 1, pf_fields::Layout::Fzyx)
        .fill_with(0, |x, y, z| (x * 5 + y * 3 + z) as f64);
    store.allocate(dst, [8, 4, 4], 1, pf_fields::Layout::Fzyx);
    run_kernel(
        &tape,
        &mut store,
        &[],
        [8, 4, 4],
        &RunCtx::default(),
        ExecMode::Vectorized,
    );

    let r = pf_trace::snapshot();
    assert_eq!(
        r.counters["exec.fallback.it_fb_kernel"].total, 1,
        "degraded launches must bump the engine-neutral fallback counter"
    );
    assert_eq!(r.counters["exec.serial_fallback.it_fb_kernel"].total, 1);

    // The counters survive the full Report JSON round-trip.
    let text = r.to_json().to_pretty();
    let back = pf_trace::Report::parse(&text).expect("report parses back");
    assert_eq!(back, r);
    assert_eq!(back.counters["exec.fallback.it_fb_kernel"].total, 1);
}

#[test]
fn report_json_roundtrip_through_instrumented_run() {
    let _g = lock();
    pf_trace::reset();
    pf_trace::set_enabled(true);
    // Produce metrics through a real instrumented code path: a tiny
    // distributed run touches exec, comm, halo-exchange and dist probes.
    let p = pf_core::p1();
    let ks = pf_core::generate_kernels(&p, &pf_ir::GenOptions::default());
    let cfg = pf_core::dist::DistConfig::new([8, 8, 8], 2);
    pf_core::dist::run_distributed(
        &p,
        &ks,
        &cfg,
        2,
        |_, _, _| vec![1.0; p.phases],
        |_, _, _| vec![0.02; p.components - 1],
        |_| (),
    );
    let r = pf_trace::snapshot();
    assert!(
        r.spans.keys().any(|k| k.starts_with("exec.kernel.")),
        "expected kernel spans, got {:?}",
        r.spans.keys().collect::<Vec<_>>()
    );
    assert!(r.counters.contains_key("grid.halo_exchanges"));
    assert!(r.spans.contains_key("dist.step"));
    // Rank attribution flows through the whole pipeline.
    assert_eq!(r.spans["dist.step"].by_rank.len(), 2);

    let text = r.to_json().to_pretty();
    let back = pf_trace::Report::parse(&text).expect("report parses back");
    assert_eq!(back, r);
    // And the same snapshot embedded in a bench artifact validates.
    let doc = pf_trace::parse_json(&text).unwrap();
    assert!(pf_trace::Report::from_json(&doc).is_ok());
}
