//! Restart equivalence: a run that checkpoints after N steps, is torn
//! down, and resumes from disk in a fresh world for M more steps must be
//! bitwise identical to the uninterrupted N+M-step run — for every kernel
//! variant, in 2D and 3D, across rank counts. This works because kernels,
//! Philox counters, and coordinates are keyed on global cell indices and
//! the checkpoint captures the entire persistent per-rank state.

use pf_core::dist::{run_distributed, CheckpointConfig, DistConfig};
use pf_core::{generate_kernels, Variant};
use pf_fields::FieldArray;
use pf_ir::GenOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn mini(dim: usize) -> pf_core::ModelParams {
    let mut p = pf_core::p1();
    p.phases = 2;
    p.components = 2;
    p.dim = dim;
    p.dt = 0.005;
    p.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    p.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    p.diffusivity = vec![1.0, 0.1];
    p.a_coeff = vec![vec![-0.5], vec![-0.5]];
    p.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    p.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    p.orientation = vec![0.0, 0.0];
    p.temperature.gradient = 0.0;
    p.fluctuation_amplitude = 0.0;
    p
}

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pf-ckpt-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

type Blocks = Vec<([i64; 3], FieldArray, FieldArray)>;

fn run(p: &pf_core::ModelParams, cfg: &DistConfig, steps: usize, global: [usize; 3]) -> Blocks {
    let ks = generate_kernels(p, &GenOptions::default());
    let init_phi = move |x: i64, y: i64, z: i64| {
        let d = (((x as f64 - global[0] as f64 / 2.0).powi(2)
            + (y as f64 - global[1] as f64 / 2.0).powi(2)
            + (z as f64 - global[2] as f64 / 2.0).powi(2))
        .sqrt()
            - 4.0)
            / 2.5;
        let s = 0.5 * (1.0 - d.tanh());
        vec![1.0 - s, s]
    };
    let init_mu = |x: i64, y: i64, _z: i64| vec![0.05 + 0.001 * ((x + y) % 5) as f64];
    run_distributed(p, &ks, cfg, steps, init_phi, init_mu, |sim| {
        (sim.origin, sim.phi().clone(), sim.mu().clone())
    })
}

fn assert_blocks_bitwise(got: &Blocks, want: &Blocks, phases: usize, num_mu: usize) {
    assert_eq!(got.len(), want.len());
    for ((origin, phi, mu), (worigin, wphi, wmu)) in got.iter().zip(want) {
        assert_eq!(origin, worigin);
        let shape = phi.shape();
        for z in 0..shape[2] as isize {
            for y in 0..shape[1] as isize {
                for x in 0..shape[0] as isize {
                    for a in 0..phases {
                        assert_eq!(
                            phi.get(a, x, y, z).to_bits(),
                            wphi.get(a, x, y, z).to_bits(),
                            "phi[{a}] differs at ({x},{y},{z}), origin {origin:?}"
                        );
                    }
                    for i in 0..num_mu {
                        assert_eq!(
                            mu.get(i, x, y, z).to_bits(),
                            wmu.get(i, x, y, z).to_bits(),
                            "mu[{i}] differs at ({x},{y},{z}), origin {origin:?}"
                        );
                    }
                }
            }
        }
    }
}

/// N steps → final checkpoint → fresh world resumes → M more steps, then
/// compare bitwise against the uninterrupted N+M-step run.
fn restart_matches(
    p: &pf_core::ModelParams,
    global: [usize; 3],
    ranks: usize,
    phi_v: Variant,
    mu_v: Variant,
    n: usize,
    m: usize,
) {
    let mut base = DistConfig::new(global, ranks);
    base.phi_variant = phi_v;
    base.mu_variant = mu_v;
    let uninterrupted = run(p, &base, n + m, global);

    let scratch = Scratch::new("restart");
    let mut first = base.clone();
    first.checkpoint = Some(CheckpointConfig::new(&scratch.0));
    run(p, &first, n, global);

    let mut second = base.clone();
    second.checkpoint = Some(CheckpointConfig::new(&scratch.0).resume(true));
    let resumed = run(p, &second, n + m, global);

    assert_blocks_bitwise(&resumed, &uninterrupted, p.phases, p.num_mu());
}

#[test]
fn two_ranks_full_variants_2d() {
    restart_matches(&mini(2), [16, 8, 1], 2, Variant::Full, Variant::Full, 3, 3);
}

#[test]
fn four_ranks_split_variants_2d() {
    restart_matches(
        &mini(2),
        [16, 16, 1],
        4,
        Variant::Split,
        Variant::Split,
        2,
        3,
    );
}

#[test]
fn single_rank_2d() {
    restart_matches(
        &mini(2),
        [12, 12, 1],
        1,
        Variant::Full,
        Variant::Split,
        2,
        2,
    );
}

#[test]
fn eight_ranks_mixed_variants_3d() {
    restart_matches(&mini(3), [8, 8, 8], 8, Variant::Full, Variant::Split, 2, 2);
}

#[test]
fn stochastic_model_restarts_bitwise() {
    // The Philox counter state is part of the checkpoint, so even the
    // fluctuating model restarts on the exact same random stream.
    let mut p = mini(2);
    p.fluctuation_amplitude = 1e-3;
    restart_matches(&p, [16, 16, 1], 4, Variant::Full, Variant::Full, 2, 3);
}

#[test]
fn resume_picks_the_newest_complete_set() {
    // Periodic checkpoints every 2 steps for 6 steps leave sets at 2, 4,
    // and 6; a resumed run must continue from step 6, not an older set.
    let p = mini(2);
    let global = [16usize, 8, 1];
    let base = DistConfig::new(global, 2);
    let uninterrupted = run(&p, &base, 9, global);

    let scratch = Scratch::new("newest");
    let mut first = base.clone();
    first.checkpoint = Some(CheckpointConfig::new(&scratch.0).every(2));
    run(&p, &first, 6, global);
    for step in [2u64, 4, 6] {
        let dir = scratch.0.join(format!("step_{step:08}"));
        assert!(dir.is_dir(), "missing periodic set {}", dir.display());
    }

    let mut second = base.clone();
    second.checkpoint = Some(CheckpointConfig::new(&scratch.0).resume(true));
    let resumed = run(&p, &second, 9, global);
    assert_blocks_bitwise(&resumed, &uninterrupted, p.phases, p.num_mu());
}

#[test]
fn partial_sets_are_skipped_on_resume() {
    // A crash can leave a torn set (some ranks' files missing). Resume must
    // fall back to the newest *complete* set.
    let p = mini(2);
    let global = [16usize, 8, 1];
    let base = DistConfig::new(global, 2);
    let uninterrupted = run(&p, &base, 7, global);

    let scratch = Scratch::new("torn");
    let mut first = base.clone();
    first.checkpoint = Some(CheckpointConfig::new(&scratch.0).every(2));
    run(&p, &first, 4, global);
    // Fake a torn set at step 6: only rank 0's file exists.
    let torn = scratch.0.join("step_00000006");
    std::fs::create_dir_all(&torn).unwrap();
    std::fs::write(torn.join("rank_0000.ckpt"), b"torn").unwrap();

    let mut second = base.clone();
    second.checkpoint = Some(CheckpointConfig::new(&scratch.0).resume(true));
    let resumed = run(&p, &second, 7, global);
    assert_blocks_bitwise(&resumed, &uninterrupted, p.phases, p.num_mu());
}
