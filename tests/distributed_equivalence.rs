//! Distributed-memory correctness: the thread-backed rank runtime with
//! phased ghost-layer exchange must reproduce the single-block simulation
//! bitwise, for every kernel variant, in 2D and 3D, with corner-dependent
//! stencils (the µ kernel's D3C19 access pattern).

use pf_core::dist::{run_distributed, DistConfig};
use pf_core::{generate_kernels, BcKind, SimConfig, Simulation, Variant};
use pf_ir::GenOptions;

fn mini(dim: usize) -> pf_core::ModelParams {
    let mut p = pf_core::p1();
    p.phases = 2;
    p.components = 2;
    p.dim = dim;
    p.dt = 0.005;
    p.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    p.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    p.diffusivity = vec![1.0, 0.1];
    p.a_coeff = vec![vec![-0.5], vec![-0.5]];
    p.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    p.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    p.orientation = vec![0.0, 0.0];
    p.temperature.gradient = 0.0;
    p.fluctuation_amplitude = 0.0;
    p
}

fn compare(
    p: &pf_core::ModelParams,
    global: [usize; 3],
    ranks: usize,
    phi_v: Variant,
    mu_v: Variant,
    steps: usize,
) {
    let ks = generate_kernels(p, &GenOptions::default());
    let init_phi = |x: i64, y: i64, z: i64| {
        let d = (((x as f64 - global[0] as f64 / 2.0).powi(2)
            + (y as f64 - global[1] as f64 / 2.0).powi(2)
            + (z as f64 - global[2] as f64 / 2.0).powi(2))
        .sqrt()
            - 4.0)
            / 2.5;
        let s = 0.5 * (1.0 - d.tanh());
        vec![1.0 - s, s]
    };
    let init_mu = |x: i64, y: i64, _z: i64| vec![0.05 + 0.001 * ((x + y) % 5) as f64];

    let mut cfg = SimConfig::new(global);
    cfg.bc = [BcKind::Periodic; 3];
    cfg.phi_variant = phi_v;
    cfg.mu_variant = mu_v;
    let mut reference = Simulation::new(p.clone(), ks.clone(), cfg);
    reference.init_phi(|x, y, z| init_phi(x as i64, y as i64, z as i64));
    reference.init_mu(|x, y, z| init_mu(x as i64, y as i64, z as i64));
    reference.run_steps(steps);

    let mut dcfg = DistConfig::new(global, ranks);
    dcfg.phi_variant = phi_v;
    dcfg.mu_variant = mu_v;
    let blocks = run_distributed(p, &ks, &dcfg, steps, init_phi, init_mu, |sim| {
        (sim.origin, sim.phi().clone(), sim.mu().clone())
    });

    for (origin, phi, mu) in blocks {
        let shape = phi.shape();
        for z in 0..shape[2] as isize {
            for y in 0..shape[1] as isize {
                for x in 0..shape[0] as isize {
                    let (gx, gy, gz) = (
                        x + origin[0] as isize,
                        y + origin[1] as isize,
                        z + origin[2] as isize,
                    );
                    for a in 0..p.phases {
                        assert_eq!(
                            phi.get(a, x, y, z),
                            reference.phi().get(a, gx, gy, gz),
                            "phi[{a}] mismatch at global ({gx},{gy},{gz}), origin {origin:?}"
                        );
                    }
                    for i in 0..p.num_mu() {
                        assert_eq!(
                            mu.get(i, x, y, z),
                            reference.mu().get(i, gx, gy, gz),
                            "mu[{i}] mismatch at global ({gx},{gy},{gz})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn two_ranks_full_variants_2d() {
    compare(&mini(2), [16, 8, 1], 2, Variant::Full, Variant::Full, 4);
}

#[test]
fn four_ranks_split_variants_2d() {
    compare(&mini(2), [16, 16, 1], 4, Variant::Split, Variant::Split, 4);
}

#[test]
fn eight_ranks_mixed_variants_3d() {
    // 3D exercises the corner/edge ghosts of the phased exchange under the
    // D3C19 µ stencil.
    compare(&mini(3), [8, 8, 8], 8, Variant::Full, Variant::Split, 2);
}

#[test]
fn uneven_rank_grid_2d() {
    // 8 ranks over a non-square domain: the decomposition picks a 4×2 grid.
    compare(&mini(2), [32, 8, 1], 8, Variant::Full, Variant::Split, 3);
}

#[test]
fn fluctuating_model_is_rank_count_invariant() {
    // Philox is keyed on *global* cell indices, so even the stochastic
    // model must not depend on the decomposition.
    let mut p = mini(2);
    p.fluctuation_amplitude = 1e-3;
    compare(&p, [16, 16, 1], 4, Variant::Full, Variant::Full, 3);
}
