//! Property-based tests over the code-generation pipeline: randomly built
//! expressions must evaluate identically through every representation
//! (symbolic tree, canonical/simplified form, CSE'd form, lowered tape,
//! rescheduled/rematerialized tapes, emitted artifacts).

use pf_ir::{
    generate, insert_fences, interp_expr_context, rematerialize, schedule_min_live, GenOptions,
};
use pf_stencil::{Assignment, StencilKernel};
use pf_symbolic::{cse, expand, Access, Expr, Field, MapCtx};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Shared field for random access leaves (field registration is global, so
/// reuse one).
fn test_field() -> Field {
    static F: OnceLock<Field> = OnceLock::new();
    *F.get_or_init(|| Field::new("prop_f", 3, 3))
}

/// A recursive strategy for random, numerically tame expressions: every
/// generated tree evaluates to a finite value for leaf bindings in
/// [0.1, 2], by construction (denominators are ≥ 1, sqrt args are ≥ 0).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (1i32..40).prop_map(|v| Expr::num(v as f64 / 8.0)),
        Just(Expr::sym("prop_x")),
        Just(Expr::sym("prop_y")),
        (0usize..3, -1i32..=1, -1i32..=1).prop_map(|(c, ox, oy)| Expr::access(Access::at(
            test_field(),
            c,
            [ox, oy, 0]
        ))),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            // Denominator ≥ 1: safe division.
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a / (Expr::powi(b, 2) + 1.0)),
            inner
                .clone()
                .prop_map(|a| Expr::sqrt(Expr::powi(a, 2) + 0.5)),
            inner
                .clone()
                .prop_map(|a| Expr::rsqrt(Expr::powi(a, 2) + 1.0)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::max(a, b)),
            (2i64..4, inner.clone()).prop_map(|(n, a)| Expr::powi(a, n)),
            inner.clone().prop_map(Expr::abs),
        ]
    })
}

fn ctx_for(e: &Expr, x: f64, y: f64) -> MapCtx {
    let mut ctx = MapCtx::new();
    ctx.set("prop_x", x).set("prop_y", y);
    for a in e.accesses() {
        let h = (a.comp as i32 * 5 + a.off[0] * 3 + a.off[1] * 7).rem_euclid(13);
        ctx.set_access(a, 0.1 + h as f64 / 8.0);
    }
    ctx
}

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn expansion_preserves_value(e in arb_expr(), x in 0.1f64..2.0, y in 0.1f64..2.0) {
        let ctx = ctx_for(&e, x, y);
        let v1 = e.eval(&ctx);
        let v2 = expand(&e).eval(&ctx);
        prop_assert!(close(v1, v2), "{v1} vs {v2}");
    }

    #[test]
    fn cse_preserves_value(a in arb_expr(), b in arb_expr(), x in 0.1f64..2.0) {
        // Two roots sharing structure with probability — CSE must not
        // change either.
        let shared = a.clone() * b.clone();
        let roots = [shared.clone() + a.clone(), shared - b.clone()];
        let ctx = ctx_for(&(roots[0].clone() + roots[1].clone()), x, 1.3);
        let r = cse(&roots);
        let mut c = ctx.clone();
        for (s, d) in &r.temps {
            let v = d.eval(&c);
            c.syms.insert(*s, v);
        }
        for (i, root) in roots.iter().enumerate() {
            prop_assert!(close(root.eval(&ctx), r.exprs[i].eval(&c)));
        }
    }

    #[test]
    fn lowering_preserves_value(e in arb_expr(), x in 0.1f64..2.0, y in 0.1f64..2.0) {
        let out = test_field();
        let k = StencilKernel::new(
            "prop_lower",
            vec![Assignment::store(Access::at(out, 0, [0, 0, 0]), e.clone())],
        );
        let tape = generate(&k, &GenOptions::default());
        let mut ctx = ctx_for(&e, x, y);
        // The kernel's own store target may collide with a read in ctx —
        // make sure all loads the tape performs are bound.
        for op in &tape.instrs {
            if let pf_ir::TapeOp::Load { field, comp, off } = op {
                let acc = Access::at(
                    tape.fields[*field as usize],
                    *comp as usize,
                    [off[0] as i32, off[1] as i32, off[2] as i32],
                );
                ctx.fields.entry(acc).or_insert(0.7);
            }
        }
        let got = interp_expr_context(&tape, &ctx).stores[0].1;
        let want = e.eval(&ctx);
        prop_assert!(close(got, want), "{got} vs {want}");
    }

    #[test]
    fn register_transforms_preserve_value(e in arb_expr(), x in 0.1f64..2.0) {
        let out = test_field();
        let k = StencilKernel::new(
            "prop_sched",
            vec![Assignment::store(Access::at(out, 1, [0, 0, 0]), e.clone())],
        );
        let base = generate(&k, &GenOptions::default());
        let ctx = ctx_for(&e, x, 0.9);
        let reference = interp_expr_context(&base, &ctx).stores[0].1;
        for t in [
            schedule_min_live(&base, 4),
            rematerialize(&base, 2),
            insert_fences(&base, 5),
            schedule_min_live(&insert_fences(&rematerialize(&base, 2), 7), 4),
        ] {
            let got = interp_expr_context(&t, &ctx).stores[0].1;
            prop_assert!(close(got, reference), "{got} vs {reference}");
        }
    }

    #[test]
    fn scheduling_never_increases_peak_liveness(e in arb_expr()) {
        let out = test_field();
        let k = StencilKernel::new(
            "prop_live",
            vec![Assignment::store(Access::at(out, 2, [0, 0, 0]), e)],
        );
        let base = generate(&k, &GenOptions::default());
        let sched = schedule_min_live(&base, 8);
        prop_assert!(pf_ir::liveness(&sched).peak <= pf_ir::liveness(&base).peak);
    }

    #[test]
    fn emitted_c_defines_every_register_before_use(e in arb_expr()) {
        let out = test_field();
        let k = StencilKernel::new(
            "prop_emit",
            vec![Assignment::store(Access::at(out, 0, [0, 0, 0]), e)],
        );
        let tape = generate(&k, &GenOptions::default());
        let src = pf_backend::emit_c(&tape);
        let mut defined = std::collections::HashSet::new();
        for line in src.lines() {
            if let Some(rest) = line.trim().strip_prefix("const double r") {
                if let Some(end) = rest.find(' ') {
                    if let Ok(n) = rest[..end].parse::<u32>() {
                        defined.insert(n);
                    }
                }
            }
        }
        for op in &tape.instrs {
            for a in op.args() {
                prop_assert!(defined.contains(&a.0), "r{} used undefined", a.0);
            }
        }
    }
}

#[test]
fn philox_statelessness_under_any_call_order() {
    use pf_rng::CellRng;
    let rng = CellRng::new(99);
    let cells: Vec<[i64; 3]> = (0..50).map(|i| [i, 2 * i, 100 - i]).collect();
    let forward: Vec<f64> = cells.iter().map(|c| rng.uniform_pm1(*c, 3, 0)).collect();
    let backward: Vec<f64> = cells
        .iter()
        .rev()
        .map(|c| rng.uniform_pm1(*c, 3, 0))
        .collect();
    let backward_reversed: Vec<f64> = backward.into_iter().rev().collect();
    assert_eq!(forward, backward_reversed);
}
