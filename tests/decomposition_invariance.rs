//! Decomposition invariance: the physics must not know how the domain was
//! carved up or how the halos were scheduled. One global configuration —
//! with Philox fluctuations live, so the RNG keying is on trial too — is
//! run on 1, 2, and 4 ranks, with the blocking and the overlapped
//! (interior/frontier) communication schedule, and through a
//! checkpoint/restart cycle; every leg must reproduce the same global
//! field bitwise.

use pf_core::dist::{run_distributed, CheckpointConfig, DistConfig};
use pf_core::{generate_kernels, KernelSet, Variant};
use pf_ir::GenOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const GLOBAL: [usize; 3] = [16, 12, 1];
const STEPS: usize = 4;

fn mini() -> pf_core::ModelParams {
    let mut p = pf_core::p1();
    p.phases = 2;
    p.components = 2;
    p.dim = 2;
    p.dt = 0.005;
    p.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    p.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    p.diffusivity = vec![1.0, 0.1];
    p.a_coeff = vec![vec![-0.5], vec![-0.5]];
    p.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    p.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    p.orientation = vec![0.0, 0.0];
    p.temperature.gradient = 0.0;
    // Live noise: any decomposition- or schedule-dependence in the Philox
    // keying would break the bitwise comparison immediately.
    p.fluctuation_amplitude = 1e-3;
    p
}

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pf-dinv-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Run a configuration on a given global domain and reassemble the
/// per-rank blocks into the global φ and µ fields as raw bit patterns,
/// indexed `[comp][z][y][x]`.
fn global_bits_on(
    global: [usize; 3],
    p: &pf_core::ModelParams,
    ks: &KernelSet,
    cfg: &DistConfig,
    steps: usize,
) -> (Vec<u64>, Vec<u64>) {
    let init_phi = move |x: i64, y: i64, z: i64| {
        let d = (((x as f64 - global[0] as f64 / 2.0).powi(2)
            + (y as f64 - global[1] as f64 / 2.0).powi(2)
            + (z as f64) * (z as f64))
            .sqrt()
            - 4.0)
            / 2.5;
        let s = 0.5 * (1.0 - d.tanh());
        vec![1.0 - s, s]
    };
    let init_mu = |x: i64, y: i64, _z: i64| vec![0.05 + 0.001 * ((x + y) % 5) as f64];
    let blocks = run_distributed(p, ks, cfg, steps, init_phi, init_mu, |sim| {
        (sim.origin, sim.phi().clone(), sim.mu().clone())
    });

    let cells = global[0] * global[1] * global[2];
    let mut phi = vec![0u64; p.phases * cells];
    let mut mu = vec![0u64; p.num_mu() * cells];
    for (origin, bphi, bmu) in blocks {
        let shape = bphi.shape();
        for z in 0..shape[2] {
            for y in 0..shape[1] {
                for x in 0..shape[0] {
                    let g = (x + origin[0] as usize)
                        + global[0]
                            * ((y + origin[1] as usize) + global[1] * (z + origin[2] as usize));
                    for a in 0..p.phases {
                        phi[a * cells + g] =
                            bphi.get(a, x as isize, y as isize, z as isize).to_bits();
                    }
                    for i in 0..p.num_mu() {
                        mu[i * cells + g] =
                            bmu.get(i, x as isize, y as isize, z as isize).to_bits();
                    }
                }
            }
        }
    }
    (phi, mu)
}

fn global_bits(
    p: &pf_core::ModelParams,
    ks: &KernelSet,
    cfg: &DistConfig,
    steps: usize,
) -> (Vec<u64>, Vec<u64>) {
    global_bits_on(GLOBAL, p, ks, cfg, steps)
}

fn cfg_on(global: [usize; 3], ranks: usize, overlap: bool) -> DistConfig {
    let mut c = DistConfig::new(global, ranks);
    c.phi_variant = Variant::Full;
    c.mu_variant = Variant::Split;
    c.comm.overlap = overlap;
    c
}

fn cfg(ranks: usize, overlap: bool) -> DistConfig {
    cfg_on(GLOBAL, ranks, overlap)
}

/// 1, 2, and 4 ranks × blocking/overlapped must all reassemble to the same
/// global fields, bit for bit.
#[test]
fn rank_count_and_schedule_leave_the_fields_bitwise_invariant() {
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let (ref_phi, ref_mu) = global_bits(&p, &ks, &cfg(1, false), STEPS);
    for ranks in [1usize, 2, 4] {
        for overlap in [false, true] {
            if ranks == 1 && !overlap {
                continue; // the reference itself
            }
            let (phi, mu) = global_bits(&p, &ks, &cfg(ranks, overlap), STEPS);
            assert_eq!(
                phi, ref_phi,
                "phi differs from the 1-rank blocking reference (ranks {ranks}, overlap {overlap})"
            );
            assert_eq!(
                mu, ref_mu,
                "mu differs from the 1-rank blocking reference (ranks {ranks}, overlap {overlap})"
            );
        }
    }
}

/// Past toy rank counts: 16 and 64 ranks, flat and hierarchical
/// (node × socket) decompositions, blocking and overlapped schedules —
/// every leg must still reassemble the 1-rank fields bit for bit. The
/// hierarchical legs split 4 nodes × ranks/4 sockets; their flat product
/// grid routes through exactly the same exchange machinery, so any
/// hierarchy-dependence in rank mapping, tag assignment, or batching
/// would surface here as a bitwise diff.
#[test]
fn high_rank_counts_and_hierarchical_decompositions_stay_bitwise() {
    let global = [16, 16, 1];
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let (ref_phi, ref_mu) = global_bits_on(global, &p, &ks, &cfg_on(global, 1, false), STEPS);
    for ranks in [16usize, 64] {
        for ranks_per_node in [None, Some(ranks / 4)] {
            for overlap in [false, true] {
                let mut c = cfg_on(global, ranks, overlap);
                c.ranks_per_node = ranks_per_node;
                let (phi, mu) = global_bits_on(global, &p, &ks, &c, STEPS);
                let leg =
                    format!("ranks {ranks}, ranks_per_node {ranks_per_node:?}, overlap {overlap}");
                assert_eq!(
                    phi, ref_phi,
                    "phi differs from the 1-rank blocking reference ({leg})"
                );
                assert_eq!(
                    mu, ref_mu,
                    "mu differs from the 1-rank blocking reference ({leg})"
                );
            }
        }
    }
}

/// Checkpoint under the vectorized interpreter, tear the world down,
/// resume a fresh world under the **native codegen engine**: still bitwise
/// the same trajectory as an uninterrupted run. Like the halo schedule,
/// the execution engine is not part of the persistent state — all engines
/// are bitwise identical, so a restart may switch engines freely.
#[test]
fn restart_may_switch_execution_engines_and_stay_on_the_bitwise_trajectory() {
    use pf_backend::ExecMode;
    if !pf_backend::native_available() {
        eprintln!(
            "SKIPPED restart_may_switch_execution_engines_and_stay_on_the_bitwise_trajectory: \
             rustc cannot produce loadable cdylibs in this sandbox"
        );
        return;
    }
    // Keep native artifacts out of any shared cache dir (flake guard for
    // parallel test processes).
    let cache = Scratch::new("natcache");
    std::env::set_var("PF_NATIVE_CACHE_DIR", &cache.0);

    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let (n, m) = (2usize, 2usize);
    let (want_phi, want_mu) = global_bits(&p, &ks, &cfg(2, false), n + m);

    let scratch = Scratch::new("engine-leg");
    // First leg: vectorized interpreter, final checkpoint after n steps.
    let mut first = cfg(2, false);
    first.exec_mode = Some(ExecMode::Vectorized);
    first.checkpoint = Some(CheckpointConfig::new(&scratch.0));
    let _ = global_bits(&p, &ks, &first, n);
    // Second leg: a fresh world resumes from the set and finishes the
    // remaining m steps through compiled native kernels.
    let mut second = cfg(2, false);
    second.exec_mode = Some(ExecMode::Native);
    second.checkpoint = Some(CheckpointConfig::new(&scratch.0).resume(true));
    let (phi, mu) = global_bits(&p, &ks, &second, n + m);
    std::env::remove_var("PF_NATIVE_CACHE_DIR");
    assert_eq!(
        phi, want_phi,
        "phi diverged after the engine-switch restart"
    );
    assert_eq!(mu, want_mu, "mu diverged after the engine-switch restart");
}

/// A warm tuning cache may only flip the execution engine at launch —
/// engines are bitwise identical — so tuned and untuned runs must produce
/// the same global fields bit for bit, including across a
/// checkpoint/restart whose second leg sees a *different* tuning-cache
/// state than the first.
#[test]
fn tuning_cache_state_never_perturbs_the_bitwise_trajectory() {
    use pf_backend::ExecMode;
    use pf_core::{family_fingerprint, BcKind, Family, TuneCache, TuneEntry, Variant as V};

    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let sock = pf_machine::skylake_8174();

    // Reference: consult an empty cache directory → static shape default.
    // (The PF_TUNE_CACHE_DIR mutations below are benign for concurrent
    // tests in this binary: the launch consult only flips engines, which
    // are bitwise identical, so every interleaving computes the same
    // fields.)
    let empty = Scratch::new("tune-empty");
    std::env::set_var("PF_TUNE_CACHE_DIR", &empty.0);
    let (n, m) = (2usize, 2usize);
    let (want_phi, want_mu) = global_bits(&p, &ks, &cfg(2, false), n + m);

    // Warm cache: pin the Serial engine for every rank's block shape (the
    // phi entry is the slower family, so its mode drives the step).
    let c = cfg(2, false);
    let periodic = [
        c.bc[0] == BcKind::Periodic,
        c.bc[1] == BcKind::Periodic,
        c.bc[2] == BcKind::Periodic,
    ];
    let dec = pf_grid::Decomposition::new(GLOBAL, 2, periodic);
    let warm = Scratch::new("tune-warm");
    let cache = TuneCache::at(&warm.0);
    let entry = |mode: ExecMode, mlups: f64| TuneEntry {
        variant: V::Split,
        mode,
        block: [24, 24, 8],
        loop_order: [2, 1, 0],
        strip_width: 8,
        measured_mlups: mlups,
        predicted_mlups: 1.0,
    };
    for rank in 0..2 {
        let shape = dec.block(rank).shape;
        for (family, e) in [
            (Family::Phi, entry(ExecMode::Serial, 0.5)),
            (Family::Mu, entry(ExecMode::Vectorized, 1.0)),
        ] {
            cache
                .store(
                    sock.fingerprint(),
                    family_fingerprint(&ks, family),
                    shape,
                    &e,
                )
                .expect("seed tuning entry");
        }
    }
    std::env::set_var("PF_TUNE_CACHE_DIR", &warm.0);
    let hits0 = counter("tune.cache.hit");
    let (phi, mu) = global_bits(&p, &ks, &cfg(2, false), n + m);
    if pf_trace::enabled() {
        assert!(
            counter("tune.cache.hit") > hits0,
            "the tuned run must actually consult the warm cache"
        );
    }
    assert_eq!(
        phi, want_phi,
        "tuned phi differs from the untuned reference"
    );
    assert_eq!(mu, want_mu, "tuned mu differs from the untuned reference");

    // Restart across cache states: first leg launches off the warm cache
    // (Serial pinned) and checkpoints; the second leg resumes against the
    // empty directory (shape default engine). The tuning cache is not part
    // of the persistent state, so the trajectory must not notice.
    let scratch = Scratch::new("tune-leg");
    let mut first = cfg(2, false);
    first.checkpoint = Some(CheckpointConfig::new(&scratch.0));
    let _ = global_bits(&p, &ks, &first, n);
    std::env::set_var("PF_TUNE_CACHE_DIR", &empty.0);
    let mut second = cfg(2, false);
    second.checkpoint = Some(CheckpointConfig::new(&scratch.0).resume(true));
    let (phi2, mu2) = global_bits(&p, &ks, &second, n + m);
    std::env::remove_var("PF_TUNE_CACHE_DIR");
    assert_eq!(
        phi2, want_phi,
        "phi diverged after restarting under a different tuning-cache state"
    );
    assert_eq!(
        mu2, want_mu,
        "mu diverged after restarting under a different tuning-cache state"
    );
}

fn counter(name: &str) -> u64 {
    pf_trace::snapshot()
        .counters
        .get(name)
        .map(|c| c.total)
        .unwrap_or(0)
}

/// Checkpoint mid-run under the blocking schedule, tear the world down,
/// resume a fresh world under the *overlapped* schedule: still bitwise the
/// same trajectory as the uninterrupted overlapped run. The schedule is
/// not part of the persistent state, so a restart may switch it freely.
#[test]
fn restart_may_switch_schedules_and_stay_on_the_bitwise_trajectory() {
    let p = mini();
    let ks = generate_kernels(&p, &GenOptions::default());
    let (n, m) = (2usize, 2usize);
    let (want_phi, want_mu) = global_bits(&p, &ks, &cfg(4, true), n + m);

    let scratch = Scratch::new("leg");
    // First leg: blocking halos, final checkpoint after n steps.
    let mut first = cfg(4, false);
    first.checkpoint = Some(CheckpointConfig::new(&scratch.0));
    let _ = global_bits(&p, &ks, &first, n);
    // Second leg: a fresh world resumes from the set and finishes the
    // remaining m steps with communication/computation overlap.
    let mut second = cfg(4, true);
    second.checkpoint = Some(CheckpointConfig::new(&scratch.0).resume(true));
    let (phi, mu) = global_bits(&p, &ks, &second, n + m);
    assert_eq!(phi, want_phi, "phi diverged after the restart");
    assert_eq!(mu, want_mu, "mu diverged after the restart");
}
