//! Physics regression: a 200-step spinodal-decomposition run whose
//! invariants and end state are pinned. Two layers of defence:
//!
//! - **Invariants** that must hold exactly (up to the simplex projection's
//!   own tolerance): Σ_α φ_α = 1 in every cell, φ_α ∈ [0, 1], and the
//!   chemical-potential "mass" Σ µ drifts by less than a pinned bound —
//!   the µ equation is a conservation law up to the antitrapping and
//!   source terms, so a large drift means broken discretization, not
//!   physics.
//! - A **golden snapshot** of subsampled field values committed to the
//!   repo (`tests/golden/physics_regression.txt`). Compared with a 1e-10
//!   absolute tolerance — tight enough to catch any real numerical change,
//!   loose enough to absorb libm variation across platforms. Regenerate
//!   with `PF_BLESS=1 cargo test --test physics_regression` after an
//!   *intentional* physics change, and say why in the commit.

use pf_core::{generate_kernels, BcKind, SimConfig, Simulation};
use pf_ir::GenOptions;
use std::fmt::Write as _;
use std::path::Path;

const SHAPE: [usize; 3] = [32, 32, 1];
const STEPS: usize = 200;
/// Subsample stride of the golden snapshot.
const STRIDE: usize = 4;
const GOLDEN_TOL: f64 = 1e-10;
/// Relative Σµ drift bound over the full run. The µ equation trades mass
/// with the moving interfaces through the b-coefficient source and the
/// antitrapping current, so the drift is not zero; it measures ~2.5e-2
/// for this setup. The bound pins that magnitude with 2× headroom — a
/// broken flux discretization blows far past it.
const MU_DRIFT_TOL: f64 = 5e-2;

fn golden_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/physics_regression.txt")
}

/// A symmetric two-phase mixture with a deterministic perturbation — the
/// classic spinodal setup: no seed crystal, the instability picks the
/// pattern.
fn spinodal_sim() -> Simulation {
    let mut p = pf_core::p1();
    p.phases = 2;
    p.components = 2;
    p.dim = 2;
    p.dt = 0.005;
    p.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    p.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    p.diffusivity = vec![1.0, 0.1];
    p.a_coeff = vec![vec![-0.5], vec![-0.5]];
    p.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    p.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    p.orientation = vec![0.0, 0.0];
    p.temperature.gradient = 0.0;
    p.fluctuation_amplitude = 0.0;

    let ks = generate_kernels(&p, &GenOptions::default());
    let mut cfg = SimConfig::new(SHAPE);
    cfg.bc = [BcKind::Periodic; 3];
    let mut sim = Simulation::new(p, ks, cfg);
    let tau = std::f64::consts::TAU;
    sim.init_phi(|x, y, _| {
        let (xf, yf) = (x as f64, y as f64);
        let ripple = 0.4 * (tau * xf / 8.0).sin() * (tau * yf / 8.0).sin();
        // Deterministic cell-keyed jitter so the pattern is not a pure mode.
        let jitter = 0.05 * ((((x * 37 + y * 101) % 17) as f64) / 17.0 - 0.5);
        let s = 0.5 + ripple + jitter;
        vec![1.0 - s, s]
    });
    sim.init_mu(|x, _, _| vec![0.1 + 0.02 * (tau * x as f64 / 16.0).cos()]);
    sim
}

fn snapshot(sim: &Simulation) -> Vec<(usize, usize, f64, f64)> {
    let mut rows = Vec::new();
    for y in (0..SHAPE[1]).step_by(STRIDE) {
        for x in (0..SHAPE[0]).step_by(STRIDE) {
            rows.push((
                x,
                y,
                sim.phi().get(1, x as isize, y as isize, 0),
                sim.mu().get(0, x as isize, y as isize, 0),
            ));
        }
    }
    rows
}

fn render(rows: &[(usize, usize, f64, f64)]) -> String {
    let mut out = String::from("# x y phi1 mu — spinodal decomposition, 32x32, 200 steps\n");
    for (x, y, phi, mu) in rows {
        writeln!(out, "{x} {y} {phi:.17e} {mu:.17e}").unwrap();
    }
    out
}

fn parse(text: &str) -> Vec<(usize, usize, f64, f64)> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            assert_eq!(f.len(), 4, "malformed golden line: {l}");
            (
                f[0].parse().unwrap(),
                f[1].parse().unwrap(),
                f[2].parse().unwrap(),
                f[3].parse().unwrap(),
            )
        })
        .collect()
}

#[test]
fn spinodal_run_holds_invariants_and_matches_the_golden_snapshot() {
    let mut sim = spinodal_sim();
    let mu_before = sim.mu().interior_sum(0);
    sim.run_steps(STEPS);

    // Invariant 1: the Gibbs simplex, in every cell.
    let phi = sim.phi();
    for y in 0..SHAPE[1] as isize {
        for x in 0..SHAPE[0] as isize {
            let a = phi.get(0, x, y, 0);
            let b = phi.get(1, x, y, 0);
            assert!(
                (0.0..=1.0).contains(&a),
                "phi0 out of [0,1] at ({x},{y}): {a}"
            );
            assert!(
                (0.0..=1.0).contains(&b),
                "phi1 out of [0,1] at ({x},{y}): {b}"
            );
            assert!(
                (a + b - 1.0).abs() < 1e-12,
                "sum_alpha phi_alpha != 1 at ({x},{y}): {}",
                a + b
            );
        }
    }

    // Invariant 2: µ mass drift stays below the pinned bound.
    let mu_after = sim.mu().interior_sum(0);
    let drift = (mu_after - mu_before).abs() / mu_before.abs().max(1e-30);
    assert!(
        drift < MU_DRIFT_TOL,
        "relative mu mass drift {drift:.3e} exceeds {MU_DRIFT_TOL:.0e} \
         ({mu_before} -> {mu_after})"
    );

    // And something actually happened: the mixture demixed.
    let spread = {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for y in 0..SHAPE[1] as isize {
            for x in 0..SHAPE[0] as isize {
                let v = phi.get(1, x, y, 0);
                min = min.min(v);
                max = max.max(v);
            }
        }
        max - min
    };
    assert!(spread > 0.5, "no decomposition happened: spread {spread}");

    // Golden snapshot.
    let rows = snapshot(&sim);
    let path = golden_path();
    if std::env::var_os("PF_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render(&rows)).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden =
        parse(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("read golden {}: {e} (PF_BLESS=1 to create)", path.display())
        }));
    assert_eq!(golden.len(), rows.len(), "golden snapshot shape changed");
    for ((gx, gy, gphi, gmu), (x, y, phi, mu)) in golden.iter().zip(&rows) {
        assert_eq!((gx, gy), (x, y), "golden sample grid changed");
        assert!(
            (gphi - phi).abs() <= GOLDEN_TOL,
            "phi1 at ({x},{y}) drifted from golden: {phi:.17e} vs {gphi:.17e}"
        );
        assert!(
            (gmu - mu).abs() <= GOLDEN_TOL,
            "mu at ({x},{y}) drifted from golden: {mu:.17e} vs {gmu:.17e}"
        );
    }
}
