//! Cross-engine equivalence: the scalar-serial, tile-parallel and
//! strip-mined vectorized executors must produce **bitwise identical**
//! states — the vectorized engine reorders arithmetic only across lanes,
//! never within a cell's dependency chain, and the Philox generator is
//! stateless per cell, so batching cannot change a single bit.
//!
//! Covered here on the full P1 physics (the pf-backend unit tests cover
//! synthetic tapes):
//! - remainder strips (`x % STRIP_WIDTH != 0`, and x < STRIP_WIDTH so the
//!   strip loop never runs at all),
//! - both LICM loop orders ([2,1,0] and [1,2,0]),
//! - fluctuating (Philox `Rand`) kernels,
//! - GPU-rescheduled non-monotone tapes, which additionally must raise the
//!   `exec.licm_disabled` observability counter and the pf-analyze
//!   `schedule.licm-lost` warning.

use pf_backend::{ExecMode, STRIP_WIDTH};
use pf_core::{generate_kernels, p1, BcKind, KernelSet, ModelParams, SimConfig, Simulation};
use pf_ir::{apply_loop_order, insert_fences, rematerialize, schedule_min_live, GenOptions};

fn p1_2d() -> ModelParams {
    // Full P1 physics (4 phases, 3 components, anti-trapping) on a 2D
    // slice so debug-mode tests stay fast.
    let mut p = p1();
    p.dim = 2;
    p.dt = 0.005;
    p.temperature.gradient = 0.0;
    p
}

/// Build a simulation with a non-trivial initial state and run `steps`.
fn run(
    p: &ModelParams,
    ks: &KernelSet,
    shape: [usize; 3],
    mode: ExecMode,
    steps: usize,
) -> Simulation {
    let mut cfg = SimConfig::new(shape);
    cfg.bc = [BcKind::Periodic; 3];
    cfg.mode = mode;
    let mut sim = Simulation::new(p.clone(), ks.clone(), cfg);
    sim.init_phi(|x, y, _| {
        let mut v = vec![0.0; 4];
        let cx = shape[0] as f64 / 2.0;
        let cy = shape[1] as f64 / 2.0;
        let d = (((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt() - 3.0) / 2.0;
        let s = 0.5 * (1.0 - d.tanh());
        v[0] = 1.0 - s;
        v[1 + (x / 3) % 3] = s;
        v
    });
    sim.init_mu(|x, _, _| vec![0.1 - 0.001 * x as f64, -0.05]);
    for _ in 0..steps {
        sim.step();
    }
    sim
}

/// Assert three engines end in bitwise-identical states.
fn assert_engines_agree(p: &ModelParams, ks: &KernelSet, shape: [usize; 3], steps: usize) {
    let serial = run(p, ks, shape, ExecMode::Serial, steps);
    for mode in [ExecMode::Parallel, ExecMode::Vectorized] {
        let other = run(p, ks, shape, mode, steps);
        assert_eq!(
            serial.phi().max_abs_diff(other.phi()),
            0.0,
            "phi diverged from Serial under {mode:?} on shape {shape:?}"
        );
        assert_eq!(
            serial.mu().max_abs_diff(other.mu()),
            0.0,
            "mu diverged from Serial under {mode:?} on shape {shape:?}"
        );
    }
}

#[test]
fn engines_agree_with_remainder_strips() {
    let p = p1_2d();
    let ks = generate_kernels(&p, &GenOptions::default());
    // 20 = 2 full strips + 4 remainder cells per row.
    assert_engines_agree(&p, &ks, [20, 12, 1], 2);
    // 13 cells: one strip + 5 tear-down cells.
    assert_engines_agree(&p, &ks, [13, 9, 1], 2);
}

#[test]
fn engines_agree_when_every_row_is_remainder() {
    // x < STRIP_WIDTH: the strip loop body never executes, everything goes
    // through the scalar tear-down path.
    let p = p1_2d();
    let ks = generate_kernels(&p, &GenOptions::default());
    let x = STRIP_WIDTH / 2;
    assert_engines_agree(&p, &ks, [x, 10, 1], 2);
}

#[test]
fn engines_agree_under_both_licm_loop_orders() {
    let p = p1_2d();
    for order in [[2, 1, 0], [1, 2, 0]] {
        let mut ks = generate_kernels(&p, &GenOptions::default());
        apply_loop_order(&mut ks.phi_full, order);
        apply_loop_order(&mut ks.mu_full, order);
        assert_eq!(ks.phi_full.loop_order, order);
        assert_engines_agree(&p, &ks, [20, 10, 1], 2);
    }
}

#[test]
fn engines_agree_on_fluctuating_kernels() {
    // Philox noise in the φ update: lane-batched Rand evaluation must
    // reproduce the serial stream exactly (the generator is keyed on the
    // global cell coordinate, not on evaluation order).
    let mut p = p1_2d();
    p.fluctuation_amplitude = 1e-3;
    let ks = generate_kernels(&p, &GenOptions::default());
    assert!(
        ks.phi_full
            .instrs
            .iter()
            .any(|op| matches!(op, pf_ir::TapeOp::Rand(_))),
        "fluctuation amplitude must inject Rand ops"
    );
    assert_engines_agree(&p, &ks, [20, 10, 1], 2);
}

#[test]
fn gpu_rescheduled_tapes_agree_and_surface_licm_loss() {
    // The GPU register-pressure chain (rematerialize → min-live reschedule
    // → fences) legitimately destroys level monotonicity. CPU engines must
    // still execute such tapes correctly — just without hoisting — and the
    // loss must be observable, not silent.
    let p = p1_2d();
    let mut ks = generate_kernels(&p, &GenOptions::default());
    let mut t = insert_fences(&schedule_min_live(&rematerialize(&ks.phi_full, 2), 20), 48);
    t.name = "phi_full_gpu_eq".into();
    assert!(
        t.levels.windows(2).any(|w| w[1] < w[0]),
        "reschedule should produce a non-monotone level sequence"
    );
    // pf-analyze flags it as the schedule.licm-lost warning (not an error).
    let diags = pf_analyze::check_levels(&t);
    assert!(
        diags.iter().any(|d| d.kind.code() == "schedule.licm-lost"),
        "{diags:?}"
    );
    ks.phi_full = t;

    let hits = pf_trace::counter("exec.licm_disabled.phi_full_gpu_eq");
    let before = hits.value();
    assert_engines_agree(&p, &ks, [20, 10, 1], 2);
    assert!(
        hits.value() > before,
        "every launch of a non-monotone tape must bump exec.licm_disabled"
    );
}
