//! Integration tests for the pf-analyze verification layer: every tape the
//! real lowering/scheduling pipeline produces must pass the full static
//! suite, each seeded violation class must come back as a *typed*
//! diagnostic (never a panic from the passes themselves), and the
//! on-by-default pipeline hook must abort generation of genuinely broken
//! tapes with the rendered findings.

use pf_analyze::{
    analyze, check_halo, check_hazards, check_ssa, render, AnalyzeOptions, DiagKind, FieldAlloc,
};
use pf_ir::{
    generate, insert_fences, rematerialize, run_verifier, schedule_min_live, ApproxOptions,
    GenOptions, Tape, TapeOp, VReg, VerifyStage, CF,
};
use pf_stencil::{Assignment, StencilKernel};
use pf_symbolic::{Access, Expr, Field};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Input field random expressions load from (registration is global —
/// reuse one handle).
fn src_field() -> Field {
    static F: OnceLock<Field> = OnceLock::new();
    *F.get_or_init(|| Field::new("verif_src", 3, 3))
}

/// Separate output field so generated kernels are honestly Jacobi:
/// loads and stores touch disjoint fields, as the real φ/µ sweeps do.
fn out_field() -> Field {
    static F: OnceLock<Field> = OnceLock::new();
    *F.get_or_init(|| Field::new("verif_out", 1, 3))
}

/// Random, numerically tame expressions over compact-stencil accesses
/// (offsets within ±1 — one ghost layer's reach, like every kernel the
/// discretization emits).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (1i32..40).prop_map(|v| Expr::num(v as f64 / 8.0)),
        Just(Expr::sym("verif_p")),
        (0usize..3, -1i32..=1, -1i32..=1, -1i32..=1)
            .prop_map(|(c, ox, oy, oz)| Expr::access(Access::at(src_field(), c, [ox, oy, oz]))),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a / (Expr::powi(b, 2) + 1.0)),
            inner
                .clone()
                .prop_map(|a| Expr::sqrt(Expr::powi(a, 2) + 0.5)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::max(a, b)),
            (2i64..4, inner.clone()).prop_map(|(n, a)| Expr::powi(a, n)),
            inner.clone().prop_map(Expr::abs),
        ]
    })
}

fn lower(name: &str, e: &Expr) -> Tape {
    let k = StencilKernel::new(
        name,
        vec![Assignment::store(
            Access::at(out_field(), 0, [0, 0, 0]),
            e.clone(),
        )],
    );
    generate(&k, &GenOptions::default())
}

/// All passes on, proving halo fit against one ghost layer everywhere —
/// the width `pf_grid::GHOST_LAYERS` actually allocates.
fn full_suite_opts(tape: &Tape) -> AnalyzeOptions {
    AnalyzeOptions {
        allocs: Some(vec![FieldAlloc::ghosted(1); tape.fields.len()]),
        hazards: true,
        seeded_rng: true,
        intervals: true,
    }
}

/// Hand-built tape for seeding violations the builder would reject.
fn raw_tape(instrs: Vec<TapeOp>) -> Tape {
    let n = instrs.len();
    Tape {
        name: "neg_kernel".into(),
        fields: vec![src_field(), out_field()],
        params: Vec::new(),
        instrs,
        iter_extent: [0; 3],
        levels: vec![3; n],
        loop_order: [2, 1, 0],
        approx: ApproxOptions::default(),
        field_ranges: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite (b): anything `generate` lowers from a random expression
    /// tree passes the entire suite — SSA, halo fit within one ghost
    /// layer, hazards, value lints — with zero diagnostics of any
    /// severity.
    #[test]
    fn lowered_random_expressions_pass_the_full_suite(e in arb_expr()) {
        let tape = lower("verif_prop", &e);
        let a = analyze(&tape, &full_suite_opts(&tape));
        prop_assert!(
            a.diagnostics.is_empty(),
            "lowered tape not clean:\n{}",
            render(&a.diagnostics)
        );
    }

    /// The GPU-style scheduling chain (rematerialize → register-pressure
    /// reschedule → fence insertion) preserves suite-cleanliness. Each
    /// transform also re-runs the pipeline verifier internally, so this
    /// doubles as an end-to-end exercise of the hook on real tapes.
    /// Reschedules legitimately break level monotonicity, so the
    /// `schedule.licm-lost` warning may fire — anything else is a failure.
    #[test]
    fn scheduled_chains_stay_clean(e in arb_expr()) {
        let base = lower("verif_sched", &e);
        let chain = insert_fences(&schedule_min_live(&rematerialize(&base, 2), 20), 48);
        let a = analyze(&chain, &full_suite_opts(&chain));
        let unexpected: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.kind.code() != "schedule.licm-lost")
            .cloned()
            .collect();
        prop_assert!(
            unexpected.is_empty(),
            "scheduled tape not clean:\n{}",
            render(&unexpected)
        );
        prop_assert!(a.is_clean(), "licm-lost must stay warning severity");
    }
}

// --- Satellite (c): seeded violations → typed diagnostics, no panics ----

#[test]
fn use_before_def_is_a_typed_diagnostic() {
    let t = raw_tape(vec![
        TapeOp::Add(VReg(0), VReg(7)), // r7 never defined
        TapeOp::Store {
            field: 1,
            comp: 0,
            off: [0; 3],
            val: VReg(0),
        },
    ]);
    let d = check_ssa(&t);
    assert!(
        d.iter()
            .any(|d| matches!(d.kind, DiagKind::UseBeforeDef { reg: 7 })
                && d.instr == Some(0)
                && d.is_error()),
        "{}",
        render(&d)
    );
    // Through the front door the deep passes are skipped and the report
    // stays at the root cause.
    let a = analyze(&t, &full_suite_opts(&t));
    assert!(!a.is_clean());
    assert!(a
        .diagnostics
        .iter()
        .all(|d| d.kind.code().starts_with("ssa.")));
}

#[test]
fn out_of_halo_load_is_a_typed_diagnostic() {
    let t = raw_tape(vec![
        TapeOp::Load {
            field: 0,
            comp: 0,
            off: [2, 0, 0], // two cells past the interior, one layer allocated
        },
        TapeOp::Store {
            field: 1,
            comp: 0,
            off: [0; 3],
            val: VReg(0),
        },
    ]);
    let d = check_halo(&t, &[FieldAlloc::ghosted(1), FieldAlloc::ghosted(1)]);
    assert!(
        d.iter().any(|d| matches!(
            d.kind,
            DiagKind::HaloOverflow {
                dim: 0,
                reach: 2,
                avail: 1,
                is_store: false,
                ..
            }
        ) && d.instr == Some(0)),
        "{}",
        render(&d)
    );
    let err = pf_analyze::verify(&t, &full_suite_opts(&t)).unwrap_err();
    assert!(err.to_string().contains("halo.overflow"), "{err}");
}

#[test]
fn intra_sweep_write_read_hazard_is_a_typed_diagnostic() {
    // Cells store (0,0,0) of src comp 0 while reading their neighbour's
    // copy — a race under any parallel execution of the sweep.
    let t = raw_tape(vec![
        TapeOp::Load {
            field: 0,
            comp: 0,
            off: [-1, 0, 0],
        },
        TapeOp::Store {
            field: 0,
            comp: 0,
            off: [0; 3],
            val: VReg(0),
        },
    ]);
    let d = check_hazards(&t);
    assert!(
        d.iter().any(|d| matches!(
            d.kind,
            DiagKind::IntraSweepHazard {
                comp: 0,
                store_off: [0, 0, 0],
                load_off: [-1, 0, 0],
                ..
            }
        ) && d.is_error()),
        "{}",
        render(&d)
    );
}

/// The hook pf-core installs aborts generation of a tape whose denominator
/// constant-folds to zero — a violation the structural `Tape::validate`
/// cannot see, so the panic message carries pf-analyze's rendered code.
#[test]
fn pipeline_hook_rejects_const_division_by_zero() {
    pf_analyze::install_pipeline_verifier();
    let t = raw_tape(vec![
        TapeOp::Const(CF(1.0)),
        TapeOp::Const(CF(0.0)),
        TapeOp::Div(VReg(0), VReg(1)),
        TapeOp::Store {
            field: 1,
            comp: 0,
            off: [0; 3],
            val: VReg(2),
        },
    ]);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_verifier(&t, VerifyStage::PostLowering);
    }));
    let msg = match caught {
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".into()),
        Ok(()) => panic!("verifier accepted a div-by-zero tape"),
    };
    assert!(msg.contains("value.div-by-zero"), "{msg}");
    assert!(msg.contains("neg_kernel"), "{msg}");
}

// --- Whole-model verification ------------------------------------------

/// The tentpole end-to-end claim: every kernel of both paper
/// configurations passes the full suite (this also runs implicitly inside
/// `generate_kernels`, which would panic otherwise — here we inspect the
/// report itself).
#[test]
fn paper_models_verify_clean_with_expected_halo_widths() {
    for p in [pf_core::p1(), pf_core::p2()] {
        let ks = pf_core::generate_kernels(&p, &GenOptions::default());
        let suite = pf_core::verify_kernel_set(&p, &ks);
        assert!(
            suite.is_clean(),
            "model {}:\n{}",
            p.name,
            suite.errors_rendered().unwrap_or_default()
        );
        // Four sweeps minimum: φ/µ full plus the split variants.
        assert!(
            suite.kernels_verified() >= 4,
            "{}",
            suite.kernels_verified()
        );
        // The compact discretization must fit the grid's single exchanged
        // ghost layer — this is the invariant the distributed driver
        // asserts before every halo exchange.
        assert!(pf_core::required_halo_width(&ks) <= pf_grid::GHOST_LAYERS);
        // φ is loaded with a one-cell reach somewhere in the set.
        let widths = suite.halo_widths();
        assert!(
            widths.values().any(|&w| w == 1),
            "no field needs a halo? {widths:?}"
        );
    }
}

/// Verification is on by default (PF_VERIFY unset in the test
/// environment).
#[test]
fn verification_defaults_to_enabled() {
    assert!(pf_ir::verify_enabled());
}
