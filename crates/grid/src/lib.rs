//! `pf-grid` — the distributed-memory runtime (the waLBerla substitute,
//! §4 of the paper).
//!
//! Block-structured domain partitioning with static load balancing,
//! a thread-backed message-passing layer (tagged async sends, tag-matched
//! receives, barrier, all-reduce) standing in for MPI, and the phased
//! ghost-layer exchange whose six face messages also fill the edge/corner
//! ghosts the D3C19 µ-kernel stencil needs. Communication options mirror
//! Table 2 (overlap, GPUDirect-style device packing); their *timing* impact
//! is priced by `pf-cluster`, their functional behaviour is identical.

#![forbid(unsafe_code)]

pub mod comm;
pub mod decompose;
pub mod exchange;
pub mod region;

pub use comm::{
    run_ranks, run_ranks_with_faults, with_silenced_dead_rank_panics, Comm, CommStats, FaultPlan,
    Kill, DEAD_RANK_MARKER,
};
pub use decompose::{BlockInfo, Decomposition, Hierarchy, GHOST_LAYERS};
pub use exchange::{
    begin_exchange, begin_exchange_batched, exchange_halo, exchange_halo_batched, exchange_shape,
    finish_exchange, finish_exchange_batched, first_deferred_dim, halo_bytes, pack_face,
    unpack_face, BatchHandle, CommOptions, DimPhase, HaloHandle,
};
pub use region::{split_frontier, IterRegion};
