//! Message passing between ranks — the MPI substitute.
//!
//! Each rank is a thread; messages travel over crossbeam channels. The API
//! mirrors the subset of MPI the paper's runtime uses: tagged non-blocking
//! sends, tag-matched receives, barrier, and all-reduce. Communication
//! statistics (messages, bytes) are recorded per rank, because the cluster
//! simulator consumes them to model network time at scale.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One tagged message.
struct Msg {
    from: usize,
    tag: u64,
    data: Vec<f64>,
}

/// Per-rank communication statistics.
#[derive(Default, Debug)]
pub struct CommStats {
    pub messages_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
}

/// A rank's endpoint.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    /// Out-of-order receive buffer for tag matching.
    pending: HashMap<(usize, u64), Vec<Vec<f64>>>,
    pub stats: Arc<CommStats>,
}

impl Comm {
    /// Create all endpoints of a `size`-rank world.
    pub fn world(size: usize) -> Vec<Comm> {
        let channels: Vec<(Sender<Msg>, Receiver<Msg>)> =
            (0..size).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Msg>> = channels.iter().map(|(s, _)| s.clone()).collect();
        channels
            .into_iter()
            .enumerate()
            .map(|(rank, (_, receiver))| Comm {
                rank,
                size,
                senders: senders.clone(),
                receiver,
                pending: HashMap::new(),
                stats: Arc::new(CommStats::default()),
            })
            .collect()
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Non-blocking tagged send (the `MPI_Isend` analogue — channel sends
    /// never block).
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        self.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add((data.len() * 8) as u64, Ordering::Relaxed);
        self.senders[to]
            .send(Msg {
                from: self.rank,
                tag,
                data,
            })
            .expect("receiver alive for the duration of the run");
    }

    /// Blocking tag-matched receive.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        if let Some(q) = self.pending.get_mut(&(from, tag)) {
            if !q.is_empty() {
                return q.remove(0);
            }
        }
        loop {
            let m = self
                .receiver
                .recv()
                .expect("senders alive for the duration of the run");
            if m.from == from && m.tag == tag {
                return m.data;
            }
            self.pending.entry((m.from, m.tag)).or_default().push(m.data);
        }
    }

    /// Dissemination barrier.
    pub fn barrier(&mut self, epoch: u64) {
        let tag = u64::MAX - epoch;
        let mut round = 1usize;
        while round < self.size {
            let to = (self.rank + round) % self.size;
            let from = (self.rank + self.size - round) % self.size;
            self.send(to, tag.wrapping_sub(round as u64), Vec::new());
            let _ = self.recv(from, tag.wrapping_sub(round as u64));
            round *= 2;
        }
    }

    /// All-reduce a vector of doubles with a binary op (sum/max/min).
    pub fn allreduce(&mut self, epoch: u64, mut data: Vec<f64>, op: fn(f64, f64) -> f64) -> Vec<f64> {
        // Gather to rank 0, reduce, broadcast — O(P) but simple and exact.
        let tag_up = 0xA11D_0000u64 ^ (epoch << 8);
        let tag_down = 0xA11D_0001u64 ^ (epoch << 8);
        if self.rank == 0 {
            for r in 1..self.size {
                let other = self.recv(r, tag_up);
                assert_eq!(other.len(), data.len());
                for (a, b) in data.iter_mut().zip(other) {
                    *a = op(*a, b);
                }
            }
            for r in 1..self.size {
                self.send(r, tag_down, data.clone());
            }
            data
        } else {
            self.send(0, tag_up, data);
            self.recv(0, tag_down)
        }
    }
}

/// Run `f` on `size` rank threads and join (the `mpirun` analogue).
/// Panics in any rank propagate.
pub fn run_ranks<F>(size: usize, f: F)
where
    F: Fn(Comm) + Sync,
{
    let world = Comm::world(size);
    std::thread::scope(|s| {
        let f = &f;
        for comm in world {
            s.spawn(move || f(comm));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        run_ranks(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0, 2.0, 3.0]);
                let back = c.recv(1, 8);
                assert_eq!(back, vec![6.0]);
            } else {
                let v = c.recv(0, 7);
                c.send(0, 8, vec![v.iter().sum()]);
            }
        });
    }

    #[test]
    fn tag_matching_reorders() {
        run_ranks(2, |mut c| {
            if c.rank() == 0 {
                // Send tags in one order …
                c.send(1, 1, vec![1.0]);
                c.send(1, 2, vec![2.0]);
            } else {
                // … receive them in the other.
                let b = c.recv(0, 2);
                let a = c.recv(0, 1);
                assert_eq!((a[0], b[0]), (1.0, 2.0));
            }
        });
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        run_ranks(4, |mut c| {
            let mine = vec![c.rank() as f64, 1.0];
            let total = c.allreduce(0, mine, |a, b| a + b);
            assert_eq!(total, vec![6.0, 4.0]);
        });
    }

    #[test]
    fn allreduce_max() {
        run_ranks(3, |mut c| {
            let m = c.allreduce(1, vec![c.rank() as f64], f64::max);
            assert_eq!(m, vec![2.0]);
        });
    }

    #[test]
    fn barrier_completes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BEFORE: AtomicUsize = AtomicUsize::new(0);
        run_ranks(4, |mut c| {
            BEFORE.fetch_add(1, Ordering::SeqCst);
            c.barrier(0);
            assert_eq!(BEFORE.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn stats_count_bytes() {
        run_ranks(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![0.0; 100]);
                assert_eq!(c.stats.bytes_sent.load(Ordering::Relaxed), 800);
            } else {
                let _ = c.recv(0, 3);
            }
        });
    }
}
