//! Message passing between ranks — the MPI substitute.
//!
//! Each rank is a thread; messages travel over `std::sync::mpsc` channels.
//! The API mirrors the subset of MPI the paper's runtime uses: tagged
//! non-blocking sends, tag-matched receives, barrier, and all-reduce.
//! Communication statistics (messages, bytes) are recorded per rank, because
//! the cluster simulator consumes them to model network time at scale.
//!
//! On top of the raw channels sits a small reliability layer, which exists
//! so the fault-injection harness ([`FaultPlan`]) has something real to
//! test against:
//!
//! * every payload message carries a per-sender sequence number; receivers
//!   deduplicate on `(from, seq)`, so duplicated deliveries are harmless;
//! * senders keep recently sent messages in a bounded outbox keyed by
//!   `(to, tag)` — tags are unique per run (they embed the step epoch), so
//!   the key is unambiguous;
//! * a receiver that waits too long for a tag sends a retransmit request to
//!   the expected sender; the sender services such requests from its outbox
//!   whenever it is itself blocked in `recv`. Retransmitted copies bypass
//!   fault injection, which guarantees progress under any drop rate < 1;
//! * if the expected sender's endpoint is gone (its `Comm` was dropped —
//!   the simulated rank death), sends to it fail immediately and the
//!   survivor panics with [`DEAD_RANK_MARKER`] in the message. The
//!   distributed driver catches that unwind and restarts the cohort from
//!   the last complete checkpoint.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Once};
use std::time::Duration;

/// Panic-message marker for "a peer rank is unreachable". The resilient
/// distributed driver looks for this to distinguish simulated rank death
/// from genuine bugs.
pub const DEAD_RANK_MARKER: &str = "pf-grid: peer rank presumed dead";

/// How long one tag-matched receive waits before requesting a retransmit.
const RETRY_TIMEOUT: Duration = Duration::from_millis(10);
/// Receive attempts before declaring the peer dead (total ≈ 3 s at one
/// rank per host core). See [`recv_attempt_limit`].
const MAX_RECV_ATTEMPTS: u32 = 300;
/// Quiet windows granted after a probe push found the peer's endpoint
/// gone. A *cleanly finished* peer pushed everything we are owed before
/// exiting (channel pushes are synchronous), so anything we will ever get
/// from it is already local and a handful of drain passes finds it; only
/// a genuinely dead peer leaves the queue dry past this grace. Kept short
/// deliberately — it bounds how fast a kill cascades across the world,
/// one neighbour hop per grace period.
const GRACE_RECV_ATTEMPTS: u32 = 25;

/// Quiet receive windows a rank tolerates before declaring a peer dead.
///
/// Worlds larger than the host's core count time-share their rank
/// threads, so each rank gets proportionally fewer scheduling quanta per
/// wall-clock second — at 128 simulated ranks on a single core, a healthy
/// peer can legitimately stay silent for far longer than the 3 s budget
/// that is right for an unoversubscribed world. The budget therefore
/// scales with the oversubscription factor `ceil(size / host_threads)`.
/// This does NOT slow down detection of genuinely dead ranks: a dead
/// rank's channel endpoint closes when its thread unwinds, and the next
/// `push` to it fails immediately, independent of this budget.
fn recv_attempt_limit(size: usize) -> u32 {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let oversub = size.div_ceil(threads).clamp(1, 4096) as u32;
    MAX_RECV_ATTEMPTS.saturating_mul(oversub)
}
/// Bounded retransmit-outbox size per rank (entries, not bytes).
const OUTBOX_CAP: usize = 1024;

/// One tagged message.
struct Msg {
    from: usize,
    tag: u64,
    /// Per-sender sequence number (payloads only) — the dedup key.
    seq: u64,
    /// `true`: this is a retransmit *request* for `tag`, not a payload.
    ctrl: bool,
    data: Vec<f64>,
}

/// What the fault injector decides to do with one send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultAction {
    Deliver,
    Drop,
    Duplicate,
    Delay,
}

/// Where in the run a rank is killed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Kill {
    pub rank: usize,
    pub step: u64,
}

/// Deterministic, seeded fault-injection plan for a world.
///
/// Message faults are decided by hashing `(seed, from, to, tag)` — not by
/// drawing from a stream — so the outcome is identical regardless of thread
/// scheduling, and identical again on a re-run after recovery. Probabilities
/// are independent: a message rolls against drop, then duplicate, then
/// delay. Retransmitted copies and control traffic are never faulted.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub seed: u64,
    pub drop_prob: f64,
    pub dup_prob: f64,
    pub delay_prob: f64,
    /// Planned rank deaths, possibly several (distinct ranks at distinct
    /// steps). Kills at the earliest armed step fire first; the resilient
    /// driver disarms them one wave at a time as it restarts.
    pub kills: Vec<Kill>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    pub fn dup_prob(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    pub fn delay_prob(mut self, p: f64) -> Self {
        self.delay_prob = p;
        self
    }

    /// Plan a rank death. May be called repeatedly to schedule several
    /// kills (each at its own step); every planned death costs one restart
    /// of the resilient driver, which allows up to three.
    pub fn kill_rank_at_step(mut self, rank: usize, step: u64) -> Self {
        self.kills.push(Kill { rank, step });
        self
    }

    /// The same plan with the earliest armed kill wave removed — used when
    /// restarting a cohort after that death already happened. Later kills
    /// stay armed, so a multi-kill plan replays its deaths one restart at
    /// a time (execution is deterministic, so the earliest armed kill is
    /// always the one that just fired).
    pub fn disarmed(&self) -> Self {
        let mut p = self.clone();
        if let Some(first) = p.kills.iter().map(|k| k.step).min() {
            p.kills.retain(|k| k.step != first);
        }
        p
    }

    /// Should `rank` die before executing `step`?
    pub fn should_kill(&self, rank: usize, step: u64) -> bool {
        self.kills.iter().any(|k| k.rank == rank && k.step == step)
    }

    fn roll(&self, from: usize, to: usize, tag: u64) -> FaultAction {
        if self.drop_prob <= 0.0 && self.dup_prob <= 0.0 && self.delay_prob <= 0.0 {
            return FaultAction::Deliver;
        }
        let mut h = self.seed ^ 0x6A09_E667_F3BC_C908;
        for word in [from as u64, to as u64, tag] {
            h ^= word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
        }
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.drop_prob {
            FaultAction::Drop
        } else if u < self.drop_prob + self.dup_prob {
            FaultAction::Duplicate
        } else if u < self.drop_prob + self.dup_prob + self.delay_prob {
            FaultAction::Delay
        } else {
            FaultAction::Deliver
        }
    }
}

/// Per-rank communication statistics.
#[derive(Default, Debug)]
pub struct CommStats {
    pub messages_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
    /// Messages the fault injector dropped, duplicated, or delayed.
    pub faults_injected: AtomicU64,
    /// Retransmissions served from the outbox.
    pub retransmits: AtomicU64,
}

/// Rank-tagged pf-trace handles, interned once per endpoint so the
/// per-message path is a single atomic add (or a no-op branch when
/// tracing is disabled).
struct TraceProbes {
    msgs_sent: pf_trace::Counter,
    bytes_sent: pf_trace::Counter,
    msgs_recv: pf_trace::Counter,
    /// Nanoseconds spent blocked inside `recv` — the halo-exchange
    /// latency as seen by this rank.
    recv_wait_ns: pf_trace::Counter,
    retransmits: pf_trace::Counter,
    dedup_dropped: pf_trace::Counter,
    faults_injected: pf_trace::Counter,
    /// Coalesced messages actually sent by the batched halo exchange.
    batch_messages: pf_trace::Counter,
    /// Payload bytes carried by coalesced messages.
    batch_bytes: pf_trace::Counter,
    /// Messages the coalescing avoided (fields folded into an existing
    /// message instead of travelling alone).
    batch_saved: pf_trace::Counter,
}

impl TraceProbes {
    fn for_rank(rank: usize) -> TraceProbes {
        TraceProbes {
            msgs_sent: pf_trace::counter_at("comm.msgs_sent", rank),
            bytes_sent: pf_trace::counter_at("comm.bytes_sent", rank),
            msgs_recv: pf_trace::counter_at("comm.msgs_recv", rank),
            recv_wait_ns: pf_trace::counter_at("comm.recv_wait_ns", rank),
            retransmits: pf_trace::counter_at("comm.retransmits", rank),
            dedup_dropped: pf_trace::counter_at("comm.dedup_dropped", rank),
            faults_injected: pf_trace::counter_at("comm.faults_injected", rank),
            batch_messages: pf_trace::counter_at("comm.batch.messages", rank),
            batch_bytes: pf_trace::counter_at("comm.batch.bytes", rank),
            batch_saved: pf_trace::counter_at("comm.batch.saved_messages", rank),
        }
    }
}

/// Accumulates the time from construction to drop into a counter (used to
/// attribute blocked-receive time across every exit path of `recv`). Owns
/// a cloned handle so no borrow of the endpoint is held across the loop.
struct WaitTimer {
    counter: pf_trace::Counter,
    start: Option<std::time::Instant>,
}

impl WaitTimer {
    fn start(counter: &pf_trace::Counter) -> WaitTimer {
        WaitTimer {
            counter: counter.clone(),
            start: pf_trace::enabled().then(std::time::Instant::now),
        }
    }
}

impl Drop for WaitTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.counter
                .incr(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// A rank's endpoint.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    /// Out-of-order receive buffer for tag matching.
    pending: HashMap<(usize, u64), Vec<Vec<f64>>>,
    /// Sequence numbers already accepted, per sender — the dedup filter.
    seen: HashSet<(usize, u64)>,
    /// Next sequence number for payloads this rank sends.
    next_seq: u64,
    /// Recently sent payloads, kept for retransmission. Keyed `(to, tag)`;
    /// insertion order tracked for bounded eviction.
    outbox: HashMap<(usize, u64), (u64, Vec<f64>)>,
    outbox_order: VecDeque<(usize, u64)>,
    /// Messages the fault injector is holding back; flushed one send later.
    delayed: Vec<(usize, Msg)>,
    faults: Option<Arc<FaultPlan>>,
    /// Quiet-window budget for `recv`, oversubscription-scaled at world
    /// creation (see [`recv_attempt_limit`]).
    recv_attempts: u32,
    pub stats: Arc<CommStats>,
    trace: TraceProbes,
}

impl Comm {
    /// Create all endpoints of a `size`-rank world.
    pub fn world(size: usize) -> Vec<Comm> {
        Comm::world_with_faults(size, None)
    }

    /// Create a world whose message traffic is perturbed by `plan`.
    pub fn world_with_faults(size: usize, plan: Option<Arc<FaultPlan>>) -> Vec<Comm> {
        let channels: Vec<(Sender<Msg>, Receiver<Msg>)> = (0..size).map(|_| channel()).collect();
        let senders: Vec<Sender<Msg>> = channels.iter().map(|(s, _)| s.clone()).collect();
        channels
            .into_iter()
            .enumerate()
            .map(|(rank, (_, receiver))| Comm {
                rank,
                size,
                senders: senders.clone(),
                receiver,
                pending: HashMap::new(),
                seen: HashSet::new(),
                next_seq: 0,
                outbox: HashMap::new(),
                outbox_order: VecDeque::new(),
                delayed: Vec::new(),
                faults: plan.clone(),
                recv_attempts: recv_attempt_limit(size),
                stats: Arc::new(CommStats::default()),
                trace: TraceProbes::for_rank(rank),
            })
            .collect()
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// The fault plan this world was created with, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }

    /// Raw channel push. `Err` means the peer's endpoint is gone.
    fn push(&self, to: usize, msg: Msg) -> Result<(), ()> {
        self.senders[to].send(msg).map_err(|_| ())
    }

    fn push_or_die(&self, to: usize, msg: Msg) {
        if self.push(to, msg).is_err() {
            panic!(
                "{DEAD_RANK_MARKER}: rank {} cannot reach rank {to}",
                self.rank
            );
        }
    }

    fn flush_delayed(&mut self) {
        // A fault-delayed message is a redundant late copy; a peer whose
        // endpoint is already gone either finished (and no longer wants
        // it) or died (which its neighbours detect on primary traffic).
        for (to, msg) in std::mem::take(&mut self.delayed) {
            let _ = self.push(to, msg);
        }
    }

    /// Whether a panic unwinding through this world is the simulated
    /// rank-death signal rather than a genuine bug.
    pub fn is_dead_rank_panic(payload: &(dyn std::any::Any + Send)) -> bool {
        payload
            .downcast_ref::<String>()
            .map(|s| s.contains(DEAD_RANK_MARKER))
            .or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.contains(DEAD_RANK_MARKER))
            })
            .unwrap_or(false)
    }

    fn remember(&mut self, to: usize, tag: u64, seq: u64, data: &[f64]) {
        if self
            .outbox
            .insert((to, tag), (seq, data.to_vec()))
            .is_none()
        {
            self.outbox_order.push_back((to, tag));
        }
        while self.outbox_order.len() > OUTBOX_CAP {
            if let Some(old) = self.outbox_order.pop_front() {
                self.outbox.remove(&old);
            }
        }
    }

    /// Non-blocking tagged send (the `MPI_Isend` analogue — channel sends
    /// never block). Subject to fault injection; the payload is retained in
    /// the outbox so a dropped copy can be retransmitted on request.
    pub fn send(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        self.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add((data.len() * 8) as u64, Ordering::Relaxed);
        self.trace.msgs_sent.incr(1);
        self.trace.bytes_sent.incr((data.len() * 8) as u64);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.remember(to, tag, seq, &data);
        let action = match &self.faults {
            Some(plan) => plan.roll(self.rank, to, tag),
            None => FaultAction::Deliver,
        };
        if action != FaultAction::Deliver {
            self.stats.faults_injected.fetch_add(1, Ordering::Relaxed);
            self.trace.faults_injected.incr(1);
        }
        // Earlier delayed messages go out *after* this one — that inversion
        // is what makes a delay an observable reordering.
        let held = std::mem::take(&mut self.delayed);
        let msg = Msg {
            from: self.rank,
            tag,
            seq,
            ctrl: false,
            data,
        };
        match action {
            FaultAction::Drop => {} // the receiver will ask again
            FaultAction::Deliver => self.push_or_die(to, msg),
            FaultAction::Duplicate => {
                let copy = Msg {
                    from: msg.from,
                    tag: msg.tag,
                    seq: msg.seq,
                    ctrl: false,
                    data: msg.data.clone(),
                };
                self.push_or_die(to, msg);
                self.push_or_die(to, copy);
            }
            FaultAction::Delay => self.delayed.push((to, msg)),
        }
        // Same rationale as `flush_delayed`: late copies to a gone peer
        // are dropped, not fatal.
        for (to, m) in held {
            let _ = self.push(to, m);
        }
    }

    /// [`Comm::send`] for a message that coalesces `coalesced` per-field
    /// face buffers into one payload (the neighbour-batched halo
    /// exchange). Identical wire behaviour — same reliability layer, same
    /// fault injection — plus the `comm.batch.*` accounting: one batched
    /// message saves `coalesced - 1` sends over the unbatched protocol.
    pub fn send_batched(&mut self, to: usize, tag: u64, data: Vec<f64>, coalesced: usize) {
        self.trace.batch_messages.incr(1);
        self.trace.batch_bytes.incr((data.len() * 8) as u64);
        self.trace
            .batch_saved
            .incr(coalesced.saturating_sub(1) as u64);
        self.send(to, tag, data);
    }

    /// Fault-immune tagged send: same bookkeeping as [`Comm::send`], never
    /// perturbed by the fault plan. Used for shutdown collectives.
    fn send_immune(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        self.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add((data.len() * 8) as u64, Ordering::Relaxed);
        self.trace.msgs_sent.incr(1);
        self.trace.bytes_sent.incr((data.len() * 8) as u64);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.remember(to, tag, seq, &data);
        self.flush_delayed();
        self.push_or_die(
            to,
            Msg {
                from: self.rank,
                tag,
                seq,
                ctrl: false,
                data,
            },
        );
    }

    /// Service a retransmit request for `(requester, tag)` from the outbox.
    /// A request for a message not sent yet is ignored — the requester will
    /// time out and ask again after we actually send it. A requester whose
    /// endpoint is gone by the time we serve is also ignored: it either
    /// received the original and finished, or it died — neither is *our*
    /// failure, and treating it as one is what turns a single slow rank
    /// into a world-wide cascade on oversubscribed hosts.
    fn serve_retransmit(&mut self, requester: usize, tag: u64) {
        if let Some((seq, data)) = self.outbox.get(&(requester, tag)) {
            self.stats.retransmits.fetch_add(1, Ordering::Relaxed);
            self.trace.retransmits.incr(1);
            let msg = Msg {
                from: self.rank,
                tag,
                seq: *seq,
                ctrl: false,
                data: data.clone(),
            };
            let _ = self.push(requester, msg);
        }
    }

    /// Process one inbound message. Returns the payload if it matches the
    /// `(from, tag)` the caller is blocked on.
    fn accept(&mut self, m: Msg, from: usize, tag: u64) -> Option<Vec<f64>> {
        if m.ctrl {
            self.serve_retransmit(m.from, m.tag);
            return None;
        }
        if !self.seen.insert((m.from, m.seq)) {
            self.trace.dedup_dropped.incr(1);
            return None; // duplicate delivery
        }
        if m.from == from && m.tag == tag {
            return Some(m.data);
        }
        self.pending
            .entry((m.from, m.tag))
            .or_default()
            .push(m.data);
        None
    }

    /// Blocking tag-matched receive with retry: after each quiet
    /// [`RETRY_TIMEOUT`] a retransmit request is sent to `from`; after
    /// the world's oversubscription-scaled quiet-window budget (see
    /// [`recv_attempt_limit`]) the peer is declared dead.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        self.flush_delayed();
        if let Some(q) = self.pending.get_mut(&(from, tag)) {
            if !q.is_empty() {
                self.trace.msgs_recv.incr(1);
                return q.remove(0);
            }
        }
        let _wait = WaitTimer::start(&self.trace.recv_wait_ns);
        let mut attempts = 0u32;
        let mut limit = self.recv_attempts;
        let mut peer_gone = false;
        loop {
            match self.receiver.recv_timeout(RETRY_TIMEOUT) {
                Ok(m) => {
                    if let Some(data) = self.accept(m, from, tag) {
                        self.trace.msgs_recv.incr(1);
                        return data;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    attempts += 1;
                    if attempts >= limit {
                        panic!(
                            "{DEAD_RANK_MARKER}: rank {} gave up waiting for \
                             rank {from} tag {tag:#x}",
                            self.rank
                        );
                    }
                    if peer_gone {
                        continue;
                    }
                    // Ask the sender to retransmit. A failed push means the
                    // peer's endpoint is gone — but that alone does not
                    // prove the message is lost: a cleanly finished peer
                    // sent everything we are owed before exiting, and the
                    // payload may simply still be sitting in our queue. So
                    // switch to draining quietly under a short grace budget;
                    // only if nothing surfaces is the peer declared dead.
                    let req = Msg {
                        from: self.rank,
                        tag,
                        seq: 0,
                        ctrl: true,
                        data: Vec::new(),
                    };
                    if self.push(from, req).is_err() {
                        peer_gone = true;
                        limit = limit.min(attempts.saturating_add(GRACE_RECV_ATTEMPTS));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Impossible: we hold a sender to our own channel.
                    unreachable!("own channel disconnected");
                }
            }
        }
    }

    /// Dissemination barrier.
    pub fn barrier(&mut self, epoch: u64) {
        let _span = pf_trace::span_at("comm.barrier", self.rank);
        let tag = u64::MAX - epoch;
        let mut round = 1usize;
        while round < self.size {
            let to = (self.rank + round) % self.size;
            let from = (self.rank + self.size - round) % self.size;
            self.send(to, tag.wrapping_sub(round as u64), Vec::new());
            let _ = self.recv(from, tag.wrapping_sub(round as u64));
            round *= 2;
        }
    }

    /// Fault-immune barrier for end-of-run rendezvous: a rank only enters
    /// once all its receives have completed, so after every rank passes, no
    /// retransmission can be needed and endpoints may be dropped safely.
    /// While blocked inside, ranks still service peers' retransmit requests.
    pub fn shutdown_barrier(&mut self) {
        let _span = pf_trace::span_at("comm.shutdown_barrier", self.rank);
        let tag_base = 0x5AFE_0000_0000_0000u64;
        let mut round = 1usize;
        while round < self.size {
            let to = (self.rank + round) % self.size;
            let from = (self.rank + self.size - round) % self.size;
            self.send_immune(to, tag_base | round as u64, Vec::new());
            let _ = self.recv(from, tag_base | round as u64);
            round *= 2;
        }
    }

    /// All-reduce a vector of doubles with a binary op (sum/max/min).
    pub fn allreduce(
        &mut self,
        epoch: u64,
        mut data: Vec<f64>,
        op: fn(f64, f64) -> f64,
    ) -> Vec<f64> {
        // Gather to rank 0, reduce, broadcast — O(P) but simple and exact.
        let tag_up = 0xA11D_0000u64 ^ (epoch << 8);
        let tag_down = 0xA11D_0001u64 ^ (epoch << 8);
        if self.rank == 0 {
            for r in 1..self.size {
                let other = self.recv(r, tag_up);
                assert_eq!(other.len(), data.len());
                for (a, b) in data.iter_mut().zip(other) {
                    *a = op(*a, b);
                }
            }
            for r in 1..self.size {
                self.send(r, tag_down, data.clone());
            }
            data
        } else {
            self.send(0, tag_up, data);
            self.recv(0, tag_down)
        }
    }
}

impl Drop for Comm {
    fn drop(&mut self) {
        // A delayed message must not be lost to normal shutdown; peers that
        // are already gone are ignored (nothing left to deliver to).
        for (to, msg) in std::mem::take(&mut self.delayed) {
            let _ = self.push(to, msg);
        }
    }
}

/// Run `f` on `size` rank threads and join (the `mpirun` analogue).
/// Panics in any rank propagate with their original payload, so callers
/// can recognise [`DEAD_RANK_MARKER`] panics via [`Comm::is_dead_rank_panic`].
pub fn run_ranks<F>(size: usize, f: F)
where
    F: Fn(Comm) + Sync,
{
    run_ranks_with_faults(size, None, f)
}

/// [`run_ranks`] with a fault plan applied to every endpoint.
pub fn run_ranks_with_faults<F>(size: usize, plan: Option<Arc<FaultPlan>>, f: F)
where
    F: Fn(Comm) + Sync,
{
    let world = Comm::world_with_faults(size, plan);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = world
            .into_iter()
            .map(|comm| s.spawn(move || f(comm)))
            .collect();
        // Join by hand so the *original* panic payload crosses the scope —
        // `scope` itself would replace it with "a scoped thread panicked".
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
}

static QUIET_DEPTH: AtomicUsize = AtomicUsize::new(0);
static QUIET_HOOK: Once = Once::new();

/// Run `f` with panic-hook output suppressed for [`DEAD_RANK_MARKER`]
/// panics. Rank death is *simulated* by panicking rank threads; without
/// this, every planned kill spams stderr with expected backtraces. Other
/// panics still print normally.
pub fn with_silenced_dead_rank_panics<R>(f: impl FnOnce() -> R) -> R {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = QUIET_DEPTH.load(Ordering::SeqCst) > 0;
            let ours = Comm::is_dead_rank_panic(info.payload());
            if !(quiet && ours) {
                prev(info);
            }
        }));
    });
    QUIET_DEPTH.fetch_add(1, Ordering::SeqCst);
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            QUIET_DEPTH.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _g = Guard;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        run_ranks(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0, 2.0, 3.0]);
                let back = c.recv(1, 8);
                assert_eq!(back, vec![6.0]);
            } else {
                let v = c.recv(0, 7);
                c.send(0, 8, vec![v.iter().sum()]);
            }
        });
    }

    #[test]
    fn tag_matching_reorders() {
        run_ranks(2, |mut c| {
            if c.rank() == 0 {
                // Send tags in one order …
                c.send(1, 1, vec![1.0]);
                c.send(1, 2, vec![2.0]);
            } else {
                // … receive them in the other.
                let b = c.recv(0, 2);
                let a = c.recv(0, 1);
                assert_eq!((a[0], b[0]), (1.0, 2.0));
            }
        });
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        run_ranks(4, |mut c| {
            let mine = vec![c.rank() as f64, 1.0];
            let total = c.allreduce(0, mine, |a, b| a + b);
            assert_eq!(total, vec![6.0, 4.0]);
        });
    }

    #[test]
    fn allreduce_max() {
        run_ranks(3, |mut c| {
            let m = c.allreduce(1, vec![c.rank() as f64], f64::max);
            assert_eq!(m, vec![2.0]);
        });
    }

    #[test]
    fn barrier_completes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BEFORE: AtomicUsize = AtomicUsize::new(0);
        run_ranks(4, |mut c| {
            BEFORE.fetch_add(1, Ordering::SeqCst);
            c.barrier(0);
            assert_eq!(BEFORE.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn stats_count_bytes() {
        run_ranks(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![0.0; 100]);
                assert_eq!(c.stats.bytes_sent.load(Ordering::Relaxed), 800);
            } else {
                let _ = c.recv(0, 3);
            }
        });
    }

    #[test]
    fn duplicated_messages_are_deduplicated() {
        let plan = Arc::new(FaultPlan::new(11).dup_prob(1.0));
        run_ranks_with_faults(2, Some(plan), |mut c| {
            if c.rank() == 0 {
                c.send(1, 40, vec![1.0]);
                c.send(1, 41, vec![2.0]);
            } else {
                assert_eq!(c.recv(0, 40), vec![1.0]);
                assert_eq!(c.recv(0, 41), vec![2.0]);
                // Both duplicates must have been filtered, leaving nothing
                // pending for either tag.
                assert!(c.pending.values().all(|q| q.is_empty()));
            }
        });
    }

    #[test]
    fn dropped_messages_are_retransmitted_on_request() {
        let plan = Arc::new(FaultPlan::new(5).drop_prob(1.0));
        run_ranks_with_faults(2, Some(plan), |mut c| {
            // Every first copy is dropped; recv must recover both
            // directions via retransmit requests.
            if c.rank() == 0 {
                c.send(1, 50, vec![4.0, 5.0]);
                assert_eq!(c.recv(1, 51), vec![9.0]);
                assert!(c.stats.retransmits.load(Ordering::Relaxed) >= 1);
            } else {
                let v = c.recv(0, 50);
                c.send(0, 51, vec![v.iter().sum()]);
                assert!(c.stats.faults_injected.load(Ordering::Relaxed) >= 1);
            }
            // Without this rendezvous, a rank could exit while its peer
            // still needs a retransmission of a dropped message.
            c.shutdown_barrier();
        });
    }

    #[test]
    fn delayed_messages_arrive_out_of_order_but_match() {
        let plan = Arc::new(FaultPlan::new(3).delay_prob(0.5));
        run_ranks_with_faults(2, Some(plan), |mut c| {
            if c.rank() == 0 {
                for t in 0..20u64 {
                    c.send(1, 100 + t, vec![t as f64]);
                }
            } else {
                for t in 0..20u64 {
                    assert_eq!(c.recv(0, 100 + t), vec![t as f64]);
                }
            }
        });
    }

    #[test]
    fn fault_rolls_are_deterministic() {
        let plan = FaultPlan::new(99).drop_prob(0.3).dup_prob(0.3);
        for tag in 0..64 {
            assert_eq!(plan.roll(0, 1, tag), plan.roll(0, 1, tag));
        }
        // With these odds, 64 tags must include at least one of each.
        let actions: Vec<FaultAction> = (0..64).map(|t| plan.roll(0, 1, t)).collect();
        assert!(actions.contains(&FaultAction::Drop));
        assert!(actions.contains(&FaultAction::Duplicate));
        assert!(actions.contains(&FaultAction::Deliver));
    }

    #[test]
    fn multi_kill_plans_disarm_one_wave_at_a_time() {
        let plan = FaultPlan::new(1)
            .kill_rank_at_step(3, 2)
            .kill_rank_at_step(7, 5)
            .kill_rank_at_step(1, 9);
        assert!(plan.should_kill(3, 2) && plan.should_kill(7, 5) && plan.should_kill(1, 9));
        assert!(!plan.should_kill(3, 5));
        // Each disarm removes exactly the earliest armed wave.
        let after_first = plan.disarmed();
        assert!(!after_first.should_kill(3, 2));
        assert!(after_first.should_kill(7, 5) && after_first.should_kill(1, 9));
        let after_second = after_first.disarmed();
        assert!(!after_second.should_kill(7, 5));
        assert!(after_second.should_kill(1, 9));
        assert!(after_second.disarmed().kills.is_empty());
        // Disarming an empty plan is a no-op, not a panic.
        assert!(after_second.disarmed().disarmed().kills.is_empty());
    }

    #[test]
    fn dead_rank_is_detected() {
        let caught = with_silenced_dead_rank_panics(|| {
            std::panic::catch_unwind(|| {
                run_ranks(2, |mut c| {
                    if c.rank() == 0 {
                        // Rank 0 exits immediately — simulated death.
                    } else {
                        let _ = c.recv(0, 7);
                    }
                });
            })
        });
        let err = caught.expect_err("recv from a dead rank must fail");
        assert!(
            Comm::is_dead_rank_panic(err.as_ref()),
            "panic payload lost its dead-rank marker"
        );
    }
}
