//! Iteration-space regions for communication/computation overlap (§4.3).
//!
//! The overlapped schedule splits every kernel sweep into an **interior**
//! region — cells whose stencil reach stays inside the block's owned data —
//! and **frontier** shells — the cells that read ghost layers. The interior
//! can run while halo messages are in flight; the frontier runs after the
//! receives complete. [`split_frontier`] performs that split from the
//! per-dimension deferral widths pf-analyze derives from the kernel's load
//! envelopes; its core invariant (interior ∪ shells tiles the extended
//! iteration range exactly, with no overlap and no gap) is property-tested
//! below.

/// A half-open box `[lo, hi)` in a kernel's (extended) iteration space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterRegion {
    pub lo: [usize; 3],
    pub hi: [usize; 3],
}

impl IterRegion {
    /// The whole extended iteration range `[0, ext)`.
    pub fn full(ext: [usize; 3]) -> IterRegion {
        IterRegion {
            lo: [0; 3],
            hi: ext,
        }
    }

    pub fn cells(&self) -> usize {
        (0..3)
            .map(|d| self.hi[d].saturating_sub(self.lo[d]))
            .product()
    }

    pub fn is_empty(&self) -> bool {
        (0..3).any(|d| self.hi[d] <= self.lo[d])
    }

    pub fn contains(&self, idx: [usize; 3]) -> bool {
        (0..3).all(|d| self.lo[d] <= idx[d] && idx[d] < self.hi[d])
    }
}

/// Split the extended iteration range `[0, ext)` into the interior region
/// `[lo_w, ext - hi_w)` and an onion of frontier shells covering the rest.
///
/// `lo_w[d]` / `hi_w[d]` are the deferral widths along dimension `d`: how
/// many leading / trailing iteration indices must wait for the halo
/// receive (cells whose loads reach ghost layers, plus — for kernels
/// reading locally-produced temporaries — the widths propagated from their
/// producer kernels). Widths wider than the range simply leave an empty
/// interior; the shells then cover everything.
///
/// The shells are disjoint from each other and from the interior, and
/// their union with the interior is exactly `[0, ext)` — the invariant the
/// proptest below pins down. Shell count is at most 6 (two slabs per
/// dimension).
pub fn split_frontier(
    ext: [usize; 3],
    lo_w: [usize; 3],
    hi_w: [usize; 3],
) -> (IterRegion, Vec<IterRegion>) {
    let mut ilo = [0usize; 3];
    let mut ihi = ext;
    for d in 0..3 {
        ilo[d] = lo_w[d].min(ext[d]);
        ihi[d] = ext[d].saturating_sub(hi_w[d]).max(ilo[d]);
    }
    let interior = IterRegion { lo: ilo, hi: ihi };
    let mut shells = Vec::new();
    // Onion decomposition: slabs along dimension d span the full range in
    // dimensions > d but only the interior range in dimensions < d, so no
    // two shells overlap and the corners/edges are covered exactly once.
    for d in 0..3 {
        let mut base = IterRegion::full(ext);
        base.lo[..d].copy_from_slice(&ilo[..d]);
        base.hi[..d].copy_from_slice(&ihi[..d]);
        let mut low = base;
        low.lo[d] = 0;
        low.hi[d] = ilo[d];
        if !low.is_empty() {
            shells.push(low);
        }
        let mut high = base;
        high.lo[d] = ihi[d];
        high.hi[d] = ext[d];
        if !high.is_empty() {
            shells.push(high);
        }
    }
    (interior, shells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_exact_tiling(ext: [usize; 3], lo_w: [usize; 3], hi_w: [usize; 3]) {
        let (interior, shells) = split_frontier(ext, lo_w, hi_w);
        for z in 0..ext[2] {
            for y in 0..ext[1] {
                for x in 0..ext[0] {
                    let idx = [x, y, z];
                    let mut covers = usize::from(interior.contains(idx));
                    covers += shells.iter().filter(|s| s.contains(idx)).count();
                    assert_eq!(
                        covers, 1,
                        "cell {idx:?} covered {covers} times (ext {ext:?}, lo {lo_w:?}, hi {hi_w:?})"
                    );
                }
            }
        }
        let total: usize = interior.cells() + shells.iter().map(IterRegion::cells).sum::<usize>();
        assert_eq!(total, ext.iter().product::<usize>());
        assert!(shells.iter().all(|s| !s.is_empty()));
        assert!(shells.len() <= 6);
    }

    #[test]
    fn unit_width_split_has_six_shells_in_3d() {
        let (interior, shells) = split_frontier([8, 6, 4], [1; 3], [1; 3]);
        assert_eq!(
            interior,
            IterRegion {
                lo: [1; 3],
                hi: [7, 5, 3]
            }
        );
        assert_eq!(shells.len(), 6);
        assert_exact_tiling([8, 6, 4], [1; 3], [1; 3]);
    }

    #[test]
    fn zero_widths_keep_everything_interior() {
        let (interior, shells) = split_frontier([5, 5, 1], [0; 3], [0; 3]);
        assert_eq!(interior, IterRegion::full([5, 5, 1]));
        assert!(shells.is_empty());
    }

    #[test]
    fn oversized_widths_leave_an_empty_interior() {
        let (interior, shells) = split_frontier([4, 2, 1], [3, 5, 0], [3, 5, 9]);
        assert!(interior.is_empty());
        assert_exact_tiling([4, 2, 1], [3, 5, 0], [3, 5, 9]);
        let covered: usize = shells.iter().map(IterRegion::cells).sum();
        assert_eq!(covered, 8);
    }

    #[test]
    fn flat_2d_ranges_split_cleanly() {
        // A 2D block (ext_z = 1) with widths only in x/y.
        assert_exact_tiling([16, 8, 1], [1, 1, 0], [2, 1, 0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The region-splitter's core invariant: for arbitrary shapes and
        /// deferral widths, interior ∪ shells tiles `[0, ext)` exactly —
        /// every cell covered once, no overlap, no gap.
        #[test]
        fn interior_and_shells_tile_exactly(
            ext in (1usize..9, 1usize..9, 1usize..9),
            lo in (0usize..5, 0usize..5, 0usize..5),
            hi in (0usize..5, 0usize..5, 0usize..5),
        ) {
            assert_exact_tiling(
                [ext.0, ext.1, ext.2],
                [lo.0, lo.1, lo.2],
                [hi.0, hi.1, hi.2],
            );
        }
    }
}
