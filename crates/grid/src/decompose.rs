//! Block-structured domain partitioning (§4.1).
//!
//! waLBerla's domain model: the global grid is split into equal rectangular
//! blocks, one (or more) per process, with a structured grid inside each
//! block. This module computes the process grid, each rank's block extent
//! and origin, and the 6-neighbourhood used by the phased ghost-layer
//! exchange. A weight-driven assignment of blocks to ranks provides the
//! (static) load-balancing hook.

/// Ghost-layer width the decomposition allocates and exchanges by default.
/// The paper's kernels are compact (nearest-neighbour) stencils, so one
/// layer suffices; pf-analyze's footprint pass proves per kernel that this
/// width actually covers every load.
pub const GHOST_LAYERS: usize = 1;

/// The global domain split into a process grid.
#[derive(Clone, Debug)]
pub struct Decomposition {
    pub global: [usize; 3],
    pub grid: [usize; 3],
    pub periodic: [bool; 3],
    /// Ghost layers each block allocates per field (and the exchange
    /// fills); see [`GHOST_LAYERS`].
    pub ghost_layers: usize,
}

/// One rank's block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockInfo {
    pub rank: usize,
    /// Position in the process grid.
    pub coords: [usize; 3],
    /// Interior cell shape of this block.
    pub shape: [usize; 3],
    /// Global index of the block's (0,0,0) cell.
    pub origin: [i64; 3],
}

impl Decomposition {
    /// Split `global` cells over `nranks` ranks, choosing the process grid
    /// with the most cubic blocks (minimal surface-to-volume, like
    /// `MPI_Dims_create` but surface-optimal for the actual domain shape).
    pub fn new(global: [usize; 3], nranks: usize, periodic: [bool; 3]) -> Self {
        assert!(nranks >= 1);
        let mut best: Option<([usize; 3], f64)> = None;
        for px in 1..=nranks {
            if !nranks.is_multiple_of(px) || !global[0].is_multiple_of(px) {
                continue;
            }
            let rest = nranks / px;
            for py in 1..=rest {
                if !rest.is_multiple_of(py) || !global[1].is_multiple_of(py) {
                    continue;
                }
                let pz = rest / py;
                if !global[2].is_multiple_of(pz) {
                    continue;
                }
                let b = [global[0] / px, global[1] / py, global[2] / pz];
                // Communication cost ∝ block surface.
                let surface = 2.0 * (b[0] * b[1] + b[1] * b[2] + b[0] * b[2]) as f64;
                if best.is_none() || surface < best.expect("checked").1 {
                    best = Some(([px, py, pz], surface));
                }
            }
        }
        let (grid, _) = best
            .unwrap_or_else(|| panic!("cannot split {global:?} cells over {nranks} ranks evenly"));
        Decomposition {
            global,
            grid,
            periodic,
            ghost_layers: GHOST_LAYERS,
        }
    }

    /// Same decomposition with a different ghost-layer width (wider
    /// stencils would need it; the analysis pass checks the fit either
    /// way).
    pub fn with_ghost_layers(mut self, ghost_layers: usize) -> Self {
        assert!(ghost_layers >= 1, "halo exchange needs at least one layer");
        self.ghost_layers = ghost_layers;
        self
    }

    pub fn nranks(&self) -> usize {
        self.grid.iter().product()
    }

    /// Block shape (equal for all ranks).
    pub fn block_shape(&self) -> [usize; 3] {
        [
            self.global[0] / self.grid[0],
            self.global[1] / self.grid[1],
            self.global[2] / self.grid[2],
        ]
    }

    pub fn coords_of(&self, rank: usize) -> [usize; 3] {
        let x = rank % self.grid[0];
        let y = (rank / self.grid[0]) % self.grid[1];
        let z = rank / (self.grid[0] * self.grid[1]);
        [x, y, z]
    }

    pub fn rank_of(&self, coords: [usize; 3]) -> usize {
        coords[0] + self.grid[0] * (coords[1] + self.grid[1] * coords[2])
    }

    pub fn block(&self, rank: usize) -> BlockInfo {
        let coords = self.coords_of(rank);
        let shape = self.block_shape();
        BlockInfo {
            rank,
            coords,
            shape,
            origin: [
                (coords[0] * shape[0]) as i64,
                (coords[1] * shape[1]) as i64,
                (coords[2] * shape[2]) as i64,
            ],
        }
    }

    /// Neighbour rank in direction `±1` along `dim`, honouring periodicity.
    pub fn neighbor(&self, rank: usize, dim: usize, side: i32) -> Option<usize> {
        let mut c = self.coords_of(rank);
        let n = self.grid[dim] as i64;
        let pos = c[dim] as i64 + side as i64;
        let wrapped = if self.periodic[dim] {
            pos.rem_euclid(n)
        } else if (0..n).contains(&pos) {
            pos
        } else {
            return None;
        };
        c[dim] = wrapped as usize;
        Some(self.rank_of(c))
    }

    /// Assign `blocks` weighted work items to `nranks` ranks, greedily
    /// filling the least-loaded rank (waLBerla's static load balancing for
    /// heterogeneous block weights).
    pub fn balance(weights: &[f64], nranks: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
        let mut load = vec![0.0f64; nranks];
        let mut assign = vec![0usize; weights.len()];
        for b in order {
            let (r, _) = load
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .expect("nranks >= 1");
            assign[b] = r;
            load[r] += weights[b];
        }
        assign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_cubic_blocks() {
        let d = Decomposition::new([64, 64, 64], 8, [true; 3]);
        assert_eq!(d.grid, [2, 2, 2]);
        assert_eq!(d.block_shape(), [32, 32, 32]);
    }

    #[test]
    fn rank_coords_roundtrip() {
        let d = Decomposition::new([48, 32, 16], 12, [true; 3]);
        for r in 0..d.nranks() {
            assert_eq!(d.rank_of(d.coords_of(r)), r);
        }
    }

    #[test]
    fn origins_tile_the_domain() {
        let d = Decomposition::new([32, 32, 8], 4, [true; 3]);
        let mut covered = 0usize;
        for r in 0..d.nranks() {
            let b = d.block(r);
            covered += b.shape.iter().product::<usize>();
            for dim in 0..3 {
                assert_eq!(
                    b.origin[dim] as usize % b.shape[dim],
                    0,
                    "misaligned origin"
                );
            }
        }
        assert_eq!(covered, 32 * 32 * 8);
    }

    #[test]
    fn periodic_neighbors_wrap() {
        let d = Decomposition::new([32, 16, 16], 4, [true, false, false]);
        // grid should be [4,1,1] or [2,2,1]; test generic wrap on x if 4.
        let r0 = 0;
        let left = d.neighbor(r0, 0, -1).expect("periodic");
        let right = d.neighbor(left, 0, 1).expect("periodic");
        assert_eq!(right, r0);
        // Non-periodic y has no neighbour at the boundary.
        assert_eq!(d.neighbor(r0, 1, -1), None);
    }

    #[test]
    fn balance_spreads_weighted_blocks() {
        let weights = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let assign = Decomposition::balance(&weights, 2);
        let load0: f64 = weights
            .iter()
            .zip(&assign)
            .filter(|(_, &r)| r == 0)
            .map(|(w, _)| w)
            .sum();
        let load1: f64 = weights.iter().sum::<f64>() - load0;
        assert!((load0 - load1).abs() <= 1.0, "{load0} vs {load1}");
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn uneven_split_is_rejected() {
        Decomposition::new([30, 30, 30], 7, [true; 3]);
    }

    #[test]
    fn ghost_layers_default_and_override() {
        let d = Decomposition::new([32, 32, 32], 2, [true; 3]);
        assert_eq!(d.ghost_layers, GHOST_LAYERS);
        assert_eq!(d.with_ghost_layers(2).ghost_layers, 2);
    }
}
