//! Block-structured domain partitioning (§4.1).
//!
//! waLBerla's domain model: the global grid is split into equal rectangular
//! blocks, one (or more) per process, with a structured grid inside each
//! block. This module computes the process grid, each rank's block extent
//! and origin, and the 6-neighbourhood used by the phased ghost-layer
//! exchange. A weight-driven assignment of blocks to ranks provides the
//! (static) load-balancing hook.

/// Ghost-layer width the decomposition allocates and exchanges by default.
/// The paper's kernels are compact (nearest-neighbour) stencils, so one
/// layer suffices; pf-analyze's footprint pass proves per kernel that this
/// width actually covers every load.
pub const GHOST_LAYERS: usize = 1;

/// The global domain split into a process grid.
#[derive(Clone, Debug)]
pub struct Decomposition {
    pub global: [usize; 3],
    pub grid: [usize; 3],
    pub periodic: [bool; 3],
    /// Ghost layers each block allocates per field (and the exchange
    /// fills); see [`GHOST_LAYERS`].
    pub ghost_layers: usize,
    /// Hierarchical (node × socket) refinement, if this decomposition was
    /// built with [`Decomposition::hierarchical`]. The flat `grid` is
    /// always the per-dimension product `outer * inner`, so every
    /// rank/coordinate/neighbor query is hierarchy-agnostic; the levels
    /// only add locality queries ([`node_of`](Self::node_of) etc.).
    pub hierarchy: Option<Hierarchy>,
}

/// The two levels of a hierarchical decomposition: an outer inter-node
/// grid, each cell of which is refined by the same inner intra-node grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hierarchy {
    /// Inter-node process grid (one cell per node).
    pub outer: [usize; 3],
    /// Intra-node process grid (one cell per rank within a node).
    pub inner: [usize; 3],
}

/// One rank's block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockInfo {
    pub rank: usize,
    /// Position in the process grid.
    pub coords: [usize; 3],
    /// Interior cell shape of this block.
    pub shape: [usize; 3],
    /// Global index of the block's (0,0,0) cell.
    pub origin: [i64; 3],
}

impl Decomposition {
    /// Split `global` cells over `nranks` ranks, choosing the process grid
    /// with the most cubic blocks (minimal surface-to-volume, like
    /// `MPI_Dims_create` but surface-optimal for the actual domain shape).
    pub fn new(global: [usize; 3], nranks: usize, periodic: [bool; 3]) -> Self {
        assert!(nranks >= 1);
        let mut best: Option<([usize; 3], f64)> = None;
        for px in 1..=nranks {
            if !nranks.is_multiple_of(px) || !global[0].is_multiple_of(px) {
                continue;
            }
            let rest = nranks / px;
            for py in 1..=rest {
                if !rest.is_multiple_of(py) || !global[1].is_multiple_of(py) {
                    continue;
                }
                let pz = rest / py;
                if !global[2].is_multiple_of(pz) {
                    continue;
                }
                let b = [global[0] / px, global[1] / py, global[2] / pz];
                // Communication cost ∝ block surface.
                let surface = 2.0 * (b[0] * b[1] + b[1] * b[2] + b[0] * b[2]) as f64;
                if best.is_none() || surface < best.expect("checked").1 {
                    best = Some(([px, py, pz], surface));
                }
            }
        }
        let (grid, _) = best
            .unwrap_or_else(|| panic!("cannot split {global:?} cells over {nranks} ranks evenly"));
        Decomposition {
            global,
            grid,
            periodic,
            ghost_layers: GHOST_LAYERS,
            hierarchy: None,
        }
    }

    /// Two-level (node × socket) split: `nodes` ranks' worth of outer
    /// inter-node grid, each node block refined by an inner intra-node
    /// grid of `ranks_per_node` ranks. The flat process grid is the
    /// per-dimension product of the two levels, so the world has
    /// `nodes * ranks_per_node` ranks and every flat query
    /// (`coords_of`/`rank_of`/`neighbor`/`block`) behaves exactly as for
    /// [`Decomposition::new`] with the same grid — bitwise-identical
    /// fields are a corollary, and the overlap-protocol proof carries
    /// over because it depends only on which dimensions are divided.
    pub fn hierarchical(
        global: [usize; 3],
        nodes: usize,
        ranks_per_node: usize,
        periodic: [bool; 3],
    ) -> Self {
        assert!(nodes >= 1 && ranks_per_node >= 1);
        // Outer level: surface-optimal split of the global domain over
        // the nodes, exactly as the flat constructor would pick it.
        let outer_dec = Decomposition::new(global, nodes, periodic);
        let outer = outer_dec.grid;
        let node_block = outer_dec.block_shape();
        // Inner level: surface-optimal split of one node's block over the
        // node's ranks. Every node block is identical, so one inner grid
        // serves them all.
        let inner_dec = Decomposition::new(node_block, ranks_per_node, periodic);
        let inner = inner_dec.grid;
        let grid = [
            outer[0] * inner[0],
            outer[1] * inner[1],
            outer[2] * inner[2],
        ];
        Decomposition {
            global,
            grid,
            periodic,
            ghost_layers: GHOST_LAYERS,
            hierarchy: Some(Hierarchy { outer, inner }),
        }
    }

    /// Same decomposition with a different ghost-layer width (wider
    /// stencils would need it; the analysis pass checks the fit either
    /// way).
    pub fn with_ghost_layers(mut self, ghost_layers: usize) -> Self {
        assert!(ghost_layers >= 1, "halo exchange needs at least one layer");
        self.ghost_layers = ghost_layers;
        self
    }

    pub fn nranks(&self) -> usize {
        self.grid.iter().product()
    }

    /// Outer (inter-node) process grid. A flat decomposition is one node
    /// holding every rank, so its outer grid is `[1, 1, 1]`.
    pub fn outer_grid(&self) -> [usize; 3] {
        self.hierarchy.map_or([1, 1, 1], |h| h.outer)
    }

    /// Inner (intra-node) process grid. For a flat decomposition this is
    /// the whole flat grid (single node).
    pub fn inner_grid(&self) -> [usize; 3] {
        self.hierarchy.map_or(self.grid, |h| h.inner)
    }

    /// Number of nodes in the outer level.
    pub fn nnodes(&self) -> usize {
        self.outer_grid().iter().product()
    }

    /// Ranks per node in the inner level.
    pub fn ranks_per_node(&self) -> usize {
        self.inner_grid().iter().product()
    }

    /// Which node (outer-grid index, x-fastest like ranks) owns `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        let c = self.coords_of(rank);
        let inner = self.inner_grid();
        let outer = self.outer_grid();
        let n = [c[0] / inner[0], c[1] / inner[1], c[2] / inner[2]];
        n[0] + outer[0] * (n[1] + outer[1] * n[2])
    }

    /// `rank`'s index within its node (inner-grid index, x-fastest).
    pub fn node_local_of(&self, rank: usize) -> usize {
        let c = self.coords_of(rank);
        let inner = self.inner_grid();
        let l = [c[0] % inner[0], c[1] % inner[1], c[2] % inner[2]];
        l[0] + inner[0] * (l[1] + inner[1] * l[2])
    }

    /// Whether two ranks share a node (intra-node messages are the cheap
    /// ones a hierarchical mapping is meant to maximize).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Block shape (equal for all ranks).
    pub fn block_shape(&self) -> [usize; 3] {
        [
            self.global[0] / self.grid[0],
            self.global[1] / self.grid[1],
            self.global[2] / self.grid[2],
        ]
    }

    pub fn coords_of(&self, rank: usize) -> [usize; 3] {
        let x = rank % self.grid[0];
        let y = (rank / self.grid[0]) % self.grid[1];
        let z = rank / (self.grid[0] * self.grid[1]);
        [x, y, z]
    }

    pub fn rank_of(&self, coords: [usize; 3]) -> usize {
        coords[0] + self.grid[0] * (coords[1] + self.grid[1] * coords[2])
    }

    pub fn block(&self, rank: usize) -> BlockInfo {
        let coords = self.coords_of(rank);
        let shape = self.block_shape();
        BlockInfo {
            rank,
            coords,
            shape,
            origin: [
                (coords[0] * shape[0]) as i64,
                (coords[1] * shape[1]) as i64,
                (coords[2] * shape[2]) as i64,
            ],
        }
    }

    /// Neighbour rank in direction `±1` along `dim`, honouring periodicity.
    pub fn neighbor(&self, rank: usize, dim: usize, side: i32) -> Option<usize> {
        let mut c = self.coords_of(rank);
        let n = self.grid[dim] as i64;
        let pos = c[dim] as i64 + side as i64;
        let wrapped = if self.periodic[dim] {
            pos.rem_euclid(n)
        } else if (0..n).contains(&pos) {
            pos
        } else {
            return None;
        };
        c[dim] = wrapped as usize;
        Some(self.rank_of(c))
    }

    /// Assign `blocks` weighted work items to `nranks` ranks, greedily
    /// filling the least-loaded rank (waLBerla's static load balancing for
    /// heterogeneous block weights).
    pub fn balance(weights: &[f64], nranks: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
        let mut load = vec![0.0f64; nranks];
        let mut assign = vec![0usize; weights.len()];
        for b in order {
            let (r, _) = load
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .expect("nranks >= 1");
            assign[b] = r;
            load[r] += weights[b];
        }
        assign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_cubic_blocks() {
        let d = Decomposition::new([64, 64, 64], 8, [true; 3]);
        assert_eq!(d.grid, [2, 2, 2]);
        assert_eq!(d.block_shape(), [32, 32, 32]);
    }

    #[test]
    fn rank_coords_roundtrip() {
        let d = Decomposition::new([48, 32, 16], 12, [true; 3]);
        for r in 0..d.nranks() {
            assert_eq!(d.rank_of(d.coords_of(r)), r);
        }
    }

    #[test]
    fn origins_tile_the_domain() {
        let d = Decomposition::new([32, 32, 8], 4, [true; 3]);
        let mut covered = 0usize;
        for r in 0..d.nranks() {
            let b = d.block(r);
            covered += b.shape.iter().product::<usize>();
            for dim in 0..3 {
                assert_eq!(
                    b.origin[dim] as usize % b.shape[dim],
                    0,
                    "misaligned origin"
                );
            }
        }
        assert_eq!(covered, 32 * 32 * 8);
    }

    #[test]
    fn periodic_neighbors_wrap() {
        let d = Decomposition::new([32, 16, 16], 4, [true, false, false]);
        // grid should be [4,1,1] or [2,2,1]; test generic wrap on x if 4.
        let r0 = 0;
        let left = d.neighbor(r0, 0, -1).expect("periodic");
        let right = d.neighbor(left, 0, 1).expect("periodic");
        assert_eq!(right, r0);
        // Non-periodic y has no neighbour at the boundary.
        assert_eq!(d.neighbor(r0, 1, -1), None);
    }

    #[test]
    fn balance_spreads_weighted_blocks() {
        let weights = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let assign = Decomposition::balance(&weights, 2);
        let load0: f64 = weights
            .iter()
            .zip(&assign)
            .filter(|(_, &r)| r == 0)
            .map(|(w, _)| w)
            .sum();
        let load1: f64 = weights.iter().sum::<f64>() - load0;
        assert!((load0 - load1).abs() <= 1.0, "{load0} vs {load1}");
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn uneven_split_is_rejected() {
        Decomposition::new([30, 30, 30], 7, [true; 3]);
    }

    #[test]
    fn ghost_layers_default_and_override() {
        let d = Decomposition::new([32, 32, 32], 2, [true; 3]);
        assert_eq!(d.ghost_layers, GHOST_LAYERS);
        assert_eq!(d.with_ghost_layers(2).ghost_layers, 2);
    }

    #[test]
    fn hierarchical_grid_is_the_product_of_both_levels() {
        // A 256-rank world: 16 nodes × 16 ranks/node.
        let d = Decomposition::hierarchical([64, 64, 32], 16, 16, [true; 3]);
        assert_eq!(d.nranks(), 256);
        assert_eq!(d.nnodes(), 16);
        assert_eq!(d.ranks_per_node(), 16);
        let (outer, inner) = (d.outer_grid(), d.inner_grid());
        for dim in 0..3 {
            assert_eq!(d.grid[dim], outer[dim] * inner[dim]);
        }
        // The flat queries still tile the domain exactly.
        let covered: usize = (0..d.nranks())
            .map(|r| d.block(r).shape.iter().product::<usize>())
            .sum();
        assert_eq!(covered, 64 * 64 * 32);
        for r in 0..d.nranks() {
            assert_eq!(d.rank_of(d.coords_of(r)), r);
        }
    }

    #[test]
    fn flat_decomposition_is_a_single_node() {
        let d = Decomposition::new([32, 32, 8], 4, [true; 3]);
        assert!(d.hierarchy.is_none());
        assert_eq!(d.outer_grid(), [1, 1, 1]);
        assert_eq!(d.inner_grid(), d.grid);
        assert_eq!(d.nnodes(), 1);
        assert_eq!(d.ranks_per_node(), d.nranks());
        for r in 0..d.nranks() {
            assert_eq!(d.node_of(r), 0);
            assert_eq!(d.node_local_of(r), r);
        }
    }

    #[test]
    fn every_node_holds_exactly_ranks_per_node_ranks() {
        let d = Decomposition::hierarchical([32, 32, 16], 8, 8, [true; 3]);
        let mut per_node = vec![0usize; d.nnodes()];
        for r in 0..d.nranks() {
            let node = d.node_of(r);
            assert!(node < d.nnodes());
            assert!(d.node_local_of(r) < d.ranks_per_node());
            per_node[node] += 1;
            assert!(d.same_node(r, r));
        }
        assert!(per_node.iter().all(|&n| n == d.ranks_per_node()));
    }

    #[test]
    fn hierarchical_blocks_match_the_flat_grid_with_the_same_shape() {
        // The hierarchy refines the mapping, not the geometry: a flat
        // decomposition pinned to the same process grid yields identical
        // blocks and neighbours for every rank.
        let h = Decomposition::hierarchical([32, 16, 16], 4, 4, [true, false, true]);
        let flat = Decomposition {
            global: h.global,
            grid: h.grid,
            periodic: h.periodic,
            ghost_layers: h.ghost_layers,
            hierarchy: None,
        };
        for r in 0..h.nranks() {
            assert_eq!(h.block(r), flat.block(r));
            for dim in 0..3 {
                for side in [-1, 1] {
                    assert_eq!(h.neighbor(r, dim, side), flat.neighbor(r, dim, side));
                }
            }
        }
    }
}
