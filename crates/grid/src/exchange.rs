//! Ghost-layer exchange (§4.3).
//!
//! "The ghost layer exchange is broken down into two parts. First, the
//! ghost-layers are packed into a separate buffer that is stored
//! contiguously in memory. Then, this buffer is sent to the neighboring
//! process in a single message using asynchronous MPI functions."
//!
//! The exchange runs dimension by dimension; each phase packs the full
//! (already-ghosted) extent of the previously exchanged dimensions, so
//! after the three phases the edge and corner ghosts needed by the D3C19
//! µ-kernel stencil are correct with only six messages.
//!
//! `CommOptions` mirrors Table 2: communication/computation overlap and
//! device-side packing ("GPUDirect"). Both are functionally transparent
//! here (correctness never depends on them); they change the recorded
//! traffic metadata which the cluster-scale model prices.

use crate::comm::Comm;
use crate::decompose::Decomposition;
use pf_fields::FieldArray;

/// Communication options of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommOptions {
    /// Overlap halo exchange with inner-region computation.
    pub overlap: bool,
    /// Pack on the device and send directly from device memory
    /// (GPUDirect); when false, buffers stage through host memory.
    pub gpudirect: bool,
    /// Coalesce the per-field face messages of fields synchronized
    /// together into one packed message per (neighbour, epoch) — the
    /// per-field pack/unpack sequences are concatenated unchanged, so
    /// ghosts stay bitwise identical while per-message overhead drops
    /// with the field count. On by default.
    pub batch: bool,
}

impl Default for CommOptions {
    fn default() -> Self {
        CommOptions {
            overlap: false,
            gpudirect: false,
            batch: true,
        }
    }
}

/// Field-tag marker of batched messages in the tag encoding — outside the
/// range real fields use, so a batched stream can never collide with a
/// per-field one.
const BATCH_FIELD_TAG: u32 = 0xFFFF;

fn tag(field_tag: u32, dim: usize, side: i32, epoch: u64) -> u64 {
    let s = if side < 0 { 0u64 } else { 1u64 };
    (epoch << 20) | ((field_tag as u64) << 4) | ((dim as u64) << 1) | s
}

/// Extent iterated in the transverse dimensions of a face slab: the full
/// ghosted range, so earlier phases' results propagate into edges/corners.
fn transverse_range(arr: &FieldArray, d: usize) -> (isize, isize) {
    let g = arr.ghost_layers() as isize;
    (-g, arr.shape()[d] as isize + g)
}

/// Pack the interior cells adjacent to the `side` face of dimension `dim`
/// (width = ghost layers), full ghosted extent transversally.
pub fn pack_face(arr: &FieldArray, dim: usize, side: i32) -> Vec<f64> {
    let g = arr.ghost_layers() as isize;
    let n = arr.shape()[dim] as isize;
    let own_range: Vec<isize> = if side < 0 {
        (0..g).collect()
    } else {
        (n - g..n).collect()
    };
    let mut out = Vec::new();
    let (t0a, t1a) = transverse_range(arr, (dim + 1) % 3);
    let (t0b, t1b) = transverse_range(arr, (dim + 2) % 3);
    for comp in 0..arr.components() {
        for &o in &own_range {
            for a in t0a..t1a {
                for b in t0b..t1b {
                    let mut c = [0isize; 3];
                    c[dim] = o;
                    c[(dim + 1) % 3] = a;
                    c[(dim + 2) % 3] = b;
                    out.push(arr.get(comp, c[0], c[1], c[2]));
                }
            }
        }
    }
    out
}

/// Unpack a buffer received from the `side` neighbour into this block's
/// ghost layers on that side.
pub fn unpack_face(arr: &mut FieldArray, dim: usize, side: i32, data: &[f64]) {
    let g = arr.ghost_layers() as isize;
    let n = arr.shape()[dim] as isize;
    let ghost_range: Vec<isize> = if side < 0 {
        (-g..0).collect()
    } else {
        (n..n + g).collect()
    };
    let mut it = data.iter();
    let (t0a, t1a) = transverse_range(arr, (dim + 1) % 3);
    let (t0b, t1b) = transverse_range(arr, (dim + 2) % 3);
    for comp in 0..arr.components() {
        for &o in &ghost_range {
            for a in t0a..t1a {
                for b in t0b..t1b {
                    let mut c = [0isize; 3];
                    c[dim] = o;
                    c[(dim + 1) % 3] = a;
                    c[(dim + 2) % 3] = b;
                    arr.set(comp, c[0], c[1], c[2], *it.next().expect("buffer size"));
                }
            }
        }
    }
    assert!(it.next().is_none(), "buffer size mismatch");
}

/// Post both face sends of one dimension phase (asynchronous: channel
/// sends never block).
fn send_dim(
    comm: &mut Comm,
    dec: &Decomposition,
    arr: &FieldArray,
    field_tag: u32,
    epoch: u64,
    dim: usize,
    opts: CommOptions,
) {
    let rank = comm.rank();
    for side in [-1i32, 1] {
        if let Some(nb) = dec.neighbor(rank, dim, side) {
            let buf = pack_face(arr, dim, side);
            // Host staging (no GPUDirect) is a timing concern only —
            // recorded via message metadata, not an extra copy here.
            let _ = opts;
            let t = tag(field_tag, dim, side, epoch);
            comm.send(nb, t, buf);
        }
    }
}

/// Complete both face receives of one dimension phase.
fn recv_dim(
    comm: &mut Comm,
    dec: &Decomposition,
    arr: &mut FieldArray,
    field_tag: u32,
    epoch: u64,
    dim: usize,
) {
    let rank = comm.rank();
    for side in [-1i32, 1] {
        if let Some(nb) = dec.neighbor(rank, dim, side) {
            // The neighbour sent with the *opposite* side marker.
            let t = tag(field_tag, dim, -side, epoch);
            let buf = comm.recv(nb, t);
            unpack_face(arr, dim, side, &buf);
        }
    }
}

/// One full phase of the dimension-ordered exchange: periodic self-wrap
/// when the block is its own neighbour, otherwise send both sides then
/// receive both sides.
fn exchange_dim(
    comm: &mut Comm,
    dec: &Decomposition,
    arr: &mut FieldArray,
    field_tag: u32,
    epoch: u64,
    dim: usize,
    opts: CommOptions,
) {
    if dec.grid[dim] == 1 && dec.periodic[dim] {
        // Self-neighbour: periodic wrap within the block.
        arr.apply_periodic(dim);
        return;
    }
    send_dim(comm, dec, arr, field_tag, epoch, dim, opts);
    recv_dim(comm, dec, arr, field_tag, epoch, dim);
}

/// Exchange all ghost layers of `arr` with the six face neighbours.
///
/// Dimensions are exchanged in order; within a phase both sides are sent
/// before either is received (asynchronous sends). Non-periodic boundaries
/// without a neighbour are skipped — physical boundary conditions are the
/// caller's responsibility.
pub fn exchange_halo(
    comm: &mut Comm,
    dec: &Decomposition,
    arr: &mut FieldArray,
    field_tag: u32,
    epoch: u64,
    opts: CommOptions,
) {
    let rank = comm.rank();
    let _span = pf_trace::span_at("grid.halo_exchange", rank);
    pf_trace::counter_at("grid.halo_exchanges", rank).incr(1);
    for dim in 0..3 {
        exchange_dim(comm, dec, arr, field_tag, epoch, dim, opts);
    }
}

/// First dimension whose ghost fill has to wait for a remote message —
/// every dimension before it is undivided in the process grid, so its
/// exchange phase is a local self-wrap (or a boundary no-op) that
/// [`begin_exchange`] completes eagerly. Returns 3 when no dimension is
/// decomposed (single rank): the whole exchange completes in `begin`.
///
/// The overlapped schedule only needs frontier shells along dimensions
/// `>= first_deferred_dim`; shells along earlier dimensions would guard
/// ghosts that are already as fresh as owned data when the interior runs.
pub fn first_deferred_dim(dec: &Decomposition) -> usize {
    (0..3).find(|&d| dec.grid[d] > 1).unwrap_or(3)
}

/// What one dimension phase of the exchange does for a given
/// decomposition — a pure description of the protocol structure, exposed
/// so the static comm verifier (pf-analyze's protocol pass, driven from
/// pf-core) can model the exchange without constructing communicators.
/// Depends only on whether the dimension is divided (`grid[d] > 1`) and
/// periodic — never on the rank count, which is why verifying the model
/// under all divided-patterns proves the protocol for arbitrary ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DimPhase {
    /// Undivided and periodic: ghost fill is a local wrap, no messages.
    LocalWrap,
    /// Undivided and non-periodic: nothing to do (physical boundary).
    Skip,
    /// Divided: async sends to both axis neighbours, then blocking
    /// receives (non-periodic boundary ranks skip matched pairs).
    SendRecv,
}

/// The per-dimension phase structure [`exchange_halo`] /
/// [`begin_exchange`]+[`finish_exchange`] execute for `dec`, in exchange
/// order. The deferred split point of the overlapped form is
/// [`first_deferred_dim`]: the first `SendRecv` entry.
pub fn exchange_shape(dec: &Decomposition) -> [DimPhase; 3] {
    [0, 1, 2].map(|d| {
        if dec.grid[d] > 1 {
            DimPhase::SendRecv
        } else if dec.periodic[d] {
            DimPhase::LocalWrap
        } else {
            DimPhase::Skip
        }
    })
}

/// In-flight halo exchange started by [`begin_exchange`]. Must be passed
/// back to [`finish_exchange`] (with the same field) to complete the
/// receives; dropping it without finishing would leave ghost layers stale
/// and the neighbours' tag-matched receives waiting forever.
#[must_use = "pass to finish_exchange to complete the halo receives"]
#[derive(Debug)]
pub struct HaloHandle {
    field_tag: u32,
    epoch: u64,
    /// First dimension whose receives are still outstanding
    /// ([`first_deferred_dim`]); dimensions before it completed in `begin`.
    deferred: usize,
}

/// Start an overlapped halo exchange: complete the exchange phases of
/// every leading undivided dimension (local wraps — no messages), then
/// post the face sends of the first decomposed dimension (channel sends
/// never block) and return a completion handle. The caller may then sweep
/// interior cells — anything that reads no ghost layer the deferred
/// dimensions fill — while the messages are in flight, and must call
/// [`finish_exchange`] before touching frontier cells.
///
/// Packing reads owned interior cells only (plus transverse ghosts, same
/// as the blocking schedule's phase at the same position), so kernels that
/// *write other fields* cannot invalidate the posted buffers: each send
/// owns a copy.
pub fn begin_exchange(
    comm: &mut Comm,
    dec: &Decomposition,
    arr: &mut FieldArray,
    field_tag: u32,
    epoch: u64,
    opts: CommOptions,
) -> HaloHandle {
    let rank = comm.rank();
    let _span = pf_trace::span_at("grid.halo_begin", rank);
    pf_trace::counter_at("grid.halo_exchanges", rank).incr(1);
    pf_trace::counter_at("grid.halo_overlapped", rank).incr(1);
    let deferred = first_deferred_dim(dec);
    for dim in 0..deferred {
        exchange_dim(comm, dec, arr, field_tag, epoch, dim, opts);
    }
    if deferred < 3 {
        send_dim(comm, dec, arr, field_tag, epoch, deferred, opts);
    }
    HaloHandle {
        field_tag,
        epoch,
        deferred,
    }
}

/// Complete an overlapped halo exchange: finish the deferred dimension's
/// receives, then run the remaining dimension phases (which must pack the
/// freshly received ghosts of earlier phases, so they cannot be posted
/// early). After this returns the ghost layers hold exactly what the
/// blocking [`exchange_halo`] would have produced — the pack/unpack
/// sequence is identical, only the first decomposed dimension's completion
/// is deferred.
pub fn finish_exchange(
    comm: &mut Comm,
    dec: &Decomposition,
    arr: &mut FieldArray,
    handle: HaloHandle,
    opts: CommOptions,
) {
    let rank = comm.rank();
    let _span = pf_trace::span_at("grid.halo_finish", rank);
    let HaloHandle {
        field_tag,
        epoch,
        deferred,
    } = handle;
    if deferred < 3 {
        recv_dim(comm, dec, arr, field_tag, epoch, deferred);
    }
    for dim in (deferred + 1)..3 {
        exchange_dim(comm, dec, arr, field_tag, epoch, dim, opts);
    }
}

/// Elements one field contributes to a face message of `dim`: ghost
/// width × full ghosted transverse extent × components — the exact length
/// [`pack_face`] produces, used to split a batched buffer back into its
/// per-field segments.
fn face_len(arr: &FieldArray, dim: usize) -> usize {
    let g = arr.ghost_layers();
    let (a0, a1) = transverse_range(arr, (dim + 1) % 3);
    let (b0, b1) = transverse_range(arr, (dim + 2) % 3);
    arr.components() * g * (a1 - a0) as usize * (b1 - b0) as usize
}

/// Post both face sends of one dimension phase for a *batch* of fields:
/// one message per (neighbour, epoch) carrying every field's face buffer
/// back to back, in batch order.
fn send_dim_batched(
    comm: &mut Comm,
    dec: &Decomposition,
    arrs: &[&mut FieldArray],
    epoch: u64,
    dim: usize,
) {
    let rank = comm.rank();
    for side in [-1i32, 1] {
        if let Some(nb) = dec.neighbor(rank, dim, side) {
            let total: usize = arrs.iter().map(|a| face_len(a, dim)).sum();
            let mut buf = Vec::with_capacity(total);
            for arr in arrs {
                buf.extend(pack_face(arr, dim, side));
            }
            let t = tag(BATCH_FIELD_TAG, dim, side, epoch);
            comm.send_batched(nb, t, buf, arrs.len());
        }
    }
}

/// Complete both face receives of one batched dimension phase, splitting
/// each message back into per-field segments and unpacking them in batch
/// order — the same per-field unpack sequence the unbatched path runs.
fn recv_dim_batched(
    comm: &mut Comm,
    dec: &Decomposition,
    arrs: &mut [&mut FieldArray],
    epoch: u64,
    dim: usize,
) {
    let rank = comm.rank();
    for side in [-1i32, 1] {
        if let Some(nb) = dec.neighbor(rank, dim, side) {
            let t = tag(BATCH_FIELD_TAG, dim, -side, epoch);
            let buf = comm.recv(nb, t);
            let mut off = 0usize;
            for arr in arrs.iter_mut() {
                let len = face_len(arr, dim);
                unpack_face(arr, dim, side, &buf[off..off + len]);
                off += len;
            }
            assert_eq!(off, buf.len(), "batched face buffer size mismatch");
        }
    }
}

fn exchange_dim_batched(
    comm: &mut Comm,
    dec: &Decomposition,
    arrs: &mut [&mut FieldArray],
    epoch: u64,
    dim: usize,
) {
    if dec.grid[dim] == 1 && dec.periodic[dim] {
        for arr in arrs.iter_mut() {
            arr.apply_periodic(dim);
        }
        return;
    }
    send_dim_batched(comm, dec, arrs, epoch, dim);
    recv_dim_batched(comm, dec, arrs, epoch, dim);
}

/// [`exchange_halo`] for several fields at once, coalescing the per-field
/// face messages of each dimension phase into a single packed message per
/// (neighbour, epoch). Every field's pack/unpack sequence is exactly the
/// one the unbatched exchange runs (segments are concatenated in batch
/// order, dimension order unchanged), so the resulting ghost layers are
/// bitwise identical — only the message count drops, from `6 × fields`
/// to 6 per full exchange.
pub fn exchange_halo_batched(
    comm: &mut Comm,
    dec: &Decomposition,
    arrs: &mut [&mut FieldArray],
    epoch: u64,
    _opts: CommOptions,
) {
    let rank = comm.rank();
    let _span = pf_trace::span_at("grid.halo_exchange", rank);
    pf_trace::counter_at("grid.halo_exchanges", rank).incr(arrs.len() as u64);
    for dim in 0..3 {
        exchange_dim_batched(comm, dec, arrs, epoch, dim);
    }
}

/// In-flight *batched* halo exchange; see [`HaloHandle`]. Carries the
/// batch size so `finish` can verify the caller hands back the same
/// fields in the same order.
#[must_use = "pass to finish_exchange_batched to complete the halo receives"]
#[derive(Debug)]
pub struct BatchHandle {
    epoch: u64,
    deferred: usize,
    nfields: usize,
}

/// [`begin_exchange`] for a batch of fields: complete the leading
/// undivided dimension phases for every field, then post the deferred
/// dimension's coalesced sends (one message per neighbour). The arrays
/// may return to their owner between `begin` and `finish` — each posted
/// send owns a copy of the packed faces.
pub fn begin_exchange_batched(
    comm: &mut Comm,
    dec: &Decomposition,
    arrs: &mut [&mut FieldArray],
    epoch: u64,
    _opts: CommOptions,
) -> BatchHandle {
    let rank = comm.rank();
    let _span = pf_trace::span_at("grid.halo_begin", rank);
    pf_trace::counter_at("grid.halo_exchanges", rank).incr(arrs.len() as u64);
    pf_trace::counter_at("grid.halo_overlapped", rank).incr(arrs.len() as u64);
    let deferred = first_deferred_dim(dec);
    for dim in 0..deferred {
        exchange_dim_batched(comm, dec, arrs, epoch, dim);
    }
    if deferred < 3 {
        send_dim_batched(comm, dec, arrs, epoch, deferred);
    }
    BatchHandle {
        epoch,
        deferred,
        nfields: arrs.len(),
    }
}

/// [`finish_exchange`] for a batch started by [`begin_exchange_batched`]:
/// complete the deferred dimension's coalesced receives, then run the
/// remaining dimension phases. Must receive the same fields in the same
/// order as `begin`.
pub fn finish_exchange_batched(
    comm: &mut Comm,
    dec: &Decomposition,
    arrs: &mut [&mut FieldArray],
    handle: BatchHandle,
    _opts: CommOptions,
) {
    let rank = comm.rank();
    let _span = pf_trace::span_at("grid.halo_finish", rank);
    let BatchHandle {
        epoch,
        deferred,
        nfields,
    } = handle;
    assert_eq!(nfields, arrs.len(), "batch finish with a different batch");
    if deferred < 3 {
        recv_dim_batched(comm, dec, arrs, epoch, deferred);
    }
    for dim in (deferred + 1)..3 {
        exchange_dim_batched(comm, dec, arrs, epoch, dim);
    }
}

/// Bytes one full halo exchange moves per rank for a field (both
/// directions, all dims) — consumed by the cluster network model.
pub fn halo_bytes(shape: [usize; 3], ghost: usize, components: usize) -> u64 {
    let g = shape[0] + 2 * ghost;
    let gy = shape[1] + 2 * ghost;
    let gz = shape[2] + 2 * ghost;
    let per_dim = [gy * gz, g * gz, g * gy];
    let mut total = 0u64;
    for faces in per_dim {
        total += 2 * (ghost * faces * components * 8) as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use parking_lot::Mutex;
    use pf_fields::Layout;

    #[test]
    fn pack_unpack_roundtrip_shapes() {
        let mut a = FieldArray::new("xh_a", [4, 3, 2], 2, 1, Layout::Fzyx);
        a.fill_with(0, |x, y, z| (x + 10 * y + 100 * z) as f64);
        a.fill_with(1, |x, y, z| -((x + 10 * y + 100 * z) as f64));
        let buf = pack_face(&a, 0, 1);
        // width 1 × (3+2) × (2+2) × 2 comps
        assert_eq!(buf.len(), 5 * 4 * 2);
        let mut b = FieldArray::new("xh_b", [4, 3, 2], 2, 1, Layout::Fzyx);
        unpack_face(&mut b, 0, -1, &buf);
        // b's low-x ghost now holds a's high-x interior.
        assert_eq!(b.get(0, -1, 0, 0), a.get(0, 3, 0, 0));
        assert_eq!(b.get(1, -1, 2, 1), a.get(1, 3, 2, 1));
    }

    #[test]
    fn two_rank_exchange_matches_periodic_reference() {
        // 2 ranks side by side in x over a periodic 8×4×4 domain must see
        // exactly what a single periodic block of 8×4×4 sees in its ghosts.
        let global = [8usize, 4, 4];
        let dec = Decomposition::new(global, 2, [true; 3]);
        assert_eq!(dec.grid, [2, 1, 1]);

        // Reference: one block with global extent, periodic everywhere.
        let mut reference = FieldArray::new("xh_ref", global, 1, 1, Layout::Fzyx);
        reference.fill_with(0, |x, y, z| (x + 10 * y + 100 * z) as f64);
        for d in 0..3 {
            reference.apply_periodic(d);
        }

        let results: Mutex<Vec<(usize, FieldArray)>> = Mutex::new(Vec::new());
        run_ranks(2, |mut comm| {
            let b = dec.block(comm.rank());
            let mut arr = FieldArray::new("xh_blk", b.shape, 1, 1, Layout::Fzyx);
            arr.fill_with(0, |x, y, z| {
                ((x as i64 + b.origin[0])
                    + 10 * (y as i64 + b.origin[1])
                    + 100 * (z as i64 + b.origin[2])) as f64
            });
            exchange_halo(&mut comm, &dec, &mut arr, 0, 0, CommOptions::default());
            results.lock().push((comm.rank(), arr));
        });

        let results = results.lock();
        for (rank, arr) in results.iter() {
            let b = dec.block(*rank);
            let g = 1isize;
            for z in -g..(b.shape[2] as isize + g) {
                for y in -g..(b.shape[1] as isize + g) {
                    for x in -g..(b.shape[0] as isize + g) {
                        // Map to reference coordinates (periodic wrap).
                        let rx = (x + b.origin[0] as isize).rem_euclid(global[0] as isize);
                        let ry = (y + b.origin[1] as isize).rem_euclid(global[1] as isize);
                        let rz = (z + b.origin[2] as isize).rem_euclid(global[2] as isize);
                        let want = reference.get(0, rx, ry, rz);
                        let got = arr.get(0, x, y, z);
                        assert_eq!(got, want, "rank {rank} ghost mismatch at ({x},{y},{z})");
                    }
                }
            }
        }
    }

    #[test]
    fn eight_rank_exchange_fills_corners() {
        let global = [8usize, 8, 8];
        let dec = Decomposition::new(global, 8, [true; 3]);
        let ok = Mutex::new(0usize);
        run_ranks(8, |mut comm| {
            let b = dec.block(comm.rank());
            let mut arr = FieldArray::new("xh_c", b.shape, 1, 1, Layout::Fzyx);
            arr.fill_with(0, |x, y, z| {
                ((x as i64 + b.origin[0])
                    + 10 * (y as i64 + b.origin[1])
                    + 100 * (z as i64 + b.origin[2])) as f64
            });
            exchange_halo(&mut comm, &dec, &mut arr, 1, 0, CommOptions::default());
            // The (−1,−1,−1) corner ghost must hold the periodic wrap value.
            let want = {
                let gx = (b.origin[0] - 1).rem_euclid(8);
                let gy = (b.origin[1] - 1).rem_euclid(8);
                let gz = (b.origin[2] - 1).rem_euclid(8);
                (gx + 10 * gy + 100 * gz) as f64
            };
            assert_eq!(arr.get(0, -1, -1, -1), want, "rank {}", comm.rank());
            *ok.lock() += 1;
        });
        assert_eq!(*ok.lock(), 8);
    }

    #[test]
    fn overlapped_exchange_matches_blocking_bitwise() {
        // 4 ranks (2×2×1 grid, so x and y have real neighbours and z is a
        // periodic self-wrap): begin/finish must leave every ghost cell
        // bitwise identical to the blocking schedule.
        let global = [8usize, 8, 4];
        let dec = Decomposition::new(global, 4, [true; 3]);
        let ok = Mutex::new(0usize);
        run_ranks(4, |mut comm| {
            let b = dec.block(comm.rank());
            let mut blocking = FieldArray::new("ov_blk", b.shape, 2, 1, Layout::Fzyx);
            for comp in 0..2 {
                blocking.fill_with(comp, |x, y, z| {
                    (((x as i64 + b.origin[0])
                        + 17 * (y as i64 + b.origin[1])
                        + 131 * (z as i64 + b.origin[2])) as f64)
                        .sin()
                        + comp as f64
                });
            }
            let mut overlapped = blocking.clone();
            exchange_halo(&mut comm, &dec, &mut blocking, 0, 0, CommOptions::default());
            let opts = CommOptions {
                overlap: true,
                ..CommOptions::default()
            };
            let h = begin_exchange(&mut comm, &dec, &mut overlapped, 0, 1, opts);
            finish_exchange(&mut comm, &dec, &mut overlapped, h, opts);
            let g = 1isize;
            for comp in 0..2 {
                for z in -g..(b.shape[2] as isize + g) {
                    for y in -g..(b.shape[1] as isize + g) {
                        for x in -g..(b.shape[0] as isize + g) {
                            let a = blocking.get(comp, x, y, z);
                            let o = overlapped.get(comp, x, y, z);
                            assert!(
                                a.to_bits() == o.to_bits(),
                                "rank {} comp {comp} mismatch at ({x},{y},{z})",
                                comm.rank()
                            );
                        }
                    }
                }
            }
            *ok.lock() += 1;
        });
        assert_eq!(*ok.lock(), 4);
    }

    #[test]
    fn leading_local_dims_complete_in_begin() {
        // [4,8,8] over 4 ranks decomposes [1,2,2]: x is undivided, so
        // begin must finish the x self-wrap eagerly and defer from y on —
        // and the result must still match the blocking exchange bitwise.
        let global = [4usize, 8, 8];
        let dec = Decomposition::new(global, 4, [true; 3]);
        assert_eq!(dec.grid, [1, 2, 2]);
        assert_eq!(first_deferred_dim(&dec), 1);
        let ok = Mutex::new(0usize);
        run_ranks(4, |mut comm| {
            let b = dec.block(comm.rank());
            let mut blocking = FieldArray::new("ld_blk", b.shape, 1, 1, Layout::Fzyx);
            blocking.fill_with(0, |x, y, z| {
                (((x as i64 + b.origin[0])
                    + 17 * (y as i64 + b.origin[1])
                    + 131 * (z as i64 + b.origin[2])) as f64)
                    .sin()
            });
            let mut overlapped = blocking.clone();
            exchange_halo(&mut comm, &dec, &mut blocking, 0, 0, CommOptions::default());
            let opts = CommOptions {
                overlap: true,
                ..CommOptions::default()
            };
            let h = begin_exchange(&mut comm, &dec, &mut overlapped, 0, 1, opts);
            // After begin, the x ghost layers (local periodic wrap) must
            // already be final: the frontier needs no x shells.
            let g = 1isize;
            for z in 0..b.shape[2] as isize {
                for y in 0..b.shape[1] as isize {
                    assert_eq!(
                        overlapped.get(0, -g, y, z).to_bits(),
                        overlapped.get(0, b.shape[0] as isize - g, y, z).to_bits(),
                        "x wrap not complete after begin"
                    );
                }
            }
            finish_exchange(&mut comm, &dec, &mut overlapped, h, opts);
            for z in -g..(b.shape[2] as isize + g) {
                for y in -g..(b.shape[1] as isize + g) {
                    for x in -g..(b.shape[0] as isize + g) {
                        assert!(
                            blocking.get(0, x, y, z).to_bits()
                                == overlapped.get(0, x, y, z).to_bits(),
                            "rank {} mismatch at ({x},{y},{z})",
                            comm.rank()
                        );
                    }
                }
            }
            *ok.lock() += 1;
        });
        assert_eq!(*ok.lock(), 4);
    }

    #[test]
    fn exchange_shape_mirrors_runtime_structure() {
        // [1,2,2] grid, periodic: x wraps locally, y/z message.
        let dec = Decomposition::new([4, 8, 8], 4, [true; 3]);
        assert_eq!(dec.grid, [1, 2, 2]);
        assert_eq!(
            exchange_shape(&dec),
            [DimPhase::LocalWrap, DimPhase::SendRecv, DimPhase::SendRecv]
        );
        // The deferred split point is the first SendRecv phase.
        assert_eq!(
            first_deferred_dim(&dec),
            exchange_shape(&dec)
                .iter()
                .position(|p| *p == DimPhase::SendRecv)
                .unwrap_or(3)
        );
        // Non-periodic undivided dims are physical boundaries: no wrap.
        let dec = Decomposition::new([4, 8, 8], 4, [false, true, true]);
        assert_eq!(exchange_shape(&dec)[0], DimPhase::Skip);
        // Single rank, periodic everywhere: all local wraps, nothing
        // deferred.
        let dec = Decomposition::new([4, 4, 4], 1, [true; 3]);
        assert_eq!(exchange_shape(&dec), [DimPhase::LocalWrap; 3]);
        assert_eq!(first_deferred_dim(&dec), 3);
    }

    #[test]
    fn halo_bytes_counts_both_directions() {
        let b = halo_bytes([10, 10, 10], 1, 2);
        // x faces: 12·12 cells ×2 sides; y: 12·12; z: 12·12 — ×2 comps ×8 B
        assert_eq!(b, (3 * 2 * 144 * 2 * 8) as u64);
    }

    /// The batching tentpole's correctness claim at the grid layer: a
    /// two-field batched exchange leaves every ghost cell of both fields
    /// bitwise identical to two independent unbatched exchanges.
    #[test]
    fn batched_exchange_matches_unbatched_bitwise() {
        let global = [8usize, 8, 4];
        let dec = Decomposition::new(global, 4, [true; 3]);
        let ok = Mutex::new(0usize);
        run_ranks(4, |mut comm| {
            let b = dec.block(comm.rank());
            let fill = |arr: &mut FieldArray, scale: f64| {
                for comp in 0..arr.components() {
                    arr.fill_with(comp, |x, y, z| {
                        (((x as i64 + b.origin[0])
                            + 23 * (y as i64 + b.origin[1])
                            + 171 * (z as i64 + b.origin[2])) as f64
                            * scale)
                            .cos()
                            + comp as f64
                    });
                }
            };
            let mut a0 = FieldArray::new("bt_a", b.shape, 2, 1, Layout::Fzyx);
            let mut b0 = FieldArray::new("bt_b", b.shape, 1, 1, Layout::Fzyx);
            fill(&mut a0, 1.0);
            fill(&mut b0, 0.37);
            let (mut a1, mut b1) = (a0.clone(), b0.clone());
            // Unbatched reference: two independent exchanges.
            exchange_halo(&mut comm, &dec, &mut a0, 0, 0, CommOptions::default());
            exchange_halo(&mut comm, &dec, &mut b0, 1, 1, CommOptions::default());
            // Batched: one message per (neighbour, epoch) carrying both.
            {
                let mut batch = [&mut a1, &mut b1];
                exchange_halo_batched(&mut comm, &dec, &mut batch, 2, CommOptions::default());
            }
            let g = 1isize;
            for (want, got) in [(&a0, &a1), (&b0, &b1)] {
                for comp in 0..want.components() {
                    for z in -g..(b.shape[2] as isize + g) {
                        for y in -g..(b.shape[1] as isize + g) {
                            for x in -g..(b.shape[0] as isize + g) {
                                assert_eq!(
                                    want.get(comp, x, y, z).to_bits(),
                                    got.get(comp, x, y, z).to_bits(),
                                    "rank {} {} comp {comp} at ({x},{y},{z})",
                                    comm.rank(),
                                    want.name(),
                                );
                            }
                        }
                    }
                }
            }
            *ok.lock() += 1;
        });
        assert_eq!(*ok.lock(), 4);
    }

    /// Overlapped batched begin/finish must equal the blocking batched
    /// exchange (and therefore the unbatched one) bitwise — including a
    /// grid with a leading undivided dimension.
    #[test]
    fn overlapped_batched_exchange_matches_blocking_bitwise() {
        for (global, ranks) in [([8usize, 8, 4], 4usize), ([4, 8, 8], 4)] {
            let dec = Decomposition::new(global, ranks, [true; 3]);
            let ok = Mutex::new(0usize);
            run_ranks(ranks, |mut comm| {
                let b = dec.block(comm.rank());
                let mut a0 = FieldArray::new("ob_a", b.shape, 2, 1, Layout::Fzyx);
                let mut b0 = FieldArray::new("ob_b", b.shape, 1, 1, Layout::Fzyx);
                for comp in 0..2 {
                    a0.fill_with(comp, |x, y, z| {
                        (((x as i64 + b.origin[0])
                            + 29 * (y as i64 + b.origin[1])
                            + 145 * (z as i64 + b.origin[2])) as f64)
                            .sin()
                            + comp as f64
                    });
                }
                b0.fill_with(0, |x, y, z| {
                    (((x as i64 + b.origin[0]) * 3
                        + 7 * (y as i64 + b.origin[1])
                        + 19 * (z as i64 + b.origin[2])) as f64)
                        .cos()
                });
                let (mut a1, mut b1) = (a0.clone(), b0.clone());
                {
                    let mut batch = [&mut a0, &mut b0];
                    exchange_halo_batched(&mut comm, &dec, &mut batch, 0, CommOptions::default());
                }
                {
                    let mut batch = [&mut a1, &mut b1];
                    let opts = CommOptions {
                        overlap: true,
                        ..CommOptions::default()
                    };
                    let h = begin_exchange_batched(&mut comm, &dec, &mut batch, 1, opts);
                    finish_exchange_batched(&mut comm, &dec, &mut batch, h, opts);
                }
                let g = 1isize;
                for (want, got) in [(&a0, &a1), (&b0, &b1)] {
                    for comp in 0..want.components() {
                        for z in -g..(b.shape[2] as isize + g) {
                            for y in -g..(b.shape[1] as isize + g) {
                                for x in -g..(b.shape[0] as isize + g) {
                                    assert_eq!(
                                        want.get(comp, x, y, z).to_bits(),
                                        got.get(comp, x, y, z).to_bits(),
                                        "rank {} grid {:?}",
                                        comm.rank(),
                                        dec.grid
                                    );
                                }
                            }
                        }
                    }
                }
                *ok.lock() += 1;
            });
            assert_eq!(*ok.lock(), ranks);
        }
    }
}
