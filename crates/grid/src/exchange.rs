//! Ghost-layer exchange (§4.3).
//!
//! "The ghost layer exchange is broken down into two parts. First, the
//! ghost-layers are packed into a separate buffer that is stored
//! contiguously in memory. Then, this buffer is sent to the neighboring
//! process in a single message using asynchronous MPI functions."
//!
//! The exchange runs dimension by dimension; each phase packs the full
//! (already-ghosted) extent of the previously exchanged dimensions, so
//! after the three phases the edge and corner ghosts needed by the D3C19
//! µ-kernel stencil are correct with only six messages.
//!
//! `CommOptions` mirrors Table 2: communication/computation overlap and
//! device-side packing ("GPUDirect"). Both are functionally transparent
//! here (correctness never depends on them); they change the recorded
//! traffic metadata which the cluster-scale model prices.

use crate::comm::Comm;
use crate::decompose::Decomposition;
use pf_fields::FieldArray;

/// Communication options of Table 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommOptions {
    /// Overlap halo exchange with inner-region computation.
    pub overlap: bool,
    /// Pack on the device and send directly from device memory
    /// (GPUDirect); when false, buffers stage through host memory.
    pub gpudirect: bool,
}

fn tag(field_tag: u32, dim: usize, side: i32, epoch: u64) -> u64 {
    let s = if side < 0 { 0u64 } else { 1u64 };
    (epoch << 20) | ((field_tag as u64) << 4) | ((dim as u64) << 1) | s
}

/// Extent iterated in the transverse dimensions of a face slab: the full
/// ghosted range, so earlier phases' results propagate into edges/corners.
fn transverse_range(arr: &FieldArray, d: usize) -> (isize, isize) {
    let g = arr.ghost_layers() as isize;
    (-g, arr.shape()[d] as isize + g)
}

/// Pack the interior cells adjacent to the `side` face of dimension `dim`
/// (width = ghost layers), full ghosted extent transversally.
pub fn pack_face(arr: &FieldArray, dim: usize, side: i32) -> Vec<f64> {
    let g = arr.ghost_layers() as isize;
    let n = arr.shape()[dim] as isize;
    let own_range: Vec<isize> = if side < 0 {
        (0..g).collect()
    } else {
        (n - g..n).collect()
    };
    let mut out = Vec::new();
    let (t0a, t1a) = transverse_range(arr, (dim + 1) % 3);
    let (t0b, t1b) = transverse_range(arr, (dim + 2) % 3);
    for comp in 0..arr.components() {
        for &o in &own_range {
            for a in t0a..t1a {
                for b in t0b..t1b {
                    let mut c = [0isize; 3];
                    c[dim] = o;
                    c[(dim + 1) % 3] = a;
                    c[(dim + 2) % 3] = b;
                    out.push(arr.get(comp, c[0], c[1], c[2]));
                }
            }
        }
    }
    out
}

/// Unpack a buffer received from the `side` neighbour into this block's
/// ghost layers on that side.
pub fn unpack_face(arr: &mut FieldArray, dim: usize, side: i32, data: &[f64]) {
    let g = arr.ghost_layers() as isize;
    let n = arr.shape()[dim] as isize;
    let ghost_range: Vec<isize> = if side < 0 {
        (-g..0).collect()
    } else {
        (n..n + g).collect()
    };
    let mut it = data.iter();
    let (t0a, t1a) = transverse_range(arr, (dim + 1) % 3);
    let (t0b, t1b) = transverse_range(arr, (dim + 2) % 3);
    for comp in 0..arr.components() {
        for &o in &ghost_range {
            for a in t0a..t1a {
                for b in t0b..t1b {
                    let mut c = [0isize; 3];
                    c[dim] = o;
                    c[(dim + 1) % 3] = a;
                    c[(dim + 2) % 3] = b;
                    arr.set(comp, c[0], c[1], c[2], *it.next().expect("buffer size"));
                }
            }
        }
    }
    assert!(it.next().is_none(), "buffer size mismatch");
}

/// Exchange all ghost layers of `arr` with the six face neighbours.
///
/// Dimensions are exchanged in order; within a phase both sides are sent
/// before either is received (asynchronous sends). Non-periodic boundaries
/// without a neighbour are skipped — physical boundary conditions are the
/// caller's responsibility.
pub fn exchange_halo(
    comm: &mut Comm,
    dec: &Decomposition,
    arr: &mut FieldArray,
    field_tag: u32,
    epoch: u64,
    opts: CommOptions,
) {
    let rank = comm.rank();
    let _span = pf_trace::span_at("grid.halo_exchange", rank);
    pf_trace::counter_at("grid.halo_exchanges", rank).incr(1);
    for dim in 0..3 {
        if dec.grid[dim] == 1 && dec.periodic[dim] {
            // Self-neighbour: periodic wrap within the block.
            arr.apply_periodic(dim);
            continue;
        }
        for side in [-1i32, 1] {
            if let Some(nb) = dec.neighbor(rank, dim, side) {
                let buf = pack_face(arr, dim, side);
                // Host staging (no GPUDirect) is a timing concern only —
                // recorded via message metadata, not an extra copy here.
                let _ = opts;
                let t = tag(field_tag, dim, side, epoch);
                comm.send(nb, t, buf);
            }
        }
        for side in [-1i32, 1] {
            if let Some(nb) = dec.neighbor(rank, dim, side) {
                // The neighbour sent with the *opposite* side marker.
                let t = tag(field_tag, dim, -side, epoch);
                let buf = comm.recv(nb, t);
                unpack_face(arr, dim, side, &buf);
            }
        }
    }
}

/// Bytes one full halo exchange moves per rank for a field (both
/// directions, all dims) — consumed by the cluster network model.
pub fn halo_bytes(shape: [usize; 3], ghost: usize, components: usize) -> u64 {
    let g = shape[0] + 2 * ghost;
    let gy = shape[1] + 2 * ghost;
    let gz = shape[2] + 2 * ghost;
    let per_dim = [gy * gz, g * gz, g * gy];
    let mut total = 0u64;
    for faces in per_dim {
        total += 2 * (ghost * faces * components * 8) as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use parking_lot::Mutex;
    use pf_fields::Layout;

    #[test]
    fn pack_unpack_roundtrip_shapes() {
        let mut a = FieldArray::new("xh_a", [4, 3, 2], 2, 1, Layout::Fzyx);
        a.fill_with(0, |x, y, z| (x + 10 * y + 100 * z) as f64);
        a.fill_with(1, |x, y, z| -((x + 10 * y + 100 * z) as f64));
        let buf = pack_face(&a, 0, 1);
        // width 1 × (3+2) × (2+2) × 2 comps
        assert_eq!(buf.len(), 5 * 4 * 2);
        let mut b = FieldArray::new("xh_b", [4, 3, 2], 2, 1, Layout::Fzyx);
        unpack_face(&mut b, 0, -1, &buf);
        // b's low-x ghost now holds a's high-x interior.
        assert_eq!(b.get(0, -1, 0, 0), a.get(0, 3, 0, 0));
        assert_eq!(b.get(1, -1, 2, 1), a.get(1, 3, 2, 1));
    }

    #[test]
    fn two_rank_exchange_matches_periodic_reference() {
        // 2 ranks side by side in x over a periodic 8×4×4 domain must see
        // exactly what a single periodic block of 8×4×4 sees in its ghosts.
        let global = [8usize, 4, 4];
        let dec = Decomposition::new(global, 2, [true; 3]);
        assert_eq!(dec.grid, [2, 1, 1]);

        // Reference: one block with global extent, periodic everywhere.
        let mut reference = FieldArray::new("xh_ref", global, 1, 1, Layout::Fzyx);
        reference.fill_with(0, |x, y, z| (x + 10 * y + 100 * z) as f64);
        for d in 0..3 {
            reference.apply_periodic(d);
        }

        let results: Mutex<Vec<(usize, FieldArray)>> = Mutex::new(Vec::new());
        run_ranks(2, |mut comm| {
            let b = dec.block(comm.rank());
            let mut arr = FieldArray::new("xh_blk", b.shape, 1, 1, Layout::Fzyx);
            arr.fill_with(0, |x, y, z| {
                ((x as i64 + b.origin[0])
                    + 10 * (y as i64 + b.origin[1])
                    + 100 * (z as i64 + b.origin[2])) as f64
            });
            exchange_halo(&mut comm, &dec, &mut arr, 0, 0, CommOptions::default());
            results.lock().push((comm.rank(), arr));
        });

        let results = results.lock();
        for (rank, arr) in results.iter() {
            let b = dec.block(*rank);
            let g = 1isize;
            for z in -g..(b.shape[2] as isize + g) {
                for y in -g..(b.shape[1] as isize + g) {
                    for x in -g..(b.shape[0] as isize + g) {
                        // Map to reference coordinates (periodic wrap).
                        let rx = (x + b.origin[0] as isize).rem_euclid(global[0] as isize);
                        let ry = (y + b.origin[1] as isize).rem_euclid(global[1] as isize);
                        let rz = (z + b.origin[2] as isize).rem_euclid(global[2] as isize);
                        let want = reference.get(0, rx, ry, rz);
                        let got = arr.get(0, x, y, z);
                        assert_eq!(got, want, "rank {rank} ghost mismatch at ({x},{y},{z})");
                    }
                }
            }
        }
    }

    #[test]
    fn eight_rank_exchange_fills_corners() {
        let global = [8usize, 8, 8];
        let dec = Decomposition::new(global, 8, [true; 3]);
        let ok = Mutex::new(0usize);
        run_ranks(8, |mut comm| {
            let b = dec.block(comm.rank());
            let mut arr = FieldArray::new("xh_c", b.shape, 1, 1, Layout::Fzyx);
            arr.fill_with(0, |x, y, z| {
                ((x as i64 + b.origin[0])
                    + 10 * (y as i64 + b.origin[1])
                    + 100 * (z as i64 + b.origin[2])) as f64
            });
            exchange_halo(&mut comm, &dec, &mut arr, 1, 0, CommOptions::default());
            // The (−1,−1,−1) corner ghost must hold the periodic wrap value.
            let want = {
                let gx = (b.origin[0] - 1).rem_euclid(8);
                let gy = (b.origin[1] - 1).rem_euclid(8);
                let gz = (b.origin[2] - 1).rem_euclid(8);
                (gx + 10 * gy + 100 * gz) as f64
            };
            assert_eq!(arr.get(0, -1, -1, -1), want, "rank {}", comm.rank());
            *ok.lock() += 1;
        });
        assert_eq!(*ok.lock(), 8);
    }

    #[test]
    fn halo_bytes_counts_both_directions() {
        let b = halo_bytes([10, 10, 10], 1, 2);
        // x faces: 12·12 cells ×2 sides; y: 12·12; z: 12·12 — ×2 comps ×8 B
        assert_eq!(b, (3 * 2 * 144 * 2 * 8) as u64);
    }
}
