//! Canonicalization (auto-simplification) and expansion.
//!
//! The constructors in `Expr` delegate here. The invariants maintained:
//!
//! * `Add` is flat, contains at most one leading numeric term, no two terms
//!   with the same non-numeric part, and is sorted under the structural order.
//! * `Mul` is flat, contains at most one leading numeric coefficient, no two
//!   factors with the same base (exponents are merged), and is sorted.
//! * `Pow` folds numeric cases, strips exponents 0/1, merges integer nested
//!   exponents and distributes integer powers over products.
//!
//! These invariants are what make "terms cancel", "x·x → x²" and global CSE
//! work without a search.

use crate::expr::{Expr, Node};
use std::collections::BTreeMap;

/// Split a term into (numeric coefficient, remainder-product).
/// `3·x·y → (3, x·y)`, `x → (1, x)`, `5 → (5, 1)`.
pub(crate) fn split_coeff(term: &Expr) -> (f64, Expr) {
    match term.node() {
        Node::Num(v) => (*v, Expr::one()),
        Node::Mul(fs) => {
            if let Some(c) = fs.first().and_then(|f| f.as_num()) {
                let rest: Vec<Expr> = fs[1..].to_vec();
                let rest = if rest.len() == 1 {
                    rest.into_iter().next().expect("len checked")
                } else {
                    // Already canonical (sorted, merged) — rebuild cheaply.
                    Expr::from_node(Node::Mul(rest))
                };
                (c, rest)
            } else {
                (1.0, term.clone())
            }
        }
        _ => (1.0, term.clone()),
    }
}

/// Split a factor into (base, exponent). `x^3 → (x, 3)`, `x → (x, 1)`.
fn split_pow(factor: &Expr) -> (Expr, Expr) {
    match factor.node() {
        Node::Pow(b, e) => (b.clone(), e.clone()),
        _ => (factor.clone(), Expr::one()),
    }
}

pub fn make_add(terms: Vec<Expr>) -> Expr {
    let mut constant = 0.0f64;
    // BTreeMap keyed on the non-numeric part keeps deterministic order.
    let mut collected: BTreeMap<Expr, f64> = BTreeMap::new();

    let mut stack = terms;
    stack.reverse();
    while let Some(t) = stack.pop() {
        match t.node() {
            Node::Num(v) => constant += v,
            Node::Add(inner) => {
                for x in inner.iter().rev() {
                    stack.push(x.clone());
                }
            }
            _ => {
                let (c, rest) = split_coeff(&t);
                if rest.is_one() {
                    constant += c;
                } else {
                    *collected.entry(rest).or_insert(0.0) += c;
                }
            }
        }
    }

    let mut out: Vec<Expr> = Vec::with_capacity(collected.len() + 1);
    if constant != 0.0 {
        out.push(Expr::num(constant));
    }
    for (rest, coeff) in collected {
        if coeff == 0.0 {
            continue;
        }
        if coeff == 1.0 {
            out.push(rest);
        } else {
            out.push(make_mul(vec![Expr::num(coeff), rest]));
        }
    }

    match out.len() {
        0 => Expr::zero(),
        1 => out.into_iter().next().expect("len checked"),
        _ => Expr::from_node(Node::Add(out)),
    }
}

pub fn make_mul(factors: Vec<Expr>) -> Expr {
    let mut coeff = 1.0f64;
    let mut collected: BTreeMap<Expr, Vec<Expr>> = BTreeMap::new();

    let mut stack = factors;
    stack.reverse();
    while let Some(f) = stack.pop() {
        match f.node() {
            Node::Num(v) => {
                coeff *= v;
                if coeff == 0.0 {
                    return Expr::zero();
                }
            }
            Node::Mul(inner) => {
                for x in inner.iter().rev() {
                    stack.push(x.clone());
                }
            }
            _ => {
                let (base, exp) = split_pow(&f);
                collected.entry(base).or_default().push(exp);
            }
        }
    }

    let mut out: Vec<Expr> = Vec::with_capacity(collected.len() + 1);
    for base in collected.keys() {
        let exps = &collected[base];
        let total = if exps.len() == 1 {
            exps[0].clone()
        } else {
            make_add(exps.clone())
        };
        let p = make_pow(base.clone(), total);
        match p.node() {
            Node::Num(v) => coeff *= v,
            _ => out.push(p),
        }
    }
    if coeff == 0.0 {
        return Expr::zero();
    }

    out.sort();
    // Distribute a pure numeric coefficient over a lone sum (sympy does the
    // same): without this, `x - (c + x)` would not cancel, because the
    // negated sum would stay opaque inside the product.
    if coeff != 1.0 && out.len() == 1 {
        if let Node::Add(terms) = out[0].node() {
            let distributed: Vec<Expr> = terms
                .iter()
                .map(|t| make_mul(vec![Expr::num(coeff), t.clone()]))
                .collect();
            return make_add(distributed);
        }
    }
    if coeff != 1.0 {
        out.insert(0, Expr::num(coeff));
    }
    match out.len() {
        0 => Expr::one(),
        1 => out.into_iter().next().expect("len checked"),
        _ => Expr::from_node(Node::Mul(out)),
    }
}

fn is_integer(v: f64) -> bool {
    v.fract() == 0.0 && v.abs() < 2f64.powi(52)
}

pub fn make_pow(base: Expr, exp: Expr) -> Expr {
    if let Some(e) = exp.as_num() {
        if e == 0.0 {
            return Expr::one();
        }
        if e == 1.0 {
            return base;
        }
        if let Some(b) = base.as_num() {
            let v = b.powf(e);
            if v.is_finite() {
                return Expr::num(v);
            }
        }
        if is_integer(e) {
            // (x^a)^n → x^(a·n) is always valid for integer n.
            if let Node::Pow(inner_b, inner_e) = base.node() {
                let merged = make_mul(vec![inner_e.clone(), Expr::num(e)]);
                return make_pow(inner_b.clone(), merged);
            }
            // (x·y)^n → x^n · y^n for integer n.
            if let Node::Mul(fs) = base.node() {
                let parts: Vec<Expr> = fs
                    .iter()
                    .map(|f| make_pow(f.clone(), Expr::num(e)))
                    .collect();
                return make_mul(parts);
            }
        }
    }
    if base.is_one() {
        return Expr::one();
    }
    if base.is_zero() {
        if let Some(e) = exp.as_num() {
            if e > 0.0 {
                return Expr::zero();
            }
        }
    }
    Expr::from_node(Node::Pow(base, exp))
}

/// Fully distribute products over sums and expand small integer powers of
/// sums. Used before term-wise simplification and op counting, mirroring the
/// paper's "terms are simplified individually by expansion" step.
pub fn expand(e: &Expr) -> Expr {
    // A global work budget bounds the total number of distributed terms
    // produced across *all* nested distributions: rational/irrational
    // factors (anisotropy terms) make full expansion both useless and
    // explosive, so once the budget is gone the remaining nodes pass
    // through unexpanded.
    let mut budget = EXPAND_BUDGET;
    expand_depth(e, 0, &mut std::collections::HashMap::new(), &mut budget)
}

const EXPAND_MAX_DEPTH: usize = 64;
const EXPAND_MAX_TERMS: usize = 2_000;
const EXPAND_BUDGET: usize = 100_000;

fn expand_depth(
    e: &Expr,
    depth: usize,
    memo: &mut std::collections::HashMap<usize, Expr>,
    budget: &mut usize,
) -> Expr {
    if depth > EXPAND_MAX_DEPTH || *budget == 0 {
        return e.clone();
    }
    if let Some(hit) = memo.get(&e.node_id()) {
        return hit.clone();
    }
    let expanded_children: Vec<Expr> = e
        .children()
        .iter()
        .map(|c| expand_depth(c, depth + 1, memo, budget))
        .collect();
    let rebuilt = e.with_children(expanded_children);
    let out = expand_top(&rebuilt, depth, budget);
    memo.insert(e.node_id(), out.clone());
    out
}

/// Term list of an expression viewed as a sum.
fn terms_of(e: &Expr) -> Vec<Expr> {
    match e.node() {
        Node::Add(ts) => ts.clone(),
        _ => vec![e.clone()],
    }
}

/// Does the top node still contain something to distribute?
fn needs_expansion(e: &Expr) -> bool {
    let pow_of_sum = |x: &Expr| {
        matches!(
            x.node(),
            Node::Pow(b, ex)
                if matches!(b.node(), Node::Add(_))
                    && ex.as_num().is_some_and(|n| is_integer(n) && (2.0..=8.0).contains(&n))
        )
    };
    match e.node() {
        Node::Mul(fs) => fs
            .iter()
            .any(|f| matches!(f.node(), Node::Add(_)) || pow_of_sum(f)),
        Node::Pow(_, _) => pow_of_sum(e),
        _ => false,
    }
}

/// Expand the *top* node, assuming children are already expanded.
fn expand_top(e: &Expr, depth: usize, budget: &mut usize) -> Expr {
    if depth > EXPAND_MAX_DEPTH || !needs_expansion(e) || *budget == 0 {
        return e.clone();
    }
    let factor_lists: Vec<Vec<Expr>> = match e.node() {
        // `Pow(Add, n)` factors are expanded first so their term lists split.
        Node::Mul(fs) => fs
            .iter()
            .map(|f| terms_of(&expand_top(f, depth + 1, budget)))
            .collect(),
        Node::Pow(b, ex) => {
            if let (Node::Add(ts), Some(n)) = (b.node(), ex.as_num()) {
                if is_integer(n) && (2.0..=8.0).contains(&n) {
                    std::iter::repeat_n(ts.clone(), n as usize).collect()
                } else {
                    return e.clone();
                }
            } else {
                return e.clone();
            }
        }
        _ => return e.clone(),
    };

    // Cross-product of the per-factor term lists. Each combination is a
    // product of non-`Add` terms, so `make_mul` cannot re-create the node we
    // started from — but exponent merging may still yield `Add` (flattened by
    // `make_add`) or a `Pow(Add, n)` with a *smaller* total exponent, which
    // we expand recursively (strictly decreasing, hence terminating).
    let mut acc: Vec<Expr> = vec![Expr::one()];
    for list in &factor_lists {
        if acc.len() * list.len() > EXPAND_MAX_TERMS || acc.len() * list.len() > *budget {
            return e.clone();
        }
        *budget -= acc.len() * list.len();
        let mut next = Vec::with_capacity(acc.len() * list.len());
        for a in &acc {
            for t in list {
                let prod = make_mul(vec![a.clone(), t.clone()]);
                let prod = match prod.node() {
                    Node::Mul(_) | Node::Pow(_, _) => expand_top(&prod, depth + 1, budget),
                    _ => prod,
                };
                next.extend(terms_of(&prod));
            }
        }
        acc = next;
    }
    make_add(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn x() -> Expr {
        Expr::sym("simp_x")
    }
    fn y() -> Expr {
        Expr::sym("simp_y")
    }

    #[test]
    fn add_collects_and_cancels() {
        let e = 2.0 * x() + 3.0 * x() - 5.0 * x();
        assert!(e.is_zero());
    }

    #[test]
    fn add_folds_constants_across_nesting() {
        let e = (x() + 1.0) + (2.0 + x());
        assert_eq!(e, 2.0 * x() + 3.0);
    }

    #[test]
    fn mul_merges_exponents() {
        let e = Expr::powi(x(), 2) * Expr::powi(x(), 3);
        assert_eq!(e, Expr::powi(x(), 5));
    }

    #[test]
    fn mul_cancels_reciprocal() {
        let e = x() * Expr::recip(x());
        assert!(e.is_one());
    }

    #[test]
    fn numeric_reciprocal_folds() {
        let e = Expr::recip(Expr::num(4.0));
        assert_eq!(e.as_num(), Some(0.25));
    }

    #[test]
    fn pow_zero_and_one() {
        assert!(Expr::powi(x(), 0).is_one());
        assert_eq!(Expr::powi(x(), 1), x());
        assert!(Expr::powi(Expr::zero(), 3).is_zero());
        assert!(Expr::pow(Expr::one(), x()).is_one());
    }

    #[test]
    fn nested_integer_pow_merges() {
        let e = Expr::powi(Expr::powi(x(), 2), 3);
        assert_eq!(e, Expr::powi(x(), 6));
    }

    #[test]
    fn sqrt_squared_merges() {
        // (x^(1/2))^2 → x (integer outer exponent).
        let e = Expr::powi(Expr::sqrt(x()), 2);
        assert_eq!(e, x());
    }

    #[test]
    fn integer_pow_distributes_over_product() {
        let e = Expr::powi(x() * y(), 2);
        assert_eq!(e, Expr::powi(x(), 2) * Expr::powi(y(), 2));
    }

    #[test]
    fn fractional_pow_does_not_distribute() {
        let e = Expr::sqrt(x() * y());
        match e.node() {
            Node::Pow(b, _) => assert!(matches!(b.node(), Node::Mul(_))),
            other => panic!("expected Pow, got {other:?}"),
        }
    }

    #[test]
    fn expand_binomial_square() {
        let e = expand(&Expr::powi(x() + y(), 2));
        let expected = Expr::powi(x(), 2) + 2.0 * x() * y() + Expr::powi(y(), 2);
        assert_eq!(e, expected);
    }

    #[test]
    fn expand_distributes_product_of_sums() {
        let e = expand(&((x() + 1.0) * (y() + 2.0)));
        let expected = x() * y() + 2.0 * x() + y() + 2.0;
        assert_eq!(e, expected);
    }

    #[test]
    fn expand_then_cancel() {
        // (x+y)^2 - x^2 - 2xy - y^2 == 0 only after expansion.
        let e =
            Expr::powi(x() + y(), 2) - Expr::powi(x(), 2) - 2.0 * x() * y() - Expr::powi(y(), 2);
        assert!(expand(&e).is_zero());
    }

    #[test]
    fn coefficient_normalization() {
        // 6·x / 3 → 2·x via numeric folding through mul.
        let e = (6.0 * x()) / 3.0;
        assert_eq!(e, 2.0 * x());
    }
}

#[cfg(test)]
mod canonical_invariants {
    use crate::expr::{Expr, Node};
    use proptest::prelude::*;

    fn arb_small_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-20i32..20).prop_map(|v| Expr::num(v as f64 / 4.0)),
            Just(Expr::sym("ci_a")),
            Just(Expr::sym("ci_b")),
            Just(Expr::sym("ci_c")),
        ];
        leaf.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
                (1i64..4, inner.clone()).prop_map(|(n, a)| Expr::powi(a, n)),
            ]
        })
    }

    /// Check the canonical-form invariants on every node of an expression.
    fn assert_canonical(e: &Expr) {
        e.visit(&mut |n| match n.node() {
            Node::Add(ts) => {
                assert!(ts.len() >= 2, "degenerate sum");
                // Flat: no nested Add; at most one leading numeric term; no
                // two terms with the same non-numeric part (they'd have been
                // collected); sorted.
                for t in ts {
                    assert!(!matches!(t.node(), Node::Add(_)), "nested Add in {e}");
                }
                assert!(
                    ts[1..].iter().all(|t| t.as_num().is_none()),
                    "non-leading numeric term in {e}"
                );
                // Terms are ordered by their coefficient-stripped parts
                // (the BTreeMap key of `make_add`), which also implies no
                // two terms share a non-numeric part.
                let keys: Vec<Expr> = ts
                    .iter()
                    .filter(|t| t.as_num().is_none())
                    .map(|t| crate::simplify::split_coeff(t).1)
                    .collect();
                assert!(
                    keys.windows(2).all(|w| w[0] < w[1]),
                    "unsorted or duplicate term keys in {e}"
                );
            }
            Node::Mul(fs) => {
                assert!(fs.len() >= 2, "degenerate product");
                for f in fs {
                    assert!(!matches!(f.node(), Node::Mul(_)), "nested Mul in {e}");
                }
                assert!(
                    fs[1..].iter().all(|f| f.as_num().is_none()),
                    "non-leading numeric factor in {e}"
                );
                assert!(!fs.iter().any(|f| f.is_one()), "unit factor in {e}");
            }
            Node::Pow(_, ex) => {
                assert!(ex.as_num() != Some(0.0), "x^0 not folded in {e}");
                assert!(ex.as_num() != Some(1.0), "x^1 not folded in {e}");
            }
            _ => {}
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn constructors_always_yield_canonical_forms(e in arb_small_expr()) {
            assert_canonical(&e);
            assert_canonical(&crate::simplify::expand(&e));
        }

        #[test]
        fn structural_equality_is_an_equivalence(a in arb_small_expr(), b in arb_small_expr()) {
            prop_assert!(a == a.clone());
            if a == b {
                prop_assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
                // Hash consistency.
                use std::collections::hash_map::DefaultHasher;
                use std::hash::{Hash, Hasher};
                let h = |x: &Expr| {
                    let mut s = DefaultHasher::new();
                    x.hash(&mut s);
                    s.finish()
                };
                prop_assert_eq!(h(&a), h(&b));
            }
        }

        #[test]
        fn addition_is_commutative_and_associative_canonically(
            a in arb_small_expr(), b in arb_small_expr(), c in arb_small_expr()
        ) {
            prop_assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
            prop_assert_eq!(
                (a.clone() + b.clone()) + c.clone(),
                a.clone() + (b + c)
            );
        }

        #[test]
        fn subtracting_self_cancels(e in arb_small_expr()) {
            prop_assert!((e.clone() - e).is_zero());
        }
    }
}
