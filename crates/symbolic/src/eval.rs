//! Direct (slow-path) evaluation of expressions.
//!
//! Used for testing algebraic transformations against numeric ground truth
//! (e.g. "simplify/CSE/expand preserve the value") and as the reference
//! executor the compiled-tape backend is validated against.

use crate::expr::{Expr, Node};
use crate::field::Access;
use crate::symbol::Symbol;
use std::collections::HashMap;

/// Supplies numeric values for the leaves of an expression.
pub trait EvalCtx {
    fn sym(&self, s: Symbol) -> f64;
    fn access(&self, a: Access) -> f64;
    fn coord(&self, _d: usize) -> f64 {
        0.0
    }
    fn time(&self) -> f64 {
        0.0
    }
    fn cell_idx(&self, _d: usize) -> f64 {
        0.0
    }
    fn rand(&self, _lane: usize) -> f64 {
        0.0
    }
}

/// Map-backed context for tests and small drivers.
#[derive(Default, Clone)]
pub struct MapCtx {
    pub syms: HashMap<Symbol, f64>,
    pub fields: HashMap<Access, f64>,
    pub coords: [f64; 3],
    pub time: f64,
}

impl MapCtx {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, name: &str, v: f64) -> &mut Self {
        self.syms.insert(Symbol::new(name), v);
        self
    }

    pub fn set_access(&mut self, a: Access, v: f64) -> &mut Self {
        self.fields.insert(a, v);
        self
    }
}

impl EvalCtx for MapCtx {
    fn sym(&self, s: Symbol) -> f64 {
        *self
            .syms
            .get(&s)
            .unwrap_or_else(|| panic!("no value bound for symbol {s}"))
    }

    fn access(&self, a: Access) -> f64 {
        *self
            .fields
            .get(&a)
            .unwrap_or_else(|| panic!("no value bound for access {a:?}"))
    }

    fn coord(&self, d: usize) -> f64 {
        self.coords[d]
    }

    fn time(&self) -> f64 {
        self.time
    }
}

impl Expr {
    /// Evaluate the expression. Panics on a pending continuous `Diff` node —
    /// those must be discretized before numeric evaluation makes sense.
    pub fn eval(&self, ctx: &impl EvalCtx) -> f64 {
        match self.node() {
            Node::Num(v) => *v,
            Node::Sym(s) => ctx.sym(*s),
            Node::Coord(d) => ctx.coord(*d as usize),
            Node::Time => ctx.time(),
            Node::CellIdx(d) => ctx.cell_idx(*d as usize),
            Node::Access(a) => ctx.access(*a),
            Node::Rand(k) => ctx.rand(*k as usize),
            Node::Add(ts) => ts.iter().map(|t| t.eval(ctx)).sum(),
            Node::Mul(fs) => fs.iter().map(|f| f.eval(ctx)).product(),
            Node::Pow(b, e) => b.eval(ctx).powf(e.eval(ctx)),
            Node::Fun(f, args) => {
                let vals: Vec<f64> = args.iter().map(|a| a.eval(ctx)).collect();
                f.eval(&vals)
            }
            Node::Diff(e, d) => {
                panic!("cannot evaluate continuous derivative D{d}[{e}]; discretize first")
            }
            Node::Select(c, t, f) => {
                if c.op.eval(c.lhs.eval(ctx), c.rhs.eval(ctx)) {
                    t.eval(ctx)
                } else {
                    f.eval(ctx)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Cond};

    #[test]
    fn evaluates_polynomial() {
        let x = Expr::sym("ev_x");
        let e = Expr::powi(x.clone(), 2) + 2.0 * x - 1.0;
        let mut ctx = MapCtx::new();
        ctx.set("ev_x", 3.0);
        assert_eq!(e.eval(&ctx), 14.0);
    }

    #[test]
    fn evaluates_select() {
        let x = Expr::sym("ev_s");
        let e = Expr::select(
            Cond {
                op: CmpOp::Gt,
                lhs: x.clone(),
                rhs: Expr::zero(),
            },
            x.clone(),
            -x,
        );
        let mut ctx = MapCtx::new();
        ctx.set("ev_s", -2.5);
        assert_eq!(e.eval(&ctx), 2.5);
        ctx.set("ev_s", 1.5);
        assert_eq!(e.eval(&ctx), 1.5);
    }

    #[test]
    fn simplification_preserves_value() {
        let x = Expr::sym("ev_p");
        let raw = (x.clone() + 1.0) * (x.clone() - 1.0);
        let expanded = crate::simplify::expand(&raw);
        let mut ctx = MapCtx::new();
        for v in [-2.0, 0.0, 0.7, 13.0] {
            ctx.set("ev_p", v);
            assert!((raw.eval(&ctx) - expanded.eval(&ctx)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "discretize first")]
    fn eval_of_diff_panics() {
        let f = crate::field::Field::new("ev_f", 1, 3);
        let a = Expr::access(crate::field::Access::center(f, 0));
        Expr::d(Expr::powi(a, 2), 0).eval(&MapCtx::new());
    }
}
