//! Symbolic field declarations and grid-relative accesses.
//!
//! A [`Field`] is the *symbolic* handle for a grid-resident quantity (e.g.
//! the phase-field vector `phi` with N components, or the chemical potential
//! `mu` with K-1 components). It says nothing about storage — the `pf-fields`
//! crate owns the actual arrays; kernels bind symbolic fields to storage by
//! name at execution time.
//!
//! An [`Access`] is a read/write of one component of a field at an offset
//! relative to the current cell. On the continuous layers the offset is
//! always zero; the discretization layer introduces neighbour offsets such
//! as `phi[0](1,0,0)`.

use parking_lot::RwLock;
use std::fmt;
use std::sync::OnceLock;

/// Interned field handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Field(u32);

struct FieldInfo {
    name: String,
    components: usize,
    dim: usize,
}

static REGISTRY: OnceLock<RwLock<Vec<FieldInfo>>> = OnceLock::new();

fn registry() -> &'static RwLock<Vec<FieldInfo>> {
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

impl Field {
    /// Declare a field with `components` indexed components on a `dim`-
    /// dimensional grid. Each call creates a distinct field, even for equal
    /// names — kernels refer to fields by handle, names are for humans and
    /// for binding storage.
    pub fn new(name: &str, components: usize, dim: usize) -> Field {
        assert!(components >= 1, "field needs at least one component");
        assert!((1..=3).contains(&dim), "only 1D/2D/3D grids supported");
        let mut reg = registry().write();
        let id = reg.len() as u32;
        reg.push(FieldInfo {
            name: name.to_owned(),
            components,
            dim,
        });
        Field(id)
    }

    pub fn name(self) -> String {
        registry().read()[self.0 as usize].name.clone()
    }

    pub fn components(self) -> usize {
        registry().read()[self.0 as usize].components
    }

    pub fn dim(self) -> usize {
        registry().read()[self.0 as usize].dim
    }

    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.name(), self.0)
    }
}

/// One component of a field at a cell-relative offset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Access {
    pub field: Field,
    pub comp: u16,
    pub off: [i32; 3],
}

impl Access {
    pub fn center(field: Field, comp: usize) -> Access {
        Access {
            field,
            comp: comp as u16,
            off: [0, 0, 0],
        }
    }

    pub fn at(field: Field, comp: usize, off: [i32; 3]) -> Access {
        Access {
            field,
            comp: comp as u16,
            off,
        }
    }

    /// The same access shifted by `delta` (used when discretizing staggered
    /// fluxes: the left staggered value of a cell is the right staggered
    /// value of its left neighbour).
    pub fn shifted(self, delta: [i32; 3]) -> Access {
        Access {
            field: self.field,
            comp: self.comp,
            off: [
                self.off[0] + delta[0],
                self.off[1] + delta[1],
                self.off[2] + delta[2],
            ],
        }
    }

    pub fn is_center(self) -> bool {
        self.off == [0, 0, 0]
    }
}

impl fmt::Debug for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]({},{},{})",
            self.field.name(),
            self.comp,
            self.off[0],
            self.off[1],
            self.off[2]
        )
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_center() {
            write!(f, "{}[{}]", self.field.name(), self.comp)
        } else {
            fmt::Debug::fmt(self, f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_registry_roundtrip() {
        let phi = Field::new("phi_t", 4, 3);
        assert_eq!(phi.name(), "phi_t");
        assert_eq!(phi.components(), 4);
        assert_eq!(phi.dim(), 3);
    }

    #[test]
    fn fields_with_equal_names_are_distinct() {
        let a = Field::new("dup", 1, 3);
        let b = Field::new("dup", 1, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn access_shift_composes() {
        let f = Field::new("f_t", 1, 3);
        let a = Access::at(f, 0, [1, 0, -1]).shifted([-1, 2, 1]);
        assert_eq!(a.off, [0, 2, 0]);
        assert!(!a.is_center());
        assert!(Access::center(f, 0).is_center());
    }
}
