//! Substitution of subexpressions.
//!
//! Substitution is the workhorse of the pipeline: parameter binding
//! ("constant folding on expression level" — §3.3 of the paper), replacement
//! of continuous derivatives by finite-difference stencils, and rewriting of
//! accesses during kernel splitting all use it.

use crate::expr::Expr;
use std::collections::HashMap;

impl Expr {
    /// Replace every occurrence of each key by its value, bottom-up. Matches
    /// whole canonical subtrees (like sympy's `xreplace`): substituting `x`
    /// in `x + y` works, substituting `x + y` in `x + y + z` does *not*
    /// (the canonical tree is a flat 3-term sum).
    pub fn substitute(&self, map: &HashMap<Expr, Expr>) -> Expr {
        if map.is_empty() {
            return self.clone();
        }
        self.substitute_impl(map, &mut HashMap::new())
    }

    fn substitute_impl(&self, map: &HashMap<Expr, Expr>, memo: &mut HashMap<Expr, Expr>) -> Expr {
        if let Some(hit) = memo.get(self) {
            return hit.clone();
        }
        let result = if let Some(rep) = map.get(self) {
            rep.clone()
        } else {
            let ch = self.children();
            if ch.is_empty() {
                self.clone()
            } else {
                let new_ch: Vec<Expr> = ch.iter().map(|c| c.substitute_impl(map, memo)).collect();
                if new_ch == ch {
                    self.clone()
                } else {
                    self.with_children(new_ch)
                }
            }
        };
        memo.insert(self.clone(), result.clone());
        result
    }

    /// Convenience: substitute a single pair.
    pub fn subs(&self, from: &Expr, to: &Expr) -> Expr {
        let mut m = HashMap::new();
        m.insert(from.clone(), to.clone());
        self.substitute(&m)
    }

    /// Bind named parameters to numeric values — the paper's compile-time
    /// parametrization step. Returns the folded expression.
    pub fn bind_params(&self, params: &HashMap<crate::symbol::Symbol, f64>) -> Expr {
        let map: HashMap<Expr, Expr> = params
            .iter()
            .map(|(s, v)| (Expr::symbol(*s), Expr::num(*v)))
            .collect();
        self.substitute(&map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    #[test]
    fn substitute_symbol() {
        let x = Expr::sym("sub_x");
        let y = Expr::sym("sub_y");
        let e = Expr::powi(x.clone(), 2) + x.clone();
        let r = e.subs(&x, &y);
        assert_eq!(r, Expr::powi(y.clone(), 2) + y);
    }

    #[test]
    fn substitute_resimplifies() {
        let x = Expr::sym("sub_a");
        let e = x.clone() + 1.0;
        let r = e.subs(&x, &Expr::num(2.0));
        assert_eq!(r.as_num(), Some(3.0));
    }

    #[test]
    fn bind_params_folds_constants() {
        let g = Symbol::new("sub_gamma");
        let x = Expr::sym("sub_phi");
        let e = Expr::symbol(g) * x.clone() * 2.0;
        let mut params = HashMap::new();
        params.insert(g, 0.5);
        assert_eq!(e.bind_params(&params), x);
    }

    #[test]
    fn substitution_is_simultaneous_not_sequential() {
        // Swapping x and y must not cascade.
        let x = Expr::sym("sub_sw_x");
        let y = Expr::sym("sub_sw_y");
        let e = x.clone() - y.clone();
        let mut m = HashMap::new();
        m.insert(x.clone(), y.clone());
        m.insert(y.clone(), x.clone());
        assert_eq!(e.substitute(&m), y - x);
    }

    #[test]
    fn substitute_inside_function_and_pow() {
        let x = Expr::sym("sub_fn_x");
        let e = Expr::abs(Expr::sqrt(x.clone()));
        let r = e.subs(&x, &Expr::num(4.0));
        assert_eq!(r.as_num(), Some(2.0));
    }
}
