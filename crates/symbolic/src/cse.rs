//! Global common subexpression elimination.
//!
//! The paper runs "a global common subexpression elimination step … across
//! all terms" after per-term simplification (§3.3). This module provides
//! exactly that: given the right-hand sides of all assignments of a kernel,
//! extract repeated non-trivial subexpressions into fresh temporaries,
//! returning definitions in dependency order.

use crate::expr::{Expr, Node};
use crate::symbol::Symbol;
use std::collections::HashMap;

/// Textual (tree) occurrence counts of every symbol across `roots`,
/// saturated at 2 — computed over the DAG with path-count propagation, so
/// shared subtrees cost O(unique nodes) instead of exploding.
fn symbol_occurrences(roots: &[Expr]) -> HashMap<Symbol, u32> {
    // Reverse post-order = parents before children (valid topological order).
    let mut order: Vec<Expr> = Vec::new();
    let mut seen: HashMap<usize, ()> = HashMap::new();
    // Iterative post-order DFS.
    let mut stack: Vec<(Expr, bool)> = roots.iter().rev().map(|r| (r.clone(), false)).collect();
    while let Some((e, expanded)) = stack.pop() {
        if expanded {
            order.push(e);
            continue;
        }
        if seen.contains_key(&e.node_id()) {
            continue;
        }
        seen.insert(e.node_id(), ());
        stack.push((e.clone(), true));
        for c in e.children() {
            stack.push((c, false));
        }
    }
    order.reverse();

    let sat = |a: u32, b: u32| a.saturating_add(b).min(2);
    let mut paths: HashMap<usize, u32> = HashMap::new();
    for r in roots {
        let e = paths.entry(r.node_id()).or_insert(0);
        *e = sat(*e, 1);
    }
    let mut uses: HashMap<Symbol, u32> = HashMap::new();
    for e in &order {
        let w = *paths.get(&e.node_id()).unwrap_or(&0);
        if w == 0 {
            continue;
        }
        if let Node::Sym(sym) = e.node() {
            let u = uses.entry(*sym).or_insert(0);
            *u = sat(*u, w);
        }
        for c in e.children() {
            let p = paths.entry(c.node_id()).or_insert(0);
            *p = sat(*p, w);
        }
    }
    uses
}

/// Result of CSE over a set of root expressions.
#[derive(Debug, Clone)]
pub struct CseResult {
    /// Temporary definitions in dependency order (each may refer to earlier
    /// temporaries only).
    pub temps: Vec<(Symbol, Expr)>,
    /// The root expressions rewritten in terms of the temporaries.
    pub exprs: Vec<Expr>,
}

/// Is this subexpression worth extracting? Leaves and `coeff·leaf` products
/// cost at most one fused multiply — rematerializing them is cheaper than a
/// register, so we leave them inline.
fn extractable(e: &Expr) -> bool {
    match e.node() {
        Node::Num(_)
        | Node::Sym(_)
        | Node::Coord(_)
        | Node::Time
        | Node::CellIdx(_)
        | Node::Access(_)
        | Node::Rand(_) => false,
        Node::Mul(fs) => {
            !(fs.len() == 2 && fs[0].as_num().is_some() && fs[1].children().is_empty())
        }
        _ => true,
    }
}

fn count_occurrences(roots: &[Expr], counts: &mut HashMap<Expr, usize>) {
    // Iterative pre-order over the *tree* view: every textual occurrence
    // counts, because that is what the emitted code would duplicate.
    let mut stack: Vec<Expr> = roots.to_vec();
    while let Some(e) = stack.pop() {
        let c = counts.entry(e.clone()).or_insert(0);
        *c += 1;
        // Once a subtree is known-repeated we still need to walk its children
        // (they repeat at least as often), but walking identical subtrees
        // repeatedly is wasted work past count 2 — the candidate set no
        // longer changes. Cap the descent.
        if *c > 2 {
            continue;
        }
        stack.extend(e.children());
    }
}

/// Run CSE over `roots` with temporaries named `{prefix}_N`.
pub fn cse_with_prefix(roots: &[Expr], prefix: &str) -> CseResult {
    let mut counts = HashMap::new();
    count_occurrences(roots, &mut counts);

    let mut candidates: Vec<Expr> = counts
        .iter()
        .filter(|(e, c)| **c >= 2 && extractable(e))
        .map(|(e, _)| e.clone())
        .collect();
    // Smallest first: definitions of larger candidates can then refer to the
    // temporaries of the smaller ones they contain.
    candidates.sort_by_key(|e| (e.size(), e.clone()));

    let mut map: HashMap<Expr, Expr> = HashMap::new();
    let mut temps: Vec<(Symbol, Expr)> = Vec::new();
    for (i, cand) in candidates.into_iter().enumerate() {
        let def = cand.substitute(&map);
        // Per-call numbering keeps generation deterministic: building the
        // same kernel twice yields identical temporary names, hence
        // identical canonical orderings and bitwise-identical tapes.
        let t = Symbol::new(&format!("{prefix}_{i}"));
        temps.push((t, def));
        map.insert(cand, Expr::symbol(t));
    }

    let mut exprs: Vec<Expr> = roots.iter().map(|r| r.substitute(&map)).collect();

    // Prune temporaries that ended up used at most once (e.g. both
    // occurrences were inside one larger extracted candidate): inline them.
    loop {
        let roots_for_count: Vec<Expr> = temps
            .iter()
            .map(|(_, d)| d.clone())
            .chain(exprs.iter().cloned())
            .collect();
        let uses = symbol_occurrences(&roots_for_count);
        let dead: Vec<Symbol> = temps
            .iter()
            .filter(|(s, _)| uses.get(s).copied().unwrap_or(0) <= 1)
            .map(|(s, _)| *s)
            .collect();
        if dead.is_empty() {
            break;
        }
        // Build the inline map in definition order, resolving chains: a dead
        // temp's definition may itself reference earlier dead temps.
        let mut inline_map: HashMap<Expr, Expr> = HashMap::new();
        for (s, d) in temps.iter().filter(|(s, _)| dead.contains(s)) {
            let resolved = d.substitute(&inline_map);
            inline_map.insert(Expr::symbol(*s), resolved);
        }
        temps.retain(|(s, _)| !dead.contains(s));
        // Inline in definition order so chains collapse fully.
        for t in temps.iter_mut() {
            t.1 = t.1.substitute(&inline_map);
        }
        for e in exprs.iter_mut() {
            *e = e.substitute(&inline_map);
        }
    }

    CseResult { temps, exprs }
}

/// Run CSE with the default `cse` temporary prefix.
pub fn cse(roots: &[Expr]) -> CseResult {
    cse_with_prefix(roots, "cse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::MapCtx;

    fn x() -> Expr {
        Expr::sym("cse_x")
    }
    fn y() -> Expr {
        Expr::sym("cse_y")
    }

    fn eval_result(r: &CseResult, idx: usize, ctx: &MapCtx) -> f64 {
        // Evaluate temp chain into an extended context.
        let mut c = ctx.clone();
        for (s, d) in &r.temps {
            let v = d.eval(&c);
            c.syms.insert(*s, v);
        }
        r.exprs[idx].eval(&c)
    }

    #[test]
    fn shared_subexpression_is_extracted_once() {
        let shared = Expr::sqrt(x() + y());
        let a = shared.clone() * 2.0;
        let b = shared.clone() + y();
        let r = cse(&[a.clone(), b.clone()]);
        assert_eq!(r.temps.len(), 1, "temps: {:?}", r.temps);
        let mut ctx = MapCtx::new();
        ctx.set("cse_x", 3.0).set("cse_y", 1.0);
        assert_eq!(eval_result(&r, 0, &ctx), a.eval(&ctx));
        assert_eq!(eval_result(&r, 1, &ctx), b.eval(&ctx));
    }

    #[test]
    fn nested_candidates_chain_in_dependency_order() {
        let inner = x() * y();
        let outer = Expr::powi(inner.clone() + 1.0, 2);
        let roots = vec![outer.clone() + inner.clone(), outer.clone() - inner.clone()];
        let r = cse(&roots);
        assert!(!r.temps.is_empty());
        // Every temp must only reference earlier temps.
        for (i, (_, def)) in r.temps.iter().enumerate() {
            for s in def.free_symbols() {
                if let Some(pos) = r.temps.iter().position(|(t, _)| *t == s) {
                    assert!(pos < i, "temp {i} refers to later temp {pos}");
                }
            }
        }
        let mut ctx = MapCtx::new();
        ctx.set("cse_x", 2.0).set("cse_y", -0.5);
        for (i, root) in roots.iter().enumerate() {
            assert!((eval_result(&r, i, &ctx) - root.eval(&ctx)).abs() < 1e-12);
        }
    }

    #[test]
    fn atoms_are_never_extracted() {
        let a = x() + y();
        let b = x() * y();
        let r = cse(&[a, b]);
        for (_, d) in &r.temps {
            assert!(d.size() >= 2);
        }
    }

    #[test]
    fn single_use_temps_are_inlined_back() {
        // (x+y) appears twice, but only inside sqrt(x+y) which also appears
        // twice — after extracting the sqrt, the sum is single-use.
        let s = Expr::sqrt(x() + y());
        let r = cse(&[s.clone() * 2.0, s + 1.0]);
        assert_eq!(r.temps.len(), 1);
        let (_, def) = &r.temps[0];
        // The definition should be the whole sqrt, with the sum inlined.
        assert_eq!(*def, Expr::sqrt(x() + y()));
    }

    #[test]
    fn no_duplicates_means_no_temps() {
        let r = cse(&[x() + 1.0, y() * 2.0]);
        assert!(r.temps.is_empty());
        assert_eq!(r.exprs.len(), 2);
    }
}
