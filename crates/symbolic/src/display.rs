//! Human-readable pretty printing with minimal parentheses.
//!
//! The C/CUDA emitters in `pf-backend` have their own printers; this one is
//! for diagnostics, tests, and the `codegen_inspect` example.

use crate::expr::{Expr, Node};
use std::fmt;

/// Operator precedence levels for parenthesization.
fn prec(e: &Expr) -> u8 {
    match e.node() {
        Node::Add(_) => 1,
        Node::Mul(_) => 2,
        Node::Pow(_, _) => 3,
        Node::Num(v) if *v < 0.0 => 1, // negative literals bind like sums
        _ => 4,
    }
}

fn write_child(f: &mut fmt::Formatter<'_>, child: &Expr, parent_prec: u8) -> fmt::Result {
    if prec(child) < parent_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if v == v.trunc() && v.abs() < 1e15 {
        write!(f, "{}", v as i64)
    } else {
        write!(f, "{v}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            Node::Num(v) => write_num(f, *v),
            Node::Sym(s) => write!(f, "{s}"),
            Node::Coord(d) => write!(f, "x{d}"),
            Node::Time => write!(f, "t"),
            Node::CellIdx(d) => write!(f, "i{d}"),
            Node::Access(a) => write!(f, "{a}"),
            Node::Rand(k) => write!(f, "rand{k}()"),
            Node::Add(terms) => {
                for (i, t) in terms.iter().enumerate() {
                    if i == 0 {
                        write_child(f, t, 1)?;
                        continue;
                    }
                    // Render `+ (-c)·x` as `- c·x`.
                    if let Node::Mul(fs) = t.node() {
                        if let Some(c) = fs.first().and_then(|x| x.as_num()) {
                            if c < 0.0 {
                                let pos = Expr::mul(
                                    std::iter::once(Expr::num(-c))
                                        .chain(fs[1..].iter().cloned())
                                        .collect(),
                                );
                                write!(f, " - ")?;
                                write_child(f, &pos, 2)?;
                                continue;
                            }
                        }
                    }
                    if let Some(v) = t.as_num() {
                        if v < 0.0 {
                            write!(f, " - ")?;
                            write_num(f, -v)?;
                            continue;
                        }
                    }
                    write!(f, " + ")?;
                    write_child(f, t, 2)?;
                }
                Ok(())
            }
            Node::Mul(factors) => {
                // Special-case a leading -1 coefficient.
                let mut rest: &[Expr] = factors;
                if let Some(c) = factors.first().and_then(|x| x.as_num()) {
                    if c == -1.0 && factors.len() > 1 {
                        write!(f, "-")?;
                        rest = &factors[1..];
                        if rest.len() == 1 {
                            return write_child(f, &rest[0], 3);
                        }
                    }
                }
                for (i, x) in rest.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    write_child(f, x, 3)?;
                }
                Ok(())
            }
            Node::Pow(b, e) => {
                if let Some(v) = e.as_num() {
                    if v == 0.5 {
                        return write!(f, "sqrt({b})");
                    }
                    if v == -0.5 {
                        return write!(f, "rsqrt({b})");
                    }
                    if v == -1.0 {
                        write!(f, "1/")?;
                        return write_child(f, b, 4);
                    }
                }
                write_child(f, b, 4)?;
                write!(f, "**")?;
                write_child(f, e, 4)
            }
            Node::Fun(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Node::Diff(e, d) => write!(f, "D{d}[{e}]"),
            Node::Select(c, t, fe) => {
                write!(
                    f,
                    "select({} {} {}, {}, {})",
                    c.lhs,
                    c.op.symbol(),
                    c.rhs,
                    t,
                    fe
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::Expr;

    #[test]
    fn renders_subtraction() {
        let x = Expr::sym("disp_x");
        let y = Expr::sym("disp_y");
        let s = format!("{}", x - y);
        assert!(s.contains('-'), "got {s}");
        assert!(!s.contains("+ -"), "got {s}");
    }

    #[test]
    fn renders_sqrt_and_recip() {
        let x = Expr::sym("disp_z");
        assert_eq!(format!("{}", Expr::sqrt(x.clone())), "sqrt(disp_z)");
        assert_eq!(format!("{}", Expr::recip(x.clone())), "1/disp_z");
        assert_eq!(format!("{}", Expr::rsqrt(x)), "rsqrt(disp_z)");
    }

    #[test]
    fn parenthesizes_sum_inside_product() {
        let x = Expr::sym("disp_a");
        let y = Expr::sym("disp_b");
        let e = (x + 1.0) * y;
        let s = format!("{e}");
        assert!(s.contains('('), "got {s}");
    }

    #[test]
    fn integer_literals_lose_decimal_point() {
        assert_eq!(format!("{}", Expr::num(3.0)), "3");
        assert_eq!(format!("{}", Expr::num(2.5)), "2.5");
    }

    #[test]
    fn diff_node_renders_dimension() {
        let f = crate::field::Field::new("disp_f", 1, 3);
        let a = Expr::access(crate::field::Access::center(f, 0));
        let d = Expr::d(Expr::powi(a, 2), 1);
        assert!(format!("{d}").starts_with("D1["));
    }
}
