//! Symbolic differentiation and variational (functional) derivatives.
//!
//! `diff` computes ∂e/∂v where `v` is an atomic expression: a symbol, a
//! field access, a continuous gradient `Diff(access, d)`, the time symbol,
//! or a coordinate. Field accesses and their gradients are treated as
//! *independent* variables — exactly the convention needed for the
//! variational derivative of an energy functional
//!
//! ```text
//! δΨ/δφ = ∂ψ/∂φ − Σ_d ∂_d ( ∂ψ/∂(∂_d φ) )
//! ```
//!
//! which `functional_derivative` implements (Eq. (2) of the paper).

use crate::expr::{CmpOp, Cond, Expr, Func, Node};
use crate::field::Access;
use std::collections::HashMap;

impl Expr {
    /// Partial derivative with respect to an atomic expression `v`.
    ///
    /// Memoized over the expression DAG: shared subtrees are differentiated
    /// once (the energy functionals of `pf-core` share subexpressions
    /// heavily, and per-occurrence recursion would be exponential).
    pub fn diff(&self, v: &Expr) -> Expr {
        debug_assert!(
            matches!(
                v.node(),
                Node::Sym(_) | Node::Access(_) | Node::Diff(_, _) | Node::Time | Node::Coord(_)
            ),
            "diff target must be atomic, got {v}"
        );
        self.diff_memo(v, &mut HashMap::new())
    }

    fn diff_memo(&self, v: &Expr, memo: &mut HashMap<usize, Expr>) -> Expr {
        if let Some(hit) = memo.get(&self.node_id()) {
            return hit.clone();
        }
        let out = self.diff_uncached(v, memo);
        memo.insert(self.node_id(), out.clone());
        out
    }

    fn diff_uncached(&self, v: &Expr, memo: &mut HashMap<usize, Expr>) -> Expr {
        if self == v {
            return Expr::one();
        }
        match self.node() {
            Node::Num(_)
            | Node::Sym(_)
            | Node::Access(_)
            | Node::CellIdx(_)
            | Node::Rand(_)
            | Node::Time => Expr::zero(),
            Node::Coord(_) => Expr::zero(),
            Node::Add(ts) => Expr::add(ts.iter().map(|t| t.diff_memo(v, memo)).collect()),
            Node::Mul(fs) => {
                let mut terms = Vec::with_capacity(fs.len());
                for (i, f) in fs.iter().enumerate() {
                    let df = f.diff_memo(v, memo);
                    if df.is_zero() {
                        continue;
                    }
                    let mut prod: Vec<Expr> = Vec::with_capacity(fs.len());
                    prod.push(df);
                    for (j, g) in fs.iter().enumerate() {
                        if j != i {
                            prod.push(g.clone());
                        }
                    }
                    terms.push(Expr::mul(prod));
                }
                Expr::add(terms)
            }
            Node::Pow(b, e) => {
                let db = b.diff_memo(v, memo);
                let de = e.diff_memo(v, memo);
                if de.is_zero() {
                    if db.is_zero() {
                        return Expr::zero();
                    }
                    // e · b^(e-1) · db
                    e.clone() * Expr::pow(b.clone(), e.clone() - 1.0) * db
                } else {
                    // General: b^e (de·ln b + e·db/b)
                    let ln_b = Expr::func(Func::Ln, vec![b.clone()]);
                    Expr::pow(b.clone(), e.clone()) * (de * ln_b + e.clone() * db / b.clone())
                }
            }
            Node::Fun(f, args) => {
                let a0 = args[0].clone();
                let d0 = a0.diff_memo(v, memo);
                match f {
                    Func::Abs => Expr::func(Func::Sign, vec![a0]) * d0,
                    Func::Exp => Expr::func(Func::Exp, vec![a0]) * d0,
                    Func::Ln => d0 / a0,
                    Func::Sin => Expr::func(Func::Cos, vec![a0]) * d0,
                    Func::Cos => -(Expr::func(Func::Sin, vec![a0]) * d0),
                    Func::Tanh => {
                        let th = Expr::func(Func::Tanh, vec![a0]);
                        (Expr::one() - Expr::powi(th, 2)) * d0
                    }
                    Func::Sign | Func::Floor => Expr::zero(),
                    Func::Min | Func::Max => {
                        let a1 = args[1].clone();
                        let d1 = a1.diff_memo(v, memo);
                        let op = if *f == Func::Min {
                            CmpOp::Le
                        } else {
                            CmpOp::Ge
                        };
                        Expr::select(
                            Cond {
                                op,
                                lhs: a0,
                                rhs: a1,
                            },
                            d0,
                            d1,
                        )
                    }
                }
            }
            // A pending continuous derivative of something other than `v`
            // itself: gradients are independent variables in the functional
            // calculus, so the sensitivity is zero unless structurally equal
            // (handled above). A Diff whose *inner* expression contains `v`
            // is differentiated under the derivative (∂ commutes with D).
            Node::Diff(inner, d) => {
                let di = inner.diff_memo(v, memo);
                if di.is_zero() {
                    Expr::zero()
                } else {
                    Expr::d(di, *d as usize)
                }
            }
            Node::Select(c, t, f) => {
                Expr::select((**c).clone(), t.diff_memo(v, memo), f.diff_memo(v, memo))
            }
        }
    }

    /// Variational derivative δself/δφ where φ is the field access `phi`:
    /// `∂/∂φ − Σ_d D_d(∂/∂(D_d φ))` over the grid dimensionality `dim`.
    pub fn functional_derivative(&self, phi: Access, dim: usize) -> Expr {
        let phi_e = Expr::access(phi);
        let mut result = self.diff(&phi_e);
        for d in 0..dim {
            let grad_atom = Expr::diff_atom(phi_e.clone(), d);
            let sens = self.diff(&grad_atom);
            if !sens.is_zero() {
                result = result - Expr::d(sens, d);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;

    fn x() -> Expr {
        Expr::sym("dif_x")
    }

    #[test]
    fn power_rule() {
        let e = Expr::powi(x(), 3);
        assert_eq!(e.diff(&x()), 3.0 * Expr::powi(x(), 2));
    }

    #[test]
    fn product_rule() {
        let y = Expr::sym("dif_y");
        let e = x() * y.clone();
        assert_eq!(e.diff(&x()), y);
    }

    #[test]
    fn chain_rule_through_sqrt() {
        // d/dx sqrt(x^2) = x / sqrt(x^2) (no smoothing assumptions).
        let e = Expr::sqrt(Expr::powi(x(), 2));
        let d = e.diff(&x());
        // 0.5 · (x²)^(-1/2) · 2x = x·(x²)^(-1/2)
        let expected = x() * Expr::rsqrt(Expr::powi(x(), 2));
        assert_eq!(d, expected);
    }

    #[test]
    fn quotient_rule() {
        let e = Expr::recip(x());
        assert_eq!(e.diff(&x()), -Expr::one() * Expr::powi(x(), -2));
    }

    #[test]
    fn derivative_of_unrelated_symbol_is_zero() {
        assert!(Expr::sym("dif_other").diff(&x()).is_zero());
    }

    #[test]
    fn exp_ln_rules() {
        let e = Expr::func(Func::Exp, vec![2.0 * x()]);
        assert_eq!(e.diff(&x()), 2.0 * Expr::func(Func::Exp, vec![2.0 * x()]));
        let l = Expr::func(Func::Ln, vec![x()]);
        assert_eq!(l.diff(&x()), Expr::recip(x()));
    }

    #[test]
    fn min_diff_selects_branch_derivative() {
        let y = Expr::sym("dif_my");
        let e = Expr::min(Expr::powi(x(), 2), y.clone());
        let d = e.diff(&x());
        match d.node() {
            Node::Select(_, t, f) => {
                assert_eq!(*t, 2.0 * x());
                assert!(f.is_zero());
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn field_accesses_are_independent_variables() {
        let fld = Field::new("dif_phi", 2, 3);
        let p0 = Expr::access(Access::center(fld, 0));
        let p1 = Expr::access(Access::center(fld, 1));
        let e = p0.clone() * p1.clone();
        assert_eq!(e.diff(&p0), p1);
    }

    #[test]
    fn gradient_atoms_are_independent_of_field_value() {
        let fld = Field::new("dif_g", 1, 3);
        let p = Expr::access(Access::center(fld, 0));
        let gp = Expr::diff_atom(p.clone(), 0);
        // ∂(∇φ)²/∂φ = 0, ∂(∇φ)²/∂(∇φ) = 2∇φ
        let e = Expr::powi(gp.clone(), 2);
        assert!(e.diff(&p).is_zero());
        assert_eq!(e.diff(&gp), 2.0 * gp);
    }

    #[test]
    fn functional_derivative_of_dirichlet_energy() {
        // E = |∇φ|² ⇒ δE/δφ = -2 Σ_d D_d(D_d φ)  (−2Δφ)
        let fld = Field::new("dif_dir", 1, 2);
        let acc = Access::center(fld, 0);
        let p = Expr::access(acc);
        let e: Expr = (0..2)
            .map(|d| Expr::powi(Expr::diff_atom(p.clone(), d as usize), 2))
            .sum();
        let fd = e.functional_derivative(acc, 2);
        let expected: Expr = -(0..2)
            .map(|d| Expr::d(2.0 * Expr::diff_atom(p.clone(), d as usize), d as usize))
            .sum::<Expr>();
        // Canonical form does not distribute the leading −1 over the sum, so
        // compare the expanded (fully distributed) forms.
        assert_eq!(
            crate::simplify::expand(&fd),
            crate::simplify::expand(&expected)
        );
    }

    #[test]
    fn functional_derivative_of_potential_term() {
        // E = φ²(1-φ)² ⇒ δE/δφ = 2φ(1-φ)² - 2φ²(1-φ), no divergence part.
        let fld = Field::new("dif_pot", 1, 3);
        let acc = Access::center(fld, 0);
        let p = Expr::access(acc);
        let e = Expr::powi(p.clone(), 2) * Expr::powi(Expr::one() - p.clone(), 2);
        let fd = e.functional_derivative(acc, 3);
        let expected = 2.0 * p.clone() * Expr::powi(Expr::one() - p.clone(), 2)
            - 2.0 * Expr::powi(p.clone(), 2) * (Expr::one() - p.clone());
        // Compare after expansion (both are polynomials).
        assert_eq!(
            crate::simplify::expand(&fd),
            crate::simplify::expand(&expected)
        );
    }
}
