//! Interned symbols.
//!
//! Symbols are the leaves of symbolic expressions that stand for runtime
//! scalars: model parameters (`gamma_01`, `tau`), loop-invariant quantities,
//! or CSE temporaries. Interning makes them `Copy` and cheap to compare,
//! which matters because canonical ordering of sums/products compares
//! symbols constantly.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned identifier. Two symbols are equal iff their names are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    map: HashMap<&'static str, u32>,
}

static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            map: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Intern `name` and return its symbol. Idempotent.
    pub fn new(name: &str) -> Symbol {
        {
            let int = interner().read();
            if let Some(&id) = int.map.get(name) {
                return Symbol(id);
            }
        }
        let mut int = interner().write();
        if let Some(&id) = int.map.get(name) {
            return Symbol(id);
        }
        // Symbol names live for the program duration; leaking them gives us
        // `&'static str` access without a lock on every `name()` call.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = int.names.len() as u32;
        int.names.push(leaked);
        int.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// Stable numeric id (useful as a map key in dense tables).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Create a fresh symbol guaranteed not to collide with any symbol
    /// interned so far, using `prefix` for readability (e.g. CSE temps).
    pub fn fresh(prefix: &str) -> Symbol {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let candidate = format!("{prefix}_{n}");
            let exists = interner().read().map.contains_key(candidate.as_str());
            if !exists {
                return Symbol::new(&candidate);
            }
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("alpha");
        let b = Symbol::new("alpha");
        assert_eq!(a, b);
        assert_eq!(a.name(), "alpha");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("a1"), Symbol::new("a2"));
    }

    #[test]
    fn fresh_does_not_collide() {
        let taken = Symbol::new("tmp_0");
        let f = Symbol::fresh("tmp");
        assert_ne!(taken, f);
        let g = Symbol::fresh("tmp");
        assert_ne!(f, g);
    }

    #[test]
    fn symbols_are_ordered_consistently() {
        let a = Symbol::new("ord_a");
        let b = Symbol::new("ord_b");
        // Ordering is by intern id, not name; it only needs to be total and
        // stable within a process.
        assert_eq!(a.cmp(&b), a.cmp(&b));
    }
}
