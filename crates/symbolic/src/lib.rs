//! `pf-symbolic` — the computer-algebra substrate of the phase-field code
//! generation pipeline (the sympy replacement of the SC'19 paper's stack).
//!
//! Provides canonical-form expression trees over scalars, model parameters
//! and grid fields; differentiation including **variational derivatives** of
//! energy functionals; substitution (compile-time parameter binding);
//! expansion; evaluation; and global common subexpression elimination.
//!
//! The layers above build on this: `pf-stencil` rewrites the continuous
//! `Diff` nodes produced here into finite-difference accesses, `pf-ir` turns
//! assignment lists into typed kernels, and `pf-backend` emits/executes them.
//!
//! # Example
//!
//! ```
//! use pf_symbolic::{Expr, Field, Access};
//!
//! // Dirichlet energy of a scalar field: E = |∇u|²
//! let u = Field::new("u", 1, 2);
//! let acc = Access::center(u, 0);
//! let grad2: Expr = (0..2).map(|d| {
//!     let g = Expr::d(Expr::access(acc), d);
//!     Expr::powi(g, 2)
//! }).sum();
//!
//! // δE/δu = −2Δu (still continuous; discretization happens downstream)
//! let force = grad2.functional_derivative(acc, 2);
//! assert!(force.has_diff());
//! ```

pub mod cse;
pub mod diff;
pub mod display;
pub mod eval;
pub mod expr;
pub mod field;
pub mod simplify;
pub mod subs;
pub mod symbol;

pub use cse::{cse, cse_with_prefix, CseResult};
pub use eval::{EvalCtx, MapCtx};
pub use expr::{CmpOp, Cond, Expr, Func, Node};
pub use field::{Access, Field};
pub use simplify::expand;
pub use symbol::Symbol;
