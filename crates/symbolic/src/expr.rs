//! The symbolic expression type.
//!
//! Expressions are immutable reference-counted trees in canonical form:
//! sums and products are flattened, numerically folded, and sorted under a
//! total structural order, so structurally equal expressions compare equal
//! and hash equal. Canonicalization happens in the constructors (see
//! `simplify`), mirroring how sympy/symengine auto-simplify on construction.

use crate::field::Access;
use crate::simplify;
use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops;
use std::rc::Rc;

/// Scalar functions understood by the pipeline end-to-end (symbolic
/// differentiation, evaluation, code emission, FLOP accounting).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Func {
    Abs,
    Min,
    Max,
    Exp,
    Ln,
    Sin,
    Cos,
    Tanh,
    /// sign(x) ∈ {-1, 0, 1}
    Sign,
    Floor,
}

impl Func {
    pub fn arity(self) -> usize {
        match self {
            Func::Min | Func::Max => 2,
            _ => 1,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Func::Abs => "abs",
            Func::Min => "min",
            Func::Max => "max",
            Func::Exp => "exp",
            Func::Ln => "ln",
            Func::Sin => "sin",
            Func::Cos => "cos",
            Func::Tanh => "tanh",
            Func::Sign => "sign",
            Func::Floor => "floor",
        }
    }

    pub fn eval(self, args: &[f64]) -> f64 {
        match self {
            Func::Abs => args[0].abs(),
            Func::Min => args[0].min(args[1]),
            Func::Max => args[0].max(args[1]),
            Func::Exp => args[0].exp(),
            Func::Ln => args[0].ln(),
            Func::Sin => args[0].sin(),
            Func::Cos => args[0].cos(),
            Func::Tanh => args[0].tanh(),
            Func::Sign => {
                if args[0] > 0.0 {
                    1.0
                } else if args[0] < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            Func::Floor => args[0].floor(),
        }
    }
}

/// Comparison operator inside a `Select` condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// A comparison `lhs op rhs` guarding a `Select`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Cond {
    pub op: CmpOp,
    pub lhs: Expr,
    pub rhs: Expr,
}

/// The expression node. Users never construct nodes directly — the `Expr`
/// constructors canonicalize.
#[derive(Clone, Debug)]
pub enum Node {
    /// Numeric literal (f64; integers are exact well past any exponent the
    /// pipeline produces).
    Num(f64),
    /// Free scalar symbol (model parameter, CSE temporary, kernel argument).
    Sym(Symbol),
    /// Physical coordinate of the cell centre along axis `d` (x_d).
    Coord(u8),
    /// Simulation time `t`.
    Time,
    /// Integer cell index along axis `d` (used for Philox keys).
    CellIdx(u8),
    /// Field access (component + relative offset).
    Access(Access),
    /// n-ary sum, canonical: flattened, folded, sorted, no like terms.
    Add(Vec<Expr>),
    /// n-ary product, canonical: flattened, folded, sorted, powers merged.
    Mul(Vec<Expr>),
    /// base^exp.
    Pow(Expr, Expr),
    Fun(Func, Vec<Expr>),
    /// Continuous spatial derivative ∂_d of the inner expression.
    Diff(Expr, u8),
    /// `if cond { t } else { f }` — maps to blend instructions.
    Select(Box<Cond>, Expr, Expr),
    /// Counter-based uniform random number in [-1, 1], lane `k` (replaced by
    /// a Philox invocation keyed on cell index + timestep at discretization).
    Rand(u8),
}

/// Node plus its cached structural hash. The hash is computed once at
/// construction from the children's cached hashes, so hashing is O(1) and
/// deep equality can bail out early — essential because canonicalization
/// compares subexpressions constantly and expression DAGs share subtrees
/// heavily.
pub(crate) struct Inner {
    pub(crate) node: Node,
    pub(crate) hash: u64,
}

/// A symbolic expression: cheap to clone, structurally comparable/hashable.
#[derive(Clone)]
pub struct Expr(pub(crate) Rc<Inner>);

fn mix(h: u64, v: u64) -> u64 {
    // splitmix64-style combiner.
    let mut x = h ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a string — symbols and fields are hashed by *name*, not by
/// intern id, so structurally identical models built at different times (or
/// in different processes) canonicalize identically.
fn str_hash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn node_hash(node: &Node) -> u64 {
    let tag = |t: u64| mix(0x1234_5678_9ABC_DEF0, t);
    match node {
        Node::Num(v) => mix(tag(0), v.to_bits()),
        Node::Sym(s) => mix(tag(1), str_hash(s.name())),
        Node::Coord(d) => mix(tag(2), *d as u64),
        Node::Time => tag(3),
        Node::CellIdx(d) => mix(tag(4), *d as u64),
        Node::Access(a) => {
            let mut h = mix(tag(5), str_hash(&a.field.name()));
            h = mix(h, a.comp as u64);
            for o in a.off {
                h = mix(h, o as u64);
            }
            h
        }
        Node::Add(v) => v.iter().fold(tag(6), |h, c| mix(h, c.chash())),
        Node::Mul(v) => v.iter().fold(tag(7), |h, c| mix(h, c.chash())),
        Node::Pow(b, e) => mix(mix(tag(8), b.chash()), e.chash()),
        Node::Fun(f, v) => v
            .iter()
            .fold(mix(tag(9), *f as u64), |h, c| mix(h, c.chash())),
        Node::Diff(e, d) => mix(mix(tag(10), e.chash()), *d as u64),
        Node::Select(c, t, f) => {
            let mut h = mix(tag(11), c.op as u64);
            h = mix(h, c.lhs.chash());
            h = mix(h, c.rhs.chash());
            h = mix(h, t.chash());
            mix(h, f.chash())
        }
        Node::Rand(k) => mix(tag(12), *k as u64),
    }
}

impl Expr {
    /// Construct from a node, computing the cached hash.
    pub(crate) fn from_node(node: Node) -> Expr {
        let hash = node_hash(&node);
        Expr(Rc::new(Inner { node, hash }))
    }

    /// The cached structural hash.
    #[inline]
    pub(crate) fn chash(&self) -> u64 {
        self.0.hash
    }

    /// Raw continuous-derivative atom `D_d[e]` with no linearity rewriting —
    /// use `Expr::d` for the simplifying constructor. Needed to build the
    /// gradient atoms `∂_d φ` that variational derivatives differentiate
    /// against.
    pub fn diff_atom(e: Expr, d: usize) -> Expr {
        Expr::from_node(Node::Diff(e, d as u8))
    }
    // ----- leaf constructors -------------------------------------------------

    pub fn num(v: f64) -> Expr {
        debug_assert!(v.is_finite(), "non-finite literal in expression");
        Expr::from_node(Node::Num(v))
    }

    pub fn int(v: i64) -> Expr {
        Expr::num(v as f64)
    }

    pub fn zero() -> Expr {
        Expr::num(0.0)
    }

    pub fn one() -> Expr {
        Expr::num(1.0)
    }

    pub fn sym(name: &str) -> Expr {
        Expr::from_node(Node::Sym(Symbol::new(name)))
    }

    pub fn symbol(s: Symbol) -> Expr {
        Expr::from_node(Node::Sym(s))
    }

    pub fn coord(d: usize) -> Expr {
        Expr::from_node(Node::Coord(d as u8))
    }

    pub fn time() -> Expr {
        Expr::from_node(Node::Time)
    }

    pub fn cell_idx(d: usize) -> Expr {
        Expr::from_node(Node::CellIdx(d as u8))
    }

    pub fn access(a: Access) -> Expr {
        Expr::from_node(Node::Access(a))
    }

    pub fn rand(lane: usize) -> Expr {
        Expr::from_node(Node::Rand(lane as u8))
    }

    // ----- canonicalizing constructors --------------------------------------

    pub fn add(terms: Vec<Expr>) -> Expr {
        simplify::make_add(terms)
    }

    pub fn mul(factors: Vec<Expr>) -> Expr {
        simplify::make_mul(factors)
    }

    pub fn pow(base: Expr, exp: Expr) -> Expr {
        simplify::make_pow(base, exp)
    }

    pub fn powi(base: Expr, exp: i64) -> Expr {
        Expr::pow(base, Expr::int(exp))
    }

    pub fn sqrt(x: Expr) -> Expr {
        Expr::pow(x, Expr::num(0.5))
    }

    /// 1/sqrt(x). Emitted as a dedicated (possibly approximate) rsqrt.
    pub fn rsqrt(x: Expr) -> Expr {
        Expr::pow(x, Expr::num(-0.5))
    }

    pub fn recip(x: Expr) -> Expr {
        Expr::powi(x, -1)
    }

    pub fn func(f: Func, args: Vec<Expr>) -> Expr {
        assert_eq!(args.len(), f.arity(), "{}: wrong arity", f.name());
        // Constant-fold when all arguments are numeric.
        if let Some(vals) = args
            .iter()
            .map(|a| a.as_num())
            .collect::<Option<Vec<f64>>>()
        {
            let v = f.eval(&vals);
            if v.is_finite() {
                return Expr::num(v);
            }
        }
        Expr::from_node(Node::Fun(f, args))
    }

    pub fn abs(x: Expr) -> Expr {
        Expr::func(Func::Abs, vec![x])
    }

    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::func(Func::Min, vec![a, b])
    }

    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::func(Func::Max, vec![a, b])
    }

    /// Continuous spatial derivative ∂_d. Derivatives of constants vanish
    /// and space-independent factors are pulled out; sums are deliberately
    /// *not* distributed — a divergence of a sum of fluxes stays one flux,
    /// so the discretization layer evaluates (and the split variant caches)
    /// one combined staggered value per face, exactly like the paper's
    /// µ kernel (Table 1: six staggered stores, not one per flux term).
    pub fn d(expr: Expr, dim: usize) -> Expr {
        let d = dim as u8;
        match expr.node() {
            Node::Num(_) | Node::Sym(_) => Expr::zero(),
            Node::Add(_) if expr.is_space_independent() => Expr::zero(),
            Node::Mul(fs) => {
                // Pull out purely numeric / symbolic (space-independent)
                // factors: ∂(c · e) = c · ∂e.
                let (invariant, varying): (Vec<_>, Vec<_>) =
                    fs.iter().cloned().partition(|f| f.is_space_independent());
                if invariant.is_empty() || varying.is_empty() {
                    Expr::from_node(Node::Diff(expr, d))
                } else {
                    let inner = Expr::mul(varying);
                    let dinner = Expr::from_node(Node::Diff(inner, d));
                    Expr::mul(invariant.into_iter().chain([dinner]).collect())
                }
            }
            _ => Expr::from_node(Node::Diff(expr, d)),
        }
    }

    pub fn select(cond: Cond, t: Expr, f: Expr) -> Expr {
        // Fold constant conditions.
        if let (Some(a), Some(b)) = (cond.lhs.as_num(), cond.rhs.as_num()) {
            return if cond.op.eval(a, b) { t } else { f };
        }
        if t == f {
            return t;
        }
        Expr::from_node(Node::Select(Box::new(cond), t, f))
    }

    // ----- inspectors --------------------------------------------------------

    pub fn node(&self) -> &Node {
        &self.0.node
    }

    pub fn as_num(&self) -> Option<f64> {
        match &self.0.node {
            Node::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_sym(&self) -> Option<Symbol> {
        match &self.0.node {
            Node::Sym(s) => Some(*s),
            _ => None,
        }
    }

    pub fn as_access(&self) -> Option<Access> {
        match &self.0.node {
            Node::Access(a) => Some(*a),
            _ => None,
        }
    }

    pub fn is_zero(&self) -> bool {
        matches!(self.node(), Node::Num(v) if *v == 0.0)
    }

    pub fn is_one(&self) -> bool {
        matches!(self.node(), Node::Num(v) if *v == 1.0)
    }

    /// Stable identity of the underlying node (shared subtrees have equal
    /// ids). Used for DAG traversals and transformation memos.
    #[inline]
    pub fn node_id(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// DAG traversal visiting each *unique* node once (expression trees are
    /// heavily shared after canonicalization — per-occurrence recursion can
    /// be exponential).
    fn visit_unique(&self, f: &mut impl FnMut(&Expr) -> bool) {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.clone()];
        while let Some(e) = stack.pop() {
            if !seen.insert(e.node_id()) {
                continue;
            }
            if f(&e) {
                stack.extend(e.children());
            }
        }
    }

    /// True when the value cannot vary from cell to cell (no field accesses,
    /// coordinates, cell indices, randoms, or pending derivatives).
    pub fn is_space_independent(&self) -> bool {
        let mut independent = true;
        self.visit_unique(&mut |e| {
            if !independent {
                return false;
            }
            match e.node() {
                Node::Coord(_)
                | Node::CellIdx(_)
                | Node::Access(_)
                | Node::Rand(_)
                | Node::Diff(_, _) => {
                    independent = false;
                    false
                }
                _ => true,
            }
        });
        independent
    }

    /// True when the subtree contains a continuous `Diff` node (i.e. still
    /// needs discretization).
    pub fn has_diff(&self) -> bool {
        let mut found = false;
        self.visit_unique(&mut |e| {
            if found {
                return false;
            }
            if matches!(e.node(), Node::Diff(_, _)) {
                found = true;
                return false;
            }
            true
        });
        found
    }

    /// Children, for generic traversals.
    pub fn children(&self) -> Vec<Expr> {
        match &self.0.node {
            Node::Add(v) | Node::Mul(v) | Node::Fun(_, v) => v.clone(),
            Node::Pow(b, e) => vec![b.clone(), e.clone()],
            Node::Diff(e, _) => vec![e.clone()],
            Node::Select(c, t, f) => {
                vec![c.lhs.clone(), c.rhs.clone(), t.clone(), f.clone()]
            }
            _ => Vec::new(),
        }
    }

    /// Rebuild this node with new children (same order as `children()`).
    pub fn with_children(&self, ch: Vec<Expr>) -> Expr {
        match &self.0.node {
            Node::Add(_) => Expr::add(ch),
            Node::Mul(_) => Expr::mul(ch),
            Node::Fun(f, _) => Expr::func(*f, ch),
            Node::Pow(_, _) => {
                let mut it = ch.into_iter();
                let b = it.next().expect("pow base");
                let e = it.next().expect("pow exp");
                Expr::pow(b, e)
            }
            Node::Diff(_, d) => {
                let mut it = ch.into_iter();
                Expr::d(it.next().expect("diff inner"), *d as usize)
            }
            Node::Select(c, _, _) => {
                let mut it = ch.into_iter();
                let lhs = it.next().expect("cond lhs");
                let rhs = it.next().expect("cond rhs");
                let t = it.next().expect("then");
                let f = it.next().expect("else");
                Expr::select(Cond { op: c.op, lhs, rhs }, t, f)
            }
            _ => self.clone(),
        }
    }

    /// All distinct field accesses in the expression.
    pub fn accesses(&self) -> Vec<Access> {
        let mut out = Vec::new();
        self.visit_unique(&mut |e| {
            if let Node::Access(a) = e.node() {
                if !out.contains(a) {
                    out.push(*a);
                }
            }
            true
        });
        out
    }

    /// All distinct free symbols in the expression.
    pub fn free_symbols(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.visit_unique(&mut |e| {
            if let Node::Sym(s) = e.node() {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            true
        });
        out
    }

    /// Pre-order traversal over every node (including shared subtrees once
    /// per occurrence).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match &self.0.node {
            Node::Add(v) | Node::Mul(v) | Node::Fun(_, v) => {
                for c in v {
                    c.visit(f);
                }
            }
            Node::Pow(b, e) => {
                b.visit(f);
                e.visit(f);
            }
            Node::Diff(e, _) => e.visit(f),
            Node::Select(c, t, fe) => {
                c.lhs.visit(f);
                c.rhs.visit(f);
                t.visit(f);
                fe.visit(f);
            }
            _ => {}
        }
    }

    /// Number of nodes in the *tree* view (what emitted code would
    /// duplicate). Can be exponentially larger than `dag_size` on shared
    /// expressions — prefer `dag_size` for guards on large inputs.
    pub fn size(&self) -> usize {
        // Computed over the DAG with memoized per-node tree sizes, saturating
        // so shared giants don't overflow.
        let mut memo: HashMap<usize, usize> = HashMap::new();
        fn go(e: &Expr, memo: &mut HashMap<usize, usize>) -> usize {
            if let Some(&s) = memo.get(&e.node_id()) {
                return s;
            }
            let s = 1usize.saturating_add(
                e.children()
                    .iter()
                    .fold(0usize, |acc, c| acc.saturating_add(go(c, memo))),
            );
            memo.insert(e.node_id(), s);
            s
        }
        go(self, &mut memo)
    }

    /// Number of *unique* nodes (the cost of a DAG-aware transformation).
    pub fn dag_size(&self) -> usize {
        let mut n = 0usize;
        self.visit_unique(&mut |_| {
            n += 1;
            true
        });
        n
    }

    /// Structural total-order rank used by canonical sorting.
    pub(crate) fn rank(&self) -> u8 {
        match &self.0.node {
            Node::Num(_) => 0,
            Node::Sym(_) => 1,
            Node::Coord(_) => 2,
            Node::Time => 3,
            Node::CellIdx(_) => 4,
            Node::Rand(_) => 5,
            Node::Access(_) => 6,
            Node::Pow(_, _) => 7,
            Node::Mul(_) => 8,
            Node::Add(_) => 9,
            Node::Fun(_, _) => 10,
            Node::Diff(_, _) => 11,
            Node::Select(_, _, _) => 12,
        }
    }
}

// ----- equality / hashing / ordering -----------------------------------------

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        if Rc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        // Cached hashes disagree ⇒ structurally different, O(1).
        if self.0.hash != other.0.hash {
            return false;
        }
        match (&self.0.node, &other.0.node) {
            (Node::Num(a), Node::Num(b)) => a.to_bits() == b.to_bits(),
            (Node::Sym(a), Node::Sym(b)) => a == b,
            (Node::Coord(a), Node::Coord(b)) => a == b,
            (Node::Time, Node::Time) => true,
            (Node::CellIdx(a), Node::CellIdx(b)) => a == b,
            (Node::Rand(a), Node::Rand(b)) => a == b,
            (Node::Access(a), Node::Access(b)) => a == b,
            (Node::Add(a), Node::Add(b)) | (Node::Mul(a), Node::Mul(b)) => a == b,
            (Node::Pow(a, b), Node::Pow(c, d)) => a == c && b == d,
            (Node::Fun(f, a), Node::Fun(g, b)) => f == g && a == b,
            (Node::Diff(a, d), Node::Diff(b, e)) => d == e && a == b,
            (Node::Select(c1, t1, f1), Node::Select(c2, t2, f2)) => {
                c1 == c2 && t1 == t2 && f1 == f2
            }
            _ => false,
        }
    }
}

impl Eq for Expr {}

impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // O(1): the structural hash is cached at construction.
        state.write_u64(self.0.hash);
    }
}

impl PartialOrd for Expr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Expr {
    fn cmp(&self, other: &Self) -> Ordering {
        // The canonical order only needs to be total, deterministic, and
        // consistent with equality — rank first (so numbers sort before
        // symbols etc.), then the cached structural hash (O(1) for almost
        // every comparison), with a full structural walk only to break the
        // astronomically rare hash ties.
        if Rc::ptr_eq(&self.0, &other.0) {
            return Ordering::Equal;
        }
        let r = self.rank().cmp(&other.rank());
        if r != Ordering::Equal {
            return r;
        }
        let h = self.0.hash.cmp(&other.0.hash);
        if h != Ordering::Equal {
            return h;
        }
        match (&self.0.node, &other.0.node) {
            (Node::Num(a), Node::Num(b)) => a.total_cmp(b),
            (Node::Sym(a), Node::Sym(b)) => a.cmp(b),
            (Node::Coord(a), Node::Coord(b)) => a.cmp(b),
            (Node::Time, Node::Time) => Ordering::Equal,
            (Node::CellIdx(a), Node::CellIdx(b)) => a.cmp(b),
            (Node::Rand(a), Node::Rand(b)) => a.cmp(b),
            (Node::Access(a), Node::Access(b)) => a.cmp(b),
            (Node::Add(a), Node::Add(b)) | (Node::Mul(a), Node::Mul(b)) => a.cmp(b),
            (Node::Pow(a, b), Node::Pow(c, d)) => a.cmp(c).then_with(|| b.cmp(d)),
            (Node::Fun(f, a), Node::Fun(g, b)) => f.cmp(g).then_with(|| a.cmp(b)),
            (Node::Diff(a, d), Node::Diff(b, e)) => d.cmp(e).then_with(|| a.cmp(b)),
            (Node::Select(c1, t1, f1), Node::Select(c2, t2, f2)) => c1
                .op
                .cmp(&c2.op)
                .then_with(|| c1.lhs.cmp(&c2.lhs))
                .then_with(|| c1.rhs.cmp(&c2.rhs))
                .then_with(|| t1.cmp(t2))
                .then_with(|| f1.cmp(f2)),
            _ => unreachable!("rank equality implies same variant"),
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

// ----- operator overloads -----------------------------------------------------

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::add(vec![self, rhs])
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::add(vec![self, -rhs])
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::mul(vec![self, rhs])
    }
}

impl ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::mul(vec![self, Expr::recip(rhs)])
    }
}

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::mul(vec![Expr::num(-1.0), self])
    }
}

impl ops::Add<f64> for Expr {
    type Output = Expr;
    fn add(self, rhs: f64) -> Expr {
        self + Expr::num(rhs)
    }
}

impl ops::Sub<f64> for Expr {
    type Output = Expr;
    fn sub(self, rhs: f64) -> Expr {
        self - Expr::num(rhs)
    }
}

impl ops::Mul<f64> for Expr {
    type Output = Expr;
    fn mul(self, rhs: f64) -> Expr {
        self * Expr::num(rhs)
    }
}

impl ops::Div<f64> for Expr {
    type Output = Expr;
    fn div(self, rhs: f64) -> Expr {
        self / Expr::num(rhs)
    }
}

impl ops::Mul<Expr> for f64 {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::num(self) * rhs
    }
}

impl ops::Add<Expr> for f64 {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::num(self) + rhs
    }
}

impl ops::Sub<Expr> for f64 {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::num(self) - rhs
    }
}

impl ops::Div<Expr> for f64 {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::num(self) / rhs
    }
}

impl std::iter::Sum for Expr {
    fn sum<I: Iterator<Item = Expr>>(iter: I) -> Expr {
        Expr::add(iter.collect())
    }
}

impl std::iter::Product for Expr {
    fn product<I: Iterator<Item = Expr>>(iter: I) -> Expr {
        Expr::mul(iter.collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;

    #[test]
    fn constant_folding_in_operators() {
        let e = Expr::num(2.0) + Expr::num(3.0);
        assert_eq!(e.as_num(), Some(5.0));
        let e = Expr::num(2.0) * Expr::num(3.0) - Expr::num(6.0);
        assert!(e.is_zero());
    }

    #[test]
    fn canonical_sum_ordering_makes_equality_structural() {
        let a = Expr::sym("ca");
        let b = Expr::sym("cb");
        assert_eq!(a.clone() + b.clone(), b + a);
    }

    #[test]
    fn like_terms_collect() {
        let x = Expr::sym("lt_x");
        let e = x.clone() + x.clone() + x.clone();
        assert_eq!(e, 3.0 * x);
    }

    #[test]
    fn product_powers_merge() {
        let x = Expr::sym("pm_x");
        let e = x.clone() * x.clone();
        assert_eq!(e, Expr::powi(x, 2));
    }

    #[test]
    fn zero_annihilates_product() {
        let x = Expr::sym("za_x");
        assert!((x * Expr::zero()).is_zero());
    }

    #[test]
    fn sub_self_is_zero() {
        let f = Field::new("ss_f", 1, 3);
        let a = Expr::access(Access::center(f, 0));
        assert!((a.clone() - a).is_zero());
    }

    #[test]
    fn derivative_keeps_flux_sums_whole() {
        // ∂_d over a sum is NOT distributed at construction: the combined
        // sum is one flux for the staggered discretization (the linearity
        // still holds semantically — the discretized forms agree).
        let f = Field::new("dl_f", 1, 3);
        let g = Field::new("dl_g", 1, 3);
        let a = Expr::access(Access::center(f, 0));
        let b = Expr::access(Access::center(g, 0));
        let d = Expr::d(a.clone() + b.clone(), 0);
        assert!(matches!(d.node(), Node::Diff(_, _)), "got {d}");
    }

    #[test]
    fn derivative_of_constant_vanishes() {
        assert!(Expr::d(Expr::sym("dc_c"), 1).is_zero());
        assert!(Expr::d(Expr::num(4.2), 2).is_zero());
    }

    #[test]
    fn derivative_pulls_out_invariant_factors() {
        let f = Field::new("dp_f", 1, 3);
        let a = Expr::access(Access::center(f, 0));
        let c = Expr::sym("dp_c");
        let d = Expr::d(c.clone() * a.clone(), 0);
        assert_eq!(d, c * Expr::d(a, 0));
    }

    #[test]
    fn select_folds_constant_condition() {
        let t = Expr::sym("sel_t");
        let f = Expr::sym("sel_f");
        let picked = Expr::select(
            Cond {
                op: CmpOp::Lt,
                lhs: Expr::num(1.0),
                rhs: Expr::num(2.0),
            },
            t.clone(),
            f,
        );
        assert_eq!(picked, t);
    }

    #[test]
    fn func_constant_folds() {
        assert_eq!(Expr::abs(Expr::num(-3.0)).as_num(), Some(3.0));
        assert_eq!(
            Expr::max(Expr::num(1.0), Expr::num(2.0)).as_num(),
            Some(2.0)
        );
    }

    #[test]
    fn space_independence_classification() {
        let f = Field::new("si_f", 1, 3);
        assert!(Expr::sym("si_p").is_space_independent());
        assert!(Expr::time().is_space_independent());
        assert!(!Expr::coord(0).is_space_independent());
        assert!(!Expr::access(Access::center(f, 0)).is_space_independent());
        assert!((Expr::sym("si_q") * Expr::time()).is_space_independent());
    }

    #[test]
    fn with_children_roundtrip() {
        let x = Expr::sym("wc_x");
        let y = Expr::sym("wc_y");
        let e = x.clone() * y.clone() + Expr::powi(x.clone(), 3);
        let rebuilt = e.with_children(e.children());
        assert_eq!(e, rebuilt);
    }

    #[test]
    fn size_counts_nodes() {
        let x = Expr::sym("sz_x");
        assert_eq!(x.size(), 1);
        let e = x.clone() + Expr::sym("sz_y");
        assert_eq!(e.size(), 3);
    }
}
