//! Loop-invariant code motion via level classification.
//!
//! "Base pointers and other subexpressions that are constant w.r.t. the
//! current iteration are pulled before loops. In combination with CSE, this
//! step is crucial to automatically exploit special functional forms of the
//! temperature. For example, if the temperature depends on one spatial
//! coordinate only, the loop over this coordinate is chosen as the
//! outermost loop and all temperature-dependent subexpressions are pulled
//! out of the inner loops." (§3.4)
//!
//! Every tape instruction gets a *level*: 0 = invariant over the whole
//! sweep, 1 = recompute per outermost-loop iteration, 2 = per mid-loop
//! iteration, 3 = per cell. Because an instruction's level is the max of
//! its arguments' levels, a stable sort by level preserves SSA order, and
//! executors simply re-run the prefix sections at the right loop depths.

use crate::tape::{Tape, TapeOp};

/// Compute instruction levels for a given loop order (outermost first; the
/// last entry must be dimension 0 = x, the unit-stride dimension).
pub fn compute_levels(tape: &Tape, loop_order: [usize; 3]) -> Vec<u8> {
    assert_eq!(loop_order[2], 0, "x must remain the innermost loop");
    // depth_of_dim[d] = 1 + position of dimension d in the loop order.
    let mut depth_of_dim = [3u8; 3];
    for (pos, d) in loop_order.iter().enumerate() {
        depth_of_dim[*d] = pos as u8 + 1;
    }
    let mut levels = vec![0u8; tape.instrs.len()];
    for (i, op) in tape.instrs.iter().enumerate() {
        let own = match *op {
            TapeOp::Const(_) | TapeOp::Param(_) | TapeOp::Time => 0,
            TapeOp::Coord(d) | TapeOp::CellIdx(d) => depth_of_dim[d as usize],
            // Loads/stores/randoms touch per-cell state.
            TapeOp::Load { .. } | TapeOp::Rand(_) | TapeOp::Store { .. } | TapeOp::Fence => 3,
            _ => 0,
        };
        let arg_max = op
            .args()
            .iter()
            .map(|a| levels[a.0 as usize])
            .max()
            .unwrap_or(0);
        levels[i] = own.max(arg_max);
    }
    levels
}

/// Per-level instruction counts (diagnostics and cost model input).
pub fn level_histogram(levels: &[u8]) -> [usize; 4] {
    let mut h = [0usize; 4];
    for &l in levels {
        h[l as usize] += 1;
    }
    h
}

/// Choose the loop order that minimizes per-cell work (then per-mid-loop
/// work), apply it, and stably sort the instructions by level so executors
/// can hoist prefix sections out of inner loops.
pub fn apply_licm(tape: &mut Tape) {
    let candidates = [[2usize, 1, 0], [1, 2, 0]];
    let mut best: Option<([usize; 3], [usize; 4])> = None;
    for order in candidates {
        let levels = compute_levels(tape, order);
        let h = level_histogram(&levels);
        let better = match &best {
            None => true,
            Some((_, bh)) => (h[3], h[2], h[1]) < (bh[3], bh[2], bh[1]),
        };
        if better {
            best = Some((order, h));
        }
    }
    let (order, _) = best.expect("candidate list is non-empty");
    apply_loop_order(tape, order);
}

/// Impose a specific loop order (outermost first; x must stay innermost):
/// recompute levels for it and stably sort the instructions so executors
/// can hoist prefix sections. `apply_licm` calls this with the cheapest
/// order; tests and tuners can force the other candidate.
pub fn apply_loop_order(tape: &mut Tape, order: [usize; 3]) {
    let levels = compute_levels(tape, order);

    // Stable sort by level. Levels are monotone along def-use edges, so the
    // sorted order still defines every register before its uses.
    let n = tape.instrs.len();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.sort_by_key(|&i| levels[i]);
    let mut remap = vec![0u32; n];
    for (new_pos, &old) in perm.iter().enumerate() {
        remap[old] = new_pos as u32;
    }
    let mut new_instrs = Vec::with_capacity(n);
    let mut new_levels = Vec::with_capacity(n);
    for &old in &perm {
        new_instrs.push(tape.instrs[old].map_args(&mut |r| crate::tape::VReg(remap[r.0 as usize])));
        new_levels.push(levels[old]);
    }
    tape.instrs = new_instrs;
    tape.levels = new_levels;
    tape.loop_order = order;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use pf_stencil::{Assignment, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};

    /// A kernel whose expensive part depends only on z (and t): the analytic
    /// temperature scenario.
    fn temperature_kernel() -> Tape {
        let f = Field::new("lv_phi", 1, 3);
        let out = Field::new("lv_out", 1, 3);
        // T = T0 + G·(z − v·t); expensive = exp(T)·ln(T+2)
        let temp = Expr::sym("lv_T0")
            + Expr::sym("lv_G") * (Expr::coord(2) - Expr::sym("lv_v") * Expr::time());
        let expensive = Expr::func(pf_symbolic::Func::Exp, vec![temp.clone()])
            * Expr::func(pf_symbolic::Func::Ln, vec![temp + 2.0]);
        let rhs = expensive * Expr::access(Access::center(f, 0));
        let k = StencilKernel::new(
            "temp_k",
            vec![Assignment::store(Access::center(out, 0), rhs)],
        );
        lower_kernel(&k)
    }

    #[test]
    fn z_dependent_work_hoists_to_level_one_with_z_outermost() {
        let tape = temperature_kernel();
        let levels = compute_levels(&tape, [2, 1, 0]);
        let h = level_histogram(&levels);
        // exp, ln, adds, muls of the temperature chain are all ≤ level 1;
        // only the load, final mul and store stay per-cell.
        assert_eq!(h[3], 3, "histogram {h:?}");
        assert!(h[1] >= 4, "histogram {h:?}");
    }

    #[test]
    fn wrong_loop_order_keeps_work_at_level_two() {
        let tape = temperature_kernel();
        let levels = compute_levels(&tape, [1, 2, 0]);
        let h = level_histogram(&levels);
        // With y outermost, z is the mid loop: the chain lands on level 2.
        assert!(h[2] >= 4, "histogram {h:?}");
    }

    #[test]
    fn apply_licm_picks_z_outermost_and_sorts() {
        let mut tape = temperature_kernel();
        apply_licm(&mut tape);
        assert_eq!(tape.loop_order, [2, 1, 0]);
        // Levels must be non-decreasing after the stable sort.
        assert!(tape.levels.windows(2).all(|w| w[0] <= w[1]));
        // Still a valid SSA order: every arg defined earlier.
        for (i, op) in tape.instrs.iter().enumerate() {
            for a in op.args() {
                assert!((a.0 as usize) < i);
            }
        }
    }

    #[test]
    fn purely_constant_instructions_are_level_zero() {
        let out = Field::new("lv_c", 1, 3);
        let rhs = Expr::sym("lv_p") * 3.0 + 1.0;
        let k = StencilKernel::new(
            "const_k",
            vec![Assignment::store(Access::center(out, 0), rhs)],
        );
        let tape = lower_kernel(&k);
        let levels = compute_levels(&tape, [2, 1, 0]);
        let h = level_histogram(&levels);
        // Everything except the store itself is invariant.
        assert_eq!(h[3], 1);
    }
}
