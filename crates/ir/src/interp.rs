//! Reference scalar interpreter for kernel tapes.
//!
//! Executes one cell's worth of a tape against an abstract environment.
//! This is the semantic ground truth the fast executors in `pf-backend`
//! (and every transformation pass in this crate) are tested against.

use crate::tape::{Tape, TapeOp};
use pf_symbolic::{Access, EvalCtx, MapCtx};

/// Environment supplying leaf values for one cell.
pub trait TapeEnv {
    fn param(&self, slot: usize) -> f64;
    fn load(&self, field_slot: usize, comp: u16, off: [i16; 3]) -> f64;
    fn coord(&self, _d: usize) -> f64 {
        0.0
    }
    fn time(&self) -> f64 {
        0.0
    }
    fn cell_idx(&self, _d: usize) -> f64 {
        0.0
    }
    fn rand(&self, _lane: usize) -> f64 {
        0.0
    }
}

/// Destination of one store: `(field_slot, comp, off)`.
pub type StoreKey = (u16, u16, [i16; 3]);

/// Result of interpreting a tape for one cell.
#[derive(Debug, Clone)]
pub struct TapeResult {
    /// `(field_slot, comp, off)` and the stored value, in store order.
    pub stores: Vec<(StoreKey, f64)>,
    /// Final register file (diagnostics).
    pub regs: Vec<f64>,
}

/// Interpret every instruction of `tape` once (single cell).
pub fn interp_cell(tape: &Tape, env: &impl TapeEnv) -> TapeResult {
    let mut regs = vec![0.0f64; tape.instrs.len()];
    let mut stores = Vec::new();
    for (i, op) in tape.instrs.iter().enumerate() {
        let v = match *op {
            TapeOp::Const(c) => c.0,
            TapeOp::Param(p) => env.param(p as usize),
            TapeOp::Load { field, comp, off } => env.load(field as usize, comp, off),
            TapeOp::Coord(d) => env.coord(d as usize),
            TapeOp::Time => env.time(),
            TapeOp::CellIdx(d) => env.cell_idx(d as usize),
            TapeOp::Rand(k) => env.rand(k as usize),
            TapeOp::Add(a, b) => regs[a.0 as usize] + regs[b.0 as usize],
            TapeOp::Sub(a, b) => regs[a.0 as usize] - regs[b.0 as usize],
            TapeOp::Mul(a, b) => regs[a.0 as usize] * regs[b.0 as usize],
            TapeOp::Div(a, b) => regs[a.0 as usize] / regs[b.0 as usize],
            TapeOp::Neg(a) => -regs[a.0 as usize],
            TapeOp::Sqrt(a) => regs[a.0 as usize].sqrt(),
            TapeOp::RSqrt(a) => 1.0 / regs[a.0 as usize].sqrt(),
            TapeOp::Abs(a) => regs[a.0 as usize].abs(),
            TapeOp::Min(a, b) => regs[a.0 as usize].min(regs[b.0 as usize]),
            TapeOp::Max(a, b) => regs[a.0 as usize].max(regs[b.0 as usize]),
            TapeOp::Exp(a) => regs[a.0 as usize].exp(),
            TapeOp::Ln(a) => regs[a.0 as usize].ln(),
            TapeOp::Sin(a) => regs[a.0 as usize].sin(),
            TapeOp::Cos(a) => regs[a.0 as usize].cos(),
            TapeOp::Tanh(a) => regs[a.0 as usize].tanh(),
            TapeOp::Sign(a) => {
                let x = regs[a.0 as usize];
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            TapeOp::Floor(a) => regs[a.0 as usize].floor(),
            TapeOp::Powf(a, b) => regs[a.0 as usize].powf(regs[b.0 as usize]),
            TapeOp::CmpSelect { op, l, r, t, f } => {
                if op.eval(regs[l.0 as usize], regs[r.0 as usize]) {
                    regs[t.0 as usize]
                } else {
                    regs[f.0 as usize]
                }
            }
            TapeOp::Store {
                field,
                comp,
                off,
                val,
            } => {
                stores.push(((field, comp, off), regs[val.0 as usize]));
                regs[val.0 as usize]
            }
            TapeOp::Fence => 0.0,
        };
        regs[i] = v;
    }
    TapeResult { stores, regs }
}

/// Adapter: interpret a tape against the symbolic layer's `MapCtx` so tests
/// can compare against `Expr::eval` directly.
pub struct MapEnv<'a> {
    pub tape: &'a Tape,
    pub ctx: &'a MapCtx,
}

impl TapeEnv for MapEnv<'_> {
    fn param(&self, slot: usize) -> f64 {
        self.ctx.sym(self.tape.params[slot])
    }

    fn load(&self, field_slot: usize, comp: u16, off: [i16; 3]) -> f64 {
        let field = self.tape.fields[field_slot];
        let acc = Access::at(
            field,
            comp as usize,
            [off[0] as i32, off[1] as i32, off[2] as i32],
        );
        self.ctx.access(acc)
    }

    fn coord(&self, d: usize) -> f64 {
        self.ctx.coords[d]
    }

    fn time(&self) -> f64 {
        self.ctx.time
    }
}

/// Convenience used across tests: interpret `tape` against a `MapCtx`.
pub fn interp_expr_context(tape: &Tape, ctx: &MapCtx) -> TapeResult {
    interp_cell(tape, &MapEnv { tape, ctx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use pf_stencil::{Assignment, StencilKernel};
    use pf_symbolic::{Expr, Field};

    #[test]
    fn store_order_is_preserved() {
        let f = Field::new("itp_f", 2, 3);
        let k = StencilKernel::new(
            "t",
            vec![
                Assignment::store(Access::center(f, 1), Expr::num(2.0)),
                Assignment::store(Access::center(f, 0), Expr::num(1.0)),
            ],
        );
        let tape = lower_kernel(&k);
        let r = interp_expr_context(&tape, &MapCtx::new());
        assert_eq!(r.stores.len(), 2);
        assert_eq!(r.stores[0].0 .1, 1);
        assert_eq!(r.stores[0].1, 2.0);
        assert_eq!(r.stores[1].1, 1.0);
    }
}
