//! The kernel generation pipeline: stencil assignments → optimized tape.
//!
//! Mirrors §3.3–3.5 of the paper: per-term expansion and simplification,
//! compile-time parameter binding (constant folding on expression level),
//! global CSE across all assignments, lowering, loop-invariant code motion,
//! and dead-code elimination. GPU-specific register transformations
//! (`schedule`, `rematerialize`, `insert_fences`) are applied separately by
//! the CUDA backend path.

use crate::levels::apply_licm;
use crate::lower::lower_kernel;
use crate::tape::{ApproxOptions, Tape};
use crate::verify::{run_verifier, VerifyStage};
use pf_stencil::{Assignment, StencilKernel};
use pf_symbolic::{cse_with_prefix, expand, Expr, Symbol};
use std::collections::HashMap;

/// Code generation options for one kernel.
#[derive(Clone, Debug)]
pub struct GenOptions {
    /// Expand products of sums before simplification (per-term rewrite).
    pub expand: bool,
    /// Run global common subexpression elimination across all assignments.
    pub cse: bool,
    /// Hoist loop-invariant instructions and pick the loop order.
    pub licm: bool,
    /// Numeric values substituted at generation time ("the symbolic
    /// parameters which remain fixed during a simulation run are substituted
    /// by numeric values", §3.3). Symbols *not* listed stay runtime kernel
    /// arguments.
    pub params: HashMap<Symbol, f64>,
    /// Approximate-math options forwarded to backends and the perf model.
    pub approx: ApproxOptions,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            expand: true,
            cse: true,
            licm: true,
            params: HashMap::new(),
            approx: ApproxOptions::default(),
        }
    }
}

impl GenOptions {
    pub fn with_params(mut self, params: HashMap<Symbol, f64>) -> Self {
        self.params = params;
        self
    }

    /// Disable all optimizations — the "generic application without code
    /// generation" baseline the paper compares against (§5.1).
    pub fn naive() -> Self {
        GenOptions {
            expand: false,
            cse: false,
            licm: false,
            params: HashMap::new(),
            approx: ApproxOptions::default(),
        }
    }
}

/// Run the expression-level passes of the pipeline, returning the rewritten
/// stencil kernel (with CSE temporaries prepended).
pub fn optimize_stencil(kernel: &StencilKernel, opts: &GenOptions) -> StencilKernel {
    // 1. Bind compile-time parameters, then simplify each term (binding
    //    alone re-canonicalizes, folding constants).
    let bound: Vec<Assignment> = kernel
        .assignments
        .iter()
        .map(|a| {
            let mut rhs = a.rhs.bind_params(&opts.params);
            // "Terms are simplified individually by expansion or factoring"
            // (§3.3): expansion often cancels terms, but can also blow up
            // polynomial factors — expand each top-level term separately and
            // keep whichever form is smaller, skipping intractable terms.
            if opts.expand {
                let try_expand = |t: &Expr| -> Expr {
                    if t.size() >= 50_000 {
                        return t.clone();
                    }
                    let ex = expand(t);
                    // Compare *DAG* sizes: expansion can shrink the tree by
                    // cancelling terms while destroying the subexpression
                    // sharing the value-numbered lowering exploits — the
                    // generated code cost tracks unique nodes, not tree
                    // nodes. Only accept clear wins; marginal expansions
                    // trade shared products for long add chains.
                    if 4 * ex.dag_size() <= 3 * t.dag_size() {
                        ex
                    } else {
                        t.clone()
                    }
                };
                rhs = match rhs.node() {
                    pf_symbolic::Node::Add(terms) => {
                        Expr::add(terms.iter().map(try_expand).collect())
                    }
                    _ => try_expand(&rhs),
                };
            }
            Assignment { lhs: a.lhs, rhs }
        })
        .collect();

    // 2. Global CSE across all right-hand sides.
    let assignments = if opts.cse {
        let roots: Vec<Expr> = bound.iter().map(|a| a.rhs.clone()).collect();
        let res = cse_with_prefix(&roots, &format!("{}_c", kernel.name));
        let mut out: Vec<Assignment> = res
            .temps
            .iter()
            .map(|(s, e)| Assignment::temp(*s, e.clone()))
            .collect();
        for (a, rhs) in bound.iter().zip(res.exprs) {
            out.push(Assignment { lhs: a.lhs, rhs });
        }
        out
    } else {
        bound
    };

    let mut out = StencilKernel::new(&kernel.name, assignments);
    out.iter_extent = kernel.iter_extent;
    out
}

/// Full pipeline: stencil kernel → optimized executable tape.
pub fn generate(kernel: &StencilKernel, opts: &GenOptions) -> Tape {
    let optimized = optimize_stencil(kernel, opts);
    let mut tape = lower_kernel(&optimized);
    if opts.licm {
        apply_licm(&mut tape);
    }
    tape.dead_code_eliminate();
    tape.approx = opts.approx;
    run_verifier(&tape, VerifyStage::PostLowering);
    tape
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interp_expr_context;
    use crate::tape::TapeOp;
    use pf_symbolic::{Access, Field, MapCtx};

    #[test]
    fn parameter_binding_simplifies_the_kernel() {
        // With A == 0 bound at compile time the whole anisotropy branch
        // folds away — the paper's central flexibility-vs-speed argument.
        let f = Field::new("pl_in", 1, 3);
        let out = Field::new("pl_out", 1, 3);
        let a = Expr::sym("pl_A");
        let phi = Expr::access(Access::center(f, 0));
        let rhs = phi.clone() + a * Expr::sqrt(phi.clone() + 3.0) * Expr::powi(phi, 5);
        let k = StencilKernel::new("bind", vec![Assignment::store(Access::center(out, 0), rhs)]);

        let generic = generate(&k, &GenOptions::default());
        let mut params = HashMap::new();
        params.insert(Symbol::new("pl_A"), 0.0);
        let special = generate(&k, &GenOptions::default().with_params(params));
        assert!(
            special.instrs.len() < generic.instrs.len() / 2,
            "{} vs {}",
            special.instrs.len(),
            generic.instrs.len()
        );
        assert!(!special
            .instrs
            .iter()
            .any(|op| matches!(op, TapeOp::Sqrt(_))));
    }

    #[test]
    fn cse_reduces_instruction_count() {
        let f = Field::new("pl_cse_in", 1, 3);
        let out = Field::new("pl_cse_out", 2, 3);
        let phi = Expr::access(Access::center(f, 0));
        let shared = Expr::sqrt(phi.clone() * 3.0 + 1.0);
        let k = StencilKernel::new(
            "cse",
            vec![
                Assignment::store(Access::center(out, 0), shared.clone() + phi.clone()),
                Assignment::store(Access::center(out, 1), shared * 2.0),
            ],
        );
        let with = generate(&k, &GenOptions::default());
        let without = generate(
            &k,
            &GenOptions {
                cse: false,
                ..GenOptions::default()
            },
        );
        // Note: tape-level value numbering also dedupes, so compare the
        // stencil-level results instead for the CSE-off case — both end up
        // equal here, which itself is worth asserting:
        assert!(with.instrs.len() <= without.instrs.len());
    }

    #[test]
    fn full_pipeline_preserves_semantics() {
        let f = Field::new("pl_sem_in", 2, 3);
        let out = Field::new("pl_sem_out", 1, 3);
        let a = Expr::access(Access::center(f, 0));
        let b = Expr::access(Access::at(f, 1, [1, 0, 0]));
        let g = Expr::sym("pl_gamma");
        let rhs = Expr::powi(a.clone() + b.clone(), 2) * g.clone()
            - Expr::sqrt(Expr::abs(a.clone() * b.clone()) + 1.0)
            + g / (a.clone() + 2.0);
        let k = StencilKernel::new(
            "sem",
            vec![Assignment::store(Access::center(out, 0), rhs.clone())],
        );
        let mut ctx = MapCtx::new();
        ctx.set("pl_gamma", 0.35);
        ctx.set_access(Access::center(f, 0), 0.8);
        ctx.set_access(Access::at(f, 1, [1, 0, 0]), -0.3);

        for opts in [
            GenOptions::default(),
            GenOptions::naive(),
            GenOptions {
                expand: false,
                ..GenOptions::default()
            },
        ] {
            let tape = generate(&k, &opts);
            let got = interp_expr_context(&tape, &ctx).stores[0].1;
            let want = rhs.eval(&ctx);
            assert!((got - want).abs() < 1e-12, "opts {opts:?}: {got} vs {want}");
        }
    }

    #[test]
    fn licm_levels_are_populated() {
        let f = Field::new("pl_licm_in", 1, 3);
        let out = Field::new("pl_licm_out", 1, 3);
        let temp = Expr::sym("pl_T0") + Expr::coord(2) * Expr::sym("pl_G");
        let rhs = Expr::access(Access::center(f, 0)) * Expr::powi(temp, 3);
        let k = StencilKernel::new("licm", vec![Assignment::store(Access::center(out, 0), rhs)]);
        let tape = generate(&k, &GenOptions::default());
        assert!(tape.levels.iter().any(|&l| l < 3), "nothing hoisted");
        assert!(tape.levels.windows(2).all(|w| w[0] <= w[1]));
    }
}
