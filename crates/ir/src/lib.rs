//! `pf-ir` — the intermediate representation layer of the pipeline (§3.4 of
//! the paper) plus the GPU register-pressure transformations (§3.5).
//!
//! Stencil kernels are lowered onto a flat SSA **tape** (one straight-line
//! register program per cell). Passes provided:
//!
//! * lowering with value numbering, single-division products, sqrt/rsqrt
//!   ops, integer-power multiplication chains;
//! * loop-invariant code motion with automatic loop-order selection
//!   (the analytic-temperature optimization);
//! * dead code elimination;
//! * Kessler-style beam-search scheduling for minimal register pressure;
//! * rematerialization of cheap common subexpressions;
//! * scheduling fences and a model of downstream-compiler load hoisting;
//! * a reference interpreter (the semantic ground truth for the fast
//!   executors in `pf-backend`).

#![forbid(unsafe_code)]

pub mod interp;
pub mod levels;
pub mod lower;
pub mod pipeline;
pub mod schedule;
pub mod tape;
pub mod verify;

pub use interp::{interp_cell, interp_expr_context, MapEnv, TapeEnv, TapeResult};
pub use levels::{apply_licm, apply_loop_order, compute_levels, level_histogram};
pub use lower::{lower_expr, lower_kernel};
pub use pipeline::{generate, optimize_stencil, GenOptions};
pub use schedule::{
    insert_fences, liveness, rematerialize, schedule_min_live, simulate_compiler_order, Liveness,
};
pub use tape::{ApproxOptions, Tape, TapeBuilder, TapeOp, VReg, CF};
pub use verify::{
    run_verifier, set_verifier, set_verify_enabled, verify_enabled, TapeVerifier, VerifyStage,
};
