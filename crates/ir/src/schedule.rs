//! Register-pressure transformations for the GPU backend (§3.5, Fig. 2
//! right): statement rescheduling (a beam-search variant of Kessler's
//! optimal expression-DAG scheduling), rematerialization of cheap
//! subexpressions ("dupl"), and scheduling fences ("fence").
//!
//! All passes operate on the SSA tape and preserve semantics exactly; the
//! companion `simulate_compiler_order` models the downstream compiler's
//! load-hoisting behaviour that the fences exist to suppress.

use crate::tape::{Tape, TapeOp, VReg};
use crate::verify::{run_verifier, VerifyStage};

/// Live-register statistics of a tape in its current instruction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Liveness {
    /// Maximum number of simultaneously live f64 values.
    pub peak: usize,
    /// Number of instructions that define a live value.
    pub defs: usize,
}

/// Compute liveness in the current order. A register is live from its
/// definition until its last use; stores and fences define nothing.
pub fn liveness(tape: &Tape) -> Liveness {
    let n = tape.instrs.len();
    let mut last_use = vec![usize::MAX; n];
    for (i, op) in tape.instrs.iter().enumerate() {
        for a in op.args() {
            last_use[a.0 as usize] = i;
        }
    }
    let mut live = 0usize;
    let mut peak = 0usize;
    let mut defs = 0usize;
    for (i, op) in tape.instrs.iter().enumerate() {
        // Values whose last use is this instruction die here …
        let dies = op
            .args()
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .iter()
            .filter(|a| last_use[a.0 as usize] == i)
            .count();
        // … and the definition (if any, and if ever used) is born here.
        let born = usize::from(op.is_pure() && last_use[i] != usize::MAX);
        live = live + born - dies.min(live);
        peak = peak.max(live);
        defs += born;
    }
    Liveness { peak, defs }
}

// ---------------------------------------------------------------------------
// Beam-search scheduling
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct BeamState {
    order: Vec<u32>,
    remaining_uses: Vec<u16>,
    indeg: Vec<u16>,
    ready: Vec<u32>,
    cur_live: usize,
    peak_live: usize,
    hash: u64,
    /// Index of the current fence region (instructions of region r must all
    /// be scheduled before region r+1 opens).
    region: u16,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Dependency structure: argument edges plus a serial chain through stores
/// (stores may not be reordered among themselves — they may alias).
struct Dag {
    /// users[i] = instructions reading register i (plus ordering users).
    users: Vec<Vec<u32>>,
    indeg: Vec<u16>,
    /// Fence region of each instruction.
    region: Vec<u16>,
    uses_of: Vec<u16>,
}

fn build_dag(tape: &Tape) -> Dag {
    let n = tape.instrs.len();
    let mut users: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg = vec![0u16; n];
    let mut uses_of = vec![0u16; n];
    let mut prev_store: Option<usize> = None;
    let mut region = vec![0u16; n];
    let mut cur_region = 0u16;
    for (i, op) in tape.instrs.iter().enumerate() {
        if op.is_fence() {
            cur_region += 1;
        }
        region[i] = cur_region;
        let mut deps: Vec<usize> = op.args().iter().map(|a| a.0 as usize).collect();
        for &d in &deps {
            uses_of[d] += 1;
        }
        if op.is_store() {
            if let Some(p) = prev_store {
                deps.push(p);
            }
            prev_store = Some(i);
        }
        deps.sort_unstable();
        deps.dedup();
        for d in deps {
            users[d].push(i as u32);
            indeg[i] += 1;
        }
    }
    Dag {
        users,
        indeg,
        region,
        uses_of,
    }
}

/// Depth-first (Sethi–Ullman-flavoured) schedule: every store's dependency
/// cone is emitted depth-first, visiting higher-register-need operands
/// first, each instruction exactly once. On the wide, CSE-heavy DAGs of
/// generated kernels this collapses the "all temporaries live at once"
/// layout the naive assignment order produces.
pub fn schedule_dfs(tape: &Tape) -> Tape {
    let n = tape.instrs.len();
    if n == 0 {
        return tape.clone();
    }
    // Sethi–Ullman labels (exact on trees, a good heuristic on DAGs).
    let mut need = vec![0u32; n];
    for (i, op) in tape.instrs.iter().enumerate() {
        let mut ch: Vec<u32> = op.args().iter().map(|a| need[a.0 as usize]).collect();
        if ch.is_empty() {
            need[i] = 1;
            continue;
        }
        ch.sort_unstable_by(|a, b| b.cmp(a));
        need[i] = ch
            .iter()
            .enumerate()
            .map(|(k, &c)| c + k as u32)
            .max()
            .unwrap_or(1)
            .max(1);
    }
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut emitted = vec![false; n];
    // Iterative DFS with explicit stack: (instr, next_arg_index, sorted args).
    let emit = |root: usize, order: &mut Vec<u32>, emitted: &mut Vec<bool>| {
        if emitted[root] {
            return;
        }
        let mut stack: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        let sorted_args = |i: usize| -> Vec<usize> {
            let mut a: Vec<usize> = tape.instrs[i].args().iter().map(|r| r.0 as usize).collect();
            a.sort_unstable_by(|&x, &y| need[y].cmp(&need[x]));
            a.dedup();
            a
        };
        stack.push((root, 0, sorted_args(root)));
        while let Some((i, k, args)) = stack.pop() {
            if emitted[i] {
                continue;
            }
            if k < args.len() {
                stack.push((i, k + 1, args.clone()));
                let a = args[k];
                if !emitted[a] {
                    let sa = sorted_args(a);
                    stack.push((a, 0, sa));
                }
            } else {
                emitted[i] = true;
                order.push(i as u32);
            }
        }
    };
    // Roots in original order: stores, fences, and any other sink.
    for (i, op) in tape.instrs.iter().enumerate() {
        if op.is_store() || op.is_fence() {
            emit(i, &mut order, &mut emitted);
        }
    }
    for i in 0..n {
        if !emitted[i] {
            emit(i, &mut order, &mut emitted);
        }
    }
    let out = reorder(tape, &order);
    run_verifier(&out, VerifyStage::PostScheduling);
    out
}

/// Reorder the tape's instructions to minimize peak register pressure:
/// the better of a depth-first Sethi–Ullman schedule and a beam search of
/// width `beam` seeded on it (width 1 = greedy; the paper found no
/// consistent improvement beyond ~20). Returns the rescheduled tape.
pub fn schedule_min_live(tape: &Tape, beam: usize) -> Tape {
    let dfs = schedule_dfs(tape);
    let beam_result = schedule_beam(tape, beam);
    if liveness(&dfs).peak <= liveness(&beam_result).peak {
        dfs
    } else {
        beam_result
    }
}

/// The raw beam-search scheduler (Kessler's breadth-first search with
/// same-prefix deduplication, converted to a beam heuristic).
pub fn schedule_beam(tape: &Tape, beam: usize) -> Tape {
    let n = tape.instrs.len();
    if n == 0 {
        return tape.clone();
    }
    let dag = build_dag(tape);
    let max_region = *dag.region.iter().max().unwrap_or(&0);

    let init_ready: Vec<u32> = (0..n)
        .filter(|&i| dag.indeg[i] == 0 && dag.region[i] == 0)
        .map(|i| i as u32)
        .collect();
    let init = BeamState {
        order: Vec::with_capacity(n),
        remaining_uses: dag.uses_of.clone(),
        indeg: dag.indeg.clone(),
        ready: init_ready,
        cur_live: 0,
        peak_live: 0,
        hash: 0,
        region: 0,
    };
    let mut states = vec![init];

    for _step in 0..n {
        // Generate candidates: (parent index, instruction, projected score).
        let mut cands: Vec<(usize, u32, usize, usize)> = Vec::new();
        for (si, s) in states.iter().enumerate() {
            for &i in &s.ready {
                let op = &tape.instrs[i as usize];
                let mut uniq_args: Vec<u32> = op.args().iter().map(|a| a.0).collect();
                uniq_args.sort_unstable();
                uniq_args.dedup();
                let occ = |r: u32| -> u16 { op.args().iter().filter(|a| a.0 == r).count() as u16 };
                let released = uniq_args
                    .iter()
                    .filter(|&&a| s.remaining_uses[a as usize] == occ(a))
                    .count();
                let born = usize::from(op.is_pure() && dag.uses_of[i as usize] > 0);
                let new_live = s.cur_live + born - released.min(s.cur_live);
                let new_peak = s.peak_live.max(new_live);
                cands.push((si, i, new_peak, new_live));
            }
        }
        if cands.is_empty() {
            // Only possible if a fence region must open: advance regions.
            for s in states.iter_mut() {
                if s.region < max_region {
                    s.region += 1;
                    s.ready = (0..n)
                        .filter(|&i| {
                            s.indeg[i] == 0
                                && dag.region[i] == s.region
                                && !s.order.contains(&(i as u32))
                        })
                        .map(|i| i as u32)
                        .collect();
                }
            }
            let still_empty = states.iter().all(|s| s.ready.is_empty());
            if still_empty {
                break;
            }
            continue;
        }
        cands.sort_by_key(|&(_, _, peak, live)| (peak, live));

        // Materialize up to `beam` distinct next states, deduplicating
        // schedules that cover the same instruction set (Kessler's pruning).
        let mut next: Vec<BeamState> = Vec::with_capacity(beam);
        let mut seen = std::collections::HashSet::new();
        for &(si, i, new_peak, new_live) in &cands {
            if next.len() >= beam {
                break;
            }
            let parent = &states[si];
            let h = parent.hash ^ splitmix64(i as u64);
            if !seen.insert(h) {
                continue;
            }
            let mut s = parent.clone();
            s.order.push(i);
            s.hash = h;
            s.cur_live = new_live;
            s.peak_live = new_peak;
            let op = &tape.instrs[i as usize];
            for a in op.args() {
                s.remaining_uses[a.0 as usize] = s.remaining_uses[a.0 as usize].saturating_sub(1);
            }
            s.ready.retain(|&r| r != i);
            for &u in &dag.users[i as usize] {
                s.indeg[u as usize] -= 1;
                if s.indeg[u as usize] == 0 && dag.region[u as usize] <= s.region {
                    s.ready.push(u);
                }
            }
            // Open the next fence region once the current one drains.
            while s.ready.is_empty() && s.region < max_region {
                s.region += 1;
                let reg = s.region;
                for i2 in 0..n {
                    if s.indeg[i2] == 0 && dag.region[i2] == reg && !s.order.contains(&(i2 as u32))
                    {
                        s.ready.push(i2 as u32);
                    }
                }
            }
            next.push(s);
        }
        states = next;
    }

    let best = states
        .into_iter()
        .min_by_key(|s| s.peak_live)
        .expect("at least one schedule survives");
    assert_eq!(best.order.len(), n, "incomplete schedule");
    let out = reorder(tape, &best.order);
    run_verifier(&out, VerifyStage::PostScheduling);
    out
}

/// Rebuild a tape following `order` (a permutation of instruction indices).
fn reorder(tape: &Tape, order: &[u32]) -> Tape {
    let n = tape.instrs.len();
    let mut remap = vec![0u32; n];
    for (new_pos, &old) in order.iter().enumerate() {
        remap[old as usize] = new_pos as u32;
    }
    let mut out = tape.clone();
    out.instrs = order
        .iter()
        .map(|&old| tape.instrs[old as usize].map_args(&mut |r| VReg(remap[r.0 as usize])))
        .collect();
    out.levels = order
        .iter()
        .map(|&old| *tape.levels.get(old as usize).unwrap_or(&3))
        .collect();
    out
}

// ---------------------------------------------------------------------------
// Rematerialization ("dupl")
// ---------------------------------------------------------------------------

/// Recompute cost of an instruction's value, counting arithmetic ops in its
/// private dependency cone (shared leaves are free).
fn recompute_cost(tape: &Tape, i: usize, memo: &mut Vec<Option<u32>>) -> u32 {
    if let Some(c) = memo[i] {
        return c;
    }
    let op = &tape.instrs[i];
    let own = match op {
        TapeOp::Const(_)
        | TapeOp::Param(_)
        | TapeOp::Coord(_)
        | TapeOp::Time
        | TapeOp::CellIdx(_) => 0,
        TapeOp::Load { .. } => 1,
        _ => 1,
    };
    let c = own
        + op.args()
            .iter()
            .map(|a| recompute_cost(tape, a.0 as usize, memo))
            .sum::<u32>();
    memo[i] = Some(c);
    c
}

/// Undo CSE for values that are cheap to recompute: every use of a
/// multi-use register with recompute cost ≤ `max_cost` gets its own private
/// copy of the defining cone, shortening live ranges at the price of extra
/// arithmetic. ("It essentially takes back some effects of the CSE, by
/// rematerializing expressions that are cheap to compute." §3.5)
pub fn rematerialize(tape: &Tape, max_cost: u32) -> Tape {
    let n = tape.instrs.len();
    let mut memo = vec![None; n];
    let uses = tape.use_counts();
    let is_cand: Vec<bool> = (0..n)
        .map(|i| {
            tape.instrs[i].is_pure()
                && !matches!(
                    tape.instrs[i],
                    TapeOp::Rand(_) // randomness must not be re-sampled
                )
                && uses[i] >= 2
                && recompute_cost(tape, i, &mut memo) <= max_cost
                && recompute_cost(tape, i, &mut memo) > 0
        })
        .collect();

    let mut out = Tape {
        instrs: Vec::with_capacity(n * 2),
        levels: Vec::with_capacity(n * 2),
        ..tape.clone()
    };
    // remap of non-candidate instructions
    let mut remap: Vec<Option<VReg>> = vec![None; n];

    fn materialize(
        tape: &Tape,
        i: usize,
        is_cand: &[bool],
        remap: &[Option<VReg>],
        out: &mut Tape,
        level: u8,
    ) -> VReg {
        let op = &tape.instrs[i];
        let new_op = op.map_args(&mut |a: VReg| {
            let j = a.0 as usize;
            if is_cand[j] {
                materialize(tape, j, is_cand, remap, out, level)
            } else {
                remap[j].expect("non-candidate argument already emitted")
            }
        });
        let r = VReg(out.instrs.len() as u32);
        out.instrs.push(new_op);
        out.levels.push(level);
        r
    }

    for i in 0..n {
        if is_cand[i] {
            continue; // emitted lazily at each use
        }
        let level = *tape.levels.get(i).unwrap_or(&3);
        let op = &tape.instrs[i];
        let new_op = op.map_args(&mut |a: VReg| {
            let j = a.0 as usize;
            if is_cand[j] {
                materialize(tape, j, &is_cand, &remap, &mut out, level)
            } else {
                remap[j].expect("argument already emitted")
            }
        });
        let r = VReg(out.instrs.len() as u32);
        out.instrs.push(new_op);
        out.levels.push(level);
        remap[i] = Some(r);
    }
    run_verifier(&out, VerifyStage::PostScheduling);
    out
}

// ---------------------------------------------------------------------------
// Fences and the modelled compiler reordering
// ---------------------------------------------------------------------------

/// Insert a scheduling fence every `every` instructions (the
/// `__threadfence()` insertion transformation).
pub fn insert_fences(tape: &Tape, every: usize) -> Tape {
    assert!(every > 0);
    let mut out = tape.clone();
    let mut instrs = Vec::with_capacity(tape.instrs.len() + tape.instrs.len() / every + 1);
    let mut levels = Vec::with_capacity(instrs.capacity());
    let mut remap = vec![0u32; tape.instrs.len()];
    for (i, op) in tape.instrs.iter().enumerate() {
        if i > 0 && i % every == 0 {
            instrs.push(TapeOp::Fence);
            levels.push(3);
        }
        remap[i] = instrs.len() as u32;
        instrs.push(op.map_args(&mut |r: VReg| VReg(remap[r.0 as usize])));
        levels.push(*tape.levels.get(i).unwrap_or(&3));
    }
    out.instrs = instrs;
    out.levels = levels;
    run_verifier(&out, VerifyStage::PostScheduling);
    out
}

/// Model of the downstream compiler's instruction scheduling: within each
/// fence-delimited region, all loads (and other zero-dependency leaf
/// instructions) are hoisted to the region start "so that they can overlap
/// with each other and independent computations" (§3.5) — the behaviour
/// that inflates register pressure and that fences suppress.
pub fn simulate_compiler_order(tape: &Tape) -> Tape {
    let n = tape.instrs.len();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut region_start = 0usize;
    for i in 0..=n {
        let at_boundary = i == n || tape.instrs[i].is_fence();
        if at_boundary {
            let mut leaves: Vec<u32> = Vec::new();
            let mut rest: Vec<u32> = Vec::new();
            for j in region_start..i {
                if matches!(tape.instrs[j], TapeOp::Load { .. }) {
                    leaves.push(j as u32);
                } else {
                    rest.push(j as u32);
                }
            }
            order.extend(leaves);
            order.extend(rest);
            if i < n {
                order.push(i as u32); // the fence itself
            }
            region_start = i + 1;
        }
    }
    let out = reorder(tape, &order);
    run_verifier(&out, VerifyStage::PostScheduling);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{interp_expr_context, TapeResult};
    use crate::lower::lower_kernel;
    use pf_stencil::{Assignment, StencilKernel};
    use pf_symbolic::{Access, Expr, Field, MapCtx};

    /// A kernel with deliberately bad pressure when loads are hoisted: many
    /// independent (load·const) pairs summed at the end.
    fn wide_kernel(nloads: usize) -> (Tape, MapCtx) {
        let f = Field::new("sc_in", nloads, 3);
        let out = Field::new("sc_out", 1, 3);
        let mut ctx = MapCtx::new();
        let mut rhs = Expr::zero();
        for c in 0..nloads {
            let a = Access::center(f, c);
            ctx.set_access(a, c as f64 + 0.5);
            rhs = rhs + Expr::access(a) * Expr::num((c + 2) as f64);
        }
        let k = StencilKernel::new("wide", vec![Assignment::store(Access::center(out, 0), rhs)]);
        (lower_kernel(&k), ctx)
    }

    fn stored(r: &TapeResult) -> f64 {
        r.stores[0].1
    }

    #[test]
    fn scheduling_preserves_semantics() {
        let (tape, ctx) = wide_kernel(10);
        let base = stored(&interp_expr_context(&tape, &ctx));
        for beam in [1, 4, 16] {
            let s = schedule_min_live(&tape, beam);
            assert_eq!(s.instrs.len(), tape.instrs.len());
            let v = stored(&interp_expr_context(&s, &ctx));
            assert!((v - base).abs() < 1e-12, "beam {beam}: {v} vs {base}");
        }
    }

    #[test]
    fn scheduling_beats_compiler_hoisting() {
        let (tape, _) = wide_kernel(24);
        let hoisted = simulate_compiler_order(&tape);
        let scheduled = schedule_min_live(&tape, 8);
        let p_hoist = liveness(&hoisted).peak;
        let p_sched = liveness(&scheduled).peak;
        assert!(
            p_sched < p_hoist,
            "scheduled {p_sched} should beat hoisted {p_hoist}"
        );
    }

    #[test]
    fn beam_width_never_hurts_much() {
        let (tape, _) = wide_kernel(16);
        let p1 = liveness(&schedule_min_live(&tape, 1)).peak;
        let p20 = liveness(&schedule_min_live(&tape, 20)).peak;
        assert!(p20 <= p1, "wider beam regressed: {p20} > {p1}");
    }

    #[test]
    fn remat_preserves_semantics_and_duplicates_cheap_values() {
        let x = Expr::sym("sc_rx");
        let shared = x.clone() * 2.0; // cheap, multi-use
        let f = Field::new("sc_rout", 2, 3);
        let k = StencilKernel::new(
            "remat",
            vec![
                Assignment::store(
                    Access::center(f, 0),
                    Expr::sqrt(shared.clone()) + shared.clone(),
                ),
                Assignment::store(Access::center(f, 1), shared.clone() * 3.0),
            ],
        );
        let tape = lower_kernel(&k);
        let r = rematerialize(&tape, 2);
        assert!(r.instrs.len() > tape.instrs.len(), "nothing duplicated");
        let mut ctx = MapCtx::new();
        ctx.set("sc_rx", 1.7);
        let a = interp_expr_context(&tape, &ctx);
        let b = interp_expr_context(&r, &ctx);
        assert_eq!(a.stores.len(), b.stores.len());
        for (x, y) in a.stores.iter().zip(&b.stores) {
            assert!((x.1 - y.1).abs() < 1e-14);
        }
    }

    #[test]
    fn fences_limit_hoisting() {
        let (tape, ctx) = wide_kernel(24);
        let free = simulate_compiler_order(&tape);
        let fenced = simulate_compiler_order(&insert_fences(&tape, 8));
        let p_free = liveness(&free).peak;
        let p_fenced = liveness(&fenced).peak;
        assert!(
            p_fenced < p_free,
            "fences should reduce hoisted pressure: {p_fenced} vs {p_free}"
        );
        // And semantics hold.
        let v0 = stored(&interp_expr_context(&tape, &ctx));
        let v1 = stored(&interp_expr_context(&fenced, &ctx));
        assert!((v0 - v1).abs() < 1e-12);
    }

    #[test]
    fn store_order_survives_scheduling() {
        let f = Field::new("sc_so", 2, 3);
        let k = StencilKernel::new(
            "stores",
            vec![
                Assignment::store(Access::center(f, 0), Expr::num(1.0)),
                Assignment::store(Access::center(f, 1), Expr::num(2.0)),
            ],
        );
        let tape = lower_kernel(&k);
        let s = schedule_min_live(&tape, 4);
        let r = interp_expr_context(&s, &MapCtx::new());
        assert_eq!(r.stores[0].1, 1.0);
        assert_eq!(r.stores[1].1, 2.0);
    }
}

#[cfg(test)]
mod validator_tests {
    use super::*;
    use crate::lower::lower_kernel;
    use pf_stencil::{Assignment, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};

    #[test]
    fn all_transforms_produce_valid_ssa() {
        let f = Field::new("vt_in", 4, 3);
        let out = Field::new("vt_out", 1, 3);
        let rhs: Expr = (0..4)
            .map(|c| Expr::sqrt(Expr::access(Access::center(f, c)) + 1.0) * (c + 1) as f64)
            .sum();
        let k = StencilKernel::new("vt", vec![Assignment::store(Access::center(out, 0), rhs)]);
        let base = lower_kernel(&k);
        assert_eq!(base.validate(), Ok(()));
        assert_eq!(schedule_min_live(&base, 4).validate(), Ok(()));
        assert_eq!(schedule_dfs(&base).validate(), Ok(()));
        assert_eq!(rematerialize(&base, 2).validate(), Ok(()));
        assert_eq!(insert_fences(&base, 3).validate(), Ok(()));
        assert_eq!(simulate_compiler_order(&base).validate(), Ok(()));
    }
}
