//! Pipeline verification hook.
//!
//! pf-ir manufactures tapes; pf-analyze proves invariants about them — but
//! pf-analyze depends on pf-ir, so the dependency cannot point the other
//! way. Instead the pipeline exposes a *hook*: `pf_analyze::
//! install_pipeline_verifier()` registers its checker here once per
//! process, and `generate` / every scheduling transform then run it on
//! each tape they produce. Without an installed hook the built-in
//! [`Tape::validate`] still runs, so the pipeline is never unchecked.
//!
//! Verification is on by default and controlled by `PF_VERIFY`:
//! `PF_VERIFY=0` (or `off`/`false`) disables it — the escape hatch for
//! perf measurements of generation itself — and
//! [`set_verify_enabled`] overrides the environment programmatically.
//! A failed verification panics: a malformed tape executed natively is
//! undefined behaviour at worst and silent wrong physics at best, neither
//! of which is recoverable by the caller.

use crate::tape::Tape;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Where in the pipeline a tape is being verified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyStage {
    /// After `generate` (lowering + LICM + DCE).
    PostLowering,
    /// After a scheduling transform (reorder, rematerialize, fences).
    PostScheduling,
}

/// The hook signature: return `Err(rendered diagnostics)` to fail.
pub type TapeVerifier = fn(&Tape, VerifyStage) -> Result<(), String>;

static VERIFIER: Mutex<Option<TapeVerifier>> = Mutex::new(None);

/// 0 = not yet read from the environment, 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Install the process-wide tape verifier (normally
/// `pf_analyze::install_pipeline_verifier` does this). Last install wins.
pub fn set_verifier(v: TapeVerifier) {
    *VERIFIER.lock().unwrap() = Some(v);
}

/// Is pipeline verification on? Defaults to yes; `PF_VERIFY=0`, `off` or
/// `false` in the environment disables it. The answer is cached after the
/// first read.
pub fn verify_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = match std::env::var("PF_VERIFY") {
                Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
                Err(_) => true,
            };
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatic override of `PF_VERIFY` (tests, benchmark harnesses).
pub fn set_verify_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Run the built-in structural validation plus the installed hook on
/// `tape`. Panics on failure — see the module docs for why.
pub fn run_verifier(tape: &Tape, stage: VerifyStage) {
    if !verify_enabled() {
        return;
    }
    if let Err(e) = tape.validate() {
        panic!(
            "{stage:?} verification failed for kernel '{}': {e}",
            tape.name
        );
    }
    let hook = *VERIFIER.lock().unwrap();
    if let Some(hook) = hook {
        if let Err(e) = hook(tape, stage) {
            panic!(
                "{stage:?} verification failed for kernel '{}':\n{e}",
                tape.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::{TapeBuilder, TapeOp, CF};
    use pf_symbolic::Field;

    fn tiny_tape() -> Tape {
        let f = Field::new("vr_f", 1, 3);
        let mut b = TapeBuilder::new("vr_tiny");
        let c = b.emit(TapeOp::Const(CF(1.0)));
        let slot = b.field_slot(f);
        b.emit(TapeOp::Store {
            field: slot,
            comp: 0,
            off: [0; 3],
            val: c,
        });
        b.finish([0; 3])
    }

    #[test]
    fn toggle_controls_whether_broken_tapes_are_caught() {
        // One test for the whole toggle lifecycle: the switch is process
        // state, and splitting this across #[test]s would race them.
        set_verify_enabled(true);
        assert!(verify_enabled());
        let mut t = tiny_tape();
        t.levels.clear(); // structurally invalid
        set_verify_enabled(false);
        assert!(!verify_enabled());
        run_verifier(&t, VerifyStage::PostLowering); // must not panic
        set_verify_enabled(true);
        assert!(verify_enabled());
    }

    #[test]
    fn clean_tape_passes_builtin_validation() {
        set_verify_enabled(true);
        run_verifier(&tiny_tape(), VerifyStage::PostScheduling);
    }
}
