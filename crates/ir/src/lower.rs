//! Lowering stencil assignments to the kernel tape.
//!
//! This is where algebraic structure becomes machine-shaped arithmetic:
//! canonical n-ary sums/products are folded into binary add/sub/mul chains,
//! negative-exponent factors are gathered into a **single division** per
//! product (divisions cost ~16 normalized FLOPs on Skylake — Table 1), and
//! small integer powers become multiplication chains. Exponents ±1/2 map to
//! the dedicated sqrt/rsqrt instructions the paper counts and approximates
//! separately.

use crate::tape::{Tape, TapeBuilder, TapeOp, VReg, CF};
use pf_stencil::{Lhs, StencilKernel};
use pf_symbolic::{Expr, Func, Node};

/// Lower a whole stencil kernel into a fresh tape.
pub fn lower_kernel(k: &StencilKernel) -> Tape {
    let mut b = TapeBuilder::new(&k.name);
    for asg in &k.assignments {
        let r = lower_expr(&mut b, &asg.rhs);
        match asg.lhs {
            Lhs::Temp(s) => {
                b.temp_regs.insert(s, r);
            }
            Lhs::Field(acc) => {
                let field = b.field_slot(acc.field);
                let off = [acc.off[0] as i16, acc.off[1] as i16, acc.off[2] as i16];
                b.emit(TapeOp::Store {
                    field,
                    comp: acc.comp,
                    off,
                    val: r,
                });
            }
        }
    }
    let mut t = b.finish(k.iter_extent);
    t.dead_code_eliminate();
    t
}

/// Lower one expression, returning the register holding its value.
/// Memoized on node identity: shared subtrees lower once.
pub fn lower_expr(b: &mut TapeBuilder, e: &Expr) -> VReg {
    if let Some((_, r)) = b.expr_memo.get(&e.node_id()) {
        return *r;
    }
    let r = lower_expr_uncached(b, e);
    b.expr_memo.insert(e.node_id(), (e.clone(), r));
    r
}

fn lower_expr_uncached(b: &mut TapeBuilder, e: &Expr) -> VReg {
    match e.node() {
        Node::Num(v) => b.emit(TapeOp::Const(CF(*v))),
        Node::Sym(s) => {
            if let Some(&r) = b.temp_regs.get(s) {
                r
            } else {
                let p = b.param_slot(*s);
                b.emit(TapeOp::Param(p))
            }
        }
        Node::Coord(d) => b.emit(TapeOp::Coord(*d)),
        Node::Time => b.emit(TapeOp::Time),
        Node::CellIdx(d) => b.emit(TapeOp::CellIdx(*d)),
        Node::Rand(k) => b.emit(TapeOp::Rand(*k)),
        Node::Access(a) => {
            let field = b.field_slot(a.field);
            b.emit(TapeOp::Load {
                field,
                comp: a.comp,
                off: [a.off[0] as i16, a.off[1] as i16, a.off[2] as i16],
            })
        }
        Node::Add(terms) => lower_sum(b, terms),
        Node::Mul(factors) => lower_product(b, factors),
        Node::Pow(base, exp) => lower_pow(b, base, exp),
        Node::Fun(f, args) => {
            let a0 = lower_expr(b, &args[0]);
            match f {
                Func::Abs => b.emit(TapeOp::Abs(a0)),
                Func::Exp => b.emit(TapeOp::Exp(a0)),
                Func::Ln => b.emit(TapeOp::Ln(a0)),
                Func::Sin => b.emit(TapeOp::Sin(a0)),
                Func::Cos => b.emit(TapeOp::Cos(a0)),
                Func::Tanh => b.emit(TapeOp::Tanh(a0)),
                Func::Sign => b.emit(TapeOp::Sign(a0)),
                Func::Floor => b.emit(TapeOp::Floor(a0)),
                Func::Min => {
                    let a1 = lower_expr(b, &args[1]);
                    b.emit(TapeOp::Min(a0, a1))
                }
                Func::Max => {
                    let a1 = lower_expr(b, &args[1]);
                    b.emit(TapeOp::Max(a0, a1))
                }
            }
        }
        Node::Select(c, t, f) => {
            let l = lower_expr(b, &c.lhs);
            let r = lower_expr(b, &c.rhs);
            let tv = lower_expr(b, t);
            let fv = lower_expr(b, f);
            b.emit(TapeOp::CmpSelect {
                op: c.op,
                l,
                r,
                t: tv,
                f: fv,
            })
        }
        Node::Diff(inner, d) => {
            panic!(
                "continuous derivative D{d}[{inner}] reached lowering — run the \
                 discretization pass first"
            )
        }
    }
}

/// Fold a canonical sum into adds/subs. Terms whose leading numeric
/// coefficient is negative are subtracted so the generated code mirrors
/// hand-written stencils.
fn lower_sum(b: &mut TapeBuilder, terms: &[Expr]) -> VReg {
    /// Split a term into (negate?, magnitude expression).
    fn sign_split(t: &Expr) -> (bool, Expr) {
        if let Node::Mul(fs) = t.node() {
            if let Some(c) = fs.first().and_then(|f| f.as_num()) {
                if c < 0.0 {
                    let rest: Vec<Expr> = fs[1..].to_vec();
                    let mag = if c == -1.0 {
                        Expr::mul(rest)
                    } else {
                        Expr::mul(std::iter::once(Expr::num(-c)).chain(rest).collect())
                    };
                    return (true, mag);
                }
            }
        }
        if let Some(v) = t.as_num() {
            if v < 0.0 {
                return (true, Expr::num(-v));
            }
        }
        (false, t.clone())
    }

    // Lower positives first so the accumulator starts without a negation.
    let split: Vec<(bool, Expr)> = terms.iter().map(sign_split).collect();
    let mut acc: Option<VReg> = None;
    for (neg, mag) in split.iter().filter(|(n, _)| !n) {
        debug_assert!(!neg);
        let r = lower_expr(b, mag);
        acc = Some(match acc {
            None => r,
            Some(a) => b.emit(TapeOp::Add(a, r)),
        });
    }
    for (_, mag) in split.iter().filter(|(n, _)| *n) {
        let r = lower_expr(b, mag);
        acc = Some(match acc {
            None => b.emit(TapeOp::Neg(r)),
            Some(a) => b.emit(TapeOp::Sub(a, r)),
        });
    }
    acc.unwrap_or_else(|| b.emit(TapeOp::Const(CF(0.0))))
}

/// Fold a canonical product, gathering all negative-exponent factors into
/// one denominator so the whole product costs a single division.
fn lower_product(b: &mut TapeBuilder, factors: &[Expr]) -> VReg {
    let mut negate = false;
    let mut num: Vec<Expr> = Vec::new();
    let mut den: Vec<Expr> = Vec::new();
    for f in factors {
        if let Some(c) = f.as_num() {
            if c == -1.0 {
                negate = true;
                continue;
            }
            if c == 1.0 {
                continue;
            }
            if c < 0.0 {
                negate = true;
                num.push(Expr::num(-c));
                continue;
            }
            num.push(f.clone());
            continue;
        }
        if let Node::Pow(base, exp) = f.node() {
            if let Some(ev) = exp.as_num() {
                if ev < 0.0 {
                    // x^-0.5 stays in the numerator as an rsqrt — cheaper
                    // than a division by sqrt.
                    if ev == -0.5 {
                        num.push(f.clone());
                    } else {
                        den.push(Expr::pow(base.clone(), Expr::num(-ev)));
                    }
                    continue;
                }
            }
        }
        num.push(f.clone());
    }

    // Associate invariant-most factors first so partial products stay
    // hoistable by LICM: space-independent, then coordinate-only, then
    // per-cell factors.
    let licm_key = |e: &Expr| -> u8 {
        if e.is_space_independent() {
            0
        } else if e.accesses().is_empty() {
            1
        } else {
            2
        }
    };
    num.sort_by_key(&licm_key);
    den.sort_by_key(&licm_key);

    let num_reg = if num.is_empty() {
        b.emit(TapeOp::Const(CF(1.0)))
    } else {
        let mut acc = lower_expr(b, &num[0]);
        for f in &num[1..] {
            let r = lower_expr(b, f);
            acc = b.emit(TapeOp::Mul(acc, r));
        }
        acc
    };

    let mut out = if den.is_empty() {
        num_reg
    } else {
        let mut dacc = lower_expr(b, &den[0]);
        for f in &den[1..] {
            let r = lower_expr(b, f);
            dacc = b.emit(TapeOp::Mul(dacc, r));
        }
        b.emit(TapeOp::Div(num_reg, dacc))
    };
    if negate {
        out = b.emit(TapeOp::Neg(out));
    }
    out
}

fn lower_pow(b: &mut TapeBuilder, base: &Expr, exp: &Expr) -> VReg {
    if let Some(ev) = exp.as_num() {
        if ev == 0.5 {
            let r = lower_expr(b, base);
            return b.emit(TapeOp::Sqrt(r));
        }
        if ev == -0.5 {
            let r = lower_expr(b, base);
            return b.emit(TapeOp::RSqrt(r));
        }
        if ev == 1.5 {
            let r = lower_expr(b, base);
            let s = b.emit(TapeOp::Sqrt(r));
            return b.emit(TapeOp::Mul(r, s));
        }
        if ev.fract() == 0.0 && ev.abs() <= 8.0 && ev != 0.0 {
            let r = lower_expr(b, base);
            let p = lower_powi(b, r, ev.abs() as u32);
            if ev > 0.0 {
                return p;
            }
            let one = b.emit(TapeOp::Const(CF(1.0)));
            return b.emit(TapeOp::Div(one, p));
        }
    }
    let br = lower_expr(b, base);
    let er = lower_expr(b, exp);
    b.emit(TapeOp::Powf(br, er))
}

/// Integer power by squaring (x⁴ = (x²)², 2 muls instead of 3).
fn lower_powi(b: &mut TapeBuilder, x: VReg, n: u32) -> VReg {
    debug_assert!(n >= 1);
    if n == 1 {
        return x;
    }
    let half = lower_powi(b, x, n / 2);
    let sq = b.emit(TapeOp::Mul(half, half));
    if n % 2 == 1 {
        b.emit(TapeOp::Mul(sq, x))
    } else {
        sq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interp_expr_context;
    use pf_stencil::Assignment;
    use pf_symbolic::{Access, Field, MapCtx};

    fn roundtrip(e: &Expr, ctx: &MapCtx) -> (f64, f64) {
        let f = Field::new("low_out", 1, 3);
        let k = StencilKernel::new(
            "t",
            vec![Assignment::store(Access::center(f, 0), e.clone())],
        );
        let tape = lower_kernel(&k);
        let tctx = interp_expr_context(&tape, ctx);
        let direct = e.eval(ctx);
        (tctx.stores[0].1, direct)
    }

    #[test]
    fn sum_with_negatives_uses_subs() {
        let x = Expr::sym("low_x");
        let y = Expr::sym("low_y");
        let e = x.clone() - 2.0 * y.clone();
        let mut ctx = MapCtx::new();
        ctx.set("low_x", 5.0).set("low_y", 2.0);
        let (tape_v, direct) = roundtrip(&e, &ctx);
        assert_eq!(tape_v, direct);
        assert_eq!(tape_v, 1.0);
    }

    #[test]
    fn product_gathers_single_division() {
        // a / (b·c): exactly one Div instruction.
        let a = Expr::sym("low_a");
        let bb = Expr::sym("low_b");
        let c = Expr::sym("low_c");
        let e = a / (bb * c);
        let f = Field::new("low_div", 1, 3);
        let k = StencilKernel::new("t", vec![Assignment::store(Access::center(f, 0), e)]);
        let tape = lower_kernel(&k);
        let divs = tape
            .instrs
            .iter()
            .filter(|op| matches!(op, TapeOp::Div(_, _)))
            .count();
        assert_eq!(divs, 1);
    }

    #[test]
    fn sqrt_exponents_use_dedicated_ops() {
        let x = Expr::sym("low_s");
        for (e, probe) in [
            (Expr::sqrt(x.clone()), TapeOpKind::Sqrt),
            (Expr::rsqrt(x.clone()), TapeOpKind::RSqrt),
        ] {
            let f = Field::new("low_sq", 1, 3);
            let k = StencilKernel::new("t", vec![Assignment::store(Access::center(f, 0), e)]);
            let tape = lower_kernel(&k);
            let found = tape.instrs.iter().any(|op| match probe {
                TapeOpKind::Sqrt => matches!(op, TapeOp::Sqrt(_)),
                TapeOpKind::RSqrt => matches!(op, TapeOp::RSqrt(_)),
            });
            assert!(found);
        }
    }

    enum TapeOpKind {
        Sqrt,
        RSqrt,
    }

    #[test]
    fn integer_powers_become_mul_chains() {
        let x = Expr::sym("low_p");
        let e = Expr::powi(x, 4);
        let f = Field::new("low_pw", 1, 3);
        let k = StencilKernel::new("t", vec![Assignment::store(Access::center(f, 0), e)]);
        let tape = lower_kernel(&k);
        let muls = tape
            .instrs
            .iter()
            .filter(|op| matches!(op, TapeOp::Mul(_, _)))
            .count();
        assert_eq!(muls, 2, "x^4 by squaring");
        assert!(!tape
            .instrs
            .iter()
            .any(|op| matches!(op, TapeOp::Powf(_, _))));
    }

    #[test]
    fn temps_bind_to_registers_not_params() {
        let f = Field::new("low_t", 1, 3);
        let s = pf_symbolic::Symbol::new("low_tmp0");
        let x = Expr::sym("low_tx");
        let k = StencilKernel::new(
            "t",
            vec![
                Assignment::temp(s, x.clone() * x.clone()),
                Assignment::store(
                    Access::center(f, 0),
                    Expr::symbol(s) + Expr::symbol(s) * 2.0,
                ),
            ],
        );
        let tape = lower_kernel(&k);
        assert_eq!(tape.params.len(), 1, "only x is a parameter");
    }

    #[test]
    fn lowering_preserves_semantics_on_mixed_expression() {
        let x = Expr::sym("low_m1");
        let y = Expr::sym("low_m2");
        let e = Expr::sqrt(Expr::powi(x.clone(), 2) + Expr::powi(y.clone(), 2))
            / (x.clone() * y.clone() + 4.0)
            - Expr::max(x.clone(), y.clone());
        let mut ctx = MapCtx::new();
        ctx.set("low_m1", 0.7).set("low_m2", -1.3);
        let (tape_v, direct) = roundtrip(&e, &ctx);
        assert!((tape_v - direct).abs() < 1e-14, "{tape_v} vs {direct}");
    }

    #[test]
    #[should_panic(expected = "discretization")]
    fn lowering_rejects_continuous_derivatives() {
        let f = Field::new("low_d", 1, 3);
        let acc = Access::center(f, 0);
        let e = Expr::d(Expr::powi(Expr::access(acc), 2), 0);
        let k = StencilKernel::new("t", vec![Assignment::store(acc, e)]);
        lower_kernel(&k);
    }

    #[test]
    fn dce_runs_on_lowered_kernels() {
        // A temp that is never used downstream disappears.
        let f = Field::new("low_dce", 1, 3);
        let s = pf_symbolic::Symbol::new("low_dce_tmp");
        let x = Expr::sym("low_dce_x");
        let k = StencilKernel::new(
            "t",
            vec![
                Assignment::temp(s, Expr::sqrt(x.clone())),
                Assignment::store(Access::center(f, 0), x.clone() + 1.0),
            ],
        );
        let tape = lower_kernel(&k);
        assert!(!tape.instrs.iter().any(|op| matches!(op, TapeOp::Sqrt(_))));
    }
}
