//! The flat, typed kernel tape — this project's executable intermediate
//! representation.
//!
//! A tape is a straight-line SSA program executed once per grid cell:
//! instruction `i` defines virtual register `i`. The stencil layer's
//! assignment lists are lowered onto it (see `lower.rs`); the backends
//! either interpret it natively or pretty-print it as C/CUDA.
//!
//! Keeping the representation this low-level is what lets the same data
//! structure drive execution, FLOP accounting (Table 1), the ECM performance
//! model (Fig. 2), and the GPU register-pressure transformations
//! (Fig. 2 right).

use pf_symbolic::{CmpOp, Field, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Virtual register = index of the defining instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// f64 wrapper with bitwise equality/hashing so instructions can be value
/// numbered.
#[derive(Clone, Copy, Debug)]
pub struct CF(pub f64);

impl PartialEq for CF {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for CF {}
impl std::hash::Hash for CF {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.to_bits());
    }
}

/// One tape instruction. `Store` produces no value (its register is unused).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TapeOp {
    Const(CF),
    /// Kernel argument (slot into `Tape::params`).
    Param(u16),
    /// Field read: slot into `Tape::fields`, component, cell-relative offset.
    Load {
        field: u16,
        comp: u16,
        off: [i16; 3],
    },
    Coord(u8),
    Time,
    CellIdx(u8),
    Rand(u8),
    Add(VReg, VReg),
    Sub(VReg, VReg),
    Mul(VReg, VReg),
    Div(VReg, VReg),
    Neg(VReg),
    Sqrt(VReg),
    /// Reciprocal square root — a first-class op because the paper counts
    /// and approximates it separately (`rsqrt14` on AVX-512, `frsqrt` CUDA).
    RSqrt(VReg),
    Abs(VReg),
    Min(VReg, VReg),
    Max(VReg, VReg),
    Exp(VReg),
    Ln(VReg),
    Sin(VReg),
    Cos(VReg),
    Tanh(VReg),
    Sign(VReg),
    Floor(VReg),
    Powf(VReg, VReg),
    /// Branch-free select (vector blend).
    CmpSelect {
        op: CmpOp,
        l: VReg,
        r: VReg,
        t: VReg,
        f: VReg,
    },
    /// Field write.
    Store {
        field: u16,
        comp: u16,
        off: [i16; 3],
        val: VReg,
    },
    /// Scheduling barrier (the `__threadfence()` analogue, §3.5): no
    /// instruction may move across it.
    Fence,
}

impl TapeOp {
    /// Registers read by this instruction.
    pub fn args(&self) -> Vec<VReg> {
        use TapeOp::*;
        match *self {
            Add(a, b) | Sub(a, b) | Mul(a, b) | Div(a, b) | Min(a, b) | Max(a, b) | Powf(a, b) => {
                vec![a, b]
            }
            Neg(a) | Sqrt(a) | RSqrt(a) | Abs(a) | Exp(a) | Ln(a) | Sin(a) | Cos(a) | Tanh(a)
            | Sign(a) | Floor(a) => vec![a],
            CmpSelect { l, r, t, f, .. } => vec![l, r, t, f],
            Store { val, .. } => vec![val],
            Const(_) | Param(_) | Load { .. } | Coord(_) | Time | CellIdx(_) | Rand(_) | Fence => {
                vec![]
            }
        }
    }

    /// Same instruction with its register arguments remapped.
    pub fn map_args(&self, m: &mut impl FnMut(VReg) -> VReg) -> TapeOp {
        use TapeOp::*;
        match *self {
            Add(a, b) => Add(m(a), m(b)),
            Sub(a, b) => Sub(m(a), m(b)),
            Mul(a, b) => Mul(m(a), m(b)),
            Div(a, b) => Div(m(a), m(b)),
            Min(a, b) => Min(m(a), m(b)),
            Max(a, b) => Max(m(a), m(b)),
            Powf(a, b) => Powf(m(a), m(b)),
            Neg(a) => Neg(m(a)),
            Sqrt(a) => Sqrt(m(a)),
            RSqrt(a) => RSqrt(m(a)),
            Abs(a) => Abs(m(a)),
            Exp(a) => Exp(m(a)),
            Ln(a) => Ln(m(a)),
            Sin(a) => Sin(m(a)),
            Cos(a) => Cos(m(a)),
            Tanh(a) => Tanh(m(a)),
            Sign(a) => Sign(m(a)),
            Floor(a) => Floor(m(a)),
            CmpSelect { op, l, r, t, f } => CmpSelect {
                op,
                l: m(l),
                r: m(r),
                t: m(t),
                f: m(f),
            },
            Store {
                field,
                comp,
                off,
                val,
            } => Store {
                field,
                comp,
                off,
                val: m(val),
            },
            other => other,
        }
    }

    pub fn is_store(&self) -> bool {
        matches!(self, TapeOp::Store { .. })
    }

    pub fn is_fence(&self) -> bool {
        matches!(self, TapeOp::Fence)
    }

    /// Is this a pure value computation (eligible for value numbering and
    /// rematerialization)?
    pub fn is_pure(&self) -> bool {
        !matches!(self, TapeOp::Store { .. } | TapeOp::Fence)
    }
}

/// Approximation options the user can request for expensive operations
/// (§3.5: `rsqrt14`, `fdividef`, `frsqrt`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ApproxOptions {
    pub fast_div: bool,
    pub fast_sqrt: bool,
    pub fast_rsqrt: bool,
}

/// A complete compiled kernel.
#[derive(Clone, Debug)]
pub struct Tape {
    pub name: String,
    /// Field slot table: `Load`/`Store` instructions refer to these.
    pub fields: Vec<Field>,
    /// Runtime parameter slot table (symbols left unbound at generation).
    pub params: Vec<Symbol>,
    /// SSA instruction list; instruction `i` defines `VReg(i)`.
    pub instrs: Vec<TapeOp>,
    /// Extra iterations past the interior per dimension (face kernels).
    pub iter_extent: [usize; 3],
    /// LICM level of each instruction: 0 = loop-invariant, 1 = depends on
    /// the outermost spatial loop only, 2 = mid loop, 3 = innermost
    /// (per-cell). Filled by the `levels` pass; defaults to 3.
    pub levels: Vec<u8>,
    /// Loop order as a permutation of the dimensions, outermost first. The
    /// innermost loop is always the unit-stride x dimension (memory layout
    /// constraint, §3.4); the pass may swap the outer two.
    pub loop_order: [usize; 3],
    pub approx: ApproxOptions,
    /// Per-field-slot value range contracts (parallel to `fields`):
    /// `Some((lo, hi))` declares that every value loaded from that field is
    /// in `[lo, hi]` (a *model-level* promise, e.g. φ ∈ [0, 1] after
    /// simplex projection). Analysis-only metadata: it seeds the interval
    /// dataflow pass and is deliberately **excluded from
    /// [`Tape::structural_hash`]** — contracts never change what a tape
    /// computes, so stamping them must not invalidate resolved-plan or
    /// compiled-code caches. Empty means "no contracts" (all unknown).
    pub field_ranges: Vec<Option<(f64, f64)>>,
}

impl Tape {
    pub fn field_slot(&self, f: Field) -> Option<u16> {
        self.fields.iter().position(|x| *x == f).map(|i| i as u16)
    }

    /// Number of virtual registers.
    pub fn num_regs(&self) -> usize {
        self.instrs.len()
    }

    /// Stable fingerprint of everything execution-relevant in this tape:
    /// name, slot tables, instruction list, levels, loop order, iteration
    /// extent and approximation flags. Two tapes with equal hashes execute
    /// identically over identically-shaped storage — which is what
    /// executors key resolved-plan caches on. (Tapes carry no identity:
    /// pipelines clone and mutate them freely, so a stored id would go
    /// stale; a structural fingerprint cannot.) `field_ranges` is *not*
    /// hashed: contracts are analysis-only and must not invalidate caches.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.fields.hash(&mut h);
        self.params.hash(&mut h);
        self.instrs.hash(&mut h);
        self.iter_extent.hash(&mut h);
        self.levels.hash(&mut h);
        self.loop_order.hash(&mut h);
        self.approx.hash(&mut h);
        h.finish()
    }

    /// Declared value range of loads from field slot `slot`, if any.
    pub fn field_range(&self, slot: u16) -> Option<(f64, f64)> {
        self.field_ranges.get(slot as usize).copied().flatten()
    }

    /// Indices of store instructions.
    pub fn stores(&self) -> impl Iterator<Item = usize> + '_ {
        self.instrs
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_store())
            .map(|(i, _)| i)
    }

    /// Use counts of each register.
    pub fn use_counts(&self) -> Vec<u32> {
        let mut uses = vec![0u32; self.instrs.len()];
        for op in &self.instrs {
            for a in op.args() {
                uses[a.0 as usize] += 1;
            }
        }
        uses
    }

    /// Remove instructions whose results are never used (and are not stores
    /// or fences), preserving SSA numbering by rebuilding.
    pub fn dead_code_eliminate(&mut self) {
        let n = self.instrs.len();
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for (i, op) in self.instrs.iter().enumerate() {
            // Rand is a root too: each op consumes one lane of the per-cell
            // Philox stream, so eliminating an "unused" one would shift the
            // lanes of every later Rand and change the realized noise.
            if op.is_store() || op.is_fence() || matches!(op, TapeOp::Rand(_)) {
                live[i] = true;
                stack.push(i);
            }
        }
        while let Some(i) = stack.pop() {
            for a in self.instrs[i].args() {
                let j = a.0 as usize;
                if !live[j] {
                    live[j] = true;
                    stack.push(j);
                }
            }
        }
        let mut remap: Vec<u32> = vec![u32::MAX; n];
        let mut new_instrs = Vec::with_capacity(n);
        let mut new_levels = Vec::with_capacity(n);
        for i in 0..n {
            if live[i] {
                remap[i] = new_instrs.len() as u32;
                let op = self.instrs[i].map_args(&mut |r: VReg| VReg(remap[r.0 as usize]));
                new_instrs.push(op);
                new_levels.push(*self.levels.get(i).unwrap_or(&3));
            }
        }
        self.instrs = new_instrs;
        self.levels = new_levels;
    }
}

/// Incremental tape builder with value numbering (local CSE at tape level).
pub struct TapeBuilder {
    pub name: String,
    pub fields: Vec<Field>,
    pub params: Vec<Symbol>,
    pub instrs: Vec<TapeOp>,
    value_numbers: HashMap<TapeOp, VReg>,
    /// Bound SSA temporaries (symbol → register).
    pub temp_regs: HashMap<Symbol, VReg>,
    /// Lowering memo: expression node identity → register. Shared subtrees
    /// are lowered once (tree recursion would be exponential on the heavily
    /// shared DAGs the symbolic layer produces). The memo *owns* its key
    /// expressions: node identity is an `Rc` address, which is only unique
    /// while the expression is alive — transient expressions built during
    /// lowering would otherwise free their address for reuse and poison
    /// the map.
    pub expr_memo: HashMap<usize, (pf_symbolic::Expr, VReg)>,
}

impl TapeBuilder {
    pub fn new(name: &str) -> Self {
        TapeBuilder {
            name: name.to_owned(),
            fields: Vec::new(),
            params: Vec::new(),
            instrs: Vec::new(),
            value_numbers: HashMap::new(),
            temp_regs: HashMap::new(),
            expr_memo: HashMap::new(),
        }
    }

    /// Emit an instruction, reusing an existing register when an identical
    /// pure instruction was already emitted.
    pub fn emit(&mut self, op: TapeOp) -> VReg {
        if op.is_pure() {
            if let Some(&r) = self.value_numbers.get(&op) {
                return r;
            }
        }
        let r = VReg(self.instrs.len() as u32);
        self.instrs.push(op);
        if op.is_pure() {
            self.value_numbers.insert(op, r);
        }
        r
    }

    pub fn field_slot(&mut self, f: Field) -> u16 {
        if let Some(i) = self.fields.iter().position(|x| *x == f) {
            i as u16
        } else {
            self.fields.push(f);
            (self.fields.len() - 1) as u16
        }
    }

    pub fn param_slot(&mut self, s: Symbol) -> u16 {
        if let Some(i) = self.params.iter().position(|x| *x == s) {
            i as u16
        } else {
            self.params.push(s);
            (self.params.len() - 1) as u16
        }
    }

    pub fn finish(self, iter_extent: [usize; 3]) -> Tape {
        let n = self.instrs.len();
        Tape {
            name: self.name,
            fields: self.fields,
            params: self.params,
            instrs: self.instrs,
            iter_extent,
            levels: vec![3; n],
            loop_order: [2, 1, 0],
            approx: ApproxOptions::default(),
            field_ranges: Vec::new(),
        }
    }
}

impl Tape {
    /// Validate SSA well-formedness: every argument refers to an earlier
    /// instruction, levels (when monotone metadata is claimed) match the
    /// instruction list length, and field/param slots are in range.
    /// Returns a description of the first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels.len() != self.instrs.len() {
            return Err(format!(
                "levels length {} != instruction count {}",
                self.levels.len(),
                self.instrs.len()
            ));
        }
        for (i, op) in self.instrs.iter().enumerate() {
            for a in op.args() {
                if a.0 as usize >= i {
                    return Err(format!("instr {i} uses r{} defined at/after it", a.0));
                }
            }
            let check_slot = |field: u16| -> Result<(), String> {
                if field as usize >= self.fields.len() {
                    Err(format!(
                        "instr {i} references field slot {field} out of range"
                    ))
                } else {
                    Ok(())
                }
            };
            match op {
                TapeOp::Load { field, comp, .. } | TapeOp::Store { field, comp, .. } => {
                    check_slot(*field)?;
                    if *comp as usize >= self.fields[*field as usize].components() {
                        return Err(format!("instr {i} component {comp} out of range"));
                    }
                }
                TapeOp::Param(p) if *p as usize >= self.params.len() => {
                    return Err(format!("instr {i} references param slot {p} out of range"));
                }
                _ => {}
            }
        }
        if !self.instrs.iter().any(|op| op.is_store()) && !self.instrs.is_empty() {
            return Err("kernel has no stores (dead kernel)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_numbering_dedupes_pure_ops() {
        let mut b = TapeBuilder::new("t");
        let c1 = b.emit(TapeOp::Const(CF(2.0)));
        let c2 = b.emit(TapeOp::Const(CF(2.0)));
        assert_eq!(c1, c2);
        let a1 = b.emit(TapeOp::Add(c1, c2));
        let a2 = b.emit(TapeOp::Add(c1, c2));
        assert_eq!(a1, a2);
        assert_eq!(b.instrs.len(), 2);
    }

    #[test]
    fn stores_are_never_value_numbered() {
        let mut b = TapeBuilder::new("t");
        let c = b.emit(TapeOp::Const(CF(1.0)));
        let s1 = b.emit(TapeOp::Store {
            field: 0,
            comp: 0,
            off: [0; 3],
            val: c,
        });
        let s2 = b.emit(TapeOp::Store {
            field: 0,
            comp: 0,
            off: [0; 3],
            val: c,
        });
        assert_ne!(s1, s2);
    }

    #[test]
    fn dce_removes_unused_chains() {
        let mut b = TapeBuilder::new("t");
        let c = b.emit(TapeOp::Const(CF(1.0)));
        let dead = b.emit(TapeOp::Add(c, c));
        let _dead2 = b.emit(TapeOp::Mul(dead, dead));
        let live = b.emit(TapeOp::Neg(c));
        b.emit(TapeOp::Store {
            field: 0,
            comp: 0,
            off: [0; 3],
            val: live,
        });
        let mut t = b.finish([0; 3]);
        t.dead_code_eliminate();
        assert_eq!(t.instrs.len(), 3); // const, neg, store
                                       // Registers were renumbered consistently.
        if let TapeOp::Store { val, .. } = t.instrs[2] {
            assert!(matches!(t.instrs[val.0 as usize], TapeOp::Neg(_)));
        } else {
            panic!("expected store last");
        }
    }

    #[test]
    fn dce_keeps_rand_and_store_roots_bitwise_intact() {
        // A store fed by a Rand, plus an unused Rand lane in between: DCE
        // must keep everything (lane indices encode positions in the
        // per-cell Philox stream) and leave the tape bitwise identical.
        let f = Field::new("tp_dce_rand", 1, 3);
        let mut b = TapeBuilder::new("t");
        let r0 = b.emit(TapeOp::Rand(0));
        let _unused = b.emit(TapeOp::Rand(1));
        let half = b.emit(TapeOp::Const(CF(0.5)));
        let v = b.emit(TapeOp::Mul(r0, half));
        let slot = b.field_slot(f);
        b.emit(TapeOp::Store {
            field: slot,
            comp: 0,
            off: [0; 3],
            val: v,
        });
        let t = b.finish([0; 3]);
        let mut after = t.clone();
        after.dead_code_eliminate();
        assert_eq!(after.instrs, t.instrs, "DCE mutated a Rand-rooted tape");
        assert_eq!(after.levels, t.levels);
    }

    #[test]
    fn structural_hash_separates_near_miss_tapes() {
        // Executors key plan caches — and the native backend keys compiled
        // machine code — on `structural_hash`. A near-miss tape silently
        // colliding would run the wrong kernel, so the classic close calls
        // must hash apart: swapped operands of a non-commutative op, and a
        // tape differing only in one constant.
        let f = Field::new("tp_hash_f", 1, 3);
        let build = |c1: f64, c2: f64, swap: bool| {
            let mut b = TapeBuilder::new("near_miss");
            let a = b.emit(TapeOp::Const(CF(c1)));
            let c = b.emit(TapeOp::Const(CF(c2)));
            let v = if swap {
                b.emit(TapeOp::Sub(c, a))
            } else {
                b.emit(TapeOp::Sub(a, c))
            };
            let slot = b.field_slot(f);
            b.emit(TapeOp::Store {
                field: slot,
                comp: 0,
                off: [0; 3],
                val: v,
            });
            b.finish([0; 3])
        };
        let base = build(1.0, 2.0, false);
        assert_eq!(
            base.structural_hash(),
            build(1.0, 2.0, false).structural_hash(),
            "identical construction must reproduce the hash"
        );
        assert_ne!(
            base.structural_hash(),
            build(1.0, 2.0, true).structural_hash(),
            "swapped Sub operands must hash apart"
        );
        assert_ne!(
            base.structural_hash(),
            build(1.0, 2.5, false).structural_hash(),
            "a differing constant must hash apart"
        );
        // Execution-relevant metadata is part of the fingerprint too.
        let mut reordered = base.clone();
        reordered.loop_order = [1, 2, 0];
        assert_ne!(base.structural_hash(), reordered.structural_hash());
        // Analysis-only contracts must NOT perturb the fingerprint: native
        // code and resolved-plan caches key on it, and stamping contracts
        // after generation would otherwise invalidate every cached artifact.
        let mut contracted = base.clone();
        contracted.field_ranges = vec![Some((0.0, 1.0))];
        assert_eq!(
            base.structural_hash(),
            contracted.structural_hash(),
            "field range contracts are analysis-only metadata"
        );
        assert_eq!(contracted.field_range(0), Some((0.0, 1.0)));
        assert_eq!(contracted.field_range(7), None);
    }

    #[test]
    fn use_counts_are_per_argument() {
        let mut b = TapeBuilder::new("t");
        let c = b.emit(TapeOp::Const(CF(3.0)));
        b.emit(TapeOp::Mul(c, c));
        let t = b.finish([0; 3]);
        assert_eq!(t.use_counts()[0], 2);
    }
}
