//! Metric snapshots and the human/JSON reporters.
//!
//! A [`Report`] is a point-in-time copy of the registry with per-rank
//! values kept alongside the cross-rank aggregate, so the distributed
//! runtime's imbalance stays visible. Reports serialize to JSON (schema
//! below) and parse back bit-exactly, which the test suite asserts.
//!
//! ```text
//! {"counters": {"comm.msgs_sent": {"total": N, "by_rank": {"0": n0, ...}}},
//!  "gauges":   {"...": {"value": V, "by_rank": {...}}},
//!  "spans":    {"...": {"count": N, "total_ns": T, "min_ns": m,
//!                       "max_ns": M, "child_ns": C, "by_rank": {...}}}}
//! ```

use crate::json::{Json, JsonError};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// Aggregated counter: cross-rank total plus the per-rank breakdown
/// (untagged increments appear in `total` only).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterAgg {
    pub total: u64,
    pub by_rank: BTreeMap<u32, u64>,
}

/// Aggregated gauge: `value` sums the untagged and per-rank observations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GaugeAgg {
    pub value: f64,
    pub by_rank: BTreeMap<u32, f64>,
}

/// One span's statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub child_ns: u64,
}

impl Default for SpanStat {
    fn default() -> Self {
        SpanStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            child_ns: 0,
        }
    }
}

impl SpanStat {
    /// Time not attributed to nested child spans.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    fn merge(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.child_ns += other.child_ns;
    }
}

/// Aggregated span: cross-rank merge plus the per-rank stats.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanAgg {
    pub agg: SpanStat,
    pub by_rank: BTreeMap<u32, SpanStat>,
}

/// A point-in-time snapshot of every registered metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    pub counters: BTreeMap<String, CounterAgg>,
    pub gauges: BTreeMap<String, GaugeAgg>,
    pub spans: BTreeMap<String, SpanAgg>,
}

/// Snapshot the global registry.
pub fn snapshot() -> Report {
    let reg = crate::registry::registry();
    let mut report = Report::default();
    for ((name, rank), cell) in reg.counters.lock().unwrap().iter() {
        let v = cell.0.load(Ordering::Relaxed);
        let agg = report.counters.entry(name.clone()).or_default();
        agg.total += v;
        if let Some(r) = rank {
            *agg.by_rank.entry(*r).or_default() += v;
        }
    }
    for ((name, rank), cell) in reg.gauges.lock().unwrap().iter() {
        let v = cell.get();
        let agg = report.gauges.entry(name.clone()).or_default();
        agg.value += v;
        if let Some(r) = rank {
            *agg.by_rank.entry(*r).or_default() += v;
        }
    }
    for ((name, rank), cell) in reg.spans.lock().unwrap().iter() {
        let stat = SpanStat {
            count: cell.count.load(Ordering::Relaxed),
            total_ns: cell.total_ns.load(Ordering::Relaxed),
            min_ns: cell.min_ns.load(Ordering::Relaxed),
            max_ns: cell.max_ns.load(Ordering::Relaxed),
            child_ns: cell.child_ns.load(Ordering::Relaxed),
        };
        let agg = report.spans.entry(name.clone()).or_default();
        agg.agg.merge(&stat);
        if let Some(r) = rank {
            agg.by_rank.insert(*r, stat);
        }
    }
    report
}

fn rank_map_json<T, F: Fn(&T) -> Json>(m: &BTreeMap<u32, T>, f: F) -> Json {
    Json::Obj(m.iter().map(|(r, v)| (r.to_string(), f(v))).collect())
}

fn span_stat_json(s: &SpanStat) -> Json {
    Json::obj([
        ("count".into(), Json::Num(s.count as f64)),
        ("total_ns".into(), Json::Num(s.total_ns as f64)),
        // An unrecorded min (u64::MAX) is not exactly representable in
        // f64; report 0 for empty stats instead.
        (
            "min_ns".into(),
            Json::Num(if s.count == 0 { 0.0 } else { s.min_ns as f64 }),
        ),
        ("max_ns".into(), Json::Num(s.max_ns as f64)),
        ("child_ns".into(), Json::Num(s.child_ns as f64)),
    ])
}

fn span_stat_from_json(j: &Json) -> Result<SpanStat, String> {
    let field = |k: &str| {
        j.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("span stat missing numeric field '{k}'"))
    };
    let count = field("count")?;
    let min = field("min_ns")?;
    Ok(SpanStat {
        count,
        total_ns: field("total_ns")?,
        min_ns: if count == 0 { u64::MAX } else { min },
        max_ns: field("max_ns")?,
        child_ns: field("child_ns")?,
    })
}

impl Report {
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    Json::obj([
                        ("total".into(), Json::Num(v.total as f64)),
                        (
                            "by_rank".into(),
                            rank_map_json(&v.by_rank, |n| Json::Num(*n as f64)),
                        ),
                    ]),
                )
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    Json::obj([
                        ("value".into(), Json::Num(v.value)),
                        (
                            "by_rank".into(),
                            rank_map_json(&v.by_rank, |n| Json::Num(*n)),
                        ),
                    ]),
                )
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(k, v)| {
                let mut obj = match span_stat_json(&v.agg) {
                    Json::Obj(m) => m,
                    _ => unreachable!(),
                };
                obj.insert("by_rank".into(), rank_map_json(&v.by_rank, span_stat_json));
                (k.clone(), Json::Obj(obj))
            })
            .collect();
        Json::Obj(
            [
                ("counters".to_string(), Json::Obj(counters)),
                ("gauges".to_string(), Json::Obj(gauges)),
                ("spans".to_string(), Json::Obj(spans)),
            ]
            .into_iter()
            .collect(),
        )
    }

    pub fn from_json(j: &Json) -> Result<Report, String> {
        let section = |k: &str| {
            j.get(k)
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("report missing object section '{k}'"))
        };
        let parse_rank = |r: &str| r.parse::<u32>().map_err(|_| format!("bad rank key '{r}'"));
        let mut report = Report::default();
        for (name, v) in section("counters")? {
            let total = v
                .get("total")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("counter '{name}' missing total"))?;
            let mut by_rank = BTreeMap::new();
            for (r, n) in v
                .get("by_rank")
                .and_then(Json::as_obj)
                .into_iter()
                .flatten()
            {
                by_rank.insert(
                    parse_rank(r)?,
                    n.as_u64()
                        .ok_or_else(|| format!("counter '{name}' rank {r} not integral"))?,
                );
            }
            report
                .counters
                .insert(name.clone(), CounterAgg { total, by_rank });
        }
        for (name, v) in section("gauges")? {
            let value = v
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("gauge '{name}' missing value"))?;
            let mut by_rank = BTreeMap::new();
            for (r, n) in v
                .get("by_rank")
                .and_then(Json::as_obj)
                .into_iter()
                .flatten()
            {
                by_rank.insert(
                    parse_rank(r)?,
                    n.as_f64()
                        .ok_or_else(|| format!("gauge '{name}' rank {r} not numeric"))?,
                );
            }
            report
                .gauges
                .insert(name.clone(), GaugeAgg { value, by_rank });
        }
        for (name, v) in section("spans")? {
            let agg = span_stat_from_json(v).map_err(|e| format!("span '{name}': {e}"))?;
            let mut by_rank = BTreeMap::new();
            for (r, s) in v
                .get("by_rank")
                .and_then(Json::as_obj)
                .into_iter()
                .flatten()
            {
                by_rank.insert(
                    parse_rank(r)?,
                    span_stat_from_json(s).map_err(|e| format!("span '{name}' rank {r}: {e}"))?,
                );
            }
            report.spans.insert(name.clone(), SpanAgg { agg, by_rank });
        }
        Ok(report)
    }

    /// Parse a serialized report.
    pub fn parse(text: &str) -> Result<Report, String> {
        let j = crate::json::parse(text).map_err(|e: JsonError| e.to_string())?;
        Report::from_json(&j)
    }

    /// Aligned text rendering for terminals and logs.
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<36} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
                "span", "count", "total ms", "self ms", "mean us", "max us"
            ));
            for (name, s) in &self.spans {
                out.push_str(&format!(
                    "{:<36} {:>9} {:>12.3} {:>12.3} {:>12.2} {:>12.2}\n",
                    name,
                    s.agg.count,
                    s.agg.total_ns as f64 / 1e6,
                    s.agg.self_ns() as f64 / 1e6,
                    s.agg.mean_ns() / 1e3,
                    s.agg.max_ns as f64 / 1e3,
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!(
                "{:<36} {:>15} {:>8}\n",
                "counter", "total", "ranks"
            ));
            for (name, c) in &self.counters {
                out.push_str(&format!(
                    "{:<36} {:>15} {:>8}\n",
                    name,
                    c.total,
                    c.by_rank.len()
                ));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("{:<36} {:>15} {:>8}\n", "gauge", "value", "ranks"));
            for (name, g) in &self.gauges {
                out.push_str(&format!(
                    "{:<36} {:>15.6} {:>8}\n",
                    name,
                    g.value,
                    g.by_rank.len()
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.counters.insert(
            "comm.msgs_sent".into(),
            CounterAgg {
                total: 12,
                by_rank: [(0, 5), (1, 7)].into_iter().collect(),
            },
        );
        r.gauges.insert(
            "bench.mlups".into(),
            GaugeAgg {
                value: 3.25,
                by_rank: BTreeMap::new(),
            },
        );
        r.spans.insert(
            "dist.step".into(),
            SpanAgg {
                agg: SpanStat {
                    count: 4,
                    total_ns: 4000,
                    min_ns: 800,
                    max_ns: 1400,
                    child_ns: 1000,
                },
                by_rank: [(
                    1,
                    SpanStat {
                        count: 2,
                        total_ns: 2000,
                        min_ns: 900,
                        max_ns: 1100,
                        child_ns: 500,
                    },
                )]
                .into_iter()
                .collect(),
            },
        );
        r
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let r = sample();
        let text = r.to_json().to_pretty();
        assert_eq!(Report::parse(&text).unwrap(), r);
    }

    #[test]
    fn empty_roundtrip() {
        let r = Report::default();
        assert_eq!(Report::parse(&r.to_json().to_compact()).unwrap(), r);
    }

    #[test]
    fn human_report_mentions_metrics() {
        let text = sample().to_human();
        assert!(text.contains("comm.msgs_sent"));
        assert!(text.contains("dist.step"));
        assert!(text.contains("bench.mlups"));
    }

    #[test]
    fn self_time_subtracts_children() {
        let s = SpanStat {
            count: 1,
            total_ns: 100,
            min_ns: 100,
            max_ns: 100,
            child_ns: 30,
        };
        assert_eq!(s.self_ns(), 70);
    }
}
