//! Scoped wall-clock span timers with same-thread nesting.
//!
//! A [`SpanGuard`] measures from creation to drop and records into the
//! span's registry cell. A thread-local stack tracks the active span so a
//! nested span's elapsed time is also accumulated into its parent's
//! `child_ns` — reporters can then separate self-time from child-time.

use crate::registry::{span_cell, SpanCell};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<Arc<SpanCell>>> = const { RefCell::new(Vec::new()) };
}

/// RAII timer for one span instance. Obtained from [`crate::span`] /
/// [`crate::span_lazy`]; records on drop. Disabled tracing yields an inert
/// guard.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    cell: Arc<SpanCell>,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard(None)
    }

    pub(crate) fn enter(name: &str, rank: Option<u32>) -> SpanGuard {
        let cell = span_cell(name, rank);
        SPAN_STACK.with(|s| s.borrow_mut().push(cell.clone()));
        SpanGuard(Some(ActiveSpan {
            cell,
            start: Instant::now(),
        }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let ns = active.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            active.cell.record(ns);
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                stack.pop();
                if let Some(parent) = stack.last() {
                    parent
                        .child_ns
                        .fetch_add(ns, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    }
}
