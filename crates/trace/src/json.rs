//! Minimal self-contained JSON tree, writer, and parser.
//!
//! The build environment has no serde, so the observability layer carries
//! its own small JSON subset: objects, arrays, strings, f64 numbers,
//! booleans, and null — exactly what the metric reports and the
//! `BENCH_*.json` schema need. Objects use `BTreeMap` so serialization is
//! deterministic, which keeps committed baselines diffable.

use std::collections::BTreeMap;
use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numbers that are exactly representable non-negative integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented serialization (two spaces per level, trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(v) if v.is_empty() => out.push_str("[]"),
            Json::Arr(v) => {
                out.push('[');
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(m) if m.is_empty() => out.push_str("{}"),
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// JSON has no NaN/Inf; they degrade to null rather than emitting an
/// unparsable document.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's f64 Display is the shortest round-tripping decimal.
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, word: &str, val: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uDC00..DFFF; lone ones degrade
                            // to the replacement character.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj([
            ("name".into(), Json::str("mu-split")),
            ("mlups".into(), Json::Num(123.456)),
            ("count".into(), Json::Num(42.0)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "series".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)]),
            ),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::Num(42.0).to_compact(), "42");
        assert_eq!(Json::Num(-3.0).to_compact(), "-3");
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{263A} ctrl\u{1}";
        let v = Json::Str(s.into());
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn parses_foreign_escapes() {
        assert_eq!(
            parse(r#""a\/bA😀""#).unwrap(),
            Json::Str("a/bA\u{1F600}".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn nonfinite_degrades_to_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn u64_accessor_guards_range() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
    }
}
