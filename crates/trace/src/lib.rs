//! `pf-trace` — near-zero-overhead runtime observability for the
//! phase-field workspace.
//!
//! The crate provides three metric kinds backed by one global registry:
//!
//! * **spans** — scoped wall-clock timers with same-thread nesting
//!   (`total`/`self` time split), for kernel launches, halo exchanges,
//!   checkpoint drains;
//! * **counters** — monotonically increasing event counts (messages sent,
//!   bytes moved, cells updated, retransmits, dedup drops);
//! * **gauges** — latest/accumulated f64 observations (MLUP/s, drain
//!   seconds).
//!
//! Metrics recorded inside [`with_rank`] carry the simulated MPI rank, and
//! [`snapshot`] aggregates across ranks while keeping the per-rank
//! breakdown — the imbalance across the simulated distributed runtime
//! stays visible. Reports render human-readable ([`Report::to_human`]) or
//! as JSON ([`Report::to_json`]) that parses back exactly.
//!
//! # Kill switches
//!
//! * **Compile time**: build with `--no-default-features` (the `enabled`
//!   feature). [`enabled`] then folds to `false` and every probe is a
//!   no-op branch on an always-`None` handle that the optimizer deletes.
//!   The JSON tree/parser and [`Report`] types remain available either
//!   way, so `BENCH_*.json` tooling works in both configurations.
//! * **Runtime**: set `PF_TRACE=0` (or `off`/`false`) in the environment,
//!   or call [`set_enabled`]. Disabled-at-creation handles are inert and
//!   allocate nothing.

#![forbid(unsafe_code)]

pub mod json;
mod registry;
mod report;
mod span;

pub use json::{parse as parse_json, Json, JsonError};
pub use registry::{reset, with_rank, Counter, Gauge};
pub use report::{snapshot, CounterAgg, GaugeAgg, Report, SpanAgg, SpanStat};
pub use span::SpanGuard;

#[cfg(feature = "enabled")]
mod switch {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNSET: u8 = 0;
    const ON: u8 = 1;
    const OFF: u8 = 2;
    static STATE: AtomicU8 = AtomicU8::new(UNSET);

    pub(crate) fn runtime_enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            ON => true,
            OFF => false,
            _ => {
                let on = !matches!(
                    std::env::var("PF_TRACE").as_deref(),
                    Ok("0") | Ok("off") | Ok("false")
                );
                STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
                on
            }
        }
    }

    pub(crate) fn set(on: bool) {
        STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    }
}

/// Is instrumentation live? `false` when compiled out or killed at runtime
/// (`PF_TRACE=0` / [`set_enabled`]`(false)`).
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        switch::runtime_enabled()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Override the runtime kill switch (takes precedence over `PF_TRACE`).
/// No-op when instrumentation is compiled out.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "enabled")]
    switch::set(on);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// Counter handle, tagged with the calling thread's rank scope (if any).
pub fn counter(name: &str) -> Counter {
    registry::counter(name, registry::current_rank())
}

/// Counter handle pinned to an explicit rank (for long-lived per-rank
/// objects created outside the rank's thread, e.g. `Comm` endpoints).
pub fn counter_at(name: &str, rank: usize) -> Counter {
    registry::counter(name, Some(rank as u32))
}

/// Gauge handle, tagged with the calling thread's rank scope (if any).
pub fn gauge(name: &str) -> Gauge {
    registry::gauge(name, registry::current_rank())
}

/// Gauge handle pinned to an explicit rank.
pub fn gauge_at(name: &str, rank: usize) -> Gauge {
    registry::gauge(name, Some(rank as u32))
}

/// Start a span; it records when the returned guard drops.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard::enter(name, registry::current_rank())
}

/// Start a span pinned to an explicit rank.
pub fn span_at(name: &str, rank: usize) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard::enter(name, Some(rank as u32))
}

/// Like [`span`], but the name is only built when tracing is live — use
/// for dynamic names on hot paths so the disabled mode never allocates.
pub fn span_lazy(name: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard::enter(&name(), registry::current_rank())
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global and `cargo test` runs tests on
    /// multiple threads; tests that reset or toggle it serialize here.
    static GLOBAL: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_and_gauges_register_and_aggregate() {
        let _g = GLOBAL.lock().unwrap();
        set_enabled(true);
        reset();
        counter("t.hits").incr(2);
        counter("t.hits").incr(3);
        with_rank(1, || counter("t.hits").incr(10));
        gauge("t.level").set(2.5);
        gauge("t.level").add(0.25);
        let r = snapshot();
        assert_eq!(r.counters["t.hits"].total, 15);
        assert_eq!(r.counters["t.hits"].by_rank[&1], 10);
        assert!((r.gauges["t.level"].value - 2.75).abs() < 1e-12);
    }

    #[test]
    fn nested_spans_attribute_child_time() {
        let _g = GLOBAL.lock().unwrap();
        set_enabled(true);
        reset();
        {
            let _outer = span("t.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("t.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let r = snapshot();
        let outer = &r.spans["t.outer"].agg;
        let inner = &r.spans["t.inner"].agg;
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.child_ns, inner.total_ns);
        assert!(outer.self_ns() <= outer.total_ns);
        assert!(inner.min_ns <= inner.max_ns);
    }

    #[test]
    fn disabled_mode_records_nothing_and_allocates_no_cells() {
        let _g = GLOBAL.lock().unwrap();
        set_enabled(true);
        reset();
        set_enabled(false);
        assert!(!enabled());
        let c = counter("t.dead");
        c.incr(100);
        gauge("t.dead_gauge").set(1.0);
        {
            let _s = span("t.dead_span");
        }
        let mut built = false;
        let _s = span_lazy(|| {
            built = true;
            "t.dead_lazy".into()
        });
        assert!(!built, "span_lazy must not build its name when disabled");
        set_enabled(true);
        let r = snapshot();
        assert!(r.counters.is_empty() && r.gauges.is_empty() && r.spans.is_empty());
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn rank_scope_restores_on_exit() {
        let _g = GLOBAL.lock().unwrap();
        set_enabled(true);
        reset();
        with_rank(3, || {
            counter("t.scoped").incr(1);
            with_rank(4, || counter("t.scoped").incr(1));
            counter("t.scoped").incr(1);
        });
        counter("t.scoped").incr(1);
        let r = snapshot();
        let c = &r.counters["t.scoped"];
        assert_eq!(c.total, 4);
        assert_eq!(c.by_rank[&3], 2);
        assert_eq!(c.by_rank[&4], 1);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let _g = GLOBAL.lock().unwrap();
        set_enabled(true);
        reset();
        with_rank(0, || {
            counter("t.rt").incr(7);
            let _s = span_at("t.rt_span", 0);
        });
        let r = snapshot();
        assert_eq!(Report::parse(&r.to_json().to_pretty()).unwrap(), r);
    }
}
