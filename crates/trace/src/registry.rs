//! The global metric registry: interned counter/gauge/span cells keyed by
//! `(name, rank)`.
//!
//! Handle creation takes a mutex (once per metric per call site in
//! practice — callers cache handles); the record path is purely atomic.
//! When tracing is disabled — at compile time via the `enabled` feature or
//! at runtime via `PF_TRACE=0` / [`crate::set_enabled`] — handles are
//! empty and every record operation is a no-op on a `None` branch.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// Metrics recorded on a thread inside `with_rank` are tagged with that
// rank; everything else is untagged (process-level).
thread_local! {
    static CURRENT_RANK: Cell<Option<u32>> = const { Cell::new(None) };
}

pub(crate) fn current_rank() -> Option<u32> {
    CURRENT_RANK.with(|r| r.get())
}

/// Run `f` with metrics on this thread tagged as belonging to `rank` —
/// the per-rank aggregation hook for the simulated distributed runtime.
pub fn with_rank<R>(rank: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<u32>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_RANK.with(|r| r.set(self.0));
        }
    }
    let _restore = Restore(CURRENT_RANK.with(|r| r.replace(Some(rank as u32))));
    f()
}

#[derive(Default)]
pub(crate) struct CounterCell(pub(crate) AtomicU64);

/// f64 stored as bits; `add` is a CAS loop (gauges are cold-path).
#[derive(Default)]
pub(crate) struct GaugeCell(pub(crate) AtomicU64);

impl GaugeCell {
    pub(crate) fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

pub(crate) struct SpanCell {
    pub(crate) count: AtomicU64,
    pub(crate) total_ns: AtomicU64,
    pub(crate) min_ns: AtomicU64,
    pub(crate) max_ns: AtomicU64,
    /// Time spent inside child spans on the same thread — lets reporters
    /// show self-time (`total - child`) for nested instrumentation.
    pub(crate) child_ns: AtomicU64,
}

impl Default for SpanCell {
    fn default() -> Self {
        SpanCell {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            child_ns: AtomicU64::new(0),
        }
    }
}

impl SpanCell {
    pub(crate) fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

type Key = (String, Option<u32>);

#[derive(Default)]
pub(crate) struct Registry {
    pub(crate) counters: Mutex<HashMap<Key, Arc<CounterCell>>>,
    pub(crate) gauges: Mutex<HashMap<Key, Arc<GaugeCell>>>,
    pub(crate) spans: Mutex<HashMap<Key, Arc<SpanCell>>>,
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn intern<C: Default>(map: &Mutex<HashMap<Key, Arc<C>>>, name: &str, rank: Option<u32>) -> Arc<C> {
    let mut m = map.lock().unwrap();
    if let Some(cell) = m.get(&(name.to_string(), rank)) {
        return cell.clone();
    }
    let cell = Arc::new(C::default());
    m.insert((name.to_string(), rank), cell.clone());
    cell
}

/// Monotonically increasing event count. Cheap to clone; hot paths should
/// create the handle once and keep it.
#[derive(Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<CounterCell>>);

impl Counter {
    #[inline]
    pub fn incr(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 for disabled handles).
    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.0.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Last-written (or accumulated) f64 observation.
#[derive(Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCell>>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    #[inline]
    pub fn add(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.add(v);
        }
    }

    pub fn value(&self) -> f64 {
        self.0.as_ref().map(|g| g.get()).unwrap_or(0.0)
    }
}

/// Counter handle tagged with the calling thread's rank (if any).
pub(crate) fn counter(name: &str, rank: Option<u32>) -> Counter {
    if !crate::enabled() {
        return Counter(None);
    }
    Counter(Some(intern(&registry().counters, name, rank)))
}

pub(crate) fn gauge(name: &str, rank: Option<u32>) -> Gauge {
    if !crate::enabled() {
        return Gauge(None);
    }
    Gauge(Some(intern(&registry().gauges, name, rank)))
}

pub(crate) fn span_cell(name: &str, rank: Option<u32>) -> Arc<SpanCell> {
    intern(&registry().spans, name, rank)
}

/// Drop every registered metric. Live handles stay valid but detached:
/// they keep counting into cells that no future snapshot reports.
pub fn reset() {
    let r = registry();
    r.counters.lock().unwrap().clear();
    r.gauges.lock().unwrap().clear();
    r.spans.lock().unwrap().clear();
}
