//! GPU register / occupancy / runtime model (§6.2, Fig. 2 right).
//!
//! Models the chain the paper measures: live-value analysis → allocated
//! registers (a simulated nvcc: the compiler hoists loads unless fenced,
//! then allocates 2×32-bit registers per live double plus bookkeeping) →
//! spilling above 255 registers → occupancy from the SM register file →
//! latency-limited effective throughput → kernel runtime.

use crate::opcount::{census, CountScope, OpCensus};
use pf_ir::{liveness, simulate_compiler_order, Tape};
use pf_machine::Gpu;

/// Register accounting for one kernel.
#[derive(Clone, Copy, Debug)]
pub struct RegisterReport {
    /// Peak simultaneously-live doubles in the tape's own order (the
    /// "Registers, analysis" series of Fig. 2 right, ×2 for 32-bit regs).
    pub analysis_live: usize,
    /// 32-bit registers the modelled compiler allocates (the "Registers,
    /// nvcc" series): hoisting applied, ×2, plus bookkeeping overhead,
    /// capped at the hardware limit.
    pub allocated: u32,
    /// 32-bit registers spilled to local memory (demand above the cap).
    pub spilled: u32,
}

/// Bookkeeping registers every kernel needs (indices, pointers, constants).
pub const REG_OVERHEAD: u32 = 30;

/// The downstream compiler's own CSE: identical pure instructions collapse
/// to one register — which is what neutralizes plain rematerialization
/// ("dupl … shows only small improvements on its own", §3.5). Fences (and
/// the volatile-shared-memory trick they model) stop the compiler from
/// merging across them, which is why dupl becomes effective *in
/// combination* with fences and rescheduling.
fn compiler_cse(tape: &Tape) -> Tape {
    use pf_ir::{TapeOp, VReg};
    use std::collections::HashMap;
    let mut vn: HashMap<TapeOp, VReg> = HashMap::new();
    let mut remap: Vec<VReg> = Vec::with_capacity(tape.instrs.len());
    let mut instrs: Vec<TapeOp> = Vec::with_capacity(tape.instrs.len());
    for op in &tape.instrs {
        if op.is_fence() {
            vn.clear();
        }
        let mapped = op.map_args(&mut |r: VReg| remap[r.0 as usize]);
        if mapped.is_pure() {
            if let Some(&r) = vn.get(&mapped) {
                remap.push(r);
                continue;
            }
        }
        let r = VReg(instrs.len() as u32);
        instrs.push(mapped);
        if mapped.is_pure() {
            vn.insert(mapped, r);
        }
        remap.push(r);
    }
    let mut out = tape.clone();
    out.levels = vec![3; instrs.len()];
    out.instrs = instrs;
    out
}

pub fn register_report(tape: &Tape, gpu: &Gpu) -> RegisterReport {
    let analysis_live = liveness(tape).peak;
    let compiler_view = simulate_compiler_order(&compiler_cse(tape));
    let compiler_live = liveness(&compiler_view).peak;
    let demand = 2 * compiler_live as u32 + REG_OVERHEAD;
    let allocated = demand.min(gpu.max_regs_per_thread);
    let spilled = demand.saturating_sub(gpu.max_regs_per_thread);
    RegisterReport {
        analysis_live,
        allocated,
        spilled,
    }
}

/// Occupancy: fraction of the SM's maximum resident threads achievable with
/// `regs_per_thread` registers and the given block size.
pub fn occupancy(gpu: &Gpu, regs_per_thread: u32, threads_per_block: u32) -> f64 {
    let regs_per_block = regs_per_thread.max(1) * threads_per_block;
    let blocks_by_regs = gpu.regs_per_sm / regs_per_block.max(1);
    let blocks_by_threads = gpu.max_threads_per_sm / threads_per_block.max(1);
    let blocks = blocks_by_regs
        .min(blocks_by_threads)
        .min(gpu.max_blocks_per_sm);
    (blocks * threads_per_block) as f64 / gpu.max_threads_per_sm as f64
}

/// Modelled kernel execution.
#[derive(Clone, Copy, Debug)]
pub struct GpuKernelModel {
    pub regs: RegisterReport,
    pub occupancy: f64,
    /// Per-cell time in nanoseconds.
    pub ns_per_cell: f64,
}

impl GpuKernelModel {
    pub fn mlups(&self) -> f64 {
        1e3 / self.ns_per_cell
    }

    /// Runtime in milliseconds for `cells` lattice sites.
    pub fn runtime_ms(&self, cells: usize) -> f64 {
        cells as f64 * self.ns_per_cell * 1e-6
    }
}

/// Model one kernel launch: compute bound, memory bound (including spill
/// traffic), and latency-limited by occupancy.
pub fn gpu_kernel_model(
    tape: &Tape,
    gpu: &Gpu,
    mem_bytes_per_cell: f64,
    threads_per_block: u32,
) -> GpuKernelModel {
    let regs = register_report(tape, gpu);
    let occ = occupancy(gpu, regs.allocated, threads_per_block);

    let c: OpCensus = census(tape, CountScope::All);
    // Approximate math settings shrink the expensive-op cost (the paper
    // reports 25–35 % on the µ kernels).
    let ap = tape.approx;
    let div_w = if ap.fast_div { 4.0 } else { 16.0 };
    let sqrt_w = if ap.fast_sqrt { 4.0 } else { 10.0 };
    let rsqrt_w = if ap.fast_rsqrt { 2.0 } else { 8.0 };
    let weighted_flops = (c.adds + c.muls) as f64
        + c.divs as f64 * div_w
        + c.sqrts as f64 * sqrt_w
        + c.rsqrts as f64 * rsqrt_w
        + (c.transcendental + c.rng) as f64 * 16.0
        + c.logic as f64;

    let peak_flops = gpu.sms as f64 * gpu.dp_flops_per_cycle_per_sm * gpu.freq_ghz; // GFLOP/s
    let t_compute = weighted_flops / peak_flops; // ns per cell

    // Spills add local-memory traffic: a store+reload of each spilled
    // 32-bit register per cell, of which the L1/L2 hierarchy absorbs most
    // (factor 0.3 of the raw 8 B round trip). Calibrated so that
    // eliminating spilling via rescheduling yields the paper's ≈50 %
    // speedup and the full transformation chain ≈2x.
    let spill_bytes = regs.spilled as f64 * 8.0 * 0.3;
    let t_mem = (mem_bytes_per_cell + spill_bytes) / gpu.mem_bw_gbs; // ns per cell

    // Latency limitation: below the hiding threshold, effective throughput
    // degrades proportionally.
    let latency_factor = (occ / gpu.latency_hiding_occupancy).min(1.0);
    let ns_per_cell = t_compute.max(t_mem) / latency_factor.max(1e-3);

    GpuKernelModel {
        regs,
        occupancy: occ,
        ns_per_cell,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_ir::{generate, GenOptions};
    use pf_machine::tesla_p100;
    use pf_stencil::{Assignment, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};

    fn wide_tape(n: usize) -> Tape {
        let f = Field::new("gp_in", n, 3);
        let out = Field::new("gp_out", 1, 3);
        let mut rhs = Expr::zero();
        for c in 0..n {
            rhs = rhs
                + Expr::sqrt(Expr::access(Access::center(f, c)) + c as f64 + 1.0)
                    * Expr::num(1.0 + c as f64);
        }
        let k = StencilKernel::new("gp", vec![Assignment::store(Access::center(out, 0), rhs)]);
        generate(&k, &GenOptions::default())
    }

    #[test]
    fn occupancy_halves_when_registers_double() {
        let gpu = tesla_p100();
        let o64 = occupancy(&gpu, 64, 256);
        let o128 = occupancy(&gpu, 128, 256);
        assert!(o64 >= 2.0 * o128 - 1e-9, "{o64} vs {o128}");
    }

    #[test]
    fn occupancy_saturates_at_thread_limit() {
        let gpu = tesla_p100();
        assert_eq!(occupancy(&gpu, 16, 256), 1.0);
    }

    #[test]
    fn hoisting_inflates_allocated_registers() {
        let gpu = tesla_p100();
        let tape = wide_tape(40);
        let rep = register_report(&tape, &gpu);
        // The hoisted-compiler view keeps all loads alive simultaneously.
        assert!(rep.allocated as usize >= rep.analysis_live, "{rep:?}");
    }

    #[test]
    fn scheduling_recovers_performance() {
        let gpu = tesla_p100();
        let tape = wide_tape(120);
        let before = gpu_kernel_model(&tape, &gpu, 200.0, 256);
        let rescheduled = pf_ir::schedule_min_live(&tape, 8);
        let after = gpu_kernel_model(&rescheduled, &gpu, 200.0, 256);
        assert!(
            after.regs.allocated <= before.regs.allocated,
            "{:?} vs {:?}",
            after.regs,
            before.regs
        );
        assert!(after.ns_per_cell <= before.ns_per_cell);
    }

    #[test]
    fn spilling_costs_runtime() {
        let gpu = tesla_p100();
        let tape = wide_tape(160); // enough loads to blow past 255 regs hoisted
        let m = gpu_kernel_model(&tape, &gpu, 100.0, 256);
        if m.regs.spilled > 0 {
            let rescheduled = pf_ir::schedule_min_live(&tape, 4);
            let m2 = gpu_kernel_model(&rescheduled, &gpu, 100.0, 256);
            assert!(m2.ns_per_cell < m.ns_per_cell, "spill removal must pay off");
        }
    }

    #[test]
    fn approx_math_speeds_up_divide_heavy_kernels() {
        let gpu = tesla_p100();
        let f = Field::new("gp_div", 8, 3);
        let out = Field::new("gp_div_out", 1, 3);
        let mut rhs = Expr::zero();
        for c in 0..8 {
            rhs = rhs
                + Expr::one() / (Expr::access(Access::center(f, c)) + 2.0 + c as f64)
                + Expr::rsqrt(Expr::access(Access::center(f, c)) + 5.0);
        }
        let k = StencilKernel::new(
            "gp_div",
            vec![Assignment::store(Access::center(out, 0), rhs)],
        );
        let exact = generate(&k, &GenOptions::default());
        let mut fast = exact.clone();
        fast.approx.fast_div = true;
        fast.approx.fast_rsqrt = true;
        let me = gpu_kernel_model(&exact, &gpu, 8.0, 256);
        let mf = gpu_kernel_model(&fast, &gpu, 8.0, 256);
        let speedup = me.ns_per_cell / mf.ns_per_cell;
        assert!(speedup > 1.0, "approx math must help: {speedup}");
    }
}
