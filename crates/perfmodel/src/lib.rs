//! `pf-perfmodel` — automatic performance modeling (§3.6 of the paper; the
//! Kerncraft/IACA/likwid substitute).
//!
//! Given a compiled kernel tape and a machine description this crate
//! produces:
//!
//! * an **operation census** with the paper's normalized-FLOP weights
//!   (Table 1);
//! * **analytical layer conditions** and the derived spatial blocking
//!   factor (the `232·N² ⇒ N < 67` computation of §6.1);
//! * simulated **inter-level data volumes** from an exact LRU cache
//!   hierarchy model (with Skylake's victim L3);
//! * an **ECM model** with single-core decomposition and multi-core
//!   scaling/saturation prediction (Fig. 2 left/middle);
//! * a **GPU register/occupancy/runtime model** for the CUDA path
//!   (Fig. 2 right, Table 2 inputs).

#![forbid(unsafe_code)]

pub mod cachesim;
pub mod ecm;
pub mod gpu;
pub mod layercond;
pub mod opcount;

pub use cachesim::{simulate_sweep, DataVolumes, Lru};
pub use ecm::{ecm_model, ecm_multi, price_candidate, t_comp, t_nol, EcmPrediction};
pub use gpu::{
    gpu_kernel_model, occupancy, register_report, GpuKernelModel, RegisterReport, REG_OVERHEAD,
};
pub use layercond::{layer_condition_coefficient, layer_condition_demand, max_block_size};
pub use opcount::{census, CountScope, OpCensus};
