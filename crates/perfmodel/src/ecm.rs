//! The execution-cache-memory (ECM) performance model (§3.6, Fig. 2).
//!
//! Following Stengel et al. and its Kerncraft implementation: the time to
//! update one cache line of results (8 lattice sites with AVX-512) is
//!
//! ```text
//! T_ECM = max(T_comp, T_nOL + T_L1L2 + T_L2L3 + T_L3Mem)
//! ```
//!
//! where `T_comp` is the in-core arithmetic throughput bound, `T_nOL` the
//! L1 load/store cycles, and the transfer terms come from the measured or
//! simulated inter-level data volumes. Multi-core scaling is linear until
//! the memory bandwidth roof; the saturation point is
//! `ceil(T_ECM / T_L3Mem)` cores.

use crate::cachesim::DataVolumes;
use crate::opcount::{census, CountScope, OpCensus};
use pf_ir::Tape;
use pf_machine::CpuSocket;

/// ECM decomposition for one kernel on one socket, in cycles per cache line
/// of results (= `simd_f64` cells).
#[derive(Clone, Copy, Debug)]
pub struct EcmPrediction {
    pub t_comp: f64,
    pub t_nol: f64,
    pub t_l1l2: f64,
    pub t_l2l3: f64,
    pub t_l3mem: f64,
    /// Cells per cache line of results.
    pub cells_per_cl: usize,
}

impl EcmPrediction {
    /// Single-core cycles per cache line.
    pub fn t_single(&self) -> f64 {
        self.t_comp
            .max(self.t_nol + self.t_l1l2 + self.t_l2l3 + self.t_l3mem)
    }

    /// Single-core performance in MLUP/s at `freq_ghz`.
    pub fn single_core_mlups(&self, freq_ghz: f64) -> f64 {
        self.cells_per_cl as f64 * freq_ghz * 1e3 / self.t_single()
    }

    /// Number of cores at which the memory bandwidth saturates.
    pub fn saturation_cores(&self) -> usize {
        if self.t_l3mem <= 0.0 {
            return usize::MAX;
        }
        (self.t_single() / self.t_l3mem).ceil() as usize
    }

    /// Predicted aggregate performance with `n` cores sharing the memory
    /// interface (MLUP/s).
    pub fn mlups(&self, freq_ghz: f64, n: usize) -> f64 {
        let single = self.single_core_mlups(freq_ghz);
        let roof = if self.t_l3mem > 0.0 {
            self.cells_per_cl as f64 * freq_ghz * 1e3 / self.t_l3mem
        } else {
            f64::INFINITY
        };
        (n as f64 * single).min(roof)
    }

    /// Per-core performance curve for Fig. 2 (MLUP/s per core for 1..=n).
    pub fn per_core_curve(&self, freq_ghz: f64, n: usize) -> Vec<f64> {
        (1..=n)
            .map(|c| self.mlups(freq_ghz, c) / c as f64)
            .collect()
    }

    /// Is the kernel memory-bound on a full socket?
    pub fn memory_bound_at(&self, cores: usize) -> bool {
        self.saturation_cores() <= cores
    }
}

/// Compute-throughput bound in cycles per cache line: per-cell op counts
/// (innermost level only — LICM'd work is amortized) mapped onto the
/// socket's vector execution resources.
pub fn t_comp(c: &OpCensus, sock: &CpuSocket) -> f64 {
    let vecs = 1.0; // one full-width vector instruction covers the cache line
                    // Two FMA-capable ports: adds and muls stream through both.
    let addmul = (c.adds + c.muls) as f64 * sock.thr.add * vecs;
    let div = c.divs as f64 * sock.thr.div * vecs;
    let sqrt = c.sqrts as f64 * sock.thr.sqrt * vecs;
    let rsqrt = c.rsqrts as f64 * sock.thr.rsqrt * vecs;
    let transc = (c.transcendental + c.rng) as f64 * sock.thr.transcendental * vecs;
    let logic = c.logic as f64 * sock.thr.add * vecs;
    addmul + div + sqrt + rsqrt + transc + logic
}

/// L1 load/store cycles per cache line.
pub fn t_nol(c: &OpCensus, sock: &CpuSocket) -> f64 {
    c.loads as f64 / sock.thr.loads_per_cycle + c.stores as f64 / sock.thr.stores_per_cycle
}

/// Build the full ECM prediction from a kernel tape and simulated (or
/// measured) data volumes.
pub fn ecm_model(tape: &Tape, sock: &CpuSocket, volumes: &DataVolumes) -> EcmPrediction {
    let c = census(tape, CountScope::PerCell);
    let cells_per_cl = sock.simd_f64;
    let (l12, l23, mem) = volumes.per_cell();
    let bytes_per_cl = |per_cell: f64| per_cell * cells_per_cl as f64;
    let mem_bytes_per_cycle = sock.mem_bw_gbs / sock.freq_ghz;
    EcmPrediction {
        t_comp: t_comp(&c, sock),
        t_nol: t_nol(&c, sock),
        t_l1l2: bytes_per_cl(l12) / sock.l2_bytes_per_cycle,
        t_l2l3: bytes_per_cl(l23) / sock.l3_bytes_per_cycle,
        t_l3mem: bytes_per_cl(mem) / mem_bytes_per_cycle,
        cells_per_cl,
    }
}

/// ECM prediction for a multi-pass kernel (e.g. a split variant's face
/// kernels plus update): data volumes are simulated pass-by-pass through a
/// shared-capacity hierarchy and compute terms summed.
pub fn ecm_multi(tapes: &[&Tape], sock: &CpuSocket, block: [usize; 3]) -> EcmPrediction {
    assert!(!tapes.is_empty());
    let mut vols = crate::cachesim::DataVolumes::default();
    for t in tapes {
        let v = crate::cachesim::simulate_sweep(t, sock, block);
        vols.l1_l2_bytes += v.l1_l2_bytes;
        vols.l2_l3_bytes += v.l2_l3_bytes;
        vols.l3_mem_bytes += v.l3_mem_bytes;
        vols.cells = v.cells;
    }
    let mut pred = ecm_model(tapes[0], sock, &vols);
    for t in &tapes[1..] {
        let c = census(t, CountScope::PerCell);
        pred.t_comp += t_comp(&c, sock);
        pred.t_nol += t_nol(&c, sock);
    }
    pred
}

/// Price one autotuning candidate: the ECM rating of a (possibly
/// multi-pass) kernel at a given cache-blocking tile and SIMD strip width,
/// in aggregate MLUP/s at `cores` cores.
///
/// `lanes` overrides the socket's native `simd_f64`: a narrower strip
/// processes fewer cells per "cache line of results", which scales both the
/// compute terms (fewer cells amortize each vector instruction) and the
/// transfer terms (fewer bytes per result line) — exactly how the paper
/// prices sub-width vectorization candidates before deciding whether they
/// are worth generating. `block` is the (x, y, z) cache-simulation tile; the
/// layer conditions it implies drive the inter-level data volumes.
pub fn price_candidate(
    tapes: &[&Tape],
    sock: &CpuSocket,
    block: [usize; 3],
    lanes: usize,
    cores: usize,
) -> f64 {
    assert!(lanes >= 1, "a strip needs at least one lane");
    if lanes == sock.simd_f64 {
        return ecm_multi(tapes, sock, block).mlups(sock.freq_ghz, cores);
    }
    let mut narrowed = sock.clone();
    narrowed.simd_f64 = lanes;
    ecm_multi(tapes, &narrowed, block).mlups(narrowed.freq_ghz, cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_heavy() -> EcmPrediction {
        EcmPrediction {
            t_comp: 400.0,
            t_nol: 30.0,
            t_l1l2: 20.0,
            t_l2l3: 20.0,
            t_l3mem: 10.0,
            cells_per_cl: 8,
        }
    }

    fn memory_heavy() -> EcmPrediction {
        EcmPrediction {
            t_comp: 40.0,
            t_nol: 30.0,
            t_l1l2: 30.0,
            t_l2l3: 40.0,
            t_l3mem: 25.0,
            cells_per_cl: 8,
        }
    }

    #[test]
    fn compute_bound_kernel_scales_flat() {
        let p = compute_heavy();
        let curve = p.per_core_curve(2.3, 24);
        let first = curve[0];
        let last = curve[23];
        assert!(
            (first - last).abs() / first < 1e-9,
            "not flat: {first} vs {last}"
        );
        assert!(p.saturation_cores() > 24);
    }

    #[test]
    fn memory_bound_kernel_decays_per_core() {
        let p = memory_heavy();
        assert!(p.saturation_cores() <= 24, "{}", p.saturation_cores());
        let curve = p.per_core_curve(2.3, 24);
        assert!(curve[23] < curve[0] * 0.5, "no decay: {curve:?}");
        // Aggregate performance still rises to the roof then flattens.
        let agg24 = p.mlups(2.3, 24);
        let agg12 = p.mlups(2.3, 12);
        assert!(agg24 >= agg12 * 0.999);
    }

    #[test]
    fn single_core_matches_definition() {
        let p = memory_heavy();
        assert_eq!(p.t_single(), 30.0 + 30.0 + 40.0 + 25.0);
        let mlups = p.single_core_mlups(2.3);
        assert!((mlups - 8.0 * 2.3e3 / 125.0).abs() < 1e-9);
    }

    #[test]
    fn t_comp_uses_port_weights() {
        let sock = pf_machine::skylake_8174();
        let c = OpCensus {
            adds: 10,
            muls: 10,
            divs: 2,
            sqrts: 1,
            rsqrts: 2,
            ..Default::default()
        };
        let t = t_comp(&c, &sock);
        assert_eq!(t, 20.0 * 0.5 + 2.0 * 16.0 + 10.0 + 2.0 * 2.0);
    }
}
