//! Cache hierarchy simulator (the Kerncraft "cache simulator" prediction
//! backend, §3.6).
//!
//! Replays the exact address stream a kernel sweep generates against an
//! LRU model of the L1/L2/L3 hierarchy and reports the data volume moved
//! between adjacent levels per cell update — the input the ECM model needs.
//! Skylake's non-inclusive *victim* L3 is modelled: lines enter the L3 only
//! upon eviction from L2.

use pf_ir::{Tape, TapeOp};
use pf_machine::CpuSocket;
use std::collections::HashMap;

/// Exact fully-associative LRU cache over 64-byte lines with O(1)
/// touch/insert/evict (intrusive doubly-linked list over a slab).
pub struct Lru {
    capacity_lines: usize,
    map: HashMap<u64, usize>,
    /// slab of nodes: (line, prev, next); usize::MAX = none
    nodes: Vec<(u64, usize, usize)>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

const NONE: usize = usize::MAX;

impl Lru {
    pub fn new(capacity_lines: usize) -> Self {
        Lru {
            capacity_lines: capacity_lines.max(1),
            map: HashMap::with_capacity(capacity_lines * 2),
            nodes: Vec::with_capacity(capacity_lines + 1),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (_, prev, next) = self.nodes[idx];
        if prev != NONE {
            self.nodes[prev].2 = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.nodes[next].1 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].1 = NONE;
        self.nodes[idx].2 = self.head;
        if self.head != NONE {
            self.nodes[self.head].1 = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }

    fn evict_lru(&mut self) -> u64 {
        let idx = self.tail;
        debug_assert_ne!(idx, NONE);
        let line = self.nodes[idx].0;
        self.unlink(idx);
        self.map.remove(&line);
        self.free.push(idx);
        line
    }

    /// Touch a line; returns `(hit, evicted)`. On miss the line is inserted
    /// and the LRU victim (if capacity was exceeded) returned.
    pub fn access(&mut self, line: u64) -> (bool, Option<u64>) {
        if let Some(&idx) = self.map.get(&line) {
            self.unlink(idx);
            self.push_front(idx);
            return (true, None);
        }
        let victim = self.insert(line);
        (false, victim)
    }

    /// Insert without hit bookkeeping (victim-cache fill path).
    pub fn insert(&mut self, line: u64) -> Option<u64> {
        if let Some(&idx) = self.map.get(&line) {
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i] = (line, NONE, NONE);
            i
        } else {
            self.nodes.push((line, NONE, NONE));
            self.nodes.len() - 1
        };
        self.push_front(idx);
        self.map.insert(line, idx);
        if self.map.len() > self.capacity_lines {
            return Some(self.evict_lru());
        }
        None
    }

    pub fn remove(&mut self, line: u64) -> bool {
        if let Some(idx) = self.map.remove(&line) {
            self.unlink(idx);
            self.free.push(idx);
            true
        } else {
            false
        }
    }
}

/// Bytes moved between adjacent memory levels, per cell update.
#[derive(Clone, Copy, Debug, Default)]
pub struct DataVolumes {
    pub l1_l2_bytes: f64,
    pub l2_l3_bytes: f64,
    pub l3_mem_bytes: f64,
    pub cells: usize,
}

/// Simulate one sweep of `tape` over a `block` (inner tile) and return the
/// per-cell traffic. The tile should reflect the blocking actually used
/// (e.g. 60³ → pass `[60, 60, zslices]` with a few z slices for warmup).
pub fn simulate_sweep(tape: &Tape, sock: &CpuSocket, block: [usize; 3]) -> DataVolumes {
    let _span = pf_trace::span("perfmodel.cachesim");
    pf_trace::counter("perfmodel.cachesim_sweeps").incr(1);
    let cl = sock.cacheline_bytes as u64;
    let mut l1 = Lru::new(sock.l1_kib * 1024 / cl as usize);
    let mut l2 = Lru::new(sock.l2_kib * 1024 / cl as usize);
    // Per-core L3 share (the socket's L3 divided by core count).
    let l3_lines = sock.l3_mib * 1024 * 1024 / cl as usize / sock.cores;
    let mut l3 = Lru::new(l3_lines);

    // Assign each (field, comp) stream a disjoint address space region,
    // laid out fzyx with one ghost layer.
    let gx = block[0] + 2;
    let gy = block[1] + 2;
    let gz = block[2] + 2;
    let plane = (gx * gy) as u64;
    let volume = plane * gz as u64;
    let mut stream_of: HashMap<(u16, u16), u64> = HashMap::new();
    let mut next_stream = 0u64;

    let mut accesses: Vec<(u64, [i16; 3], bool)> = Vec::new(); // (stream base, off, is_store)
    for op in &tape.instrs {
        match op {
            TapeOp::Load { field, comp, off } => {
                let s = *stream_of.entry((*field, *comp)).or_insert_with(|| {
                    let s = next_stream;
                    next_stream += 1;
                    s
                });
                accesses.push((s, *off, false));
            }
            TapeOp::Store {
                field, comp, off, ..
            } => {
                let s = *stream_of.entry((*field, *comp)).or_insert_with(|| {
                    let s = next_stream;
                    next_stream += 1;
                    s
                });
                accesses.push((s, *off, true));
            }
            _ => {}
        }
    }

    let mut v = DataVolumes::default();
    let mut cells = 0usize;
    let mut touch = |line: u64, v: &mut DataVolumes| {
        let (hit1, ev1) = l1.access(line);
        if let Some(e) = ev1 {
            // L1 evictions fall into L2 (inclusive-ish L1/L2 path).
            let _ = l2.insert(e);
        }
        if hit1 {
            return;
        }
        v.l1_l2_bytes += cl as f64;
        let (hit2, ev2) = l2.access(line);
        if let Some(e) = ev2 {
            // Victim L3: lines enter L3 only when evicted from L2.
            if let Some(e3) = l3.insert(e) {
                let _ = e3; // dirty write-back accounting is symmetric; folded below
            }
            v.l2_l3_bytes += cl as f64;
        }
        if hit2 {
            return;
        }
        v.l2_l3_bytes += cl as f64;
        // L3 lookup (victim cache): hit avoids memory.
        if l3.remove(line) {
            return;
        }
        v.l3_mem_bytes += cl as f64;
    };

    for z in 0..block[2] {
        for y in 0..block[1] {
            for x in 0..block[0] {
                cells += 1;
                for (s, off, _is_store) in &accesses {
                    let xi = (x as i64 + off[0] as i64 + 1) as u64;
                    let yi = (y as i64 + off[1] as i64 + 1) as u64;
                    let zi = (z as i64 + off[2] as i64 + 1) as u64;
                    let addr = (s * volume + zi * plane + yi * gx as u64 + xi) * 8;
                    touch(addr / cl, &mut v);
                }
            }
        }
    }
    // Stores cause write-back traffic of the written streams once per cell
    // line (8 cells per line): add store volume to the memory level.
    let store_count = accesses.iter().filter(|(_, _, s)| *s).count();
    v.l3_mem_bytes += store_count as f64 * 8.0 * cells as f64 / 1.0 / 8.0; // ≈ one CL per 8 cells per stream
    v.cells = cells;
    v
}

impl DataVolumes {
    /// Per-cell volumes.
    pub fn per_cell(&self) -> (f64, f64, f64) {
        let c = self.cells.max(1) as f64;
        (
            self.l1_l2_bytes / c,
            self.l2_l3_bytes / c,
            self.l3_mem_bytes / c,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_ir::{generate, GenOptions};
    use pf_machine::skylake_8174;
    use pf_stencil::{Assignment, Discretization, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Lru::new(2);
        assert_eq!(c.access(1), (false, None));
        assert_eq!(c.access(2), (false, None));
        assert_eq!(c.access(1), (true, None)); // 1 now most recent
        let (hit, victim) = c.access(3);
        assert!(!hit);
        assert_eq!(victim, Some(2));
    }

    fn stream_tape() -> Tape {
        let src = Field::new("cs_src", 1, 3);
        let dst = Field::new("cs_dst", 1, 3);
        let disc = Discretization::isotropic(3, 1.0);
        let u = Expr::access(Access::center(src, 0));
        let rhs: Expr = (0..3)
            .map(|d| Expr::d(Expr::num(0.1) * Expr::d(u.clone(), d), d))
            .sum();
        let update = disc.explicit_euler(Access::center(src, 0), &rhs, 0.1);
        let k = StencilKernel::new(
            "cs",
            vec![Assignment::store(Access::center(dst, 0), update)],
        );
        generate(&k, &GenOptions::default())
    }

    #[test]
    fn small_tile_stays_in_cache() {
        let t = stream_tape();
        let sock = skylake_8174();
        let v = simulate_sweep(&t, &sock, [16, 16, 4]);
        let (l12, _, mem) = v.per_cell();
        // With perfect reuse a 7-point stencil streams ~2 doubles per cell
        // between L1 and L2 (one read line + one written line per 8 cells
        // each ⇒ 16 B/cell), modulo warmup.
        assert!(l12 < 64.0, "excessive L1 traffic: {l12} B/cell");
        assert!(mem < 64.0, "excessive memory traffic: {mem} B/cell");
    }

    #[test]
    fn bigger_tiles_increase_per_cell_memory_traffic_when_lc_broken() {
        let t = stream_tape();
        let mut sock = skylake_8174();
        // Shrink caches drastically so the layer condition breaks at the
        // larger tile (keeps the test fast).
        sock.l1_kib = 4;
        sock.l2_kib = 16;
        sock.l3_mib = 1;
        let small = simulate_sweep(&t, &sock, [12, 12, 4]);
        let big = simulate_sweep(&t, &sock, [96, 96, 4]);
        let (_, _, m_small) = small.per_cell();
        let (_, _, m_big) = big.per_cell();
        assert!(
            m_big > m_small,
            "broken layer condition must cost memory traffic: {m_big} vs {m_small}"
        );
    }
}
