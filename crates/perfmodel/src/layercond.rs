//! Analytical layer conditions and spatial-blocking derivation (§6.1).
//!
//! "For configuration P1, the most demanding kernel µ-full has a cache
//! storage demand of 232·N² Bytes to fulfill the 3D layer condition,
//! assuming a loop length of N for the two innermost loops. Applying it to
//! Skylake's 1 MB L2 cache, we find suitable blocking sizes of N < 67."
//!
//! The 3D layer condition requires that for every access stream
//! (field, component), all z-planes it touches stay cached while the two
//! inner loops sweep an N×N tile: each distinct z-offset of the stream
//! contributes one N² plane of doubles.

use pf_ir::{Tape, TapeOp};
use std::collections::HashSet;

/// Coefficient c such that the cache demand is `c · N²` bytes.
pub fn layer_condition_coefficient(tape: &Tape) -> usize {
    let mut planes: HashSet<(u16, u16, i16)> = HashSet::new();
    for op in &tape.instrs {
        match op {
            TapeOp::Load { field, comp, off }
            | TapeOp::Store {
                field, comp, off, ..
            } => {
                planes.insert((*field, *comp, off[2]));
            }
            _ => {}
        }
    }
    planes.len() * std::mem::size_of::<f64>()
}

/// Cache demand in bytes for inner-loop length `n`.
pub fn layer_condition_demand(tape: &Tape, n: usize) -> usize {
    layer_condition_coefficient(tape) * n * n
}

/// Largest inner-loop block length whose working set fits `cache_bytes`.
pub fn max_block_size(tape: &Tape, cache_bytes: usize) -> usize {
    let c = layer_condition_coefficient(tape);
    if c == 0 {
        return usize::MAX;
    }
    ((cache_bytes as f64) / c as f64).sqrt().floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_ir::{generate, GenOptions};
    use pf_stencil::{Assignment, Discretization, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};

    /// 3D 7-point Laplacian update: the textbook layer-condition example.
    fn laplacian_tape() -> Tape {
        let src = Field::new("lc_src", 1, 3);
        let dst = Field::new("lc_dst", 1, 3);
        let disc = Discretization::isotropic(3, 1.0);
        let u = Expr::access(Access::center(src, 0));
        let rhs: Expr = (0..3)
            .map(|d| Expr::d(Expr::num(1.0) * Expr::d(u.clone(), d), d))
            .sum();
        let update = disc.explicit_euler(Access::center(src, 0), &rhs, 0.1);
        let k = StencilKernel::new(
            "lap",
            vec![Assignment::store(Access::center(dst, 0), update)],
        );
        generate(&k, &GenOptions::default())
    }

    #[test]
    fn laplacian_has_four_planes() {
        // src touches z ∈ {−1, 0, 1} (3 planes) + dst z = 0 (1 plane).
        let t = laplacian_tape();
        assert_eq!(layer_condition_coefficient(&t), 4 * 8);
    }

    #[test]
    fn demand_is_quadratic_in_n() {
        let t = laplacian_tape();
        assert_eq!(
            layer_condition_demand(&t, 60),
            layer_condition_coefficient(&t) * 3600
        );
    }

    #[test]
    fn blocking_bound_matches_inverse_of_demand() {
        let t = laplacian_tape();
        let cache = 1024 * 1024; // Skylake L2
        let n = max_block_size(&t, cache);
        assert!(layer_condition_demand(&t, n) <= cache);
        assert!(layer_condition_demand(&t, n + 1) > cache);
        // 32 B/N² → N = 181 for the plain Laplacian.
        assert_eq!(n, 181);
    }

    #[test]
    fn paper_coefficient_implies_n67() {
        // Independent of our kernels: the paper's 232 B/N² coefficient and
        // 1 MB L2 must give N < 67 — a consistency check of the formula.
        let n = ((1024.0 * 1024.0) / 232.0_f64).sqrt().floor() as usize;
        assert_eq!(n, 67);
    }
}
