//! Operation census and normalized FLOP accounting (Table 1).
//!
//! "Additions and multiplications are counted as one operation, divisions
//! as 16, approximate square roots as 10, and approx. inverse square roots
//! are counted as 2 FLOPs, which approximately matches their throughput on
//! the Skylake architecture." Loads and stores count double-precision
//! values moved per cell.
//!
//! Only instructions at the innermost loop level (level 3) are charged to
//! the per-cell budget — precisely how LICM of the analytic temperature
//! reduces the reported FLOP counts in the paper.

use pf_ir::{Tape, TapeOp};

/// Per-cell operation counts of a kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCensus {
    pub loads: usize,
    pub stores: usize,
    pub adds: usize,
    pub muls: usize,
    pub divs: usize,
    pub sqrts: usize,
    pub rsqrts: usize,
    /// exp/ln/sin/cos/tanh/pow — software sequences.
    pub transcendental: usize,
    /// Blends, min/max, abs, sign — cheap logic ops.
    pub logic: usize,
    /// Philox invocations.
    pub rng: usize,
}

impl OpCensus {
    /// The paper's normalized FLOP metric (last row of Table 1).
    pub fn normalized_flops(&self) -> usize {
        self.adds + self.muls + 16 * self.divs + 10 * self.sqrts + 2 * self.rsqrts
    }

    /// Raw arithmetic operation count.
    pub fn arith_total(&self) -> usize {
        self.adds + self.muls + self.divs + self.sqrts + self.rsqrts + self.transcendental
    }

    pub fn add(&self, other: &OpCensus) -> OpCensus {
        OpCensus {
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            adds: self.adds + other.adds,
            muls: self.muls + other.muls,
            divs: self.divs + other.divs,
            sqrts: self.sqrts + other.sqrts,
            rsqrts: self.rsqrts + other.rsqrts,
            transcendental: self.transcendental + other.transcendental,
            logic: self.logic + other.logic,
            rng: self.rng + other.rng,
        }
    }
}

/// Which instructions to charge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountScope {
    /// Everything in the tape (the naive, nothing-hoisted accounting).
    All,
    /// Only the innermost-loop (per-cell) instructions — what each lattice
    /// site update actually costs after LICM.
    PerCell,
}

/// Count the operations of a tape.
pub fn census(tape: &Tape, scope: CountScope) -> OpCensus {
    let mut c = OpCensus::default();
    for (i, op) in tape.instrs.iter().enumerate() {
        if scope == CountScope::PerCell && *tape.levels.get(i).unwrap_or(&3) < 3 {
            continue;
        }
        match op {
            TapeOp::Load { .. } => c.loads += 1,
            TapeOp::Store { .. } => c.stores += 1,
            TapeOp::Add(_, _) | TapeOp::Sub(_, _) | TapeOp::Neg(_) => c.adds += 1,
            TapeOp::Mul(_, _) => c.muls += 1,
            TapeOp::Div(_, _) => c.divs += 1,
            TapeOp::Sqrt(_) => c.sqrts += 1,
            TapeOp::RSqrt(_) => c.rsqrts += 1,
            TapeOp::Exp(_)
            | TapeOp::Ln(_)
            | TapeOp::Sin(_)
            | TapeOp::Cos(_)
            | TapeOp::Tanh(_)
            | TapeOp::Powf(_, _) => c.transcendental += 1,
            TapeOp::Abs(_)
            | TapeOp::Min(_, _)
            | TapeOp::Max(_, _)
            | TapeOp::Sign(_)
            | TapeOp::Floor(_)
            | TapeOp::CmpSelect { .. } => c.logic += 1,
            TapeOp::Rand(_) => c.rng += 1,
            TapeOp::Const(_)
            | TapeOp::Param(_)
            | TapeOp::Coord(_)
            | TapeOp::Time
            | TapeOp::CellIdx(_)
            | TapeOp::Fence => {}
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_ir::{generate, GenOptions};
    use pf_stencil::{Assignment, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};

    fn tape_for(rhs: Expr) -> Tape {
        let out = Field::new("oc_out", 1, 3);
        let k = StencilKernel::new("oc", vec![Assignment::store(Access::center(out, 0), rhs)]);
        generate(&k, &GenOptions::default())
    }

    #[test]
    fn normalized_weights_match_the_paper() {
        let c = OpCensus {
            adds: 542,
            muls: 788,
            divs: 19,
            sqrts: 42,
            rsqrts: 36,
            ..Default::default()
        };
        // Exactly the µ-full P1 row of Table 1: 2126 normalized FLOPS.
        assert_eq!(c.normalized_flops(), 2126);
    }

    #[test]
    fn census_counts_each_kind() {
        let f = Field::new("oc_in", 1, 3);
        let a = Expr::access(Access::center(f, 0));
        let rhs =
            Expr::sqrt(a.clone()) + Expr::rsqrt(a.clone() + 2.0) + a.clone() / (a.clone() + 3.0);
        let t = tape_for(rhs);
        let c = census(&t, CountScope::All);
        assert_eq!(c.sqrts, 1);
        assert_eq!(c.rsqrts, 1);
        assert_eq!(c.divs, 1);
        assert!(c.adds >= 2);
        assert_eq!(c.stores, 1);
    }

    #[test]
    fn licm_shrinks_per_cell_counts() {
        let f = Field::new("oc_licm", 1, 3);
        let a = Expr::access(Access::center(f, 0));
        let temp = Expr::sym("oc_T0") + Expr::coord(2) * Expr::sym("oc_G");
        // The expensive z-only chain hoists; only one mul stays per cell.
        let rhs = a * Expr::powi(temp, 4);
        let t = tape_for(rhs);
        let all = census(&t, CountScope::All);
        let per_cell = census(&t, CountScope::PerCell);
        assert!(per_cell.muls < all.muls, "{per_cell:?} vs {all:?}");
        assert_eq!(per_cell.muls, 1);
    }
}
