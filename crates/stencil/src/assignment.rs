//! Stencil-level assignments.
//!
//! After discretization, a kernel is "a list of assignments with
//! instructions to be executed for every cell" (§3.4): either a write to a
//! field at a relative offset, or a definition of a temporary symbol (the
//! list is in static single assignment form — each temporary is defined
//! once, before use).

use pf_symbolic::{Access, Expr, Symbol};

/// Left-hand side of a stencil assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lhs {
    /// Store to a field (normally the centre cell of the destination).
    Field(Access),
    /// Define an SSA temporary.
    Temp(Symbol),
}

/// One assignment of a stencil kernel.
#[derive(Clone, Debug)]
pub struct Assignment {
    pub lhs: Lhs,
    pub rhs: Expr,
}

impl Assignment {
    pub fn store(a: Access, rhs: Expr) -> Assignment {
        Assignment {
            lhs: Lhs::Field(a),
            rhs,
        }
    }

    pub fn temp(s: Symbol, rhs: Expr) -> Assignment {
        Assignment {
            lhs: Lhs::Temp(s),
            rhs,
        }
    }
}

/// A discretized stencil kernel: SSA assignment list plus the iteration
/// extension (how far past the cell interior the kernel iterates — staggered
/// kernels need one extra layer of faces per dimension).
#[derive(Clone, Debug)]
pub struct StencilKernel {
    pub name: String,
    pub assignments: Vec<Assignment>,
    /// Extra iterations past the interior in each dimension (0 for
    /// cell-centred kernels, 1 for staggered/face kernels).
    pub iter_extent: [usize; 3],
}

impl StencilKernel {
    pub fn new(name: &str, assignments: Vec<Assignment>) -> Self {
        StencilKernel {
            name: name.to_owned(),
            assignments,
            iter_extent: [0, 0, 0],
        }
    }

    /// All distinct field accesses read by the kernel.
    pub fn reads(&self) -> Vec<Access> {
        let mut out = Vec::new();
        for a in &self.assignments {
            for acc in a.rhs.accesses() {
                if !out.contains(&acc) {
                    out.push(acc);
                }
            }
        }
        out
    }

    /// All distinct field accesses written by the kernel.
    pub fn writes(&self) -> Vec<Access> {
        let mut out = Vec::new();
        for a in &self.assignments {
            if let Lhs::Field(acc) = a.lhs {
                if !out.contains(&acc) {
                    out.push(acc);
                }
            }
        }
        out
    }

    /// Largest absolute read offset per dimension — determines the required
    /// number of ghost layers.
    pub fn read_radius(&self) -> [usize; 3] {
        let mut r = [0usize; 3];
        for acc in self.reads() {
            for (rd, off) in r.iter_mut().zip(acc.off) {
                *rd = (*rd).max(off.unsigned_abs() as usize);
            }
        }
        r
    }

    /// The D-d-C-n stencil designation used in the paper's Algorithm 1
    /// (e.g. `D3C7` for the 7-point star): number of *distinct cell offsets*
    /// accessed on a given field.
    pub fn stencil_designation(&self, field: pf_symbolic::Field) -> String {
        let mut offsets: Vec<[i32; 3]> = Vec::new();
        for acc in self.reads() {
            if acc.field == field && !offsets.contains(&acc.off) {
                offsets.push(acc.off);
            }
        }
        format!("D{}C{}", field.dim(), offsets.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_symbolic::Field;

    #[test]
    fn reads_and_writes_are_deduplicated() {
        let f = Field::new("asg_f", 1, 3);
        let g = Field::new("asg_g", 1, 3);
        let a0 = Access::center(f, 0);
        let ar = Access::at(f, 0, [1, 0, 0]);
        let w = Access::center(g, 0);
        let k = StencilKernel::new(
            "k",
            vec![Assignment::store(
                w,
                Expr::access(a0) + Expr::access(ar) + Expr::access(a0),
            )],
        );
        assert_eq!(k.reads().len(), 2);
        assert_eq!(k.writes(), vec![w]);
        assert_eq!(k.read_radius(), [1, 0, 0]);
    }

    #[test]
    fn stencil_designation_counts_offsets() {
        let f = Field::new("asg_d", 2, 3);
        let g = Field::new("asg_w", 1, 3);
        let mut rhs = Expr::zero();
        // 7-point star on component 0 plus centre of component 1 (same cells).
        for off in [
            [0, 0, 0],
            [1, 0, 0],
            [-1, 0, 0],
            [0, 1, 0],
            [0, -1, 0],
            [0, 0, 1],
            [0, 0, -1],
        ] {
            rhs = rhs + Expr::access(Access::at(f, 0, off));
        }
        rhs = rhs + Expr::access(Access::center(f, 1));
        let k = StencilKernel::new("k", vec![Assignment::store(Access::center(g, 0), rhs)]);
        assert_eq!(k.stencil_designation(f), "D3C7");
    }
}
