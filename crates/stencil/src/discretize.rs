//! Second-order finite-difference discretization.
//!
//! Transforms expression trees containing continuous `Diff` nodes into pure
//! stencil expressions, following the application-domain best practice the
//! paper encodes (§3.3):
//!
//! * first derivatives of plain field values → central differences,
//! * derivatives of analytic (field-free) expressions → exact symbolic
//!   differentiation w.r.t. the coordinate,
//! * outer derivatives of compound expressions ("fluxes") → the
//!   **divergence-of-fluxes** form: the flux is evaluated at the two
//!   staggered (face) positions and differenced, with quantities not
//!   available at faces interpolated — reproducing Eq. (11) of the paper.
//!
//! The flux expressions can either be inlined (full kernels) or extracted
//! into face-centred temporaries (split kernels, see `split.rs`).

use pf_symbolic::{Access, Expr, Node};
use std::collections::HashMap;

/// Finite-difference discretization strategy (order 2).
#[derive(Clone, Copy, Debug)]
pub struct Discretization {
    /// Grid spacing per dimension.
    pub dx: [f64; 3],
    /// Spatial dimensionality (2 or 3).
    pub dim: usize,
}

/// Expand when that makes the expression smaller (guarded against
/// intractable inputs).
fn expand_if_smaller(e: &Expr) -> Expr {
    if e.size() >= 50_000 {
        return e.clone();
    }
    let ex = pf_symbolic::expand(e);
    // DAG size is the cost the value-numbered lowering sees; tree size can
    // shrink under expansion while the unique-node count explodes.
    if ex.dag_size() <= e.dag_size() {
        ex
    } else {
        e.clone()
    }
}

/// A flux produced by a divergence-of-fluxes discretization: `expr` is the
/// flux value on the **right** face of the current cell along `dir`.
#[derive(Clone, Debug)]
pub struct Flux {
    pub dir: usize,
    pub expr: Expr,
}

impl Discretization {
    pub fn new(dim: usize, dx: [f64; 3]) -> Self {
        assert!((2..=3).contains(&dim));
        Discretization { dx, dim }
    }

    pub fn isotropic(dim: usize, h: f64) -> Self {
        Self::new(dim, [h, h, h])
    }

    /// Shift every grid-dependent leaf of `e` by `delta` cells: field
    /// accesses move their offsets, coordinates pick up `delta·dx`, cell
    /// indices pick up `delta`. Random nodes cannot be shifted (they are
    /// keyed to the current cell) and panic.
    ///
    /// Memoized over the expression DAG (fixed `delta` per call).
    pub fn shift(&self, e: &Expr, delta: [i32; 3]) -> Expr {
        self.shift_memo(e, delta, &mut HashMap::new())
    }

    fn shift_memo(&self, e: &Expr, delta: [i32; 3], memo: &mut HashMap<usize, Expr>) -> Expr {
        if let Some(hit) = memo.get(&e.node_id()) {
            return hit.clone();
        }
        let out = self.shift_uncached(e, delta, memo);
        memo.insert(e.node_id(), out.clone());
        out
    }

    fn shift_uncached(&self, e: &Expr, delta: [i32; 3], memo: &mut HashMap<usize, Expr>) -> Expr {
        match e.node() {
            Node::Access(a) => Expr::access(a.shifted(delta)),
            Node::Coord(d) => {
                let dd = *d as usize;
                if delta[dd] == 0 {
                    e.clone()
                } else {
                    Expr::coord(dd) + Expr::num(delta[dd] as f64 * self.dx[dd])
                }
            }
            Node::CellIdx(d) => {
                let dd = *d as usize;
                if delta[dd] == 0 {
                    e.clone()
                } else {
                    Expr::cell_idx(dd) + Expr::num(delta[dd] as f64)
                }
            }
            Node::Rand(_) => panic!("cannot shift a per-cell random source"),
            _ => {
                let ch = e.children();
                if ch.is_empty() {
                    e.clone()
                } else {
                    e.with_children(ch.iter().map(|c| self.shift_memo(c, delta, memo)).collect())
                }
            }
        }
    }

    fn unit(d: usize, sign: i32) -> [i32; 3] {
        let mut u = [0i32; 3];
        u[d] = sign;
        u
    }

    /// Central difference of a cell-centred expression:
    /// `(e(+1) − e(−1)) / (2 dx_d)`.
    pub fn central_diff(&self, e: &Expr, d: usize) -> Expr {
        let plus = self.shift(e, Self::unit(d, 1));
        let minus = self.shift(e, Self::unit(d, -1));
        (plus - minus) / (2.0 * self.dx[d])
    }

    /// Evaluate `e` (which may contain *inner* first-order `Diff` nodes but
    /// no deeper nesting) at the staggered position half a cell in `+d`:
    /// interpolate plain values, use compact differences along `d`, and
    /// interpolate central differences transverse to `d` — Eq. (11).
    ///
    /// Memoized over the expression DAG (fixed `d` per call).
    pub fn staggered_eval(&self, e: &Expr, d: usize) -> Expr {
        self.stag_memo(e, d, &mut HashMap::new())
    }

    fn stag_memo(&self, e: &Expr, d: usize, memo: &mut HashMap<usize, Expr>) -> Expr {
        if let Some(hit) = memo.get(&e.node_id()) {
            return hit.clone();
        }
        let out = self.stag_uncached(e, d, memo);
        memo.insert(e.node_id(), out.clone());
        out
    }

    fn stag_uncached(&self, e: &Expr, d: usize, memo: &mut HashMap<usize, Expr>) -> Expr {
        match e.node() {
            Node::Num(_) | Node::Sym(_) | Node::Time => e.clone(),
            Node::Rand(_) => e.clone(), // fluctuations are sampled per cell
            Node::Coord(cd) => {
                let cdd = *cd as usize;
                if cdd == d {
                    Expr::coord(cdd) + Expr::num(self.dx[d] / 2.0)
                } else {
                    e.clone()
                }
            }
            Node::CellIdx(_) => {
                panic!("integer cell indices have no staggered interpolation")
            }
            Node::Access(a) => {
                // Linear interpolation onto the face.
                (Expr::access(*a) + Expr::access(a.shifted(Self::unit(d, 1)))) * 0.5
            }
            Node::Diff(inner, d2) => {
                let d2 = *d2 as usize;
                assert!(
                    !inner.has_diff(),
                    "nested second derivatives inside a flux are not supported \
                     by the order-2 scheme: {inner}"
                );
                if d2 == d {
                    // Compact two-point difference across the face.
                    let plus = self.shift(inner, Self::unit(d, 1));
                    (plus - inner.clone()) / self.dx[d]
                } else {
                    // Central difference transverse to the face, interpolated
                    // from the two adjacent cells.
                    let c0 = self.central_diff(inner, d2);
                    let c1 = self.shift(&c0, Self::unit(d, 1));
                    (c0 + c1) * 0.5
                }
            }
            _ => {
                let ch = e.children();
                e.with_children(ch.iter().map(|c| self.stag_memo(c, d, memo)).collect())
            }
        }
    }

    /// Discretize, inlining all fluxes (the "full" kernel form).
    pub fn apply(&self, e: &Expr) -> Expr {
        self.apply_with(e, &mut |_flux| None)
    }

    /// Discretize, calling `hook` for every divergence-of-fluxes site. If
    /// the hook returns `Some(replacement)`, that expression is used for the
    /// *right-face* flux value instead of the inline form — this is how the
    /// split-kernel builder reroutes fluxes through a staggered temporary
    /// field. The replacement must obey the same convention: it represents
    /// the flux on the right face of the current cell.
    ///
    /// Memoized over the expression DAG; the hook fires once per *unique*
    /// divergence site.
    pub fn apply_with(&self, e: &Expr, hook: &mut impl FnMut(&Flux) -> Option<Expr>) -> Expr {
        self.apply_memo(e, hook, &mut HashMap::new())
    }

    fn apply_memo(
        &self,
        e: &Expr,
        hook: &mut impl FnMut(&Flux) -> Option<Expr>,
        memo: &mut HashMap<usize, Expr>,
    ) -> Expr {
        if let Some(hit) = memo.get(&e.node_id()) {
            return hit.clone();
        }
        let out = self.apply_uncached(e, hook, memo);
        memo.insert(e.node_id(), out.clone());
        out
    }

    fn apply_uncached(
        &self,
        e: &Expr,
        hook: &mut impl FnMut(&Flux) -> Option<Expr>,
        memo: &mut HashMap<usize, Expr>,
    ) -> Expr {
        match e.node() {
            Node::Diff(inner, d) => {
                let d = *d as usize;
                assert!(
                    d < self.dim,
                    "derivative along dim {d} in a {}D model",
                    self.dim
                );
                if inner.accesses().is_empty() && !inner.has_diff() {
                    // Purely analytic dependence (e.g. temperature T(z, t)):
                    // differentiate exactly.
                    return inner.diff(&Expr::coord(d));
                }
                if let Node::Access(_) = inner.node() {
                    // First derivative of a plain field value.
                    return self.central_diff(inner, d);
                }
                // Compound expression: divergence-of-fluxes. The staggered
                // evaluator consumes the inner Diff nodes directly; the
                // resulting face expression is then simplified by expansion
                // when that cancels terms ("terms are simplified
                // individually by expansion", §3.3) — this is what keeps the
                // inline (full) kernel competitive with the split variant.
                let flux_inline = expand_if_smaller(&self.staggered_eval(inner, d));
                let flux = Flux {
                    dir: d,
                    expr: flux_inline.clone(),
                };
                let right = hook(&flux).unwrap_or(flux_inline);
                let left = self.shift(&right, Self::unit(d, -1));
                (right - left) / self.dx[d]
            }
            _ => {
                let ch = e.children();
                if ch.is_empty() {
                    e.clone()
                } else {
                    e.with_children(ch.iter().map(|c| self.apply_memo(c, hook, memo)).collect())
                }
            }
        }
    }

    /// Discretize the right-hand side of `∂u/∂t = rhs` with an explicit
    /// Euler step: returns the stencil expression for `u(t+dt)`.
    pub fn explicit_euler(&self, src: Access, rhs: &Expr, dt: f64) -> Expr {
        Expr::access(src) + Expr::num(dt) * self.apply(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_symbolic::{Field, MapCtx};

    fn disc() -> Discretization {
        Discretization::isotropic(3, 1.0)
    }

    /// Bind a quadratic test field u(x,y,z) = x² + 2y² + 3z² on the accesses
    /// an expression needs.
    fn bind_quadratic(ctx: &mut MapCtx, e: &Expr, at: [f64; 3]) {
        for a in e.accesses() {
            let p = [
                at[0] + a.off[0] as f64,
                at[1] + a.off[1] as f64,
                at[2] + a.off[2] as f64,
            ];
            let v = p[0] * p[0] + 2.0 * p[1] * p[1] + 3.0 * p[2] * p[2];
            ctx.set_access(a, v);
        }
    }

    #[test]
    fn central_difference_is_exact_for_quadratics() {
        let f = Field::new("dz_q", 1, 3);
        let acc = Access::center(f, 0);
        let d = disc();
        let e = d.apply(&Expr::d(Expr::access(acc), 0));
        let mut ctx = MapCtx::new();
        bind_quadratic(&mut ctx, &e, [2.0, 0.0, 0.0]);
        // du/dx at x=2 is 4 (central differences are exact on quadratics).
        assert!((e.eval(&ctx) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn laplacian_via_divergence_of_fluxes() {
        // ∂x(∂x u) must become the compact 3-point stencil, not the wide
        // 5-point one a naive repeated central difference would give.
        let f = Field::new("dz_l", 1, 3);
        let acc = Access::center(f, 0);
        let u = Expr::access(acc);
        let d = disc();
        let lap = d.apply(&Expr::d(Expr::d(u, 0) * Expr::one(), 0));
        // Check radius 1 (compact).
        let max_off = lap.accesses().iter().map(|a| a.off[0].abs()).max().unwrap();
        assert_eq!(max_off, 1, "stencil not compact: {lap}");
        let mut ctx = MapCtx::new();
        bind_quadratic(&mut ctx, &lap, [5.0, 1.0, 1.0]);
        assert!(
            (lap.eval(&ctx) - 2.0).abs() < 1e-12,
            "got {}",
            lap.eval(&ctx)
        );
    }

    #[test]
    fn analytic_derivative_is_exact() {
        // ∂z of T = T0 + G·(z − v·t) → G, with no field accesses involved.
        let t0 = Expr::sym("dz_T0");
        let g = Expr::sym("dz_G");
        let v = Expr::sym("dz_v");
        let temp = t0 + g.clone() * (Expr::coord(2) - v * Expr::time());
        let d = disc();
        let out = d.apply(&Expr::d(temp, 2));
        assert_eq!(out, g);
    }

    #[test]
    fn paper_equation_11_structure() {
        // ∂x( p(x)·∂x f + ∂y f ): right-face flux must be
        //   p(x+dx/2)·(f(1,0,0)−f(0,0,0))/dx
        //   + ½[ (f(0,1,0)−f(0,−1,0))/(2dy) + (f(1,1,0)−f(1,−1,0))/(2dy) ]
        let fld = Field::new("dz_e11", 1, 3);
        let facc = Access::center(fld, 0);
        let f = Expr::access(facc);
        // p(x) = x² (analytic)
        let p = Expr::powi(Expr::coord(0), 2);
        let flux = p * Expr::d(f.clone(), 0) + Expr::d(f.clone(), 1);
        let d = disc();
        let rhs = d.apply(&Expr::d(flux, 0));

        // Evaluate against the analytic solution for f = x²+2y²+3z², p = x²:
        // ∂x(p ∂x f + ∂y f) = ∂x(x²·2x + 4y) = 6x².
        // The FD form is not exact for the cubic p·∂xf term, so compare with
        // a tolerance at a point and check convergence with h instead.
        let mut errs = Vec::new();
        for h in [0.5, 0.25] {
            let dh = Discretization::isotropic(3, h);
            let rhs_h = dh.apply(&Expr::d(
                Expr::powi(Expr::coord(0), 2) * Expr::d(f.clone(), 0) + Expr::d(f.clone(), 1),
                0,
            ));
            let at = [2.0, 1.0, 1.0];
            let mut ctx = MapCtx::new();
            ctx.coords = at;
            for a in rhs_h.accesses() {
                let pnt = [
                    at[0] + a.off[0] as f64 * h,
                    at[1] + a.off[1] as f64 * h,
                    at[2] + a.off[2] as f64 * h,
                ];
                ctx.set_access(
                    a,
                    pnt[0] * pnt[0] + 2.0 * pnt[1] * pnt[1] + 3.0 * pnt[2] * pnt[2],
                );
            }
            let exact = 6.0 * at[0] * at[0];
            errs.push((rhs_h.eval(&ctx) - exact).abs());
        }
        // Second-order convergence: halving h should shrink the error ~4x.
        assert!(
            errs[1] < errs[0] / 3.0 || errs[1] < 1e-10,
            "no 2nd-order convergence: {errs:?}"
        );
        // Structural check on the compactness of the x-extent.
        let max_x = rhs.accesses().iter().map(|a| a.off[0].abs()).max().unwrap();
        assert_eq!(max_x, 1);
    }

    #[test]
    fn staggered_interpolation_of_plain_values() {
        let fld = Field::new("dz_si", 1, 3);
        let acc = Access::center(fld, 0);
        let d = disc();
        let s = d.staggered_eval(&Expr::access(acc), 0);
        let expected = (Expr::access(acc) + Expr::access(acc.shifted([1, 0, 0]))) * 0.5;
        assert_eq!(s, expected);
    }

    #[test]
    fn shift_moves_coordinates_and_accesses() {
        let fld = Field::new("dz_sh", 1, 3);
        let acc = Access::center(fld, 0);
        let d = disc();
        let e = Expr::access(acc) * Expr::coord(0);
        let s = d.shift(&e, [1, 0, 0]);
        let expected = Expr::access(acc.shifted([1, 0, 0])) * (Expr::coord(0) + 1.0);
        assert_eq!(s, expected);
    }

    #[test]
    fn variational_to_stencil_pipeline_on_allen_cahn() {
        // Full mini-pipeline: E = ε|∇φ|² + (1/ε)·φ²(1−φ)²,
        // δE/δφ discretized must be a compact 7-point stencil in 3D.
        let eps = 0.5;
        let fld = Field::new("dz_ac", 1, 3);
        let acc = Access::center(fld, 0);
        let phi = Expr::access(acc);
        let grad2: Expr = (0..3)
            .map(|dd| Expr::powi(Expr::d(phi.clone(), dd), 2))
            .sum();
        let energy = Expr::num(eps) * grad2
            + Expr::num(1.0 / eps)
                * Expr::powi(phi.clone(), 2)
                * Expr::powi(Expr::one() - phi.clone(), 2);
        let force = energy.functional_derivative(acc, 3);
        let d = disc();
        let st = d.apply(&force);
        assert!(!st.has_diff());
        let offsets: std::collections::HashSet<[i32; 3]> =
            st.accesses().iter().map(|a| a.off).collect();
        // 7-point star: centre + 6 face neighbours.
        assert_eq!(offsets.len(), 7, "offsets: {offsets:?}");
    }
}
