//! Split-kernel extraction: precompute staggered fluxes in a separate pass.
//!
//! "Each kernel can optionally be split into two parts to prevent
//! re-computation of staggered values. Then, in a first pass over the
//! domain, flux quantities at staggered positions are cached in a temporary
//! array and used in the second iteration pass to update the destination
//! array." (§4.2) — producing the `µ-split`/`φ-split` variants of
//! Algorithm 1.
//!
//! Face kernels iterate one extra layer along their own direction only
//! ("due to the difference in loop bounds, this transformation is
//! non-trivial", §3.4); we generate one face kernel per direction, which the
//! executor may fuse into a single sweep.

use crate::assignment::{Assignment, StencilKernel};
use crate::discretize::Discretization;
use pf_symbolic::{Access, Expr, Field};

/// One staggered temporary: component `slot` of the staggered field holds
/// the flux for direction `dir`; `face_expr` is its value at face `i` (the
/// face between cells `i-1` and `i` along `dir`).
#[derive(Clone, Debug)]
pub struct FluxSlot {
    pub slot: usize,
    pub dir: usize,
    pub face_expr: Expr,
}

/// Result of splitting a set of update expressions.
#[derive(Clone, Debug)]
pub struct SplitResult {
    /// Symbolic handle of the staggered temporary field (`slots.len()`
    /// components, extent +1 cell, no ghosts).
    pub stag_field: Field,
    pub slots: Vec<FluxSlot>,
    /// One face kernel per direction that carries fluxes, in direction
    /// order. Each has `iter_extent = 1` along its own direction.
    pub flux_kernels: Vec<StencilKernel>,
    /// The update assignments, with divergence terms rewritten to read the
    /// staggered field.
    pub updates: Vec<Assignment>,
}

/// Discretize `updates` (pairs of destination access and *continuous*
/// right-hand side) in the "full" form: every flux inlined.
pub fn discretize_full(disc: &Discretization, updates: &[(Access, Expr)]) -> Vec<Assignment> {
    updates
        .iter()
        .map(|(dst, rhs)| Assignment::store(*dst, disc.apply(rhs)))
        .collect()
}

/// Discretize `updates` in the "split" form: fluxes are deduplicated and
/// extracted into a staggered temporary field named `stag_name`.
pub fn split_fluxes(
    disc: &Discretization,
    stag_name: &str,
    updates: &[(Access, Expr)],
) -> SplitResult {
    // First pass: count distinct fluxes so we can declare the symbolic
    // staggered field with the right component count. (Field declarations
    // are immutable, so we do a dry run.)
    let mut seen: Vec<(usize, Expr)> = Vec::new();
    for (_, rhs) in updates {
        disc.apply_with(rhs, &mut |flux| {
            if !seen.iter().any(|(d, e)| *d == flux.dir && *e == flux.expr) {
                seen.push((flux.dir, flux.expr.clone()));
            }
            None
        });
    }
    let nslots = seen.len().max(1);
    let stag = Field::new(stag_name, nslots, disc.dim);

    // Second pass: rewrite, binding each flux site to its slot.
    let mut slots: Vec<FluxSlot> = Vec::new();
    let updates_rewritten: Vec<Assignment> = updates
        .iter()
        .map(|(dst, rhs)| {
            let rewritten = disc.apply_with(rhs, &mut |flux| {
                let slot = match slots
                    .iter()
                    .find(|s| s.dir == flux.dir && is_same_flux(disc, s, &flux.expr))
                {
                    Some(s) => s.slot,
                    None => {
                        let slot = slots.len();
                        let mut unit = [0i32; 3];
                        unit[flux.dir] = -1;
                        slots.push(FluxSlot {
                            slot,
                            dir: flux.dir,
                            // Face i stores the flux between cells i−1 and i,
                            // i.e. the right-face expression shifted left.
                            face_expr: disc.shift(&flux.expr, unit),
                        });
                        slot
                    }
                };
                // The right face of the current cell is face (cell+1).
                let mut plus = [0i32; 3];
                plus[flux.dir] = 1;
                Some(Expr::access(Access::at(stag, slot, plus)))
            });
            Assignment::store(*dst, rewritten)
        })
        .collect();

    // Build one face kernel per direction present.
    let mut flux_kernels = Vec::new();
    for d in 0..disc.dim {
        let in_dir: Vec<&FluxSlot> = slots.iter().filter(|s| s.dir == d).collect();
        if in_dir.is_empty() {
            continue;
        }
        let assignments = in_dir
            .iter()
            .map(|s| Assignment::store(Access::center(stag, s.slot), s.face_expr.clone()))
            .collect();
        let mut k = StencilKernel::new(&format!("{stag_name}_faces_d{d}"), assignments);
        k.iter_extent = [0, 0, 0];
        k.iter_extent[d] = 1;
        flux_kernels.push(k);
    }

    SplitResult {
        stag_field: stag,
        slots,
        flux_kernels,
        updates: updates_rewritten,
    }
}

/// Two flux sites match when their right-face expressions are structurally
/// equal (canonical forms make this a plain comparison).
fn is_same_flux(_disc: &Discretization, slot: &FluxSlot, right_face: &Expr) -> bool {
    // slot.face_expr is the right-face expression shifted by −1; compare in
    // the same frame.
    let mut unit = [0i32; 3];
    unit[slot.dir] = -1;
    slot.face_expr == _disc.shift(right_face, unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_symbolic::MapCtx;

    /// u_t = ∇·(∇u): the classic diffusion operator in 2D.
    fn setup() -> (Field, Access, Expr) {
        let f = Field::new("sp_u", 1, 2);
        let acc = Access::center(f, 0);
        let u = Expr::access(acc);
        // Written as an explicit divergence so the flux path triggers:
        // Σ_d ∂_d ( 1·∂_d u ) — multiply by 1 via a symbol to keep it
        // compound (a bare ∂_d(∂_d u) also takes the flux path).
        let rhs: Expr = (0..2)
            .map(|d| Expr::d(Expr::sym("sp_D") * Expr::d(u.clone(), d), d))
            .sum();
        (f, acc, rhs)
    }

    #[test]
    fn split_extracts_one_flux_per_direction() {
        let (_, acc, rhs) = setup();
        let disc = Discretization::isotropic(2, 1.0);
        let r = split_fluxes(&disc, "sp_stag", &[(acc, rhs)]);
        assert_eq!(r.slots.len(), 2);
        assert_eq!(r.flux_kernels.len(), 2);
        assert_eq!(r.flux_kernels[0].iter_extent, [1, 0, 0]);
        assert_eq!(r.flux_kernels[1].iter_extent, [0, 1, 0]);
    }

    #[test]
    fn duplicate_fluxes_are_shared() {
        // Two equations containing the same divergence term share slots.
        let (_, acc, rhs) = setup();
        let f2 = Field::new("sp_v", 1, 2);
        let acc2 = Access::center(f2, 0);
        let disc = Discretization::isotropic(2, 1.0);
        let r = split_fluxes(
            &disc,
            "sp_stag2",
            &[(acc, rhs.clone()), (acc2, rhs + Expr::one())],
        );
        assert_eq!(r.slots.len(), 2, "slots: {:?}", r.slots.len());
    }

    #[test]
    fn split_equals_full_numerically() {
        let (_, acc, rhs) = setup();
        let disc = Discretization::isotropic(2, 0.5);
        let full = discretize_full(&disc, &[(acc, rhs.clone())]);
        let split = split_fluxes(&disc, "sp_stag3", &[(acc, rhs)]);

        // Evaluate both forms on a synthetic field u(x,y) = sin-ish values.
        let val = |x: f64, y: f64| (0.3 * x).sin() + 0.1 * x * y + y * y * 0.05;
        let h = 0.5;

        // Full form at cell (0,0):
        let mut ctx = MapCtx::new();
        ctx.set("sp_D", 1.7);
        for a in full[0].rhs.accesses() {
            ctx.set_access(a, val(a.off[0] as f64 * h, a.off[1] as f64 * h));
        }
        let full_v = full[0].rhs.eval(&ctx);

        // Split form: first compute the needed staggered values.
        let mut ctx2 = MapCtx::new();
        ctx2.set("sp_D", 1.7);
        // The update reads stag at offsets 0 and +1 per direction; face i is
        // face_expr evaluated with accesses shifted by i.
        for a in split.updates[0].rhs.accesses() {
            if a.field == split.stag_field {
                let slot = &split.slots[a.comp as usize];
                let shifted = disc.shift(&slot.face_expr, a.off);
                let mut c = MapCtx::new();
                c.set("sp_D", 1.7);
                for b in shifted.accesses() {
                    c.set_access(b, val(b.off[0] as f64 * h, b.off[1] as f64 * h));
                }
                ctx2.set_access(a, shifted.eval(&c));
            } else {
                ctx2.set_access(a, val(a.off[0] as f64 * h, a.off[1] as f64 * h));
            }
        }
        let split_v = split.updates[0].rhs.eval(&ctx2);
        assert!(
            (full_v - split_v).abs() < 1e-12,
            "full {full_v} vs split {split_v}"
        );
    }

    #[test]
    fn update_reads_only_staggered_and_plain_fields() {
        let (f, acc, rhs) = setup();
        let disc = Discretization::isotropic(2, 1.0);
        let r = split_fluxes(&disc, "sp_stag4", &[(acc, rhs)]);
        for a in r.updates[0].rhs.accesses() {
            assert!(
                a.field == r.stag_field || a.field == f,
                "unexpected field {:?}",
                a.field
            );
        }
        // Update must not reach beyond offset +1 on the staggered field.
        for a in r.updates[0].rhs.accesses() {
            if a.field == r.stag_field {
                assert!(a.off.iter().all(|&o| (0..=1).contains(&o)));
            }
        }
    }
}
