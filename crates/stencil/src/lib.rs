//! `pf-stencil` — the discretization layer of the code-generation pipeline.
//!
//! Consumes continuous PDE right-hand sides (expression trees with `Diff`
//! nodes from `pf-symbolic`) and produces stencil kernels: second-order
//! finite differences with the divergence-of-fluxes staggered scheme the
//! phase-field community uses (§3.3 of the paper), explicit Euler stepping,
//! and the full/split kernel variants of Algorithm 1.

#![forbid(unsafe_code)]

mod assignment;
mod discretize;
mod split;

pub use assignment::{Assignment, Lhs, StencilKernel};
pub use discretize::{Discretization, Flux};
pub use split::{discretize_full, split_fluxes, FluxSlot, SplitResult};
