//! Staggered (face-centred) temporary fields.
//!
//! The split kernel variants precompute fluxes "at staggered positions …
//! cached in a temporary staggered field" (§3.4). A block of `Nx×Ny×Nz`
//! cells has `(Nx+1)·Ny·Nz` x-face values, `Nx·(Ny+1)·Nz` y-face values,
//! etc. We store all directions of one logical staggered field in a single
//! allocation extended by one cell in every dimension, indexed so that
//! face `(d, x, y, z)` is the face between cell `x-1` and `x` along `d`
//! (for d = 0; analogously for the others).

use crate::array::{FieldArray, Layout};

/// Face-centred storage for `comps` scalar quantities per direction.
#[derive(Clone, Debug)]
pub struct StaggeredField {
    inner: FieldArray,
    dim: usize,
    comps: usize,
}

impl StaggeredField {
    /// `shape` is the *cell* shape of the block; `dim` the spatial
    /// dimensionality (2 or 3); `comps` the number of scalar flux components
    /// stored per face.
    pub fn new(name: &str, shape: [usize; 3], dim: usize, comps: usize) -> Self {
        assert!((2..=3).contains(&dim));
        let ext = [
            shape[0] + 1,
            shape[1] + 1,
            if dim == 3 { shape[2] + 1 } else { shape[2] },
        ];
        // One component block per (direction, comp) pair; no ghost layers —
        // staggered temporaries live strictly inside one block pass.
        let inner = FieldArray::new(name, ext, dim * comps, 0, Layout::Fzyx);
        StaggeredField { inner, dim, comps }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn components(&self) -> usize {
        self.comps
    }

    #[inline]
    fn slot(&self, dir: usize, comp: usize) -> usize {
        debug_assert!(dir < self.dim && comp < self.comps);
        dir * self.comps + comp
    }

    /// Value on the `dir`-face between cell `(x-1..)` and `(x..)`.
    #[inline]
    pub fn get(&self, dir: usize, comp: usize, x: isize, y: isize, z: isize) -> f64 {
        self.inner.get(self.slot(dir, comp), x, y, z)
    }

    #[inline]
    pub fn set(&mut self, dir: usize, comp: usize, x: isize, y: isize, z: isize, v: f64) {
        self.inner.set(self.slot(dir, comp), x, y, z, v);
    }

    pub fn fill(&mut self, v: f64) {
        self.inner.fill(v);
    }

    /// Borrow the backing array (the executor binds it like any other field).
    pub fn as_array(&self) -> &FieldArray {
        &self.inner
    }

    pub fn as_array_mut(&mut self) -> &mut FieldArray {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_one_extra_face_per_dim() {
        let s = StaggeredField::new("flux", [4, 5, 6], 3, 2);
        // Faces 0..=4 valid along x.
        s.get(0, 0, 4, 0, 0);
        s.get(1, 1, 0, 5, 0);
        s.get(2, 0, 0, 0, 6);
    }

    #[test]
    fn directions_do_not_alias() {
        let mut s = StaggeredField::new("flux", [2, 2, 2], 3, 1);
        s.set(0, 0, 1, 1, 1, 5.0);
        assert_eq!(s.get(0, 0, 1, 1, 1), 5.0);
        assert_eq!(s.get(1, 0, 1, 1, 1), 0.0);
        assert_eq!(s.get(2, 0, 1, 1, 1), 0.0);
    }

    #[test]
    fn components_do_not_alias() {
        let mut s = StaggeredField::new("flux", [2, 2, 2], 2, 3);
        s.set(1, 2, 0, 0, 0, -1.0);
        assert_eq!(s.get(1, 2, 0, 0, 0), -1.0);
        assert_eq!(s.get(1, 1, 0, 0, 0), 0.0);
    }

    #[test]
    fn two_d_keeps_z_extent() {
        let s = StaggeredField::new("flux", [4, 4, 1], 2, 1);
        assert_eq!(s.as_array().shape(), [5, 5, 1]);
    }
}
