//! `pf-fields` — grid-resident field storage for generated kernels.
//!
//! Provides the paper's array model (§3.4/§3.5): multi-component fields
//! with ghost layers, `fzyx`/`zyxf` layouts, SIMD-width row padding, cheap
//! `src ⇄ dst` swaps, single-block boundary handling, and the staggered
//! (face-centred) temporaries used by the split kernel variants.
//!
//! Kernels compiled by `pf-backend` address these arrays through the
//! `strides()`/`index()` contract: a relative access `(c, dx, dy, dz)` of a
//! field maps to `base + c·sc + dx·sx + dy·sy + dz·sz`.

#![forbid(unsafe_code)]

mod array;
mod staggered;

pub use array::{FieldArray, Layout, SIMD_F64_LANES};
pub use staggered::StaggeredField;
