//! Ghosted, padded field storage.
//!
//! A [`FieldArray`] owns the values of one simulation field (all components)
//! on one block: an interior of `shape` cells surrounded by `ghost` layers
//! on every side, with the innermost (x) extent padded to a multiple of the
//! SIMD width so that row starts stay aligned — the allocation scheme the
//! paper's CPU backend uses for aligned loads/stores (§3.5).

/// Memory layout of the component index relative to the spatial indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Structure-of-arrays: component is the outermost (slowest) index,
    /// x the fastest. waLBerla's `fzyx`, best for SIMD.
    Fzyx,
    /// Array-of-structures: component innermost. waLBerla's `zyxf`.
    Zyxf,
}

/// Number of f64 lanes rows are padded to (AVX-512 width).
pub const SIMD_F64_LANES: usize = 8;

/// One block's worth of one field.
#[derive(Clone, Debug)]
pub struct FieldArray {
    name: String,
    shape: [usize; 3],
    ghost: usize,
    comps: usize,
    layout: Layout,
    /// Allocated x extent (interior + ghosts, padded up).
    alloc_x: usize,
    alloc: [usize; 3],
    data: Vec<f64>,
}

impl FieldArray {
    pub fn new(name: &str, shape: [usize; 3], comps: usize, ghost: usize, layout: Layout) -> Self {
        assert!(comps >= 1);
        assert!(shape.iter().all(|&s| s >= 1), "empty field {shape:?}");
        let alloc = [
            shape[0] + 2 * ghost,
            shape[1] + 2 * ghost,
            shape[2] + 2 * ghost,
        ];
        let alloc_x = match layout {
            Layout::Fzyx => alloc[0].div_ceil(SIMD_F64_LANES) * SIMD_F64_LANES,
            // With the component innermost, padding x would not align rows
            // anyway; allocate tight.
            Layout::Zyxf => alloc[0],
        };
        let len = match layout {
            Layout::Fzyx => comps * alloc[2] * alloc[1] * alloc_x,
            Layout::Zyxf => alloc[2] * alloc[1] * alloc_x * comps,
        };
        FieldArray {
            name: name.to_owned(),
            shape,
            ghost,
            comps,
            layout,
            alloc_x,
            alloc,
            data: vec![0.0; len],
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Interior shape (without ghosts).
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    pub fn ghost_layers(&self) -> usize {
        self.ghost
    }

    pub fn components(&self) -> usize {
        self.comps
    }

    pub fn layout(&self) -> Layout {
        self.layout
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Strides in f64 elements for (comp, x, y, z).
    pub fn strides(&self) -> [isize; 4] {
        match self.layout {
            Layout::Fzyx => {
                let sx = 1isize;
                let sy = self.alloc_x as isize;
                let sz = (self.alloc[1] * self.alloc_x) as isize;
                let sc = (self.alloc[2] * self.alloc[1] * self.alloc_x) as isize;
                [sc, sx, sy, sz]
            }
            Layout::Zyxf => {
                let sc = 1isize;
                let sx = self.comps as isize;
                let sy = (self.alloc_x * self.comps) as isize;
                let sz = (self.alloc[1] * self.alloc_x * self.comps) as isize;
                [sc, sx, sy, sz]
            }
        }
    }

    /// Linear index of interior-relative coordinates. Coordinates may range
    /// over `-ghost .. shape + ghost`.
    #[inline]
    pub fn index(&self, comp: usize, x: isize, y: isize, z: isize) -> usize {
        debug_assert!(comp < self.comps, "component {comp} out of range");
        let g = self.ghost as isize;
        debug_assert!(
            x >= -g
                && (x) < self.shape[0] as isize + g
                && y >= -g
                && y < self.shape[1] as isize + g
                && z >= -g
                && z < self.shape[2] as isize + g,
            "access ({x},{y},{z}) outside ghosted extent of {}",
            self.name
        );
        let [sc, sx, sy, sz] = self.strides();
        let base = comp as isize * sc + (x + g) * sx + (y + g) * sy + (z + g) * sz;
        base as usize
    }

    #[inline]
    pub fn get(&self, comp: usize, x: isize, y: isize, z: isize) -> f64 {
        self.data[self.index(comp, x, y, z)]
    }

    #[inline]
    pub fn set(&mut self, comp: usize, x: isize, y: isize, z: isize, v: f64) {
        let i = self.index(comp, x, y, z);
        self.data[i] = v;
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill the whole allocation (interior + ghosts) with a value.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Fill one component's interior from a function of the cell index.
    pub fn fill_with(&mut self, comp: usize, mut f: impl FnMut(usize, usize, usize) -> f64) {
        for z in 0..self.shape[2] {
            for y in 0..self.shape[1] {
                for x in 0..self.shape[0] {
                    self.set(comp, x as isize, y as isize, z as isize, f(x, y, z));
                }
            }
        }
    }

    /// Swap contents with another array of identical geometry (the
    /// src/dst pointer swap at the end of a timestep — Algorithm 1, step 5).
    pub fn swap(&mut self, other: &mut FieldArray) {
        assert_eq!(self.shape, other.shape, "swap: shape mismatch");
        assert_eq!(self.comps, other.comps, "swap: component mismatch");
        assert_eq!(self.ghost, other.ghost, "swap: ghost mismatch");
        assert_eq!(self.layout, other.layout, "swap: layout mismatch");
        std::mem::swap(&mut self.data, &mut other.data);
    }

    /// Copy ghost layers from the opposite interior side of the same block —
    /// single-block periodic boundaries in dimension `d`.
    pub fn apply_periodic(&mut self, d: usize) {
        let g = self.ghost as isize;
        let n = self.shape[d] as isize;
        if g == 0 {
            return;
        }
        let (lo, hi) = (
            -(self.ghost as isize),
            self.shape[d] as isize + self.ghost as isize,
        );
        let ext = |s: usize| -> (isize, isize) {
            if s == d {
                (0, 0) // overwritten per-ghost below
            } else {
                (
                    -(self.ghost as isize),
                    self.shape[s] as isize + self.ghost as isize,
                )
            }
        };
        let (x0, x1) = ext(0);
        let (y0, y1) = ext(1);
        let (z0, z1) = ext(2);
        for comp in 0..self.comps {
            for off in 0..g {
                // ghost at lo + off mirrors interior at n - g + off
                // ghost at n + off mirrors interior at off
                let pairs = [(lo + off, n - g + off), (n + off, off)];
                for (dst, src) in pairs {
                    let mut cp = |x: isize, y: isize, z: isize| {
                        let (mut sx, mut sy, mut sz) = (x, y, z);
                        let (dx, dy, dz) = (x, y, z);
                        match d {
                            0 => sx = src,
                            1 => sy = src,
                            _ => sz = src,
                        }
                        let v = self.get(comp, sx, sy, sz);
                        let (mut tx, mut ty, mut tz) = (dx, dy, dz);
                        match d {
                            0 => tx = dst,
                            1 => ty = dst,
                            _ => tz = dst,
                        }
                        self.set(comp, tx, ty, tz, v);
                    };
                    match d {
                        0 => {
                            for z in z0..z1 {
                                for y in y0..y1 {
                                    cp(0, y, z);
                                }
                            }
                        }
                        1 => {
                            for z in z0..z1 {
                                for x in x0..x1 {
                                    cp(x, 0, z);
                                }
                            }
                        }
                        _ => {
                            for y in y0..y1 {
                                for x in x0..x1 {
                                    cp(x, y, 0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let _ = (lo, hi);
    }

    /// Zero-gradient (Neumann) boundaries: copy the nearest interior cell
    /// into the ghost layers of dimension `d`.
    pub fn apply_neumann(&mut self, d: usize) {
        let g = self.ghost as isize;
        let n = self.shape[d] as isize;
        if g == 0 {
            return;
        }
        let full = |s: usize| -> (isize, isize) {
            (
                -(self.ghost as isize),
                self.shape[s] as isize + self.ghost as isize,
            )
        };
        let (x0, x1) = full(0);
        let (y0, y1) = full(1);
        let (z0, z1) = full(2);
        for comp in 0..self.comps {
            for off in 0..g {
                let pairs = [(-(off + 1), 0isize), (n + off, n - 1)];
                for (dst, src) in pairs {
                    match d {
                        0 => {
                            for z in z0..z1 {
                                for y in y0..y1 {
                                    let v = self.get(comp, src, y, z);
                                    self.set(comp, dst, y, z, v);
                                }
                            }
                        }
                        1 => {
                            for z in z0..z1 {
                                for x in x0..x1 {
                                    let v = self.get(comp, x, src, z);
                                    self.set(comp, x, dst, z, v);
                                }
                            }
                        }
                        _ => {
                            for y in y0..y1 {
                                for x in x0..x1 {
                                    let v = self.get(comp, x, y, src);
                                    self.set(comp, x, y, dst, v);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Sum of one component over the interior (diagnostics / conservation
    /// tests).
    pub fn interior_sum(&self, comp: usize) -> f64 {
        let mut s = 0.0;
        for z in 0..self.shape[2] {
            for y in 0..self.shape[1] {
                for x in 0..self.shape[0] {
                    s += self.get(comp, x as isize, y as isize, z as isize);
                }
            }
        }
        s
    }

    /// Max |a - b| over the interiors of two arrays (test helper).
    pub fn max_abs_diff(&self, other: &FieldArray) -> f64 {
        assert_eq!(self.shape, other.shape);
        assert_eq!(self.comps, other.comps);
        let mut m: f64 = 0.0;
        for c in 0..self.comps {
            for z in 0..self.shape[2] {
                for y in 0..self.shape[1] {
                    for x in 0..self.shape[0] {
                        let d = (self.get(c, x as isize, y as isize, z as isize)
                            - other.get(c, x as isize, y as isize, z as isize))
                        .abs();
                        m = m.max(d);
                    }
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_padding_aligns_fzyx() {
        let f = FieldArray::new("t", [5, 4, 3], 2, 1, Layout::Fzyx);
        // alloc x = 7 → padded to 8
        assert_eq!(f.strides()[2], 8); // y stride = padded x extent
    }

    #[test]
    fn zyxf_puts_component_innermost() {
        let f = FieldArray::new("t", [4, 4, 4], 3, 1, Layout::Zyxf);
        let s = f.strides();
        assert_eq!(s[0], 1); // comp stride
        assert_eq!(s[1], 3); // x stride = ncomp
    }

    #[test]
    fn get_set_roundtrip_with_ghosts() {
        let mut f = FieldArray::new("t", [4, 4, 4], 2, 1, Layout::Fzyx);
        f.set(1, -1, 3, 4, 7.5);
        assert_eq!(f.get(1, -1, 3, 4), 7.5);
        f.set(0, 0, 0, 0, 1.0);
        assert_eq!(f.get(0, 0, 0, 0), 1.0);
        assert_eq!(f.get(1, -1, 3, 4), 7.5);
    }

    #[test]
    fn distinct_cells_have_distinct_indices() {
        let f = FieldArray::new("t", [3, 3, 3], 2, 1, Layout::Fzyx);
        let mut seen = std::collections::HashSet::new();
        for c in 0..2 {
            for z in -1..4 {
                for y in -1..4 {
                    for x in -1..4 {
                        assert!(
                            seen.insert(f.index(c, x, y, z)),
                            "collision at {c},{x},{y},{z}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn periodic_wraps_x() {
        let mut f = FieldArray::new("t", [4, 2, 2], 1, 1, Layout::Fzyx);
        f.fill_with(0, |x, _, _| x as f64);
        f.apply_periodic(0);
        assert_eq!(f.get(0, -1, 0, 0), 3.0);
        assert_eq!(f.get(0, 4, 0, 0), 0.0);
    }

    #[test]
    fn neumann_replicates_edge() {
        let mut f = FieldArray::new("t", [4, 2, 2], 1, 1, Layout::Fzyx);
        f.fill_with(0, |x, _, _| (x * x) as f64);
        f.apply_neumann(0);
        assert_eq!(f.get(0, -1, 0, 0), 0.0);
        assert_eq!(f.get(0, 4, 0, 0), 9.0);
    }

    #[test]
    fn swap_exchanges_contents() {
        let mut a = FieldArray::new("a", [2, 2, 2], 1, 1, Layout::Fzyx);
        let mut b = FieldArray::new("b", [2, 2, 2], 1, 1, Layout::Fzyx);
        a.fill(1.0);
        b.fill(2.0);
        a.swap(&mut b);
        assert_eq!(a.get(0, 0, 0, 0), 2.0);
        assert_eq!(b.get(0, 0, 0, 0), 1.0);
    }

    #[test]
    fn interior_sum_ignores_ghosts() {
        let mut f = FieldArray::new("t", [2, 2, 1], 1, 1, Layout::Fzyx);
        f.fill(100.0); // pollute ghosts
        f.fill_with(0, |_, _, _| 1.0);
        assert_eq!(f.interior_sum(0), 4.0);
    }

    #[test]
    fn two_d_fields_use_unit_z() {
        let f = FieldArray::new("t", [8, 8, 1], 1, 1, Layout::Fzyx);
        assert_eq!(f.shape()[2], 1);
        // z may still be addressed in its ghost range.
        let _ = f.get(0, 0, 0, -1);
    }
}
