//! Pass 6 — interval dataflow: forward range analysis over the SSA tape.
//!
//! Generalizes the two-point const lattice of `value.rs` to closed
//! intervals `[lo, hi]` per register, seeded by the per-field range
//! contracts the model declares on the tape (`Tape::field_ranges`, e.g.
//! φ ∈ [0, 1] after simplex projection) and by the Philox noise bounds
//! (`Rand` draws from `uniform_pm1`, so [-1, 1] exactly). The tape is
//! straight-line SSA, so one forward sweep reaches the fixpoint — no
//! widening loop is needed; "widening" here is the outward rounding that
//! keeps every computed bound sound under f64 arithmetic.
//!
//! What it proves (per instruction, on the *reachable* ranges — not just
//! folded constants):
//!
//! * division by a possibly-zero denominator — provable ({0} exactly) is
//!   an error, possible (interval contains 0) a warning;
//! * `sqrt`/`rsqrt`/`ln` of possibly-nonpositive arguments, same split;
//! * `powf` of a possibly-negative base with a non-integer exponent;
//! * overflow-to-Inf from finite, bounded inputs (e.g. `exp` of a huge
//!   but provably-finite range).
//!
//! The possible/provable split is the false-positive control: intervals
//! ignore operand correlations (`x - x` has interval `[lo-hi, hi-lo]`, not
//! {0}), so containment can only ever justify a warning. One deliberate
//! correlation *is* tracked because the generated kernels lean on it:
//! `Mul(r, r)` — a square — is nonnegative, which proves gradient-norm
//! denominators like `|∇φ|² + η` strictly positive. Squares are detected
//! through local value numbering rather than raw register equality, so
//! the refinement survives rematerialization (which clones one operand
//! into a fresh register).
//!
//! A register that was just reported is demoted to ⊤ so downstream
//! consumers of the poisoned value do not re-fire (same discipline as
//! `value.rs`).

use crate::diag::{DiagKind, Diagnostic};
use pf_ir::{Tape, TapeOp, VReg};

/// A closed, possibly half-open interval over the extended reals.
/// Invariant: `lo <= hi` and neither endpoint is NaN. `TOP` is
/// `[-inf, +inf]` — no information.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    pub fn new(lo: f64, hi: f64) -> Interval {
        debug_assert!(!lo.is_nan() && !hi.is_nan() && lo <= hi);
        Interval { lo, hi }
    }

    pub fn point(v: f64) -> Interval {
        if v.is_nan() {
            // NaN constants are the value pass's finding; carry no range.
            Interval::TOP
        } else {
            Interval { lo: v, hi: v }
        }
    }

    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Both endpoints finite: every value in the range is a normal f64.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Convex hull (join).
    pub fn hull(a: Interval, b: Interval) -> Interval {
        Interval::new(a.lo.min(b.lo), a.hi.max(b.hi))
    }

    /// Outward-rounded: the true real-arithmetic bound lies within one ulp
    /// of the f64-computed one, so stepping each endpoint outward keeps
    /// the interval a sound over-approximation.
    fn widen(lo: f64, hi: f64) -> Interval {
        let lo = if lo.is_finite() { lo.next_down() } else { lo };
        let hi = if hi.is_finite() { hi.next_up() } else { hi };
        Interval::new(lo, hi)
    }
}

/// f64 multiplication for interval endpoints: IEEE `0 * inf = NaN`, but in
/// interval arithmetic that corner contributes 0 (the limit from the
/// finite side).
fn emul(a: f64, b: f64) -> f64 {
    let p = a * b;
    if p.is_nan() {
        0.0
    } else {
        p
    }
}

fn add(a: Interval, b: Interval) -> Interval {
    // -inf + inf corners: resolve toward the conservative side.
    let lo = if a.lo == f64::NEG_INFINITY || b.lo == f64::NEG_INFINITY {
        f64::NEG_INFINITY
    } else {
        a.lo + b.lo
    };
    let hi = if a.hi == f64::INFINITY || b.hi == f64::INFINITY {
        f64::INFINITY
    } else {
        a.hi + b.hi
    };
    Interval::widen(lo, hi)
}

fn neg(a: Interval) -> Interval {
    Interval::new(-a.hi, -a.lo)
}

fn sub(a: Interval, b: Interval) -> Interval {
    add(a, neg(b))
}

fn mul(a: Interval, b: Interval) -> Interval {
    // 0 · x = 0 for every real x: keep the point exact instead of letting
    // outward rounding smear it to ±5e-324 (a provably-zero denominator
    // must stay provable).
    if (a.lo == 0.0 && a.hi == 0.0) || (b.lo == 0.0 && b.hi == 0.0) {
        return Interval::point(0.0);
    }
    let c = [
        emul(a.lo, b.lo),
        emul(a.lo, b.hi),
        emul(a.hi, b.lo),
        emul(a.hi, b.hi),
    ];
    let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Interval::widen(lo, hi)
}

/// x·x with the correlation honoured: never negative.
fn square(a: Interval) -> Interval {
    let m = a.lo.abs().max(a.hi.abs());
    let lo = if a.contains(0.0) {
        0.0
    } else {
        let n = a.lo.abs().min(a.hi.abs());
        emul(n, n)
    };
    Interval::widen(lo.max(0.0), emul(m, m)).intersect_lo(0.0)
}

impl Interval {
    /// Clamp the lower endpoint up to `floor` (used after outward rounding
    /// steps below a bound that is exact, e.g. squares below 0).
    fn intersect_lo(self, floor: f64) -> Interval {
        Interval::new(self.lo.max(floor), self.hi.max(floor))
    }
}

/// 1/b for a denominator proven to exclude 0. The reciprocal of a
/// sign-definite interval is sign-definite, so clamp after the outward
/// rounding: `1/inf = 0` exactly, and letting `widen` step it to
/// `-5e-324` would flip the sign — the later product with an unbounded
/// numerator then explodes to `[-inf, inf]` and every downstream divisor
/// warns spuriously.
fn recip_nonzero(b: Interval) -> Interval {
    debug_assert!(!b.contains(0.0));
    let r = Interval::widen(1.0 / b.hi, 1.0 / b.lo);
    if b.lo > 0.0 {
        r.intersect_lo(0.0)
    } else {
        r.min_hi(0.0)
    }
}

fn sqrt_iv(a: Interval) -> Interval {
    Interval::widen(a.lo.max(0.0).sqrt(), a.hi.max(0.0).sqrt()).intersect_lo(0.0)
}

/// Result of [`infer_intervals`]: the per-register intervals plus the
/// diagnostics raised while computing them.
pub struct IntervalAnalysis {
    pub regs: Vec<Interval>,
    pub diagnostics: Vec<Diagnostic>,
}

/// Run the interval dataflow. See the module docs for the finding families
/// and the provable-vs-possible severity split.
pub fn check_intervals(tape: &Tape) -> Vec<Diagnostic> {
    infer_intervals(tape).diagnostics
}

/// Local value numbering: two registers get the same number iff they are
/// structurally the same computation over same-numbered operands. This is
/// what keeps the square refinement sound *after* rematerialization,
/// which turns `Mul(a, a)` into `Mul(a, a')` with `a'` a recomputed clone
/// of `a` in a fresh register. `Store`/`Fence` (no value) and `Rand`
/// (must not be considered re-samplable) keep their own number.
fn value_numbers(tape: &Tape) -> Vec<u32> {
    let mut table: std::collections::HashMap<TapeOp, u32> = std::collections::HashMap::new();
    let n = tape.instrs.len();
    let mut vn: Vec<u32> = (0..n as u32).collect();
    for (i, op) in tape.instrs.iter().enumerate() {
        if matches!(op, TapeOp::Store { .. } | TapeOp::Fence | TapeOp::Rand(_)) {
            continue;
        }
        let canon = op.map_args(&mut |r: VReg| VReg(vn.get(r.0 as usize).copied().unwrap_or(r.0)));
        vn[i] = *table.entry(canon).or_insert(i as u32);
    }
    vn
}

/// As [`check_intervals`], also exposing the inferred per-register
/// intervals (tests and future passes use the ranges directly).
pub fn infer_intervals(tape: &Tape) -> IntervalAnalysis {
    let n = tape.instrs.len();
    let vn = value_numbers(tape);
    let mut regs: Vec<Interval> = Vec::with_capacity(n);
    let mut out = Vec::new();

    for (i, op) in tape.instrs.iter().enumerate() {
        let arg =
            |r: VReg| -> Interval { regs.get(r.0 as usize).copied().unwrap_or(Interval::TOP) };
        let mut report = |kind: DiagKind, out: &mut Vec<Diagnostic>| {
            out.push(Diagnostic::new(&tape.name, Some(i), kind));
        };

        let mut v = match *op {
            TapeOp::Const(c) => Interval::point(c.0),
            // Params are baked as constants at lowering in this pipeline;
            // a genuinely runtime parameter carries no contract.
            TapeOp::Param(_) => Interval::TOP,
            TapeOp::Load { field, .. } => match tape.field_range(field) {
                Some((lo, hi)) if lo <= hi && !lo.is_nan() && !hi.is_nan() => Interval::new(lo, hi),
                _ => Interval::TOP,
            },
            // Coordinates/time/cell indices are nonnegative (global cell
            // index × dx ≥ 0; simulated time = step · dt ≥ 0).
            TapeOp::Coord(_) | TapeOp::Time | TapeOp::CellIdx(_) => {
                Interval::new(0.0, f64::INFINITY)
            }
            // Philox noise: `uniform_pm1` draws from [-1, 1] exactly.
            TapeOp::Rand(_) => Interval::new(-1.0, 1.0),
            TapeOp::Add(a, b) => {
                let r = add(arg(a), arg(b));
                check_overflow(op, arg(a), arg(b), r, &mut report, &mut out);
                r
            }
            TapeOp::Sub(a, b) => {
                let r = sub(arg(a), arg(b));
                check_overflow(op, arg(a), arg(b), r, &mut report, &mut out);
                r
            }
            TapeOp::Mul(a, b) => {
                let r = if vn[a.0 as usize] == vn[b.0 as usize] {
                    square(arg(a))
                } else {
                    mul(arg(a), arg(b))
                };
                check_overflow(op, arg(a), arg(b), r, &mut report, &mut out);
                r
            }
            TapeOp::Div(a, b) => {
                let (x, y) = (arg(a), arg(b));
                if y.lo == 0.0 && y.hi == 0.0 {
                    report(DiagKind::IntervalDivByZero, &mut out);
                    Interval::TOP
                } else if y.contains(0.0) {
                    report(
                        DiagKind::IntervalDivMaybeZero { lo: y.lo, hi: y.hi },
                        &mut out,
                    );
                    Interval::TOP
                } else {
                    let r = mul(x, recip_nonzero(y));
                    check_overflow(op, x, y, r, &mut report, &mut out);
                    r
                }
            }
            TapeOp::Neg(a) => neg(arg(a)),
            TapeOp::Sqrt(a) => {
                let x = arg(a);
                if x.hi < 0.0 {
                    report(DiagKind::IntervalSqrtNegative { hi: x.hi }, &mut out);
                    Interval::TOP
                } else {
                    // A finite negative lower bound is *partial* knowledge
                    // worth surfacing; lo = -inf means we know nothing and
                    // a warning would fire on every uncontracted sqrt.
                    if x.lo < 0.0 && x.lo.is_finite() {
                        report(DiagKind::IntervalSqrtMaybeNegative { lo: x.lo }, &mut out);
                    }
                    sqrt_iv(x)
                }
            }
            TapeOp::RSqrt(a) => {
                let x = arg(a);
                if x.hi < 0.0 {
                    report(DiagKind::IntervalSqrtNegative { hi: x.hi }, &mut out);
                    Interval::TOP
                } else if x.contains(0.0) && x.lo.is_finite() {
                    if x.lo < 0.0 {
                        report(DiagKind::IntervalSqrtMaybeNegative { lo: x.lo }, &mut out);
                    }
                    report(
                        DiagKind::IntervalRsqrtMaybeZero { lo: x.lo, hi: x.hi },
                        &mut out,
                    );
                    Interval::new(0.0, f64::INFINITY)
                } else if x.contains(0.0) {
                    Interval::new(0.0, f64::INFINITY)
                } else {
                    // x.lo > 0: 1/sqrt is decreasing.
                    Interval::widen(1.0 / x.hi.sqrt(), 1.0 / x.lo.sqrt()).intersect_lo(0.0)
                }
            }
            TapeOp::Abs(a) => {
                let x = arg(a);
                let m = x.lo.abs().max(x.hi.abs());
                let lo = if x.contains(0.0) {
                    0.0
                } else {
                    x.lo.abs().min(x.hi.abs())
                };
                Interval::new(lo, m)
            }
            TapeOp::Min(a, b) => {
                let (x, y) = (arg(a), arg(b));
                Interval::new(x.lo.min(y.lo), x.hi.min(y.hi))
            }
            TapeOp::Max(a, b) => {
                let (x, y) = (arg(a), arg(b));
                Interval::new(x.lo.max(y.lo), x.hi.max(y.hi))
            }
            TapeOp::Exp(a) => {
                let x = arg(a);
                let r = Interval::widen(x.lo.exp(), x.hi.exp()).intersect_lo(0.0);
                check_overflow(op, x, x, r, &mut report, &mut out);
                r
            }
            TapeOp::Ln(a) => {
                let x = arg(a);
                if x.hi <= 0.0 {
                    report(DiagKind::IntervalLnNonPositive { hi: x.hi }, &mut out);
                    Interval::TOP
                } else {
                    if x.lo <= 0.0 && x.lo.is_finite() {
                        report(DiagKind::IntervalLnMaybeNonPositive { lo: x.lo }, &mut out);
                    }
                    let lo = if x.lo > 0.0 {
                        x.lo.ln()
                    } else {
                        f64::NEG_INFINITY
                    };
                    Interval::widen(lo, x.hi.ln())
                }
            }
            TapeOp::Sin(_) | TapeOp::Cos(_) => Interval::new(-1.0, 1.0),
            TapeOp::Tanh(a) => {
                let x = arg(a);
                Interval::widen(x.lo.tanh(), x.hi.tanh())
                    .intersect_lo(-1.0)
                    .min_hi(1.0)
            }
            TapeOp::Sign(a) => {
                let x = arg(a);
                Interval::new(
                    if x.lo < 0.0 {
                        -1.0
                    } else {
                        x.lo.signum().min(1.0)
                    },
                    if x.hi > 0.0 {
                        1.0
                    } else {
                        x.hi.signum().max(-1.0)
                    },
                )
            }
            TapeOp::Floor(a) => {
                let x = arg(a);
                Interval::new(x.lo.floor(), x.hi.floor())
            }
            TapeOp::Powf(a, b) => {
                let (base, exp) = (arg(a), arg(b));
                let exp_is_int_const = exp.lo == exp.hi && exp.lo.fract() == 0.0;
                if base.lo < 0.0 && base.lo.is_finite() && !exp_is_int_const {
                    report(
                        DiagKind::IntervalPowMaybeUndefined { base_lo: base.lo },
                        &mut out,
                    );
                    Interval::TOP
                } else if base.lo >= 0.0 && exp.lo == exp.hi {
                    // x^c is monotone on x ≥ 0 for any fixed real c.
                    let (p, q) = (base.lo.powf(exp.lo), base.hi.powf(exp.lo));
                    let r = Interval::widen(p.min(q), p.max(q)).intersect_lo(0.0);
                    check_overflow(op, base, exp, r, &mut report, &mut out);
                    r
                } else {
                    Interval::TOP
                }
            }
            TapeOp::CmpSelect { t, f, .. } => Interval::hull(arg(t), arg(f)),
            TapeOp::Store { .. } | TapeOp::Fence => Interval::TOP,
        };

        // Demote error-reported registers to ⊤ so consumers do not
        // re-fire on the same root cause. Warning arms keep their refined
        // result (post-warning, the value is assumed in-domain — the
        // standard assume-no-trap convention).
        if out
            .last()
            .is_some_and(|d| d.instr == Some(i) && d.is_error())
        {
            v = Interval::TOP;
        }
        regs.push(v);
    }
    IntervalAnalysis {
        regs,
        diagnostics: out,
    }
}

impl Interval {
    fn min_hi(self, cap: f64) -> Interval {
        Interval::new(self.lo.min(cap), self.hi.min(cap))
    }
}

/// Overflow-to-Inf detection: inputs finite and bounded, result reaching
/// ±Inf. Whole result infinite (one sign) ⇒ provable error; an infinite
/// endpoint ⇒ possible, a warning.
fn check_overflow(
    op: &TapeOp,
    a: Interval,
    b: Interval,
    r: Interval,
    report: &mut impl FnMut(DiagKind, &mut Vec<Diagnostic>),
    out: &mut Vec<Diagnostic>,
) {
    if !(a.is_bounded() && b.is_bounded()) {
        return;
    }
    let desc = || format!("{op:?}");
    if (r.lo == f64::INFINITY && r.hi == f64::INFINITY)
        || (r.lo == f64::NEG_INFINITY && r.hi == f64::NEG_INFINITY)
    {
        report(DiagKind::IntervalOverflowInf { op: desc() }, out);
    } else if r.lo == f64::NEG_INFINITY || r.hi == f64::INFINITY {
        report(DiagKind::IntervalMaybeOverflowInf { op: desc() }, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{load, raw_tape, store};
    use pf_ir::{TapeOp, VReg, CF};

    /// raw_tape with contracts on slot 0 (φ-like ∈ [0,1]).
    fn contracted(instrs: Vec<TapeOp>) -> Tape {
        let mut t = raw_tape(instrs);
        t.field_ranges = vec![Some((0.0, 1.0)), None];
        t
    }

    #[test]
    fn contract_seeds_load_interval() {
        let t = contracted(vec![load(0, 0, [0; 3]), store(1, 0, [0; 3], 0)]);
        let a = infer_intervals(&t);
        assert_eq!(a.regs[0], Interval::new(0.0, 1.0));
        assert!(a.diagnostics.is_empty());
    }

    #[test]
    fn gradient_norm_denominator_is_proven_positive() {
        // (φ(+x) - φ(-x))² + η with φ ∈ [0,1], η = 1e-9: the showcase —
        // dividing by it is proven safe even though the difference spans
        // [-1, 1]. The square correlation is what makes it work.
        let t = contracted(vec![
            load(0, 0, [1, 0, 0]),
            load(0, 0, [-1, 0, 0]),
            TapeOp::Sub(VReg(0), VReg(1)),
            TapeOp::Mul(VReg(2), VReg(2)), // square: ≥ 0
            TapeOp::Const(CF(1e-9)),
            TapeOp::Add(VReg(3), VReg(4)), // ≥ ~1e-9 > 0
            TapeOp::Const(CF(1.0)),
            TapeOp::Div(VReg(6), VReg(5)),
            store(1, 0, [0; 3], 7),
        ]);
        let a = infer_intervals(&t);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert!(
            a.regs[5].lo > 0.0,
            "denominator lower bound {:?}",
            a.regs[5]
        );
    }

    #[test]
    fn unbounded_divisor_is_a_warning_not_error() {
        // Dividing by an uncontracted load: possible zero, so a warning.
        let t = raw_tape(vec![
            TapeOp::Const(CF(1.0)),
            load(0, 0, [0; 3]),
            TapeOp::Div(VReg(0), VReg(1)),
            store(1, 0, [0; 3], 2),
        ]);
        let d = check_intervals(&t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].kind.code(), "interval.div-maybe-zero");
        assert!(!d[0].is_error());
        assert_eq!(d[0].instr, Some(2));
    }

    #[test]
    fn divisor_spanning_zero_from_contract_warns() {
        // φ - 0.5 spans [-0.5, 0.5]: contains zero → warning.
        let t = contracted(vec![
            load(0, 0, [0; 3]),
            TapeOp::Const(CF(0.5)),
            TapeOp::Sub(VReg(0), VReg(1)),
            TapeOp::Const(CF(1.0)),
            TapeOp::Div(VReg(3), VReg(2)),
            store(1, 0, [0; 3], 4),
        ]);
        let d = check_intervals(&t);
        assert!(
            matches!(d[0].kind, DiagKind::IntervalDivMaybeZero { .. }),
            "{d:?}"
        );
    }

    #[test]
    fn provable_zero_denominator_is_an_error() {
        // min(φ, 0) · φ²'s lower... simplest: Mul(φ, 0-const) = {0}.
        let t = contracted(vec![
            load(0, 0, [0; 3]),
            TapeOp::Const(CF(0.0)),
            TapeOp::Mul(VReg(0), VReg(1)), // [0,1]·{0} = {0}
            TapeOp::Const(CF(2.0)),
            TapeOp::Div(VReg(3), VReg(2)),
            store(1, 0, [0; 3], 4),
        ]);
        let d = check_intervals(&t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(matches!(d[0].kind, DiagKind::IntervalDivByZero), "{d:?}");
        assert!(d[0].is_error());
    }

    #[test]
    fn sqrt_of_proven_negative_range_is_an_error() {
        // sqrt(-1 - φ): range [-2, -1], provably negative.
        let t = contracted(vec![
            TapeOp::Const(CF(-1.0)),
            load(0, 0, [0; 3]),
            TapeOp::Sub(VReg(0), VReg(1)),
            TapeOp::Sqrt(VReg(2)),
            store(1, 0, [0; 3], 3),
        ]);
        let d = check_intervals(&t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(matches!(d[0].kind, DiagKind::IntervalSqrtNegative { .. }));
        assert!(d[0].is_error());
    }

    #[test]
    fn sqrt_of_maybe_negative_warns_and_clamps() {
        // sqrt(φ - 0.5): may be negative → warning; result still [0, ~0.71].
        let t = contracted(vec![
            load(0, 0, [0; 3]),
            TapeOp::Const(CF(0.5)),
            TapeOp::Sub(VReg(0), VReg(1)),
            TapeOp::Sqrt(VReg(2)),
            store(1, 0, [0; 3], 3),
        ]);
        let a = infer_intervals(&t);
        assert_eq!(a.diagnostics.len(), 1);
        assert!(matches!(
            a.diagnostics[0].kind,
            DiagKind::IntervalSqrtMaybeNegative { .. }
        ));
        assert!(!a.diagnostics[0].is_error());
        assert!(a.regs[3].lo >= 0.0);
    }

    #[test]
    fn ln_of_nonpositive_range_is_an_error_and_maybe_warns() {
        let t = contracted(vec![
            load(0, 0, [0; 3]),
            TapeOp::Neg(VReg(0)), // [-1, 0]
            TapeOp::Ln(VReg(1)),
            store(1, 0, [0; 3], 2),
        ]);
        let d = check_intervals(&t);
        assert!(matches!(d[0].kind, DiagKind::IntervalLnNonPositive { .. }));
        assert!(d[0].is_error());

        let t = contracted(vec![
            load(0, 0, [0; 3]), // [0, 1] — ln(0) = -inf possible
            TapeOp::Ln(VReg(0)),
            store(1, 0, [0; 3], 1),
        ]);
        let d = check_intervals(&t);
        assert!(
            matches!(d[0].kind, DiagKind::IntervalLnMaybeNonPositive { .. }),
            "{d:?}"
        );
        assert!(!d[0].is_error());
    }

    #[test]
    fn rsqrt_with_eta_floor_is_clean_rsqrt_of_zero_range_warns() {
        // rsqrt(φ² + η): proven positive → clean.
        let t = contracted(vec![
            load(0, 0, [0; 3]),
            TapeOp::Mul(VReg(0), VReg(0)),
            TapeOp::Const(CF(1e-9)),
            TapeOp::Add(VReg(1), VReg(2)),
            TapeOp::RSqrt(VReg(3)),
            store(1, 0, [0; 3], 4),
        ]);
        assert!(check_intervals(&t).is_empty());

        // rsqrt(φ): contains 0 → +Inf reachable, warning.
        let t = contracted(vec![
            load(0, 0, [0; 3]),
            TapeOp::RSqrt(VReg(0)),
            store(1, 0, [0; 3], 1),
        ]);
        let d = check_intervals(&t);
        assert!(
            matches!(d[0].kind, DiagKind::IntervalRsqrtMaybeZero { .. }),
            "{d:?}"
        );
    }

    #[test]
    fn exp_overflow_on_whole_range_is_an_error() {
        // exp([800, 900]) = +Inf everywhere: provable overflow.
        let t = raw_tape(vec![
            TapeOp::Const(CF(800.0)),
            TapeOp::Const(CF(100.0)),
            TapeOp::Add(VReg(0), VReg(1)),
            TapeOp::Exp(VReg(2)),
            store(1, 0, [0; 3], 3),
        ]);
        let d = check_intervals(&t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(matches!(d[0].kind, DiagKind::IntervalOverflowInf { .. }));
        assert!(d[0].is_error());
    }

    #[test]
    fn reachable_overflow_is_a_warning() {
        // x · 1e308 with x ∈ [0, 1e308]-ish: hi endpoint overflows only.
        let t = raw_tape(vec![
            TapeOp::Const(CF(1e308)),
            load(0, 0, [0; 3]),
            TapeOp::Abs(VReg(1)),
            TapeOp::Min(VReg(2), VReg(0)), // [0, 1e308] — bounded
            TapeOp::Mul(VReg(3), VReg(0)),
            store(1, 0, [0; 3], 4),
        ]);
        let d = check_intervals(&t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(matches!(
            d[0].kind,
            DiagKind::IntervalMaybeOverflowInf { .. }
        ));
        assert!(!d[0].is_error());
    }

    #[test]
    fn powf_negative_base_noninteger_exponent_warns() {
        let t = contracted(vec![
            load(0, 0, [0; 3]),
            TapeOp::Const(CF(0.5)),
            TapeOp::Sub(VReg(0), VReg(1)), // [-0.5, 0.5]
            TapeOp::Powf(VReg(2), VReg(1)),
            store(1, 0, [0; 3], 3),
        ]);
        let d = check_intervals(&t);
        assert!(
            matches!(d[0].kind, DiagKind::IntervalPowMaybeUndefined { .. }),
            "{d:?}"
        );
        // Integer constant exponent on the same base: no finding.
        let t = contracted(vec![
            load(0, 0, [0; 3]),
            TapeOp::Const(CF(0.5)),
            TapeOp::Sub(VReg(0), VReg(1)),
            TapeOp::Const(CF(2.0)),
            TapeOp::Powf(VReg(2), VReg(3)),
            store(1, 0, [0; 3], 4),
        ]);
        assert!(check_intervals(&t).is_empty());
    }

    #[test]
    fn rand_seeds_philox_bounds() {
        // Rand ∈ [-1,1]; 0.5·(rand+1) ∈ [0,1]; dividing by (that + 1) is
        // proven safe.
        let t = raw_tape(vec![
            TapeOp::Rand(0),
            TapeOp::Const(CF(1.0)),
            TapeOp::Add(VReg(0), VReg(1)), // [0, 2]
            TapeOp::Const(CF(1.0)),
            TapeOp::Add(VReg(2), VReg(3)), // [1, 3]
            TapeOp::Div(VReg(1), VReg(4)),
            store(1, 0, [0; 3], 5),
        ]);
        assert!(check_intervals(&t).is_empty());
    }

    #[test]
    fn reported_register_does_not_cascade() {
        // One div-maybe-zero; its result feeding a sqrt must not re-fire
        // (the result was demoted to ⊤, and sqrt of ⊤ is silent... ⊤
        // contains negatives — it must NOT warn, that would cascade).
        let t = raw_tape(vec![
            TapeOp::Const(CF(1.0)),
            load(0, 0, [0; 3]),
            TapeOp::Div(VReg(0), VReg(1)),
            store(1, 0, [0; 3], 2),
        ]);
        let d = check_intervals(&t);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn select_joins_branches() {
        let t = contracted(vec![
            load(0, 0, [0; 3]),
            TapeOp::Const(CF(2.0)),
            TapeOp::Const(CF(5.0)),
            TapeOp::CmpSelect {
                op: pf_symbolic::CmpOp::Lt,
                l: VReg(0),
                r: VReg(1),
                t: VReg(1),
                f: VReg(2),
            },
            store(1, 0, [0; 3], 3),
        ]);
        let a = infer_intervals(&t);
        assert_eq!(a.regs[3], Interval::new(2.0, 5.0));
    }
}
