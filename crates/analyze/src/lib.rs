//! pf-analyze — static analysis over kernel tapes.
//!
//! The code-generation pipeline (pf-stencil → pf-ir) manufactures every
//! kernel this project runs; a bug in a lowering or scheduling pass is a
//! bug in *all* the physics at once. This crate proves, per generated
//! tape, the invariants the executors assume instead of trusting them:
//!
//! 1. **SSA well-formedness** ([`ssa::check_ssa`]) — operands defined
//!    before use, no consumption of valueless `Store`/`Fence` registers,
//!    field/param/axis slots in range.
//! 2. **Halo footprint** ([`footprint::check_halo`]) — the exact per-field
//!    load/store offset envelope fits the ghost layers and staggered
//!    padding the grid actually allocates; [`footprint::check_frontier`]
//!    proves the overlapped schedule's interior/frontier split defers
//!    every ghost-reading cell until the halo receives complete.
//! 3. **Intra-sweep hazards** ([`hazard::check_hazards`]) — Jacobi
//!    discipline: no cell of a sweep reads what another cell of the same
//!    sweep writes; split kernel variants store to disjoint sets.
//! 4. **Schedule lints** ([`schedule::check_levels`]) — non-monotone
//!    instruction levels (a GPU reschedule) that silently disable LICM
//!    hoisting on CPU executors.
//! 5. **Value lints** ([`value::check_values`]) — constant-folded division
//!    by zero (0/0 and x/0 distinguished), NaN-producing folds (`sqrt`/`ln`
//!    of negative constants carry dedicated codes), `Rand` without a seeded
//!    Philox stream.
//! 6. **Interval dataflow** ([`interval::check_intervals`]) — forward range
//!    analysis seeded by the per-field contracts on the tape
//!    (`Tape::field_ranges`) and the Philox noise bounds; proves absence of
//!    division by possibly-zero, `ln`/`sqrt`/`powf` of possibly-invalid
//!    arguments, and overflow-to-Inf on *reachable* ranges, not just folded
//!    constants. Provable violations are errors, merely-possible ones
//!    warnings.
//! 7. **Comm-protocol model** ([`protocol`]) — a symbolic per-dimension
//!    model of the halo-exchange script (begin/finish/sweep events) checked
//!    for send/recv pairing, epoch monotonicity, tag uniqueness,
//!    deadlock-freedom and stale-ghost-freedom for *arbitrary* rank counts.
//!    pf-core lifts its overlapped distributed schedule into this model.
//!
//! Findings are typed, source-located [`Diagnostic`]s (the tape is SSA, so
//! an instruction index is a source location), never panics — the seeded
//! violation tests in each pass module hold the passes to that.
//!
//! [`install_pipeline_verifier`] hooks the universally-valid subset (SSA +
//! value lints) into `pf_ir::generate`/scheduling as an on-by-default
//! stage; the context-dependent passes (halo, hazards, split disjointness)
//! need real allocation and sweep information and run over whole kernel
//! sets via [`analyze`] with [`AnalyzeOptions::allocs`] — pf-core drives
//! that for every generated [`KernelSet`](../pf_core) and pf-backend
//! re-proves halo fit against the concrete arrays at launch.

#![forbid(unsafe_code)]

pub mod diag;
pub mod footprint;
pub mod hazard;
pub mod interval;
pub mod protocol;
pub mod schedule;
pub mod ssa;
pub mod value;

pub use diag::{render, DiagKind, Diagnostic, Severity};
pub use footprint::{
    check_frontier, check_halo, frontier_widths, Envelope, FieldAlloc, FieldFootprint, Footprint,
};
pub use hazard::{check_hazards, check_split_disjoint};
pub use interval::{check_intervals, infer_intervals, Interval, IntervalAnalysis};
pub use protocol::{
    all_dim_patterns, check_comm_script, check_protocol, expand_script, CommOp, DimClass,
    ProtoEvent, ProtocolModel,
};
pub use schedule::check_levels;
pub use ssa::check_ssa;
pub use value::check_values;

use pf_ir::{Tape, VerifyStage};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Once;

/// Which passes to run and with what context.
#[derive(Clone, Debug)]
pub struct AnalyzeOptions {
    /// Per-field-slot allocation table; `Some` enables the halo pass.
    pub allocs: Option<Vec<FieldAlloc>>,
    /// Run the intra-sweep hazard pass (off for tapes that are not whole
    /// sweep kernels, e.g. expression fragments).
    pub hazards: bool,
    /// Whether the execution context provides a seeded Philox stream
    /// (disables the `Rand` determinism lint when true).
    pub seeded_rng: bool,
    /// Run the interval dataflow pass (pass 6). Soundness does not depend
    /// on field contracts being present — an uncontracted tape simply
    /// starts loads at ⊤ and only const-driven findings can fire.
    pub intervals: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            allocs: None,
            hazards: true,
            seeded_rng: true,
            intervals: true,
        }
    }
}

/// The result of analyzing one tape: all findings plus the computed
/// footprint (kept even when clean — it feeds halo-width statistics).
#[derive(Clone, Debug)]
pub struct Analysis {
    pub kernel: String,
    pub diagnostics: Vec<Diagnostic>,
    pub footprint: Footprint,
    /// Field names by tape slot (parallel to `footprint.per_field`).
    pub field_names: Vec<String>,
}

impl Analysis {
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }
}

/// Run the full pass suite over one tape.
///
/// SSA runs first; when it reports errors the deeper passes are skipped —
/// their answers are meaningless over a malformed tape and skipping keeps
/// the report at the root cause.
pub fn analyze(tape: &Tape, opts: &AnalyzeOptions) -> Analysis {
    let mut diagnostics = ssa::check_ssa(tape);
    let ssa_clean = !diagnostics.iter().any(|d| d.is_error());
    if ssa_clean {
        if let Some(allocs) = &opts.allocs {
            diagnostics.extend(footprint::check_halo(tape, allocs));
        }
        if opts.hazards {
            diagnostics.extend(hazard::check_hazards(tape));
        }
        diagnostics.extend(schedule::check_levels(tape));
        diagnostics.extend(value::check_values(tape, opts.seeded_rng));
        if opts.intervals {
            // The const lattice is a refinement of the interval domain, so
            // any instruction the value pass already flagged would re-fire
            // here with a coarser message — keep the sharper finding only.
            let flagged: std::collections::BTreeSet<Option<usize>> =
                diagnostics.iter().map(|d| d.instr).collect();
            diagnostics.extend(
                interval::check_intervals(tape)
                    .into_iter()
                    .filter(|d| !flagged.contains(&d.instr)),
            );
        }
    }
    Analysis {
        kernel: tape.name.clone(),
        diagnostics,
        footprint: Footprint::of(tape),
        field_names: tape.fields.iter().map(|f| f.name()).collect(),
    }
}

/// Error-severity findings, rendered. Returned by [`verify`].
#[derive(Clone, Debug)]
pub struct VerifyError {
    pub kernel: String,
    pub errors: Vec<Diagnostic>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel '{}' failed verification ({} error(s)):",
            self.kernel,
            self.errors.len()
        )?;
        write!(f, "{}", render(&self.errors))
    }
}

impl std::error::Error for VerifyError {}

/// [`analyze`] with a pass/fail verdict: `Err` iff any error-severity
/// finding (warnings ride along in the `Ok` analysis).
pub fn verify(tape: &Tape, opts: &AnalyzeOptions) -> Result<Analysis, VerifyError> {
    let a = analyze(tape, opts);
    if a.is_clean() {
        Ok(a)
    } else {
        Err(VerifyError {
            kernel: a.kernel.clone(),
            errors: a.diagnostics.into_iter().filter(|d| d.is_error()).collect(),
        })
    }
}

/// Aggregated result of verifying a whole kernel set.
#[derive(Clone, Debug, Default)]
pub struct SuiteReport {
    pub analyses: Vec<Analysis>,
    /// Cross-kernel findings (e.g. split-group store overlap) that belong
    /// to no single tape's analysis.
    pub group_diagnostics: Vec<Diagnostic>,
}

impl SuiteReport {
    pub fn push(&mut self, a: Analysis) {
        self.analyses.push(a);
    }

    pub fn kernels_verified(&self) -> usize {
        self.analyses.len()
    }

    pub fn error_count(&self) -> usize {
        self.analyses.iter().map(|a| a.error_count()).sum::<usize>()
            + self
                .group_diagnostics
                .iter()
                .filter(|d| d.is_error())
                .count()
    }

    pub fn diagnostic_count(&self) -> usize {
        self.analyses
            .iter()
            .map(|a| a.diagnostics.len())
            .sum::<usize>()
            + self.group_diagnostics.len()
    }

    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Ghost-layer width each *field* (by name) needs across the suite's
    /// kernels — the maximum load reach assuming unpadded storage. This is
    /// the statistic surfaced into BENCH reports: it is what a halo
    /// exchange must provide.
    pub fn halo_widths(&self) -> BTreeMap<String, usize> {
        let mut widths = BTreeMap::new();
        for a in &self.analyses {
            for (slot, fp) in a.footprint.per_field.iter().enumerate() {
                if fp.loads.is_none() {
                    continue;
                }
                let need = a.footprint.required_ghost(slot, [0; 3]);
                let name = a
                    .field_names
                    .get(slot)
                    .cloned()
                    .unwrap_or_else(|| format!("slot{slot}"));
                let e = widths.entry(name).or_insert(0usize);
                *e = (*e).max(need);
            }
        }
        widths
    }

    /// All error-severity findings rendered, or `None` when clean.
    pub fn errors_rendered(&self) -> Option<String> {
        if self.is_clean() {
            return None;
        }
        let errs: Vec<Diagnostic> = self
            .analyses
            .iter()
            .flat_map(|a| a.diagnostics.iter())
            .chain(self.group_diagnostics.iter())
            .filter(|d| d.is_error())
            .cloned()
            .collect();
        Some(render(&errs))
    }

    /// Publish suite statistics through pf-trace (no-ops when tracing is
    /// compiled out): verified-kernel / diagnostic / error counters and a
    /// per-field halo-width gauge.
    pub fn record_trace(&self) {
        pf_trace::counter("analyze.kernels_verified").incr(self.kernels_verified() as u64);
        pf_trace::counter("analyze.diagnostics").incr(self.diagnostic_count() as u64);
        pf_trace::counter("analyze.errors").incr(self.error_count() as u64);
        let licm_lost = self
            .analyses
            .iter()
            .filter(|a| {
                a.diagnostics
                    .iter()
                    .any(|d| matches!(d.kind, DiagKind::NonMonotoneLevels { .. }))
            })
            .count();
        if licm_lost > 0 {
            pf_trace::counter("analyze.licm_disabled").incr(licm_lost as u64);
        }
        for (field, width) in self.halo_widths() {
            pf_trace::gauge(&format!("analyze.halo_width.{field}")).set(width as f64);
        }
    }
}

/// The verifier installed into the pf-ir pipeline. Runs only the passes
/// that hold for *every* well-formed tape regardless of execution context:
/// SSA and value lints. Halo fit and hazard freedom depend on allocation
/// tables and sweep semantics the pipeline does not know (scratch kernels
/// lowered by tests legitimately read and write one field); those run in
/// pf-core's kernel-set verification and pf-backend's launch gate.
fn pipeline_verifier(tape: &Tape, _stage: VerifyStage) -> Result<(), String> {
    pf_trace::counter("analyze.pipeline_checks").incr(1);
    let mut errors = ssa::check_ssa(tape);
    if !errors.iter().any(|d| d.is_error()) {
        errors.extend(value::check_values(tape, true));
        // Interval *errors* are context-free too: they only fire on
        // provable violations, which over contract-free ⊤ loads means
        // const-driven ones — the same class the value pass catches, but
        // through range reasoning (e.g. exp of a provably-huge range).
        errors.extend(interval::check_intervals(tape));
    }
    errors.retain(|d| d.is_error());
    if errors.is_empty() {
        Ok(())
    } else {
        Err(render(&errors))
    }
}

/// Install [`pipeline_verifier`] as pf-ir's post-lowering / post-scheduling
/// verification hook. Idempotent; call from any crate that generates
/// kernels. Verification stays subject to `PF_VERIFY` (see
/// `pf_ir::verify_enabled`).
pub fn install_pipeline_verifier() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| pf_ir::set_verifier(pipeline_verifier));
}

#[cfg(test)]
mod testutil {
    use pf_ir::{ApproxOptions, Tape, TapeOp, VReg};
    use pf_symbolic::Field;
    use std::sync::OnceLock;

    /// Two shared field handles for hand-built test tapes: slot 0 has 3
    /// components, slot 1 has 2 (tests probe comps 0/1 and out-of-range 5).
    fn test_fields() -> [Field; 2] {
        static FIELDS: OnceLock<[Field; 2]> = OnceLock::new();
        *FIELDS.get_or_init(|| [Field::new("ana_a", 3, 3), Field::new("ana_b", 2, 3)])
    }

    /// A raw tape around `instrs` — bypasses `TapeBuilder` so tests can
    /// seed exactly the violations the passes must catch.
    pub fn raw_tape(instrs: Vec<TapeOp>) -> Tape {
        let n = instrs.len();
        Tape {
            name: "test_kernel".into(),
            fields: test_fields().to_vec(),
            params: Vec::new(),
            instrs,
            iter_extent: [0; 3],
            levels: vec![3; n],
            loop_order: [2, 1, 0],
            approx: ApproxOptions::default(),
            field_ranges: Vec::new(),
        }
    }

    pub fn store(field: u16, comp: u16, off: [i16; 3], val_reg: u32) -> TapeOp {
        TapeOp::Store {
            field,
            comp,
            off,
            val: VReg(val_reg),
        }
    }

    pub fn load(field: u16, comp: u16, off: [i16; 3]) -> TapeOp {
        TapeOp::Load { field, comp, off }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::{load, raw_tape, store};

    #[test]
    fn analyze_skips_deep_passes_on_ssa_errors() {
        // Use-before-def AND a hazard: only the SSA finding must surface.
        let t = raw_tape(vec![
            load(0, 0, [0; 3]),
            pf_ir::TapeOp::Add(pf_ir::VReg(0), pf_ir::VReg(9)),
            store(0, 0, [0; 3], 1),
        ]);
        let a = analyze(&t, &AnalyzeOptions::default());
        assert!(!a.is_clean());
        assert!(a
            .diagnostics
            .iter()
            .all(|d| matches!(d.kind, DiagKind::UseBeforeDef { .. })));
    }

    #[test]
    fn verify_splits_errors_from_warnings() {
        // Jacobi violation only: a warning, so verify() passes.
        let t = raw_tape(vec![load(0, 0, [0; 3]), store(0, 1, [0; 3], 0)]);
        let a = verify(&t, &AnalyzeOptions::default()).expect("warnings are not fatal");
        assert_eq!(a.warning_count(), 1);
        assert_eq!(a.error_count(), 0);

        let t = raw_tape(vec![load(0, 0, [-1, 0, 0]), store(0, 0, [0; 3], 0)]);
        let err = verify(&t, &AnalyzeOptions::default()).unwrap_err();
        assert_eq!(err.kernel, "test_kernel");
        assert!(err.to_string().contains("hazard.intra-sweep"), "{err}");
    }

    #[test]
    fn suite_report_aggregates_and_computes_halo_widths() {
        let mut suite = SuiteReport::default();
        let t = raw_tape(vec![
            load(0, 0, [-1, 0, 0]),
            load(0, 0, [1, 0, 0]),
            store(1, 0, [0; 3], 1),
        ]);
        suite.push(analyze(&t, &AnalyzeOptions::default()));
        assert_eq!(suite.kernels_verified(), 1);
        assert!(suite.is_clean());
        assert!(suite.errors_rendered().is_none());
        let widths = suite.halo_widths();
        assert_eq!(widths.get("ana_a"), Some(&1), "{widths:?}");
        assert!(
            !widths.contains_key("ana_b"),
            "store-only field needs no halo"
        );
    }
}
