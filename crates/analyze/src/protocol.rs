//! Pass 7 — static comm-protocol verifier for the overlapped halo
//! exchange.
//!
//! The distributed driver's step schedule is a straight-line script of
//! exchange and sweep events — `begin_exchange`, compute interior,
//! `finish_exchange`, compute frontier — identical on every rank (SPMD).
//! This module lifts that script into a symbolic per-dimension model and
//! proves, at build time, the properties the runtime previously could only
//! assert mid-run:
//!
//! * **send/recv pairing** — every begin is finished exactly once per step
//!   (`protocol.double-begin`, `protocol.unmatched-finish`,
//!   `protocol.dropped-finish`);
//! * **epoch monotonicity & tag uniqueness** — wire tags encode
//!   `(epoch, field, dim, side)`; epochs must be strictly increasing in
//!   schedule order, per-step offsets must fit under the step's epoch
//!   stride, and no two exchanges of one step may share a
//!   `(field_tag, epoch)` pair (`protocol.epoch-regression`,
//!   `protocol.epoch-stride`, `protocol.tag-collision`);
//! * **deadlock-freedom** — see the theorem below
//!   (`protocol.deadlock`, `protocol.phantom-recv`);
//! * **stale-ghost-freedom** — every frontier sweep that reads a field's
//!   ghost layers is dominated by the `finish_exchange` of that field in
//!   the same step (`protocol.stale-ghost`,
//!   `protocol.frontier-before-finish`).
//!
//! # Symbolic rank-independence
//!
//! The protocol's behaviour along a dimension depends only on whether that
//! dimension is *divided* across ranks (more than one rank along it) and
//! whether it is periodic — never on the actual rank count ([`DimClass`]).
//! Undivided dims exchange by local wrap (no messages); divided dims run
//! the same send/recv phase whether split 2 or 2000 ways, because each
//! rank only ever talks to its two axis neighbours. Verifying the script
//! under all 2³ divided-patterns therefore proves the properties for
//! **arbitrary** rank counts and decompositions — it is an exhaustive case
//! split over the protocol's actual degrees of freedom, not an enumeration
//! of ranks.
//!
//! Non-periodic boundary ranks differ from interior ranks only by
//! *skipping matched send/recv pairs* (no neighbour on that side ⇒ neither
//! the send to it nor the receive from it exists). Removing matched pairs
//! cannot introduce a deadlock or an unmatched message, so the interior
//! rank's script is the worst case and is the one verified.
//!
//! # Deadlock-freedom theorem
//!
//! *In an SPMD system where every rank executes the same script of
//! asynchronous (non-blocking) sends and blocking receives, the system is
//! deadlock-free if every receive's matching send strictly precedes it in
//! script order.*
//!
//! Proof sketch (induction on script index): assume all ranks have
//! completed events `0..i`. If event `i` is a send, it is non-blocking and
//! completes. If it is a receive, its matching send has index `< i` on the
//! neighbouring rank's (identical) script, so by hypothesis that send was
//! already posted; the message is available and the receive completes.
//! Hence all ranks complete event `i`, and by induction the whole script. ∎
//!
//! The converse direction is what the checker enforces: a receive whose
//! matching send appears *later* in the script blocks every rank at the
//! receive simultaneously (same script, same index), and none ever reaches
//! the send — a guaranteed all-rank deadlock, not merely a possible one.

use crate::diag::{DiagKind, Diagnostic};
use std::collections::BTreeMap;

/// What the protocol can observe about one grid dimension. The rank count
/// along the dimension never appears: 2 ranks and 2000 ranks run the same
/// per-rank script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DimClass {
    /// More than one rank along this dimension (messages flow); undivided
    /// dims exchange by local wrap-around copies.
    pub divided: bool,
    /// Periodic boundary. Affects only whether boundary ranks skip matched
    /// send/recv pairs — never the worst-case (interior-rank) script.
    pub periodic: bool,
}

/// One event of the per-step schedule script, in schedule order.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtoEvent {
    /// `begin_exchange(field)`: complete undivided dims locally, post the
    /// async sends of the first divided dim. `epoch` is the tag epoch
    /// *relative to the step base* (the runtime adds `step · stride`).
    Begin {
        field: String,
        field_tag: u16,
        epoch: u64,
    },
    /// `finish_exchange(field)`: block on the deferred dim's receives,
    /// then run the remaining dims' phases in order.
    Finish { field: String },
    /// An interior sweep: reads no ghost cells by construction (the
    /// spatial half of that claim is `check_frontier`'s proof; this model
    /// tracks the temporal half).
    Interior { writes: Vec<String> },
    /// A frontier sweep: reads the ghost layers of `ghost_reads`, which
    /// must all be fresh (exchanged and finished this step).
    Frontier {
        ghost_reads: Vec<String>,
        writes: Vec<String>,
    },
    /// A whole-field write outside a sweep (e.g. the simplex projection):
    /// re-stales every rank's ghost copies of the field.
    Write { field: String },
}

/// The symbolic protocol model of one step of a distributed schedule.
#[derive(Clone, Debug)]
pub struct ProtocolModel {
    /// Schedule name, used as the "kernel" of emitted diagnostics.
    pub name: String,
    pub dims: [DimClass; 3],
    /// Epochs consumed per step (`step`'s base epoch is `step · stride`).
    /// Per-step epoch offsets must stay strictly below it; 0 disables the
    /// stride check.
    pub epoch_stride: u64,
    pub events: Vec<ProtoEvent>,
}

/// The message-level expansion of a model: what actually hits the wire,
/// in script order. `epoch` disambiguates multiple exchanges of one field
/// within a step. One op covers both sides of the dimension — an
/// interior rank always posts/awaits the low and high side together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommOp {
    /// Async (non-blocking) sends to both axis neighbours.
    Send {
        field: String,
        dim: usize,
        epoch: u64,
    },
    /// Blocking receives from both axis neighbours.
    Recv {
        field: String,
        dim: usize,
        epoch: u64,
    },
}

/// First divided dimension, or `None` when the whole decomposition is
/// single-rank along every axis (all exchanges are local wraps).
fn first_divided(dims: &[DimClass; 3]) -> Option<usize> {
    dims.iter().position(|d| d.divided)
}

/// Expand the model's begin/finish events into the wire-level script an
/// interior rank executes, mirroring the grid's exchange structure:
/// `begin` posts the first divided dim's sends; `finish` receives that
/// deferred dim, then runs `send; recv` for each remaining divided dim in
/// ascending order (dimension-ordered exchange — later dims see earlier
/// dims' fresh corners). Undivided dims contribute no messages.
pub fn expand_script(model: &ProtocolModel) -> Vec<CommOp> {
    let Some(d0) = first_divided(&model.dims) else {
        return Vec::new();
    };
    let mut script = Vec::new();
    // Epoch of the in-flight exchange per field (pairing errors are the
    // event-level checks' findings; expansion just skips unmatched ops).
    let mut inflight: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in &model.events {
        match ev {
            ProtoEvent::Begin { field, epoch, .. } if inflight.insert(field, *epoch).is_none() => {
                script.push(CommOp::Send {
                    field: field.clone(),
                    dim: d0,
                    epoch: *epoch,
                });
            }
            ProtoEvent::Finish { field } => {
                let Some(epoch) = inflight.remove(field.as_str()) else {
                    continue;
                };
                script.push(CommOp::Recv {
                    field: field.clone(),
                    dim: d0,
                    epoch,
                });
                for (d, class) in model.dims.iter().enumerate().skip(d0 + 1) {
                    if !class.divided {
                        continue;
                    }
                    script.push(CommOp::Send {
                        field: field.clone(),
                        dim: d,
                        epoch,
                    });
                    script.push(CommOp::Recv {
                        field: field.clone(),
                        dim: d,
                        epoch,
                    });
                }
            }
            _ => {}
        }
    }
    script
}

/// Apply the deadlock-freedom theorem to a wire-level script: every
/// blocking `Recv` must be strictly preceded by its matching `Send`.
/// A matching send later in the script is a proven all-rank deadlock; no
/// matching send at all is a phantom receive (hangs until timeout).
pub fn check_comm_script(name: &str, script: &[CommOp]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, op) in script.iter().enumerate() {
        let CommOp::Recv { field, dim, epoch } = op else {
            continue;
        };
        let matches = |s: &CommOp| {
            matches!(s, CommOp::Send { field: f, dim: d, epoch: e }
                if f == field && d == dim && e == epoch)
        };
        if script[..i].iter().any(matches) {
            continue;
        }
        let kind = if script[i..].iter().any(matches) {
            DiagKind::ProtocolDeadlock {
                field: field.clone(),
                dim: *dim,
            }
        } else {
            DiagKind::ProtocolPhantomRecv {
                field: field.clone(),
                dim: *dim,
            }
        };
        out.push(Diagnostic::new(name, Some(i), kind));
    }
    out
}

/// Ghost freshness of one field over the step.
#[derive(Clone, Copy, PartialEq)]
enum Ghost {
    /// Not exchanged this step (or re-staled by a write since).
    Stale,
    /// `begin_exchange` posted, `finish_exchange` not yet reached.
    InFlight,
    /// Receives completed; ghost layers mirror the neighbours' interiors.
    Fresh,
}

/// Run the full protocol suite over one model: event-level pairing, epoch
/// and tag discipline, the stale-ghost state machine, and the wire-level
/// deadlock check on the expanded script. Event-level findings carry the
/// *event* index as their location; wire-level findings the script index.
pub fn check_protocol(model: &ProtocolModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let name = model.name.as_str();

    // --- Event walk: pairing, epochs, tags, ghost freshness -------------
    // (field → (begin event index, epoch)) for in-flight exchanges.
    let mut inflight: BTreeMap<&str, (usize, u64)> = BTreeMap::new();
    let mut ghosts: BTreeMap<&str, Ghost> = BTreeMap::new();
    let mut prev_epoch: Option<u64> = None;
    let mut tags_seen: std::collections::BTreeSet<(u16, u64)> = Default::default();

    for (i, ev) in model.events.iter().enumerate() {
        match ev {
            ProtoEvent::Begin {
                field,
                field_tag,
                epoch,
            } => {
                if inflight.contains_key(field.as_str()) {
                    out.push(Diagnostic::new(
                        name,
                        Some(i),
                        DiagKind::ProtocolDoubleBegin {
                            field: field.clone(),
                        },
                    ));
                } else {
                    inflight.insert(field, (i, *epoch));
                    ghosts.insert(field, Ghost::InFlight);
                }
                if let Some(prev) = prev_epoch {
                    if *epoch <= prev {
                        out.push(Diagnostic::new(
                            name,
                            Some(i),
                            DiagKind::ProtocolEpochRegression { prev, next: *epoch },
                        ));
                    }
                }
                prev_epoch = Some(*epoch);
                if model.epoch_stride > 0 && *epoch >= model.epoch_stride {
                    out.push(Diagnostic::new(
                        name,
                        Some(i),
                        DiagKind::ProtocolEpochStrideOverflow {
                            epoch_off: *epoch,
                            stride: model.epoch_stride,
                        },
                    ));
                }
                if !tags_seen.insert((*field_tag, *epoch)) {
                    out.push(Diagnostic::new(
                        name,
                        Some(i),
                        DiagKind::ProtocolTagCollision {
                            field: field.clone(),
                            epoch_off: *epoch,
                        },
                    ));
                }
            }
            ProtoEvent::Finish { field } => {
                if inflight.remove(field.as_str()).is_none() {
                    out.push(Diagnostic::new(
                        name,
                        Some(i),
                        DiagKind::ProtocolUnmatchedFinish {
                            field: field.clone(),
                        },
                    ));
                } else {
                    ghosts.insert(field, Ghost::Fresh);
                }
            }
            ProtoEvent::Interior { writes } => {
                for w in writes {
                    ghosts.insert(w, Ghost::Stale);
                }
            }
            ProtoEvent::Frontier {
                ghost_reads,
                writes,
            } => {
                for r in ghost_reads {
                    match ghosts.get(r.as_str()).copied().unwrap_or(Ghost::Stale) {
                        Ghost::Fresh => {}
                        Ghost::InFlight => out.push(Diagnostic::new(
                            name,
                            Some(i),
                            DiagKind::ProtocolFrontierBeforeFinish { field: r.clone() },
                        )),
                        Ghost::Stale => out.push(Diagnostic::new(
                            name,
                            Some(i),
                            DiagKind::ProtocolStaleGhost { field: r.clone() },
                        )),
                    }
                }
                for w in writes {
                    ghosts.insert(w, Ghost::Stale);
                }
            }
            ProtoEvent::Write { field } => {
                ghosts.insert(field, Ghost::Stale);
            }
        }
    }
    for (field, (begin_idx, _)) in inflight {
        out.push(Diagnostic::new(
            name,
            Some(begin_idx),
            DiagKind::ProtocolDroppedFinish {
                field: field.to_owned(),
            },
        ));
    }

    // --- Wire level: deadlock-freedom of the expanded script ------------
    out.extend(check_comm_script(name, &expand_script(model)));
    out
}

/// All 2³ divided-patterns. Checking a schedule under each proves its
/// protocol properties for any rank count (see the module docs); the
/// periodic flags are fixed `true` — the worst case, since non-periodic
/// only removes matched pairs.
pub fn all_dim_patterns() -> Vec<[DimClass; 3]> {
    (0u8..8)
        .map(|bits| {
            [0, 1, 2].map(|d| DimClass {
                divided: bits & (1 << d) != 0,
                periodic: true,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn div(divided: [bool; 3]) -> [DimClass; 3] {
        divided.map(|divided| DimClass {
            divided,
            periodic: true,
        })
    }

    fn begin(field: &str, tag: u16, epoch: u64) -> ProtoEvent {
        ProtoEvent::Begin {
            field: field.into(),
            field_tag: tag,
            epoch,
        }
    }

    fn finish(field: &str) -> ProtoEvent {
        ProtoEvent::Finish {
            field: field.into(),
        }
    }

    fn frontier(reads: &[&str], writes: &[&str]) -> ProtoEvent {
        ProtoEvent::Frontier {
            ghost_reads: reads.iter().map(|s| s.to_string()).collect(),
            writes: writes.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn model(dims: [DimClass; 3], events: Vec<ProtoEvent>) -> ProtocolModel {
        ProtocolModel {
            name: "test_step".into(),
            dims,
            epoch_stride: 4,
            events,
        }
    }

    /// The shape of the real overlapped step: two exchanges overlapping
    /// the interior sweep, frontier after both finishes.
    fn sound_events() -> Vec<ProtoEvent> {
        vec![
            begin("phi", 0, 0),
            begin("mu", 1, 1),
            ProtoEvent::Interior {
                writes: vec!["out".into()],
            },
            finish("phi"),
            finish("mu"),
            frontier(&["phi", "mu"], &["out"]),
        ]
    }

    #[test]
    fn sound_schedule_is_clean_under_every_divided_pattern() {
        for dims in all_dim_patterns() {
            let d = check_protocol(&model(dims, sound_events()));
            assert!(d.is_empty(), "{dims:?}: {}", crate::render(&d));
        }
    }

    #[test]
    fn expansion_is_dimension_ordered_and_recv_follows_send() {
        let m = model(div([true, false, true]), sound_events());
        let script = expand_script(&m);
        // phi: send d0 (at begin) … recv d0, send d2, recv d2 (at finish).
        let phi: Vec<&CommOp> = script
            .iter()
            .filter(|op| match op {
                CommOp::Send { field, .. } | CommOp::Recv { field, .. } => field == "phi",
            })
            .collect();
        assert_eq!(phi.len(), 4, "{script:?}");
        assert!(matches!(phi[0], CommOp::Send { dim: 0, .. }));
        assert!(matches!(phi[1], CommOp::Recv { dim: 0, .. }));
        assert!(matches!(phi[2], CommOp::Send { dim: 2, .. }));
        assert!(matches!(phi[3], CommOp::Recv { dim: 2, .. }));
        // Undivided everywhere: no wire traffic at all.
        assert!(expand_script(&model(div([false; 3]), sound_events())).is_empty());
    }

    #[test]
    fn recv_before_matching_send_is_a_deadlock() {
        // The theorem's converse, on a raw wire script (the well-formed
        // expansion can never produce this — a mutated exchange could).
        let script = vec![
            CommOp::Recv {
                field: "phi".into(),
                dim: 0,
                epoch: 0,
            },
            CommOp::Send {
                field: "phi".into(),
                dim: 0,
                epoch: 0,
            },
        ];
        let d = check_comm_script("swapped", &script);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(matches!(
            d[0].kind,
            DiagKind::ProtocolDeadlock { dim: 0, .. }
        ));
        assert!(d[0].is_error());
    }

    #[test]
    fn recv_with_no_send_anywhere_is_phantom() {
        let script = vec![CommOp::Recv {
            field: "mu".into(),
            dim: 1,
            epoch: 2,
        }];
        let d = check_comm_script("orphan", &script);
        assert!(matches!(
            d[0].kind,
            DiagKind::ProtocolPhantomRecv { dim: 1, .. }
        ));
    }

    #[test]
    fn double_begin_and_unmatched_finish_are_flagged() {
        let d = check_protocol(&model(
            div([true, true, true]),
            vec![begin("phi", 0, 0), begin("phi", 0, 1), finish("phi")],
        ));
        assert!(
            d.iter()
                .any(|d| matches!(d.kind, DiagKind::ProtocolDoubleBegin { .. })),
            "{}",
            crate::render(&d)
        );

        let d = check_protocol(&model(div([true; 3]), vec![finish("mu")]));
        assert!(matches!(
            d[0].kind,
            DiagKind::ProtocolUnmatchedFinish { .. }
        ));
    }

    #[test]
    fn dropped_finish_is_located_at_the_begin() {
        let d = check_protocol(&model(
            div([true; 3]),
            vec![begin("phi", 0, 0), frontier(&[], &[])],
        ));
        assert_eq!(d.len(), 1, "{}", crate::render(&d));
        assert!(matches!(d[0].kind, DiagKind::ProtocolDroppedFinish { .. }));
        assert_eq!(d[0].instr, Some(0));
    }

    #[test]
    fn epoch_discipline_is_enforced() {
        // Regression: epoch 1 then epoch 0.
        let d = check_protocol(&model(
            div([true; 3]),
            vec![
                begin("phi", 0, 1),
                begin("mu", 1, 0),
                finish("phi"),
                finish("mu"),
            ],
        ));
        assert!(
            d.iter().any(|d| matches!(
                d.kind,
                DiagKind::ProtocolEpochRegression { prev: 1, next: 0 }
            )),
            "{}",
            crate::render(&d)
        );

        // Stride overflow: offset 4 with stride 4 collides with step+1.
        let d = check_protocol(&model(
            div([true; 3]),
            vec![begin("phi", 0, 4), finish("phi")],
        ));
        assert!(d.iter().any(|d| matches!(
            d.kind,
            DiagKind::ProtocolEpochStrideOverflow {
                epoch_off: 4,
                stride: 4
            }
        )));
    }

    #[test]
    fn shared_field_tag_and_epoch_collide() {
        let d = check_protocol(&model(
            div([true; 3]),
            vec![
                begin("phi", 3, 2),
                finish("phi"),
                begin("mu", 3, 2),
                finish("mu"),
            ],
        ));
        assert!(
            d.iter()
                .any(|d| matches!(d.kind, DiagKind::ProtocolTagCollision { epoch_off: 2, .. })),
            "{}",
            crate::render(&d)
        );
    }

    #[test]
    fn frontier_before_finish_and_stale_ghost_are_distinguished() {
        // Reading mid-flight: begun but not finished.
        let d = check_protocol(&model(
            div([true; 3]),
            vec![begin("phi", 0, 0), frontier(&["phi"], &[]), finish("phi")],
        ));
        assert!(
            d.iter()
                .any(|d| matches!(d.kind, DiagKind::ProtocolFrontierBeforeFinish { .. })),
            "{}",
            crate::render(&d)
        );

        // Never exchanged at all.
        let d = check_protocol(&model(div([true; 3]), vec![frontier(&["mu"], &[])]));
        assert!(matches!(d[0].kind, DiagKind::ProtocolStaleGhost { .. }));
        assert!(d[0].is_error());
    }

    #[test]
    fn writes_re_stale_ghosts() {
        // Exchange phi, then overwrite it (projection), then read its
        // ghosts: stale again — the second exchange is required.
        let d = check_protocol(&model(
            div([true; 3]),
            vec![
                begin("phi", 0, 0),
                finish("phi"),
                ProtoEvent::Write {
                    field: "phi".into(),
                },
                frontier(&["phi"], &[]),
            ],
        ));
        assert!(
            d.iter()
                .any(|d| matches!(d.kind, DiagKind::ProtocolStaleGhost { .. })),
            "{}",
            crate::render(&d)
        );

        // …and the re-exchange clears it.
        let d = check_protocol(&model(
            div([true; 3]),
            vec![
                begin("phi", 0, 0),
                finish("phi"),
                ProtoEvent::Write {
                    field: "phi".into(),
                },
                begin("phi", 0, 1),
                finish("phi"),
                frontier(&["phi"], &[]),
            ],
        ));
        assert!(d.is_empty(), "{}", crate::render(&d));
    }

    #[test]
    fn all_dim_patterns_covers_the_cube() {
        let pats = all_dim_patterns();
        assert_eq!(pats.len(), 8);
        let distinct: std::collections::BTreeSet<[bool; 3]> =
            pats.iter().map(|p| p.map(|d| d.divided)).collect();
        assert_eq!(distinct.len(), 8);
    }
}
