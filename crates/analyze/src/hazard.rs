//! Pass 3 — intra-sweep hazard detection.
//!
//! A tape is executed once per cell of a sweep, in an order the executor
//! is free to choose (serial loop, rayon-parallel outer loop, GPU grid).
//! Jacobi discipline — no cell may read what another cell of the *same*
//! sweep writes — is what makes every order equivalent. The race detector
//! flags any (store, load) pair on the same (field, component) whose
//! offsets differ: cell `c` writes `c + store_off` while cell
//! `c + store_off - load_off` reads the same address. Split kernel groups
//! additionally must touch pairwise-disjoint store sets, the condition for
//! fusing them into one sweep.

use crate::diag::{DiagKind, Diagnostic};
use pf_ir::{Tape, TapeOp};
use std::collections::BTreeSet;

/// Detect write/read races and Jacobi-discipline violations inside one
/// kernel's sweep.
pub fn check_hazards(tape: &Tape) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let diag = |i: usize, kind: DiagKind| Diagnostic::new(&tape.name, Some(i), kind);

    let stores: Vec<(usize, u16, u16, [i16; 3])> = tape
        .instrs
        .iter()
        .enumerate()
        .filter_map(|(i, op)| match *op {
            TapeOp::Store {
                field, comp, off, ..
            } => Some((i, field, comp, off)),
            _ => None,
        })
        .collect();
    let loads: Vec<(usize, u16, u16, [i16; 3])> = tape
        .instrs
        .iter()
        .enumerate()
        .filter_map(|(i, op)| match *op {
            TapeOp::Load { field, comp, off } => Some((i, field, comp, off)),
            _ => None,
        })
        .collect();

    let name_of = |slot: u16| {
        tape.fields
            .get(slot as usize)
            .map(|f| f.name())
            .unwrap_or_else(|| format!("slot{slot}"))
    };

    // Write/read races and same-cell read-after-write.
    let mut reported_pairs = BTreeSet::new();
    let mut raced: BTreeSet<u16> = BTreeSet::new();
    for &(si, sf, sc, soff) in &stores {
        for &(li, lf, lc, loff) in &loads {
            if sf != lf || sc != lc {
                continue;
            }
            if soff != loff {
                // Distinct offsets on the same component: some pair of
                // sweep cells collides on one address.
                raced.insert(sf);
                if reported_pairs.insert((sf, sc, soff, loff)) {
                    out.push(diag(
                        si,
                        DiagKind::IntraSweepHazard {
                            field: name_of(sf),
                            comp: sc,
                            store_off: soff,
                            load_off: loff,
                        },
                    ));
                }
            } else if li > si {
                // Same cell, load after store: reads mutated memory, not
                // the SSA value.
                raced.insert(sf);
                out.push(diag(
                    li,
                    DiagKind::StoreThenLoad {
                        field: name_of(sf),
                        comp: sc,
                        off: soff,
                    },
                ));
            }
        }
    }

    // Field-granularity Jacobi discipline: the executor refuses any kernel
    // that reads and writes the same field, even on disjoint components.
    // Only warn when no hard race was already reported for the field.
    let written: BTreeSet<u16> = stores.iter().map(|&(_, f, _, _)| f).collect();
    let read: BTreeSet<u16> = loads.iter().map(|&(_, f, _, _)| f).collect();
    for &f in written.intersection(&read) {
        if !raced.contains(&f) {
            let i = stores.iter().find(|s| s.1 == f).map(|s| s.0);
            out.push(Diagnostic::new(
                &tape.name,
                i,
                DiagKind::JacobiViolation { field: name_of(f) },
            ));
        }
    }

    // Duplicate stores to the identical target (deterministic, but almost
    // always an authoring bug).
    let mut seen = BTreeSet::new();
    for &(i, f, c, off) in &stores {
        if !seen.insert((f, c, off)) {
            out.push(diag(
                i,
                DiagKind::DuplicateStore {
                    field: name_of(f),
                    comp: c,
                    off,
                },
            ));
        }
    }
    out
}

/// Validate that the kernels of a split group write pairwise-disjoint
/// (field, component) sets — the precondition for fusing the group into a
/// single sweep. Diagnostics are attributed to the later kernel of each
/// overlapping pair.
pub fn check_split_disjoint(tapes: &[&Tape]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let store_set = |t: &Tape| -> BTreeSet<(String, u16)> {
        t.instrs
            .iter()
            .filter_map(|op| match *op {
                TapeOp::Store { field, comp, .. } => {
                    t.fields.get(field as usize).map(|f| (f.name(), comp))
                }
                _ => None,
            })
            .collect()
    };
    let sets: Vec<BTreeSet<(String, u16)>> = tapes.iter().map(|t| store_set(t)).collect();
    for a in 0..tapes.len() {
        for b in a + 1..tapes.len() {
            for (field, comp) in sets[a].intersection(&sets[b]) {
                out.push(Diagnostic::new(
                    &tapes[b].name,
                    None,
                    DiagKind::OverlappingSplitStores {
                        other_kernel: tapes[a].name.clone(),
                        field: field.clone(),
                        comp: *comp,
                    },
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{load, raw_tape, store};

    #[test]
    fn jacobi_kernel_is_clean() {
        // Reads field 0, writes field 1 — the canonical sweep shape.
        let t = raw_tape(vec![
            load(0, 0, [-1, 0, 0]),
            load(0, 0, [1, 0, 0]),
            store(1, 0, [0, 0, 0], 1),
        ]);
        assert!(check_hazards(&t).is_empty());
    }

    #[test]
    fn write_read_offset_mismatch_is_a_race() {
        // Cell c stores (0, comp0, c) while cell c+1 loads (0, comp0, c).
        let t = raw_tape(vec![load(0, 0, [-1, 0, 0]), store(0, 0, [0, 0, 0], 0)]);
        let d = check_hazards(&t);
        assert!(
            d.iter().any(|d| matches!(
                d.kind,
                DiagKind::IntraSweepHazard {
                    store_off: [0, 0, 0],
                    load_off: [-1, 0, 0],
                    ..
                }
            )),
            "{d:?}"
        );
    }

    #[test]
    fn store_then_load_of_same_cell_is_flagged() {
        let t = raw_tape(vec![
            load(1, 0, [0, 0, 0]),
            store(0, 0, [0, 0, 0], 0),
            load(0, 0, [0, 0, 0]),
            store(1, 1, [0, 0, 0], 2),
        ]);
        let d = check_hazards(&t);
        assert!(
            d.iter()
                .any(|d| matches!(d.kind, DiagKind::StoreThenLoad { .. }) && d.instr == Some(2)),
            "{d:?}"
        );
    }

    #[test]
    fn load_before_store_of_same_cell_is_only_a_jacobi_warning() {
        let t = raw_tape(vec![load(0, 0, [0, 0, 0]), store(0, 0, [0, 0, 0], 0)]);
        let d = check_hazards(&t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(matches!(d[0].kind, DiagKind::JacobiViolation { .. }));
        assert!(!d[0].is_error());
    }

    #[test]
    fn duplicate_store_warns() {
        let t = raw_tape(vec![store(0, 0, [0, 0, 0], 0), store(0, 0, [0, 0, 0], 0)]);
        let d = check_hazards(&t);
        assert!(d
            .iter()
            .any(|d| matches!(d.kind, DiagKind::DuplicateStore { .. }) && d.instr == Some(1)));
    }

    #[test]
    fn split_groups_must_store_disjointly() {
        let a = raw_tape(vec![store(0, 0, [0, 0, 0], 0)]);
        let mut b = raw_tape(vec![store(0, 0, [0, 0, 0], 0)]);
        b.name = "b".into();
        let mut c = raw_tape(vec![store(0, 1, [0, 0, 0], 0)]);
        c.name = "c".into();
        assert!(check_split_disjoint(&[&a, &c]).is_empty());
        let d = check_split_disjoint(&[&a, &b]);
        assert!(
            d.iter()
                .any(|d| matches!(d.kind, DiagKind::OverlappingSplitStores { .. })),
            "{d:?}"
        );
    }
}
