//! Pass 4 — value lints: constant propagation over the tape.
//!
//! A forward dataflow over the SSA tape with a two-point lattice per
//! register (known constant / unknown). Division by a denominator that
//! folds to exactly zero and any operation whose known operands fold to
//! NaN are errors — in a per-cell kernel either poisons the whole field in
//! one sweep. A determinism lint flags `Rand` ops when the kernel is
//! declared to run without a seeded Philox stream (the expression-level
//! interpreter substitutes 0.0 there, silently changing the physics).
//!
//! To keep reports at the fault origin, a register that was just reported
//! is demoted to *unknown* so downstream consumers of the poisoned value
//! do not re-fire.

use crate::diag::{DiagKind, Diagnostic};
use pf_ir::{Tape, TapeOp};

#[derive(Clone, Copy, PartialEq)]
enum Val {
    Unknown,
    Known(f64),
}

impl Val {
    fn get(self) -> Option<f64> {
        match self {
            Val::Known(v) => Some(v),
            Val::Unknown => None,
        }
    }
}

/// Run the value lints. `seeded_rng` declares whether the kernel will be
/// executed with a seeded Philox stream (the native executor always is;
/// expression-interpreter contexts typically are not).
pub fn check_values(tape: &Tape, seeded_rng: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = tape.instrs.len();
    let mut vals: Vec<Val> = Vec::with_capacity(n);

    for (i, op) in tape.instrs.iter().enumerate() {
        // Out-of-range argument registers (an SSA-pass error) read as
        // unknown so this pass stays total on malformed tapes.
        let arg =
            |r: pf_ir::VReg| -> Val { vals.get(r.0 as usize).copied().unwrap_or(Val::Unknown) };
        let bin = |a: pf_ir::VReg, b: pf_ir::VReg, f: fn(f64, f64) -> f64| -> Val {
            match (arg(a).get(), arg(b).get()) {
                (Some(x), Some(y)) => Val::Known(f(x, y)),
                _ => Val::Unknown,
            }
        };
        let un = |a: pf_ir::VReg, f: fn(f64) -> f64| -> Val {
            match arg(a).get() {
                Some(x) => Val::Known(f(x)),
                None => Val::Unknown,
            }
        };

        let mut v = match *op {
            TapeOp::Const(c) => Val::Known(c.0),
            TapeOp::Rand(lane) => {
                if !seeded_rng {
                    out.push(Diagnostic::new(
                        &tape.name,
                        Some(i),
                        DiagKind::UnseededRand { lane },
                    ));
                }
                Val::Unknown
            }
            TapeOp::Add(a, b) => bin(a, b, |x, y| x + y),
            TapeOp::Sub(a, b) => bin(a, b, |x, y| x - y),
            TapeOp::Mul(a, b) => bin(a, b, |x, y| x * y),
            TapeOp::Div(a, b) => {
                if arg(b).get() == Some(0.0) {
                    // 0/0 folds to NaN, x/0 to ±Inf — distinct findings so
                    // the fix hint differs (indeterminate form vs pole).
                    let kind = if arg(a).get() == Some(0.0) {
                        DiagKind::ZeroOverZeroConst
                    } else {
                        DiagKind::DivByZeroConst
                    };
                    out.push(Diagnostic::new(&tape.name, Some(i), kind));
                    Val::Unknown // reported at the origin; do not cascade
                } else {
                    bin(a, b, |x, y| x / y)
                }
            }
            TapeOp::Neg(a) => un(a, |x| -x),
            TapeOp::Sqrt(a) | TapeOp::RSqrt(a) if arg(a).get().is_some_and(|x| x < 0.0) => {
                out.push(Diagnostic::new(
                    &tape.name,
                    Some(i),
                    DiagKind::SqrtNegativeConst {
                        value: arg(a).get().unwrap(),
                    },
                ));
                Val::Unknown
            }
            TapeOp::Sqrt(a) => un(a, f64::sqrt),
            TapeOp::RSqrt(a) => un(a, |x| 1.0 / x.sqrt()),
            TapeOp::Abs(a) => un(a, f64::abs),
            TapeOp::Min(a, b) => bin(a, b, f64::min),
            TapeOp::Max(a, b) => bin(a, b, f64::max),
            TapeOp::Exp(a) => un(a, f64::exp),
            // ln of a *negative* constant is NaN — flagged with its own
            // code. ln(0) = -Inf stays clean here (a pole, not an
            // indeterminate form; the interval pass judges reachability).
            TapeOp::Ln(a) if arg(a).get().is_some_and(|x| x < 0.0) => {
                out.push(Diagnostic::new(
                    &tape.name,
                    Some(i),
                    DiagKind::LnNegativeConst {
                        value: arg(a).get().unwrap(),
                    },
                ));
                Val::Unknown
            }
            TapeOp::Ln(a) => un(a, f64::ln),
            TapeOp::Sin(a) => un(a, f64::sin),
            TapeOp::Cos(a) => un(a, f64::cos),
            TapeOp::Tanh(a) => un(a, f64::tanh),
            TapeOp::Sign(a) => un(a, f64::signum),
            TapeOp::Floor(a) => un(a, f64::floor),
            TapeOp::Powf(a, b) => bin(a, b, f64::powf),
            TapeOp::CmpSelect { op, l, r, t, f } => match (arg(l).get(), arg(r).get()) {
                (Some(x), Some(y)) => {
                    if op.eval(x, y) {
                        arg(t)
                    } else {
                        arg(f)
                    }
                }
                _ => Val::Unknown,
            },
            TapeOp::Param(_)
            | TapeOp::Load { .. }
            | TapeOp::Coord(_)
            | TapeOp::Time
            | TapeOp::CellIdx(_)
            | TapeOp::Store { .. }
            | TapeOp::Fence => Val::Unknown,
        };

        // A known NaN born at this instruction (from non-NaN inputs, since
        // reported registers are demoted to unknown) is the fault origin.
        if let Val::Known(x) = v {
            if x.is_nan() {
                let desc = match *op {
                    TapeOp::Const(_) => "literal NaN constant".to_string(),
                    _ => format!("{op:?} over constant-folded operands"),
                };
                out.push(Diagnostic::new(
                    &tape.name,
                    Some(i),
                    DiagKind::NanConst { value_desc: desc },
                ));
                v = Val::Unknown;
            }
        }
        vals.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{load, raw_tape, store};
    use pf_ir::{TapeOp, VReg, CF};

    #[test]
    fn clean_arithmetic_has_no_findings() {
        let t = raw_tape(vec![
            load(0, 0, [0; 3]),
            TapeOp::Const(CF(2.0)),
            TapeOp::Div(VReg(0), VReg(1)),
            store(1, 0, [0; 3], 2),
        ]);
        assert!(check_values(&t, true).is_empty());
    }

    #[test]
    fn division_by_folded_zero_is_an_error() {
        // 3 - 3 folds to 0; x / 0 must be flagged at the Div.
        let t = raw_tape(vec![
            load(0, 0, [0; 3]),
            TapeOp::Const(CF(3.0)),
            TapeOp::Sub(VReg(1), VReg(1)),
            TapeOp::Div(VReg(0), VReg(2)),
            store(1, 0, [0; 3], 3),
        ]);
        let d = check_values(&t, true);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(matches!(d[0].kind, DiagKind::DivByZeroConst));
        assert_eq!(d[0].instr, Some(3));
        assert!(d[0].is_error());
    }

    #[test]
    fn nan_producing_fold_reports_origin_only_once() {
        // sqrt(-1) is NaN — flagged with its dedicated code at the origin;
        // NaN + x must not re-fire downstream.
        let t = raw_tape(vec![
            TapeOp::Const(CF(-1.0)),
            TapeOp::Sqrt(VReg(0)),
            TapeOp::Const(CF(2.0)),
            TapeOp::Add(VReg(1), VReg(2)),
            store(0, 0, [0; 3], 3),
        ]);
        let d = check_values(&t, true);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(matches!(
            d[0].kind,
            DiagKind::SqrtNegativeConst { value } if value == -1.0
        ));
        assert_eq!(d[0].instr, Some(1));
        assert!(d[0].is_error());
    }

    #[test]
    fn zero_over_zero_fold_has_its_own_code() {
        // (3-3) / (2-2): indeterminate form, distinct from the x/0 pole.
        let t = raw_tape(vec![
            TapeOp::Const(CF(3.0)),
            TapeOp::Sub(VReg(0), VReg(0)),
            TapeOp::Const(CF(2.0)),
            TapeOp::Sub(VReg(2), VReg(2)),
            TapeOp::Div(VReg(1), VReg(3)),
            store(1, 0, [0; 3], 4),
        ]);
        let d = check_values(&t, true);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(matches!(d[0].kind, DiagKind::ZeroOverZeroConst));
        assert_eq!(d[0].kind.code(), "value.zero-over-zero");
        assert_eq!(d[0].instr, Some(4));
        assert!(d[0].is_error());
    }

    #[test]
    fn rsqrt_of_negative_constant_is_flagged() {
        let t = raw_tape(vec![
            TapeOp::Const(CF(-4.0)),
            TapeOp::RSqrt(VReg(0)),
            store(0, 0, [0; 3], 1),
        ]);
        let d = check_values(&t, true);
        assert!(
            matches!(d[0].kind, DiagKind::SqrtNegativeConst { value } if value == -4.0),
            "{d:?}"
        );
    }

    #[test]
    fn ln_of_negative_constant_is_an_error_but_ln_zero_is_not() {
        let t = raw_tape(vec![
            TapeOp::Const(CF(-0.5)),
            TapeOp::Ln(VReg(0)),
            store(0, 0, [0; 3], 1),
        ]);
        let d = check_values(&t, true);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(matches!(
            d[0].kind,
            DiagKind::LnNegativeConst { value } if value == -0.5
        ));
        assert_eq!(d[0].kind.code(), "value.ln-negative");
        assert!(d[0].is_error());

        // ln(0) = -Inf: a pole, not NaN — the const pass stays silent.
        let t = raw_tape(vec![
            TapeOp::Const(CF(0.0)),
            TapeOp::Ln(VReg(0)),
            store(0, 0, [0; 3], 1),
        ]);
        assert!(check_values(&t, true).is_empty());
    }

    #[test]
    fn literal_nan_constant_is_flagged() {
        let t = raw_tape(vec![TapeOp::Const(CF(f64::NAN)), store(0, 0, [0; 3], 0)]);
        let d = check_values(&t, true);
        assert!(matches!(d[0].kind, DiagKind::NanConst { .. }), "{d:?}");
    }

    #[test]
    fn unseeded_rand_is_a_determinism_warning() {
        let t = raw_tape(vec![TapeOp::Rand(2), store(0, 0, [0; 3], 0)]);
        assert!(check_values(&t, true).is_empty());
        let d = check_values(&t, false);
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0].kind, DiagKind::UnseededRand { lane: 2 }));
        assert!(!d[0].is_error());
    }

    #[test]
    fn select_folds_through_known_comparisons() {
        // CmpSelect picking the NaN branch on known operands is caught.
        let t = raw_tape(vec![
            TapeOp::Const(CF(1.0)),
            TapeOp::Const(CF(2.0)),
            TapeOp::Const(CF(0.0)),
            TapeOp::Ln(VReg(2)), // ln(0) = -inf: fine, not NaN
            TapeOp::CmpSelect {
                op: pf_symbolic::CmpOp::Lt,
                l: VReg(0),
                r: VReg(1),
                t: VReg(3),
                f: VReg(0),
            },
            store(0, 0, [0; 3], 4),
        ]);
        assert!(check_values(&t, true).is_empty());
    }
}
