//! Typed, source-located diagnostics.
//!
//! Every pass reports findings as [`Diagnostic`] values: a kernel name, the
//! offending instruction index (the tape is SSA, so an instruction index
//! *is* a source location), and a typed [`DiagKind`] carrying the facts the
//! pass proved. Rendering is rustc-flavoured:
//!
//! ```text
//! error[halo.load-overflow] kernel 'mu_full' @ instr 41: load of field
//! 'phi_src' reaches 2 cells past the interior along dim 0 but only 1
//! layer (ghost 1 + pad 0) is allocated
//! ```

use std::fmt;

/// How bad a finding is. `Error`s fail verification (and, when the pipeline
/// verifier is installed, abort kernel generation); `Warning`s are
/// surfaced through statistics but never fatal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The typed payload of one finding. Field identities are carried as names
/// (the interned `Field` handles are process-global; names read better in
/// test assertions and rendered output).
#[derive(Clone, Debug, PartialEq)]
pub enum DiagKind {
    // --- SSA well-formedness -------------------------------------------
    /// An operand register is defined at or after its use.
    UseBeforeDef { reg: u32 },
    /// An operand register names a `Store` or `Fence`, which produce no
    /// value.
    ConsumedNonValue { reg: u32 },
    /// `Load`/`Store` field slot outside the tape's field table.
    FieldSlotOutOfRange { slot: u16 },
    /// `Load`/`Store` component outside the field's component count.
    ComponentOutOfRange { field: String, comp: u16 },
    /// `Param` slot outside the tape's parameter table.
    ParamSlotOutOfRange { slot: u16 },
    /// `Coord`/`CellIdx`/`Rand` axis or lane argument out of range.
    AxisOutOfRange { axis: u8 },
    /// `levels` metadata does not cover the instruction list.
    LevelsLengthMismatch { levels: usize, instrs: usize },
    /// A non-empty tape without a single store computes nothing.
    NoStores,

    // --- Halo footprint ------------------------------------------------
    /// The per-slot allocation table handed to `check_halo` does not match
    /// the tape's field table.
    AllocTableMismatch { allocs: usize, fields: usize },
    /// A load or store reaches below the allocated ghost layers.
    HaloUnderflow {
        field: String,
        dim: usize,
        offset: i64,
        ghost: usize,
        is_store: bool,
    },
    /// A load or store reaches past interior + pad + ghost along a
    /// dimension (offset plus the kernel's extended iteration range).
    HaloOverflow {
        field: String,
        dim: usize,
        reach: i64,
        avail: i64,
        is_store: bool,
    },
    /// The overlapped schedule's interior/frontier split is unsound: an
    /// interior cell would read a ghost layer of a halo-exchanged field
    /// before the receive completes. The frontier shell on the given side
    /// must be at least `needed` cells wide but is only `given`.
    FrontierTooNarrow {
        field: String,
        dim: usize,
        /// `true`: the upper (high-index) shell; `false`: the lower one.
        upper: bool,
        needed: i64,
        given: i64,
    },

    // --- Intra-sweep hazards -------------------------------------------
    /// A cell of the sweep writes an offset another cell of the same sweep
    /// reads (write/read distance nonzero): a race under any parallel or
    /// reordered execution of the sweep.
    IntraSweepHazard {
        field: String,
        comp: u16,
        store_off: [i16; 3],
        load_off: [i16; 3],
    },
    /// Same cell reads a location after storing to it — the value depends
    /// on memory mutated mid-sweep instead of the SSA register.
    StoreThenLoad {
        field: String,
        comp: u16,
        off: [i16; 3],
    },
    /// The kernel both reads and writes a field (different components or a
    /// read-before-write of the same cell). Not a race per se, but the
    /// executor enforces Jacobi discipline at field granularity and will
    /// refuse to launch it.
    JacobiViolation { field: String },
    /// Two stores target the identical (field, component, offset) — last
    /// write wins deterministically, but it is almost always a bug.
    DuplicateStore {
        field: String,
        comp: u16,
        off: [i16; 3],
    },
    /// Two kernels of a split group store to the same (field, component):
    /// they cannot be fused into one sweep.
    OverlappingSplitStores {
        other_kernel: String,
        field: String,
        comp: u16,
    },

    // --- Schedule lints -------------------------------------------------
    /// Instruction levels are non-monotone (a GPU-oriented reschedule moved
    /// a hoisted instruction after a per-cell one). CPU executors can only
    /// hoist monotone prefix sections, so LICM is silently lost: every
    /// loop-invariant instruction re-executes per cell.
    NonMonotoneLevels { prev: u8, next: u8 },

    // --- Value lints ----------------------------------------------------
    /// Division whose denominator constant-folds to exactly zero.
    DivByZeroConst,
    /// An operation over known-constant operands folds to NaN.
    NanConst { value_desc: String },
    /// A `Rand` op in a kernel declared to run without a seeded Philox
    /// stream — results would be non-deterministic (or silently zero in
    /// the expression interpreter).
    UnseededRand { lane: u8 },
}

impl DiagKind {
    /// Stable machine-readable code, `pass.finding`.
    pub fn code(&self) -> &'static str {
        use DiagKind::*;
        match self {
            UseBeforeDef { .. } => "ssa.use-before-def",
            ConsumedNonValue { .. } => "ssa.consumed-non-value",
            FieldSlotOutOfRange { .. } => "ssa.field-slot-range",
            ComponentOutOfRange { .. } => "ssa.component-range",
            ParamSlotOutOfRange { .. } => "ssa.param-slot-range",
            AxisOutOfRange { .. } => "ssa.axis-range",
            LevelsLengthMismatch { .. } => "ssa.levels-length",
            NoStores => "ssa.no-stores",
            AllocTableMismatch { .. } => "halo.alloc-table",
            HaloUnderflow { .. } => "halo.underflow",
            HaloOverflow { .. } => "halo.overflow",
            FrontierTooNarrow { .. } => "frontier.too-narrow",
            IntraSweepHazard { .. } => "hazard.intra-sweep",
            StoreThenLoad { .. } => "hazard.store-then-load",
            JacobiViolation { .. } => "hazard.jacobi",
            DuplicateStore { .. } => "hazard.duplicate-store",
            OverlappingSplitStores { .. } => "hazard.split-overlap",
            NonMonotoneLevels { .. } => "schedule.licm-lost",
            DivByZeroConst => "value.div-by-zero",
            NanConst { .. } => "value.nan-const",
            UnseededRand { .. } => "value.unseeded-rand",
        }
    }

    pub fn severity(&self) -> Severity {
        use DiagKind::*;
        match self {
            // Warnings: suspicious but executable / deterministic.
            JacobiViolation { .. }
            | DuplicateStore { .. }
            | UnseededRand { .. }
            | NonMonotoneLevels { .. } => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use DiagKind::*;
        match self {
            UseBeforeDef { reg } => write!(f, "operand r{reg} is not defined before this use"),
            ConsumedNonValue { reg } => {
                write!(f, "operand r{reg} names a Store/Fence, which has no value")
            }
            FieldSlotOutOfRange { slot } => {
                write!(f, "field slot {slot} is outside the field table")
            }
            ComponentOutOfRange { field, comp } => {
                write!(f, "component {comp} is out of range for field '{field}'")
            }
            ParamSlotOutOfRange { slot } => {
                write!(f, "param slot {slot} is outside the parameter table")
            }
            AxisOutOfRange { axis } => write!(f, "axis {axis} is out of range (need 0..3)"),
            LevelsLengthMismatch { levels, instrs } => {
                write!(f, "levels length {levels} != instruction count {instrs}")
            }
            NoStores => write!(f, "kernel has no stores (dead kernel)"),
            AllocTableMismatch { allocs, fields } => write!(
                f,
                "allocation table has {allocs} entries but the tape has {fields} fields"
            ),
            HaloUnderflow {
                field,
                dim,
                offset,
                ghost,
                is_store,
            } => write!(
                f,
                "{} of field '{field}' at offset {offset} along dim {dim} reaches below \
                 the {ghost} allocated ghost layer(s)",
                if *is_store { "store" } else { "load" },
            ),
            HaloOverflow {
                field,
                dim,
                reach,
                avail,
                is_store,
            } => write!(
                f,
                "{} of field '{field}' reaches {reach} cell(s) past the interior along \
                 dim {dim} but only {avail} (ghost + pad) are allocated",
                if *is_store { "store" } else { "load" },
            ),
            FrontierTooNarrow {
                field,
                dim,
                upper,
                needed,
                given,
            } => write!(
                f,
                "interior sweep would read ghost cells of field '{field}' along dim {dim}: \
                 the {} frontier shell must be at least {needed} cell(s) wide but is {given}",
                if *upper { "upper" } else { "lower" },
            ),
            IntraSweepHazard {
                field,
                comp,
                store_off,
                load_off,
            } => write!(
                f,
                "sweep race on field '{field}' comp {comp}: cells store at offset \
                 {store_off:?} while other cells load offset {load_off:?}"
            ),
            StoreThenLoad { field, comp, off } => write!(
                f,
                "load of field '{field}' comp {comp} at {off:?} happens after a store \
                 to the same location in this sweep"
            ),
            JacobiViolation { field } => write!(
                f,
                "kernel both reads and writes field '{field}' — the executor enforces \
                 Jacobi discipline and will refuse to launch it"
            ),
            DuplicateStore { field, comp, off } => write!(
                f,
                "duplicate store to field '{field}' comp {comp} at {off:?} (last write wins)"
            ),
            OverlappingSplitStores {
                other_kernel,
                field,
                comp,
            } => write!(
                f,
                "store set overlaps kernel '{other_kernel}' on field '{field}' comp {comp} \
                 — split variants must touch disjoint store sets"
            ),
            NonMonotoneLevels { prev, next } => write!(
                f,
                "instruction levels descend ({next} after {prev}) — CPU executors hoist \
                 only monotone prefix sections, so loop-invariant work runs per cell"
            ),
            DivByZeroConst => write!(f, "division by a constant that folds to exactly zero"),
            NanConst { value_desc } => {
                write!(f, "constant folding produces NaN ({value_desc})")
            }
            UnseededRand { lane } => write!(
                f,
                "Rand(lane {lane}) in a kernel executed without a seeded Philox stream"
            ),
        }
    }
}

/// One finding: where (kernel, instruction) plus what ([`DiagKind`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub kernel: String,
    /// Offending instruction index; `None` for whole-tape findings.
    pub instr: Option<usize>,
    pub kind: DiagKind,
}

impl Diagnostic {
    pub fn new(kernel: &str, instr: Option<usize>, kind: DiagKind) -> Self {
        Diagnostic {
            kernel: kernel.to_owned(),
            instr,
            kind,
        }
    }

    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }

    pub fn is_error(&self) -> bool {
        self.severity() == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] kernel '{}'",
            self.severity(),
            self.kind.code(),
            self.kernel
        )?;
        if let Some(i) = self.instr {
            write!(f, " @ instr {i}")?;
        }
        write!(f, ": {}", self.kind)
    }
}

/// Render a diagnostic list one-per-line (empty string for none).
pub fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_contains_code_kernel_and_location() {
        let d = Diagnostic::new("mu_full", Some(41), DiagKind::UseBeforeDef { reg: 7 });
        let s = d.to_string();
        assert!(s.contains("error[ssa.use-before-def]"), "{s}");
        assert!(s.contains("'mu_full'"), "{s}");
        assert!(s.contains("@ instr 41"), "{s}");
        assert!(s.contains("r7"), "{s}");
    }

    #[test]
    fn severities_split_warnings_from_errors() {
        assert_eq!(DiagKind::DivByZeroConst.severity(), Severity::Error);
        assert_eq!(
            DiagKind::UnseededRand { lane: 0 }.severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagKind::JacobiViolation {
                field: "phi".into()
            }
            .severity(),
            Severity::Warning
        );
    }
}
