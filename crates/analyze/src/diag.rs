//! Typed, source-located diagnostics.
//!
//! Every pass reports findings as [`Diagnostic`] values: a kernel name, the
//! offending instruction index (the tape is SSA, so an instruction index
//! *is* a source location), and a typed [`DiagKind`] carrying the facts the
//! pass proved. Rendering is rustc-flavoured:
//!
//! ```text
//! error[halo.load-overflow] kernel 'mu_full' @ instr 41: load of field
//! 'phi_src' reaches 2 cells past the interior along dim 0 but only 1
//! layer (ghost 1 + pad 0) is allocated
//! ```

use std::fmt;

/// How bad a finding is. `Error`s fail verification (and, when the pipeline
/// verifier is installed, abort kernel generation); `Warning`s are
/// surfaced through statistics but never fatal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The typed payload of one finding. Field identities are carried as names
/// (the interned `Field` handles are process-global; names read better in
/// test assertions and rendered output).
#[derive(Clone, Debug, PartialEq)]
pub enum DiagKind {
    // --- SSA well-formedness -------------------------------------------
    /// An operand register is defined at or after its use.
    UseBeforeDef { reg: u32 },
    /// An operand register names a `Store` or `Fence`, which produce no
    /// value.
    ConsumedNonValue { reg: u32 },
    /// `Load`/`Store` field slot outside the tape's field table.
    FieldSlotOutOfRange { slot: u16 },
    /// `Load`/`Store` component outside the field's component count.
    ComponentOutOfRange { field: String, comp: u16 },
    /// `Param` slot outside the tape's parameter table.
    ParamSlotOutOfRange { slot: u16 },
    /// `Coord`/`CellIdx`/`Rand` axis or lane argument out of range.
    AxisOutOfRange { axis: u8 },
    /// `levels` metadata does not cover the instruction list.
    LevelsLengthMismatch { levels: usize, instrs: usize },
    /// A non-empty tape without a single store computes nothing.
    NoStores,

    // --- Halo footprint ------------------------------------------------
    /// The per-slot allocation table handed to `check_halo` does not match
    /// the tape's field table.
    AllocTableMismatch { allocs: usize, fields: usize },
    /// A load or store reaches below the allocated ghost layers.
    HaloUnderflow {
        field: String,
        dim: usize,
        offset: i64,
        ghost: usize,
        is_store: bool,
    },
    /// A load or store reaches past interior + pad + ghost along a
    /// dimension (offset plus the kernel's extended iteration range).
    HaloOverflow {
        field: String,
        dim: usize,
        reach: i64,
        avail: i64,
        is_store: bool,
    },
    /// The overlapped schedule's interior/frontier split is unsound: an
    /// interior cell would read a ghost layer of a halo-exchanged field
    /// before the receive completes. The frontier shell on the given side
    /// must be at least `needed` cells wide but is only `given`.
    FrontierTooNarrow {
        field: String,
        dim: usize,
        /// `true`: the upper (high-index) shell; `false`: the lower one.
        upper: bool,
        needed: i64,
        given: i64,
    },

    // --- Intra-sweep hazards -------------------------------------------
    /// A cell of the sweep writes an offset another cell of the same sweep
    /// reads (write/read distance nonzero): a race under any parallel or
    /// reordered execution of the sweep.
    IntraSweepHazard {
        field: String,
        comp: u16,
        store_off: [i16; 3],
        load_off: [i16; 3],
    },
    /// Same cell reads a location after storing to it — the value depends
    /// on memory mutated mid-sweep instead of the SSA register.
    StoreThenLoad {
        field: String,
        comp: u16,
        off: [i16; 3],
    },
    /// The kernel both reads and writes a field (different components or a
    /// read-before-write of the same cell). Not a race per se, but the
    /// executor enforces Jacobi discipline at field granularity and will
    /// refuse to launch it.
    JacobiViolation { field: String },
    /// Two stores target the identical (field, component, offset) — last
    /// write wins deterministically, but it is almost always a bug.
    DuplicateStore {
        field: String,
        comp: u16,
        off: [i16; 3],
    },
    /// Two kernels of a split group store to the same (field, component):
    /// they cannot be fused into one sweep.
    OverlappingSplitStores {
        other_kernel: String,
        field: String,
        comp: u16,
    },

    // --- Schedule lints -------------------------------------------------
    /// Instruction levels are non-monotone (a GPU-oriented reschedule moved
    /// a hoisted instruction after a per-cell one). CPU executors can only
    /// hoist monotone prefix sections, so LICM is silently lost: every
    /// loop-invariant instruction re-executes per cell. `descents` lists
    /// the instruction indices of every descent point (the finding is
    /// located at the first) so the regression is actionable from the
    /// rendered diagnostic alone.
    NonMonotoneLevels {
        prev: u8,
        next: u8,
        descents: Vec<usize>,
    },

    // --- Value lints ----------------------------------------------------
    /// Division whose denominator constant-folds to exactly zero.
    DivByZeroConst,
    /// `0/0`: numerator *and* denominator constant-fold to zero — a NaN
    /// fold, distinct from plain division by zero (±Inf).
    ZeroOverZeroConst,
    /// `sqrt`/`rsqrt` of an operand that constant-folds strictly negative.
    SqrtNegativeConst { value: f64 },
    /// `ln` of an operand that constant-folds strictly negative (`ln(0)` is
    /// −Inf, not NaN, and stays a plain fold).
    LnNegativeConst { value: f64 },
    /// An operation over known-constant operands folds to NaN.
    NanConst { value_desc: String },
    /// A `Rand` op in a kernel declared to run without a seeded Philox
    /// stream — results would be non-deterministic (or silently zero in
    /// the expression interpreter).
    UnseededRand { lane: u8 },

    // --- Interval dataflow ----------------------------------------------
    /// Division whose denominator's proven interval is exactly {0}.
    IntervalDivByZero,
    /// Division whose denominator's interval contains 0 (possible ±Inf/NaN
    /// on reachable inputs). A warning: intervals over-approximate, so
    /// containment is possibility, not proof.
    IntervalDivMaybeZero { lo: f64, hi: f64 },
    /// `sqrt`/`rsqrt` argument proven strictly negative on its whole range.
    IntervalSqrtNegative { hi: f64 },
    /// `sqrt`/`rsqrt` argument may be negative (interval dips below zero).
    IntervalSqrtMaybeNegative { lo: f64 },
    /// `rsqrt` argument interval contains 0 — 1/sqrt(0) = +Inf is reachable.
    IntervalRsqrtMaybeZero { lo: f64, hi: f64 },
    /// `ln` argument proven ≤ 0 on its whole range (NaN or −Inf everywhere).
    IntervalLnNonPositive { hi: f64 },
    /// `ln` argument may be ≤ 0.
    IntervalLnMaybeNonPositive { lo: f64 },
    /// `powf` with a possibly-negative base and a non-integer (or unknown)
    /// exponent — NaN on part of the reachable range.
    IntervalPowMaybeUndefined { base_lo: f64 },
    /// Every value in the result's proven interval overflows to ±Inf even
    /// though all inputs are finite and bounded.
    IntervalOverflowInf { op: String },
    /// The result's interval reaches ±Inf from finite, bounded inputs —
    /// overflow is reachable (though not proven: intervals ignore operand
    /// correlations).
    IntervalMaybeOverflowInf { op: String },

    // --- Comm-protocol verifier -----------------------------------------
    /// `begin_exchange` of a field whose previous exchange was never
    /// finished — the handle (and the posted sends) would be abandoned.
    ProtocolDoubleBegin { field: String },
    /// `finish_exchange` with no matching in-flight `begin_exchange` (or
    /// with a mismatched epoch).
    ProtocolUnmatchedFinish { field: String },
    /// A `begin_exchange` whose receives are never completed within the
    /// step: ghosts stay stale and the neighbours' tag-matched receives of
    /// the *next* epoch deadlock behind the orphaned messages.
    ProtocolDroppedFinish { field: String },
    /// Exchange epochs are not strictly increasing in schedule order —
    /// two in-flight exchanges could tag-match each other's messages.
    ProtocolEpochRegression { prev: u64, next: u64 },
    /// A per-step epoch offset ≥ the step's epoch stride: step `s` would
    /// reuse a tag of step `s+1` and cross-step messages could tag-match.
    ProtocolEpochStrideOverflow { epoch_off: u64, stride: u64 },
    /// Two exchanges of one step share a (field tag, epoch) pair, or a
    /// field tag overflows its bit-field — their wire tags collide.
    ProtocolTagCollision { field: String, epoch_off: u64 },
    /// In the SPMD exchange script a blocking receive precedes its
    /// matching send: with the script identical on every rank, all ranks
    /// block on the receive and none ever reaches the send — deadlock at
    /// any rank count ≥ 2 along that dimension.
    ProtocolDeadlock { field: String, dim: usize },
    /// A receive whose matching send exists nowhere in the script.
    ProtocolPhantomRecv { field: String, dim: usize },
    /// A frontier sweep reads ghost layers of a field that was never
    /// exchanged (finished) this step — it would compute with stale data.
    ProtocolStaleGhost { field: String },
    /// A frontier sweep reads ghost layers of a field whose exchange is
    /// still in flight — only interior cells may run before
    /// `finish_exchange`.
    ProtocolFrontierBeforeFinish { field: String },
}

impl DiagKind {
    /// Stable machine-readable code, `pass.finding`.
    pub fn code(&self) -> &'static str {
        use DiagKind::*;
        match self {
            UseBeforeDef { .. } => "ssa.use-before-def",
            ConsumedNonValue { .. } => "ssa.consumed-non-value",
            FieldSlotOutOfRange { .. } => "ssa.field-slot-range",
            ComponentOutOfRange { .. } => "ssa.component-range",
            ParamSlotOutOfRange { .. } => "ssa.param-slot-range",
            AxisOutOfRange { .. } => "ssa.axis-range",
            LevelsLengthMismatch { .. } => "ssa.levels-length",
            NoStores => "ssa.no-stores",
            AllocTableMismatch { .. } => "halo.alloc-table",
            HaloUnderflow { .. } => "halo.underflow",
            HaloOverflow { .. } => "halo.overflow",
            FrontierTooNarrow { .. } => "frontier.too-narrow",
            IntraSweepHazard { .. } => "hazard.intra-sweep",
            StoreThenLoad { .. } => "hazard.store-then-load",
            JacobiViolation { .. } => "hazard.jacobi",
            DuplicateStore { .. } => "hazard.duplicate-store",
            OverlappingSplitStores { .. } => "hazard.split-overlap",
            NonMonotoneLevels { .. } => "schedule.licm-lost",
            DivByZeroConst => "value.div-by-zero",
            ZeroOverZeroConst => "value.zero-over-zero",
            SqrtNegativeConst { .. } => "value.sqrt-negative",
            LnNegativeConst { .. } => "value.ln-negative",
            NanConst { .. } => "value.nan-const",
            UnseededRand { .. } => "value.unseeded-rand",
            IntervalDivByZero => "interval.div-by-zero",
            IntervalDivMaybeZero { .. } => "interval.div-maybe-zero",
            IntervalSqrtNegative { .. } => "interval.sqrt-negative",
            IntervalSqrtMaybeNegative { .. } => "interval.sqrt-maybe-negative",
            IntervalRsqrtMaybeZero { .. } => "interval.rsqrt-maybe-zero",
            IntervalLnNonPositive { .. } => "interval.ln-nonpositive",
            IntervalLnMaybeNonPositive { .. } => "interval.ln-maybe-nonpositive",
            IntervalPowMaybeUndefined { .. } => "interval.pow-maybe-undefined",
            IntervalOverflowInf { .. } => "interval.overflow-inf",
            IntervalMaybeOverflowInf { .. } => "interval.maybe-overflow-inf",
            ProtocolDoubleBegin { .. } => "protocol.double-begin",
            ProtocolUnmatchedFinish { .. } => "protocol.unmatched-finish",
            ProtocolDroppedFinish { .. } => "protocol.dropped-finish",
            ProtocolEpochRegression { .. } => "protocol.epoch-regression",
            ProtocolEpochStrideOverflow { .. } => "protocol.epoch-stride",
            ProtocolTagCollision { .. } => "protocol.tag-collision",
            ProtocolDeadlock { .. } => "protocol.deadlock",
            ProtocolPhantomRecv { .. } => "protocol.phantom-recv",
            ProtocolStaleGhost { .. } => "protocol.stale-ghost",
            ProtocolFrontierBeforeFinish { .. } => "protocol.frontier-before-finish",
        }
    }

    pub fn severity(&self) -> Severity {
        use DiagKind::*;
        match self {
            // Warnings: suspicious but executable / deterministic — or, for
            // the interval "maybe" family, *possible* on the proven range
            // but not provable (intervals ignore operand correlations, so
            // a hard error here would produce false positives).
            JacobiViolation { .. }
            | DuplicateStore { .. }
            | UnseededRand { .. }
            | NonMonotoneLevels { .. }
            | IntervalDivMaybeZero { .. }
            | IntervalSqrtMaybeNegative { .. }
            | IntervalRsqrtMaybeZero { .. }
            | IntervalLnMaybeNonPositive { .. }
            | IntervalPowMaybeUndefined { .. }
            | IntervalMaybeOverflowInf { .. } => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// Compact rendering of an interval endpoint: plain decimal for
/// human-scale magnitudes, scientific otherwise (outward rounding produces
/// subnormal endpoints like -3.5e-322 whose plain expansion is hundreds of
/// zeros long).
fn fnum(x: f64) -> String {
    if x == 0.0 || (1e-4..1e7).contains(&x.abs()) || !x.is_finite() {
        format!("{x}")
    } else {
        format!("{x:.3e}")
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use DiagKind::*;
        match self {
            UseBeforeDef { reg } => write!(f, "operand r{reg} is not defined before this use"),
            ConsumedNonValue { reg } => {
                write!(f, "operand r{reg} names a Store/Fence, which has no value")
            }
            FieldSlotOutOfRange { slot } => {
                write!(f, "field slot {slot} is outside the field table")
            }
            ComponentOutOfRange { field, comp } => {
                write!(f, "component {comp} is out of range for field '{field}'")
            }
            ParamSlotOutOfRange { slot } => {
                write!(f, "param slot {slot} is outside the parameter table")
            }
            AxisOutOfRange { axis } => write!(f, "axis {axis} is out of range (need 0..3)"),
            LevelsLengthMismatch { levels, instrs } => {
                write!(f, "levels length {levels} != instruction count {instrs}")
            }
            NoStores => write!(f, "kernel has no stores (dead kernel)"),
            AllocTableMismatch { allocs, fields } => write!(
                f,
                "allocation table has {allocs} entries but the tape has {fields} fields"
            ),
            HaloUnderflow {
                field,
                dim,
                offset,
                ghost,
                is_store,
            } => write!(
                f,
                "{} of field '{field}' at offset {offset} along dim {dim} reaches below \
                 the {ghost} allocated ghost layer(s)",
                if *is_store { "store" } else { "load" },
            ),
            HaloOverflow {
                field,
                dim,
                reach,
                avail,
                is_store,
            } => write!(
                f,
                "{} of field '{field}' reaches {reach} cell(s) past the interior along \
                 dim {dim} but only {avail} (ghost + pad) are allocated",
                if *is_store { "store" } else { "load" },
            ),
            FrontierTooNarrow {
                field,
                dim,
                upper,
                needed,
                given,
            } => write!(
                f,
                "interior sweep would read ghost cells of field '{field}' along dim {dim}: \
                 the {} frontier shell must be at least {needed} cell(s) wide but is {given}",
                if *upper { "upper" } else { "lower" },
            ),
            IntraSweepHazard {
                field,
                comp,
                store_off,
                load_off,
            } => write!(
                f,
                "sweep race on field '{field}' comp {comp}: cells store at offset \
                 {store_off:?} while other cells load offset {load_off:?}"
            ),
            StoreThenLoad { field, comp, off } => write!(
                f,
                "load of field '{field}' comp {comp} at {off:?} happens after a store \
                 to the same location in this sweep"
            ),
            JacobiViolation { field } => write!(
                f,
                "kernel both reads and writes field '{field}' — the executor enforces \
                 Jacobi discipline and will refuse to launch it"
            ),
            DuplicateStore { field, comp, off } => write!(
                f,
                "duplicate store to field '{field}' comp {comp} at {off:?} (last write wins)"
            ),
            OverlappingSplitStores {
                other_kernel,
                field,
                comp,
            } => write!(
                f,
                "store set overlaps kernel '{other_kernel}' on field '{field}' comp {comp} \
                 — split variants must touch disjoint store sets"
            ),
            NonMonotoneLevels {
                prev,
                next,
                descents,
            } => write!(
                f,
                "instruction levels descend ({next} after {prev}; descents at instrs \
                 {descents:?}) — CPU executors hoist only monotone prefix sections, so \
                 loop-invariant work runs per cell"
            ),
            DivByZeroConst => write!(f, "division by a constant that folds to exactly zero"),
            ZeroOverZeroConst => write!(
                f,
                "0/0: numerator and denominator both fold to zero (NaN, not ±Inf)"
            ),
            SqrtNegativeConst { value } => {
                write!(f, "sqrt of a constant that folds to {value} < 0 (NaN)")
            }
            LnNegativeConst { value } => {
                write!(f, "ln of a constant that folds to {value} < 0 (NaN)")
            }
            NanConst { value_desc } => {
                write!(f, "constant folding produces NaN ({value_desc})")
            }
            UnseededRand { lane } => write!(
                f,
                "Rand(lane {lane}) in a kernel executed without a seeded Philox stream"
            ),
            IntervalDivByZero => {
                write!(
                    f,
                    "division by a value whose proven interval is exactly {{0}}"
                )
            }
            IntervalDivMaybeZero { lo, hi } => write!(
                f,
                "division by a value whose interval [{}, {}] contains 0 — \
                 ±Inf/NaN reachable; tighten a range contract or add an ε floor",
                fnum(*lo),
                fnum(*hi)
            ),
            IntervalSqrtNegative { hi } => write!(
                f,
                "sqrt argument proven negative on its whole range (hi = {} < 0): NaN",
                fnum(*hi)
            ),
            IntervalSqrtMaybeNegative { lo } => write!(
                f,
                "sqrt argument may be negative (interval reaches {}) — NaN reachable",
                fnum(*lo)
            ),
            IntervalRsqrtMaybeZero { lo, hi } => write!(
                f,
                "rsqrt argument interval [{}, {}] contains 0 — 1/sqrt(0) = +Inf reachable",
                fnum(*lo),
                fnum(*hi)
            ),
            IntervalLnNonPositive { hi } => write!(
                f,
                "ln argument proven ≤ 0 on its whole range (hi = {}): NaN or -Inf",
                fnum(*hi)
            ),
            IntervalLnMaybeNonPositive { lo } => write!(
                f,
                "ln argument may be ≤ 0 (interval reaches {}) — NaN/-Inf reachable",
                fnum(*lo)
            ),
            IntervalPowMaybeUndefined { base_lo } => write!(
                f,
                "powf base may be negative (interval reaches {}) with a \
                 non-integer exponent — NaN reachable",
                fnum(*base_lo)
            ),
            IntervalOverflowInf { op } => write!(
                f,
                "{op} overflows to ±Inf on every value of its proven input range \
                 (inputs are finite and bounded)"
            ),
            IntervalMaybeOverflowInf { op } => {
                write!(f, "{op} can overflow to ±Inf from finite, bounded inputs")
            }
            ProtocolDoubleBegin { field } => write!(
                f,
                "begin_exchange of field '{field}' while its previous exchange is \
                 still in flight"
            ),
            ProtocolUnmatchedFinish { field } => write!(
                f,
                "finish_exchange of field '{field}' with no matching in-flight begin"
            ),
            ProtocolDroppedFinish { field } => write!(
                f,
                "begin_exchange of field '{field}' is never finished within the step \
                 — ghosts stay stale and the orphaned messages deadlock later epochs"
            ),
            ProtocolEpochRegression { prev, next } => write!(
                f,
                "exchange epoch {next} scheduled after epoch {prev} — epochs must be \
                 strictly increasing in schedule order"
            ),
            ProtocolEpochStrideOverflow { epoch_off, stride } => write!(
                f,
                "per-step epoch offset {epoch_off} >= the step's epoch stride {stride} \
                 — cross-step tags would collide"
            ),
            ProtocolTagCollision { field, epoch_off } => write!(
                f,
                "field '{field}' at epoch offset {epoch_off} shares a wire tag with \
                 another exchange of the same step"
            ),
            ProtocolDeadlock { field, dim } => write!(
                f,
                "receive of field '{field}' along dim {dim} precedes its matching \
                 send in the SPMD script — every rank blocks, deadlock at any rank \
                 count with dim {dim} divided"
            ),
            ProtocolPhantomRecv { field, dim } => write!(
                f,
                "receive of field '{field}' along dim {dim} has no matching send \
                 anywhere in the script"
            ),
            ProtocolStaleGhost { field } => write!(
                f,
                "frontier sweep reads ghost layers of field '{field}' which was never \
                 exchanged this step (stale data)"
            ),
            ProtocolFrontierBeforeFinish { field } => write!(
                f,
                "frontier sweep reads ghost layers of field '{field}' before its \
                 finish_exchange completes the halo receives"
            ),
        }
    }
}

/// One finding: where (kernel, instruction) plus what ([`DiagKind`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub kernel: String,
    /// Offending instruction index; `None` for whole-tape findings.
    pub instr: Option<usize>,
    pub kind: DiagKind,
}

impl Diagnostic {
    pub fn new(kernel: &str, instr: Option<usize>, kind: DiagKind) -> Self {
        Diagnostic {
            kernel: kernel.to_owned(),
            instr,
            kind,
        }
    }

    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }

    pub fn is_error(&self) -> bool {
        self.severity() == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] kernel '{}'",
            self.severity(),
            self.kind.code(),
            self.kernel
        )?;
        if let Some(i) = self.instr {
            write!(f, " @ instr {i}")?;
        }
        write!(f, ": {}", self.kind)
    }
}

/// Render a diagnostic list one-per-line (empty string for none).
pub fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_contains_code_kernel_and_location() {
        let d = Diagnostic::new("mu_full", Some(41), DiagKind::UseBeforeDef { reg: 7 });
        let s = d.to_string();
        assert!(s.contains("error[ssa.use-before-def]"), "{s}");
        assert!(s.contains("'mu_full'"), "{s}");
        assert!(s.contains("@ instr 41"), "{s}");
        assert!(s.contains("r7"), "{s}");
    }

    #[test]
    fn severities_split_warnings_from_errors() {
        assert_eq!(DiagKind::DivByZeroConst.severity(), Severity::Error);
        assert_eq!(
            DiagKind::UnseededRand { lane: 0 }.severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagKind::JacobiViolation {
                field: "phi".into()
            }
            .severity(),
            Severity::Warning
        );
    }
}
