//! Pass 2 — halo-footprint analysis.
//!
//! Computes each kernel's exact load/store offset envelope per field and
//! proves it fits the storage actually allocated: `ghost` layers below the
//! interior and `ghost + pad` cells above it (staggered face arrays are
//! padded by one cell per swept dimension instead of carrying ghosts).
//! Face kernels iterate `iter_extent` cells past the interior, so the
//! upper reach of an access is `offset + iter_extent`, not the offset
//! alone — exactly the condition under which a ghost-layer exchange of
//! width `ghost` makes every read well-defined.

use crate::diag::{DiagKind, Diagnostic};
use pf_ir::{Tape, TapeOp};

/// Inclusive per-dimension offset envelope of a set of accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Envelope {
    pub min: [i64; 3],
    pub max: [i64; 3],
}

impl Envelope {
    fn empty() -> Envelope {
        Envelope {
            min: [i64::MAX; 3],
            max: [i64::MIN; 3],
        }
    }

    fn include(&mut self, off: [i16; 3]) {
        for (d, &o) in off.iter().enumerate() {
            self.min[d] = self.min[d].min(o as i64);
            self.max[d] = self.max[d].max(o as i64);
        }
    }

    fn is_empty(&self) -> bool {
        self.min[0] == i64::MAX
    }
}

/// Load/store envelopes of one field slot (`None` = no such access).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct FieldFootprint {
    pub loads: Option<Envelope>,
    pub stores: Option<Envelope>,
}

/// The complete memory footprint of a kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Footprint {
    /// Indexed by the tape's field slot.
    pub per_field: Vec<FieldFootprint>,
    pub iter_extent: [usize; 3],
}

impl Footprint {
    /// Scan a tape's accesses. Purely syntactic — safe on malformed tapes.
    pub fn of(tape: &Tape) -> Footprint {
        let mut loads = vec![Envelope::empty(); tape.fields.len()];
        let mut stores = vec![Envelope::empty(); tape.fields.len()];
        for op in &tape.instrs {
            match *op {
                TapeOp::Load { field, off, .. } => {
                    if let Some(e) = loads.get_mut(field as usize) {
                        e.include(off);
                    }
                }
                TapeOp::Store { field, off, .. } => {
                    if let Some(e) = stores.get_mut(field as usize) {
                        e.include(off);
                    }
                }
                _ => {}
            }
        }
        let collapse = |e: Envelope| if e.is_empty() { None } else { Some(e) };
        Footprint {
            per_field: loads
                .into_iter()
                .zip(stores)
                .map(|(l, s)| FieldFootprint {
                    loads: collapse(l),
                    stores: collapse(s),
                })
                .collect(),
            iter_extent: tape.iter_extent,
        }
    }

    /// Ghost layers the kernel's *loads* of `slot` require beyond an
    /// interior padded by `pad` (0 when the field has no access): the
    /// width a halo exchange must fill for the sweep to be well-defined.
    pub fn required_ghost(&self, slot: usize, pad: [usize; 3]) -> usize {
        let Some(env) = self.per_field.get(slot).and_then(|f| f.loads) else {
            return 0;
        };
        (0..3)
            .map(|d| {
                let below = (-env.min[d]).max(0);
                let above = (env.max[d] + self.iter_extent[d] as i64 - pad[d] as i64).max(0);
                below.max(above) as usize
            })
            .max()
            .unwrap_or(0)
    }
}

/// What storage a field slot actually has: `ghost` layers on every side of
/// the interior and `pad` extra interior cells per dimension (staggered
/// arrays are allocated `shape + 1` along swept dimensions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct FieldAlloc {
    pub ghost: usize,
    pub pad: [usize; 3],
}

impl FieldAlloc {
    /// A plain cell-centred field with `ghost` halo layers.
    pub fn ghosted(ghost: usize) -> FieldAlloc {
        FieldAlloc { ghost, pad: [0; 3] }
    }
}

/// Prove every access of `tape` fits `allocs` (indexed by field slot).
/// Reports one diagnostic per offending instruction and dimension.
pub fn check_halo(tape: &Tape, allocs: &[FieldAlloc]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if allocs.len() != tape.fields.len() {
        out.push(Diagnostic::new(
            &tape.name,
            None,
            DiagKind::AllocTableMismatch {
                allocs: allocs.len(),
                fields: tape.fields.len(),
            },
        ));
        return out;
    }
    for (i, op) in tape.instrs.iter().enumerate() {
        let (field, off, is_store) = match *op {
            TapeOp::Load { field, off, .. } => (field, off, false),
            TapeOp::Store { field, off, .. } => (field, off, true),
            _ => continue,
        };
        let Some(alloc) = allocs.get(field as usize) else {
            continue; // slot range violations are the SSA pass's findings
        };
        let name = match tape.fields.get(field as usize) {
            Some(f) => f.name(),
            None => continue,
        };
        for (d, &off_d) in off.iter().enumerate() {
            let o = off_d as i64;
            if o < -(alloc.ghost as i64) {
                out.push(Diagnostic::new(
                    &tape.name,
                    Some(i),
                    DiagKind::HaloUnderflow {
                        field: name.clone(),
                        dim: d,
                        offset: o,
                        ghost: alloc.ghost,
                        is_store,
                    },
                ));
            }
            // The last iterated cell is interior + iter_extent - 1; an
            // access at `o` from it reaches `o + iter_extent` cells past
            // the interior, which must fit in ghost + pad.
            let reach = o + tape.iter_extent[d] as i64;
            let avail = (alloc.ghost + alloc.pad[d]) as i64;
            if reach > avail {
                out.push(Diagnostic::new(
                    &tape.name,
                    Some(i),
                    DiagKind::HaloOverflow {
                        field: name.clone(),
                        dim: d,
                        reach,
                        avail,
                        is_store,
                    },
                ));
            }
        }
    }
    out
}

/// Minimal sound frontier-shell widths for the overlapped distributed
/// schedule: the interior region `[lo, ext - hi)` of a sweep over the
/// extended range `ext` reads no ghost cell of any halo-exchanged field
/// (`alloc.ghost > 0`), so it may run while the exchange is in flight.
///
/// Per dimension, a load at offset `o` from interior cell `i` lands in
/// owned data iff `0 <= i + o < domain`; with `domain = ext - iter_extent`
/// that bounds the widths to `lo >= -min_off` and `hi >= max_off +
/// iter_extent`. Locally-produced fields (ghost 0, e.g. staggered flux
/// temporaries) never wait on communication and do not widen the shells —
/// callers splitting *groups* of kernels must instead propagate the
/// producer kernel's widths to its consumers.
pub fn frontier_widths(tape: &Tape, allocs: &[FieldAlloc]) -> ([usize; 3], [usize; 3]) {
    let fp = Footprint::of(tape);
    let mut lo = [0usize; 3];
    let mut hi = [0usize; 3];
    for (slot, alloc) in allocs.iter().enumerate() {
        if alloc.ghost == 0 {
            continue;
        }
        let Some(env) = fp.per_field.get(slot).and_then(|f| f.loads) else {
            continue;
        };
        for d in 0..3 {
            lo[d] = lo[d].max((-env.min[d]).max(0) as usize);
            hi[d] = hi[d].max((env.max[d] + fp.iter_extent[d] as i64).max(0) as usize);
        }
    }
    (lo, hi)
}

/// Pass — frontier-split soundness. Prove that an interior/frontier split
/// with the given shell widths defers every ghost-reading cell of `tape`
/// to the frontier: no load of a halo-exchanged field (`alloc.ghost > 0`)
/// issued from the interior region `[lo_w, ext - hi_w)` may touch a ghost
/// layer. One diagnostic per offending load instruction, dimension and
/// side. This is the machine check behind the overlapped schedule — a
/// clean report means sweeping the interior before the halo receives
/// complete is bitwise equivalent to the blocking schedule.
pub fn check_frontier(
    tape: &Tape,
    allocs: &[FieldAlloc],
    lo_w: [usize; 3],
    hi_w: [usize; 3],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if allocs.len() != tape.fields.len() {
        out.push(Diagnostic::new(
            &tape.name,
            None,
            DiagKind::AllocTableMismatch {
                allocs: allocs.len(),
                fields: tape.fields.len(),
            },
        ));
        return out;
    }
    for (i, op) in tape.instrs.iter().enumerate() {
        let TapeOp::Load { field, off, .. } = *op else {
            continue;
        };
        let ghosted = allocs
            .get(field as usize)
            .is_some_and(|alloc| alloc.ghost > 0);
        if !ghosted {
            continue;
        }
        let name = match tape.fields.get(field as usize) {
            Some(f) => f.name(),
            None => continue,
        };
        for (d, &off_d) in off.iter().enumerate() {
            let o = off_d as i64;
            let need_lo = (-o).max(0);
            if need_lo > lo_w[d] as i64 {
                out.push(Diagnostic::new(
                    &tape.name,
                    Some(i),
                    DiagKind::FrontierTooNarrow {
                        field: name.clone(),
                        dim: d,
                        upper: false,
                        needed: need_lo,
                        given: lo_w[d] as i64,
                    },
                ));
            }
            let need_hi = (o + tape.iter_extent[d] as i64).max(0);
            if need_hi > hi_w[d] as i64 {
                out.push(Diagnostic::new(
                    &tape.name,
                    Some(i),
                    DiagKind::FrontierTooNarrow {
                        field: name.clone(),
                        dim: d,
                        upper: true,
                        needed: need_hi,
                        given: hi_w[d] as i64,
                    },
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{load, raw_tape, store};
    use pf_ir::TapeOp;

    #[test]
    fn footprint_tracks_min_max_per_field_and_side() {
        let t = raw_tape(vec![
            load(0, 0, [-1, 0, 0]),
            load(0, 1, [0, 2, 0]),
            store(1, 0, [0, 0, 0], 0),
        ]);
        let fp = Footprint::of(&t);
        let l = fp.per_field[0].loads.unwrap();
        assert_eq!(l.min, [-1, 0, 0]);
        assert_eq!(l.max, [0, 2, 0]);
        assert!(fp.per_field[0].stores.is_none());
        assert_eq!(fp.per_field[1].stores.unwrap().min, [0, 0, 0]);
        assert_eq!(fp.required_ghost(0, [0; 3]), 2);
        assert_eq!(fp.required_ghost(1, [0; 3]), 0, "stores need no halo");
    }

    #[test]
    fn compact_stencil_fits_one_ghost_layer() {
        let t = raw_tape(vec![
            load(0, 0, [-1, 0, 0]),
            load(0, 0, [1, 0, 0]),
            store(1, 0, [0, 0, 0], 0),
        ]);
        let allocs = [FieldAlloc::ghosted(1), FieldAlloc::ghosted(1)];
        assert!(check_halo(&t, &allocs).is_empty());
    }

    #[test]
    fn out_of_halo_load_is_a_typed_error() {
        let t = raw_tape(vec![load(0, 0, [2, 0, 0]), store(1, 0, [0, 0, 0], 0)]);
        let allocs = [FieldAlloc::ghosted(1), FieldAlloc::ghosted(1)];
        let d = check_halo(&t, &allocs);
        assert!(
            d.iter().any(|d| matches!(
                d.kind,
                DiagKind::HaloOverflow {
                    dim: 0,
                    reach: 2,
                    avail: 1,
                    is_store: false,
                    ..
                }
            ) && d.instr == Some(0)),
            "{d:?}"
        );
    }

    #[test]
    fn iter_extent_counts_against_the_upper_side() {
        // A face kernel (extent +1 along x) loading the centre still
        // reaches one cell past the interior on the last face.
        let mut t = raw_tape(vec![load(0, 0, [0, 0, 0]), store(1, 0, [0, 0, 0], 0)]);
        t.iter_extent = [1, 0, 0];
        let ghosted = [FieldAlloc::ghosted(1), FieldAlloc::ghosted(1)];
        assert!(check_halo(&t, &ghosted).is_empty());
        let unghosted = [FieldAlloc::ghosted(0), FieldAlloc::ghosted(1)];
        let d = check_halo(&t, &unghosted);
        assert!(matches!(d[0].kind, DiagKind::HaloOverflow { .. }), "{d:?}");
        // A padded (staggered-style) allocation also covers the reach.
        let padded = [
            FieldAlloc {
                ghost: 0,
                pad: [1, 0, 0],
            },
            FieldAlloc::ghosted(1),
        ];
        assert!(check_halo(&t, &padded).is_empty());
    }

    #[test]
    fn underflow_and_store_overflow_are_reported() {
        let t = raw_tape(vec![load(0, 0, [0, -2, 0]), store(1, 0, [0, 0, 1], 0)]);
        let allocs = [FieldAlloc::ghosted(1), FieldAlloc::ghosted(0)];
        let d = check_halo(&t, &allocs);
        assert!(d.iter().any(|d| matches!(
            d.kind,
            DiagKind::HaloUnderflow {
                dim: 1,
                offset: -2,
                ..
            }
        )));
        assert!(d.iter().any(|d| matches!(
            d.kind,
            DiagKind::HaloOverflow {
                dim: 2,
                is_store: true,
                ..
            }
        )));
    }

    #[test]
    fn alloc_table_mismatch_is_reported_not_panicked() {
        let t = raw_tape(vec![TapeOp::Const(pf_ir::CF(0.0)), store(0, 0, [0; 3], 0)]);
        let d = check_halo(&t, &[]);
        assert!(matches!(d[0].kind, DiagKind::AllocTableMismatch { .. }));
    }

    #[test]
    fn frontier_widths_follow_the_load_envelope() {
        // Loads reaching [-1, +2] in x of a ghosted field; a local (ghost
        // 0) field is read at -3 but never widens the shells.
        let t = raw_tape(vec![
            load(0, 0, [-1, 0, 0]),
            load(0, 0, [2, 0, 0]),
            load(1, 0, [-3, 0, 0]),
            store(1, 1, [0; 3], 0),
        ]);
        let allocs = [FieldAlloc::ghosted(2), FieldAlloc::ghosted(0)];
        let (lo, hi) = frontier_widths(&t, &allocs);
        assert_eq!(lo, [1, 0, 0]);
        assert_eq!(hi, [2, 0, 0]);
        assert!(check_frontier(&t, &allocs, lo, hi).is_empty());
    }

    #[test]
    fn iter_extent_widens_the_upper_frontier() {
        // A face kernel (extent +1 along x) reading the centre of a
        // ghosted field still reaches owned+1 from its last iterated cell.
        let mut t = raw_tape(vec![load(0, 0, [0, 0, 0]), store(1, 0, [0; 3], 0)]);
        t.iter_extent = [1, 0, 0];
        let allocs = [FieldAlloc::ghosted(1), FieldAlloc::ghosted(0)];
        let (lo, hi) = frontier_widths(&t, &allocs);
        assert_eq!(lo, [0, 0, 0]);
        assert_eq!(hi, [1, 0, 0]);
        assert!(check_frontier(&t, &allocs, lo, hi).is_empty());
    }

    #[test]
    fn too_narrow_shells_are_typed_errors_per_side() {
        let t = raw_tape(vec![
            load(0, 0, [-2, 0, 0]),
            load(0, 0, [0, 1, 0]),
            store(1, 0, [0; 3], 0),
        ]);
        let allocs = [FieldAlloc::ghosted(2), FieldAlloc::ghosted(0)];
        let d = check_frontier(&t, &allocs, [1, 0, 0], [0, 0, 0]);
        assert!(
            d.iter().any(|d| matches!(
                d.kind,
                DiagKind::FrontierTooNarrow {
                    dim: 0,
                    upper: false,
                    needed: 2,
                    given: 1,
                    ..
                }
            ) && d.instr == Some(0)),
            "{d:?}"
        );
        assert!(
            d.iter().any(|d| matches!(
                d.kind,
                DiagKind::FrontierTooNarrow {
                    dim: 1,
                    upper: true,
                    needed: 1,
                    given: 0,
                    ..
                }
            ) && d.instr == Some(1)),
            "{d:?}"
        );
        assert!(d.iter().all(|d| d.is_error()));
        // Wide-enough shells silence everything.
        assert!(check_frontier(&t, &allocs, [2, 0, 0], [0, 1, 0]).is_empty());
    }
}
