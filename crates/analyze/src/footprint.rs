//! Pass 2 — halo-footprint analysis.
//!
//! Computes each kernel's exact load/store offset envelope per field and
//! proves it fits the storage actually allocated: `ghost` layers below the
//! interior and `ghost + pad` cells above it (staggered face arrays are
//! padded by one cell per swept dimension instead of carrying ghosts).
//! Face kernels iterate `iter_extent` cells past the interior, so the
//! upper reach of an access is `offset + iter_extent`, not the offset
//! alone — exactly the condition under which a ghost-layer exchange of
//! width `ghost` makes every read well-defined.

use crate::diag::{DiagKind, Diagnostic};
use pf_ir::{Tape, TapeOp};

/// Inclusive per-dimension offset envelope of a set of accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Envelope {
    pub min: [i64; 3],
    pub max: [i64; 3],
}

impl Envelope {
    fn empty() -> Envelope {
        Envelope {
            min: [i64::MAX; 3],
            max: [i64::MIN; 3],
        }
    }

    fn include(&mut self, off: [i16; 3]) {
        for (d, &o) in off.iter().enumerate() {
            self.min[d] = self.min[d].min(o as i64);
            self.max[d] = self.max[d].max(o as i64);
        }
    }

    fn is_empty(&self) -> bool {
        self.min[0] == i64::MAX
    }
}

/// Load/store envelopes of one field slot (`None` = no such access).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct FieldFootprint {
    pub loads: Option<Envelope>,
    pub stores: Option<Envelope>,
}

/// The complete memory footprint of a kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Footprint {
    /// Indexed by the tape's field slot.
    pub per_field: Vec<FieldFootprint>,
    pub iter_extent: [usize; 3],
}

impl Footprint {
    /// Scan a tape's accesses. Purely syntactic — safe on malformed tapes.
    pub fn of(tape: &Tape) -> Footprint {
        let mut loads = vec![Envelope::empty(); tape.fields.len()];
        let mut stores = vec![Envelope::empty(); tape.fields.len()];
        for op in &tape.instrs {
            match *op {
                TapeOp::Load { field, off, .. } => {
                    if let Some(e) = loads.get_mut(field as usize) {
                        e.include(off);
                    }
                }
                TapeOp::Store { field, off, .. } => {
                    if let Some(e) = stores.get_mut(field as usize) {
                        e.include(off);
                    }
                }
                _ => {}
            }
        }
        let collapse = |e: Envelope| if e.is_empty() { None } else { Some(e) };
        Footprint {
            per_field: loads
                .into_iter()
                .zip(stores)
                .map(|(l, s)| FieldFootprint {
                    loads: collapse(l),
                    stores: collapse(s),
                })
                .collect(),
            iter_extent: tape.iter_extent,
        }
    }

    /// Ghost layers the kernel's *loads* of `slot` require beyond an
    /// interior padded by `pad` (0 when the field has no access): the
    /// width a halo exchange must fill for the sweep to be well-defined.
    pub fn required_ghost(&self, slot: usize, pad: [usize; 3]) -> usize {
        let Some(env) = self.per_field.get(slot).and_then(|f| f.loads) else {
            return 0;
        };
        (0..3)
            .map(|d| {
                let below = (-env.min[d]).max(0);
                let above = (env.max[d] + self.iter_extent[d] as i64 - pad[d] as i64).max(0);
                below.max(above) as usize
            })
            .max()
            .unwrap_or(0)
    }
}

/// What storage a field slot actually has: `ghost` layers on every side of
/// the interior and `pad` extra interior cells per dimension (staggered
/// arrays are allocated `shape + 1` along swept dimensions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct FieldAlloc {
    pub ghost: usize,
    pub pad: [usize; 3],
}

impl FieldAlloc {
    /// A plain cell-centred field with `ghost` halo layers.
    pub fn ghosted(ghost: usize) -> FieldAlloc {
        FieldAlloc { ghost, pad: [0; 3] }
    }
}

/// Prove every access of `tape` fits `allocs` (indexed by field slot).
/// Reports one diagnostic per offending instruction and dimension.
pub fn check_halo(tape: &Tape, allocs: &[FieldAlloc]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if allocs.len() != tape.fields.len() {
        out.push(Diagnostic::new(
            &tape.name,
            None,
            DiagKind::AllocTableMismatch {
                allocs: allocs.len(),
                fields: tape.fields.len(),
            },
        ));
        return out;
    }
    for (i, op) in tape.instrs.iter().enumerate() {
        let (field, off, is_store) = match *op {
            TapeOp::Load { field, off, .. } => (field, off, false),
            TapeOp::Store { field, off, .. } => (field, off, true),
            _ => continue,
        };
        let Some(alloc) = allocs.get(field as usize) else {
            continue; // slot range violations are the SSA pass's findings
        };
        let name = match tape.fields.get(field as usize) {
            Some(f) => f.name(),
            None => continue,
        };
        for (d, &off_d) in off.iter().enumerate() {
            let o = off_d as i64;
            if o < -(alloc.ghost as i64) {
                out.push(Diagnostic::new(
                    &tape.name,
                    Some(i),
                    DiagKind::HaloUnderflow {
                        field: name.clone(),
                        dim: d,
                        offset: o,
                        ghost: alloc.ghost,
                        is_store,
                    },
                ));
            }
            // The last iterated cell is interior + iter_extent - 1; an
            // access at `o` from it reaches `o + iter_extent` cells past
            // the interior, which must fit in ghost + pad.
            let reach = o + tape.iter_extent[d] as i64;
            let avail = (alloc.ghost + alloc.pad[d]) as i64;
            if reach > avail {
                out.push(Diagnostic::new(
                    &tape.name,
                    Some(i),
                    DiagKind::HaloOverflow {
                        field: name.clone(),
                        dim: d,
                        reach,
                        avail,
                        is_store,
                    },
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{load, raw_tape, store};
    use pf_ir::TapeOp;

    #[test]
    fn footprint_tracks_min_max_per_field_and_side() {
        let t = raw_tape(vec![
            load(0, 0, [-1, 0, 0]),
            load(0, 1, [0, 2, 0]),
            store(1, 0, [0, 0, 0], 0),
        ]);
        let fp = Footprint::of(&t);
        let l = fp.per_field[0].loads.unwrap();
        assert_eq!(l.min, [-1, 0, 0]);
        assert_eq!(l.max, [0, 2, 0]);
        assert!(fp.per_field[0].stores.is_none());
        assert_eq!(fp.per_field[1].stores.unwrap().min, [0, 0, 0]);
        assert_eq!(fp.required_ghost(0, [0; 3]), 2);
        assert_eq!(fp.required_ghost(1, [0; 3]), 0, "stores need no halo");
    }

    #[test]
    fn compact_stencil_fits_one_ghost_layer() {
        let t = raw_tape(vec![
            load(0, 0, [-1, 0, 0]),
            load(0, 0, [1, 0, 0]),
            store(1, 0, [0, 0, 0], 0),
        ]);
        let allocs = [FieldAlloc::ghosted(1), FieldAlloc::ghosted(1)];
        assert!(check_halo(&t, &allocs).is_empty());
    }

    #[test]
    fn out_of_halo_load_is_a_typed_error() {
        let t = raw_tape(vec![load(0, 0, [2, 0, 0]), store(1, 0, [0, 0, 0], 0)]);
        let allocs = [FieldAlloc::ghosted(1), FieldAlloc::ghosted(1)];
        let d = check_halo(&t, &allocs);
        assert!(
            d.iter().any(|d| matches!(
                d.kind,
                DiagKind::HaloOverflow {
                    dim: 0,
                    reach: 2,
                    avail: 1,
                    is_store: false,
                    ..
                }
            ) && d.instr == Some(0)),
            "{d:?}"
        );
    }

    #[test]
    fn iter_extent_counts_against_the_upper_side() {
        // A face kernel (extent +1 along x) loading the centre still
        // reaches one cell past the interior on the last face.
        let mut t = raw_tape(vec![load(0, 0, [0, 0, 0]), store(1, 0, [0, 0, 0], 0)]);
        t.iter_extent = [1, 0, 0];
        let ghosted = [FieldAlloc::ghosted(1), FieldAlloc::ghosted(1)];
        assert!(check_halo(&t, &ghosted).is_empty());
        let unghosted = [FieldAlloc::ghosted(0), FieldAlloc::ghosted(1)];
        let d = check_halo(&t, &unghosted);
        assert!(matches!(d[0].kind, DiagKind::HaloOverflow { .. }), "{d:?}");
        // A padded (staggered-style) allocation also covers the reach.
        let padded = [
            FieldAlloc {
                ghost: 0,
                pad: [1, 0, 0],
            },
            FieldAlloc::ghosted(1),
        ];
        assert!(check_halo(&t, &padded).is_empty());
    }

    #[test]
    fn underflow_and_store_overflow_are_reported() {
        let t = raw_tape(vec![load(0, 0, [0, -2, 0]), store(1, 0, [0, 0, 1], 0)]);
        let allocs = [FieldAlloc::ghosted(1), FieldAlloc::ghosted(0)];
        let d = check_halo(&t, &allocs);
        assert!(d.iter().any(|d| matches!(
            d.kind,
            DiagKind::HaloUnderflow {
                dim: 1,
                offset: -2,
                ..
            }
        )));
        assert!(d.iter().any(|d| matches!(
            d.kind,
            DiagKind::HaloOverflow {
                dim: 2,
                is_store: true,
                ..
            }
        )));
    }

    #[test]
    fn alloc_table_mismatch_is_reported_not_panicked() {
        let t = raw_tape(vec![TapeOp::Const(pf_ir::CF(0.0)), store(0, 0, [0; 3], 0)]);
        let d = check_halo(&t, &[]);
        assert!(matches!(d[0].kind, DiagKind::AllocTableMismatch { .. }));
    }
}
