//! Pass 1 — SSA well-formedness.
//!
//! The tape contract: instruction `i` defines register `i`; operands refer
//! to *earlier*, *value-producing* instructions; slot indices stay inside
//! the tape's field/param tables. This is the foundation every other pass
//! (and both executors) assumes — a transform that breaks it produces
//! garbage reads, not wrong physics, so it is checked first and the
//! deeper passes are skipped when it fails.

use crate::diag::{DiagKind, Diagnostic};
use pf_ir::{Tape, TapeOp};

/// Check SSA well-formedness. Returns every violation found.
pub fn check_ssa(tape: &Tape) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = tape.instrs.len();
    let diag = |i: Option<usize>, kind: DiagKind| Diagnostic::new(&tape.name, i, kind);

    if tape.levels.len() != n {
        out.push(diag(
            None,
            DiagKind::LevelsLengthMismatch {
                levels: tape.levels.len(),
                instrs: n,
            },
        ));
    }

    for (i, op) in tape.instrs.iter().enumerate() {
        for a in op.args() {
            let j = a.0 as usize;
            if j >= i {
                out.push(diag(Some(i), DiagKind::UseBeforeDef { reg: a.0 }));
            } else if !tape.instrs[j].is_pure() {
                // Stores and fences define no value; consuming their
                // register reads whatever the executor left there.
                out.push(diag(Some(i), DiagKind::ConsumedNonValue { reg: a.0 }));
            }
        }
        match *op {
            TapeOp::Load { field, comp, .. } | TapeOp::Store { field, comp, .. } => {
                if field as usize >= tape.fields.len() {
                    out.push(diag(Some(i), DiagKind::FieldSlotOutOfRange { slot: field }));
                } else if comp as usize >= tape.fields[field as usize].components() {
                    out.push(diag(
                        Some(i),
                        DiagKind::ComponentOutOfRange {
                            field: tape.fields[field as usize].name(),
                            comp,
                        },
                    ));
                }
            }
            TapeOp::Param(p) if p as usize >= tape.params.len() => {
                out.push(diag(Some(i), DiagKind::ParamSlotOutOfRange { slot: p }));
            }
            TapeOp::Coord(d) | TapeOp::CellIdx(d) if d >= 3 => {
                out.push(diag(Some(i), DiagKind::AxisOutOfRange { axis: d }));
            }
            _ => {}
        }
    }

    if n > 0 && !tape.instrs.iter().any(|op| op.is_store()) {
        out.push(diag(None, DiagKind::NoStores));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{raw_tape, store};
    use pf_ir::{TapeOp, VReg, CF};

    #[test]
    fn clean_tape_has_no_findings() {
        let t = raw_tape(vec![TapeOp::Const(CF(1.0)), store(0, 0, [0; 3], 0)]);
        assert!(check_ssa(&t).is_empty());
    }

    #[test]
    fn use_before_def_is_typed_not_a_panic() {
        let t = raw_tape(vec![
            TapeOp::Const(CF(1.0)),
            TapeOp::Add(VReg(0), VReg(5)),
            store(0, 0, [0; 3], 1),
        ]);
        let d = check_ssa(&t);
        assert!(
            d.iter()
                .any(|d| matches!(d.kind, DiagKind::UseBeforeDef { reg: 5 }) && d.instr == Some(1)),
            "{d:?}"
        );
    }

    #[test]
    fn consuming_a_store_register_is_flagged() {
        let t = raw_tape(vec![
            TapeOp::Const(CF(2.0)),
            store(0, 0, [0; 3], 0),
            TapeOp::Neg(VReg(1)),
            store(0, 0, [1, 0, 0], 2),
        ]);
        let d = check_ssa(&t);
        assert!(
            d.iter()
                .any(|d| matches!(d.kind, DiagKind::ConsumedNonValue { reg: 1 })),
            "{d:?}"
        );
    }

    #[test]
    fn slot_component_param_and_axis_ranges_are_checked() {
        let t = raw_tape(vec![
            TapeOp::Param(3),
            TapeOp::Coord(7),
            TapeOp::Load {
                field: 9,
                comp: 0,
                off: [0; 3],
            },
            TapeOp::Load {
                field: 0,
                comp: 5,
                off: [0; 3],
            },
            store(0, 0, [0; 3], 0),
        ]);
        let d = check_ssa(&t);
        let has = |f: fn(&DiagKind) -> bool| d.iter().any(|d| f(&d.kind));
        assert!(has(|k| matches!(
            k,
            DiagKind::ParamSlotOutOfRange { slot: 3 }
        )));
        assert!(has(|k| matches!(k, DiagKind::AxisOutOfRange { axis: 7 })));
        assert!(has(|k| matches!(
            k,
            DiagKind::FieldSlotOutOfRange { slot: 9 }
        )));
        assert!(has(|k| matches!(
            k,
            DiagKind::ComponentOutOfRange { comp: 5, .. }
        )));
    }

    #[test]
    fn storeless_tape_is_dead() {
        let t = raw_tape(vec![TapeOp::Const(CF(1.0))]);
        assert!(check_ssa(&t)
            .iter()
            .any(|d| matches!(d.kind, DiagKind::NoStores)));
    }
}
