//! Schedule lints: properties of the instruction order itself.
//!
//! The LICM pass sorts instructions by level so executors can hoist the
//! monotone prefix sections out of inner loops. GPU-oriented reschedules
//! (live-range minimization, fence insertion) legitimately break that
//! monotonicity — the GPU backend does not hoist — but running such a tape
//! on a CPU executor silently degrades to per-cell execution of every
//! loop-invariant instruction. [`check_levels`] surfaces that as a warning
//! so the regression is visible in verification suites and BENCH reports
//! instead of only as lost throughput.

use crate::diag::{DiagKind, Diagnostic};
use pf_ir::Tape;

/// Warn when instruction levels are non-monotone (LICM hoisting lost on
/// CPU executors). At most one finding per tape, located at the first
/// descent and carrying *every* offending instruction index so a report
/// reader can size the regression without re-deriving the schedule.
pub fn check_levels(tape: &Tape) -> Vec<Diagnostic> {
    let mut descents = Vec::new();
    let mut first: Option<(u8, u8)> = None;
    for (i, w) in tape.levels.windows(2).enumerate() {
        if w[1] < w[0] {
            descents.push(i + 1);
            if first.is_none() {
                first = Some((w[0], w[1]));
            }
        }
    }
    match first {
        Some((prev, next)) => {
            let at = descents[0];
            vec![Diagnostic::new(
                &tape.name,
                Some(at),
                DiagKind::NonMonotoneLevels {
                    prev,
                    next,
                    descents,
                },
            )]
        }
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{load, raw_tape, store};

    #[test]
    fn monotone_levels_are_clean() {
        let mut t = raw_tape(vec![load(0, 0, [0; 3]), store(1, 0, [0; 3], 0)]);
        t.levels = vec![3, 3];
        assert!(check_levels(&t).is_empty());
        t.levels = vec![0, 3];
        assert!(check_levels(&t).is_empty());
    }

    #[test]
    fn descending_levels_warn_once_at_first_descent() {
        let mut t = raw_tape(vec![
            load(0, 0, [0; 3]),
            pf_ir::TapeOp::Const(pf_ir::CF(2.0)),
            store(1, 0, [0; 3], 0),
        ]);
        t.levels = vec![3, 0, 3];
        let diags = check_levels(&t);
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(d.kind.code(), "schedule.licm-lost");
        assert_eq!(d.instr, Some(1));
        assert!(!d.is_error(), "executable, just slow — a warning");
        match &d.kind {
            DiagKind::NonMonotoneLevels { descents, .. } => assert_eq!(descents, &vec![1]),
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn all_descent_indices_are_collected() {
        let mut t = raw_tape(vec![
            load(0, 0, [0; 3]),
            pf_ir::TapeOp::Const(pf_ir::CF(2.0)),
            load(0, 1, [0; 3]),
            pf_ir::TapeOp::Const(pf_ir::CF(3.0)),
            store(1, 0, [0; 3], 0),
        ]);
        t.levels = vec![3, 0, 3, 1, 3];
        let diags = check_levels(&t);
        assert_eq!(diags.len(), 1, "still one finding per tape");
        match &diags[0].kind {
            DiagKind::NonMonotoneLevels {
                prev,
                next,
                descents,
            } => {
                assert_eq!((*prev, *next), (3, 0), "located at the first descent");
                assert_eq!(descents, &vec![1, 3]);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }
}
