//! Criterion benchmarks of generated-kernel execution: the µ/φ variants of
//! Table 1 & Fig. 2 on the native executor, serial vs rayon-parallel, and
//! the approximate-math modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pf_backend::{run_kernel, ExecMode, RunCtx};
use pf_bench::{kernels_for, workload_store};
use pf_core::{p1, p2};

fn bench_variants(c: &mut Criterion) {
    let p = p1();
    let ks = kernels_for(&p);
    let shape = [24usize, 24, 12];
    let cells = (shape[0] * shape[1] * shape[2]) as u64;
    let ctx = RunCtx {
        dx: [p.dx; 3],
        ..RunCtx::default()
    };

    let mut g = c.benchmark_group("p1_kernel_variants");
    g.throughput(Throughput::Elements(cells));
    g.sample_size(10);
    g.bench_function("mu_full", |b| {
        let mut store = workload_store(&p, &ks, shape);
        b.iter(|| run_kernel(&ks.mu_full, &mut store, &[], shape, &ctx, ExecMode::Serial));
    });
    g.bench_function("mu_split", |b| {
        let mut store = workload_store(&p, &ks, shape);
        b.iter(|| {
            for t in &ks.mu_split.flux_tapes {
                run_kernel(t, &mut store, &[], shape, &ctx, ExecMode::Serial);
            }
            run_kernel(
                &ks.mu_split.update,
                &mut store,
                &[],
                shape,
                &ctx,
                ExecMode::Serial,
            );
        });
    });
    g.bench_function("phi_full", |b| {
        let mut store = workload_store(&p, &ks, shape);
        b.iter(|| run_kernel(&ks.phi_full, &mut store, &[], shape, &ctx, ExecMode::Serial));
    });
    g.bench_function("phi_split", |b| {
        let mut store = workload_store(&p, &ks, shape);
        b.iter(|| {
            for t in &ks.phi_split.flux_tapes {
                run_kernel(t, &mut store, &[], shape, &ctx, ExecMode::Serial);
            }
            run_kernel(
                &ks.phi_split.update,
                &mut store,
                &[],
                shape,
                &ctx,
                ExecMode::Serial,
            );
        });
    });
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let p = p1();
    let ks = kernels_for(&p);
    let shape = [32usize, 32, 16];
    let cells = (shape[0] * shape[1] * shape[2]) as u64;
    let ctx = RunCtx {
        dx: [p.dx; 3],
        ..RunCtx::default()
    };
    let mut g = c.benchmark_group("executor_modes");
    g.throughput(Throughput::Elements(cells));
    g.sample_size(10);
    for (name, mode) in [
        ("serial", ExecMode::Serial),
        ("parallel", ExecMode::Parallel),
    ] {
        g.bench_with_input(BenchmarkId::new("mu_full", name), &mode, |b, &mode| {
            let mut store = workload_store(&p, &ks, shape);
            b.iter(|| run_kernel(&ks.mu_full, &mut store, &[], shape, &ctx, mode));
        });
    }
    g.finish();
}

fn bench_p2_anisotropy(c: &mut Criterion) {
    // "Apparently small changes in the model can lead to vastly different
    // performance characteristics" (§5.1): P2's anisotropic φ kernel.
    let p = p2();
    let ks = kernels_for(&p);
    let shape = [16usize, 16, 8];
    let cells = (shape[0] * shape[1] * shape[2]) as u64;
    let ctx = RunCtx {
        dx: [p.dx; 3],
        ..RunCtx::default()
    };
    let mut g = c.benchmark_group("p2_anisotropic");
    g.throughput(Throughput::Elements(cells));
    g.sample_size(10);
    g.bench_function("phi_full", |b| {
        let mut store = workload_store(&p, &ks, shape);
        b.iter(|| run_kernel(&ks.phi_full, &mut store, &[], shape, &ctx, ExecMode::Serial));
    });
    g.finish();
}

fn bench_approx_math(c: &mut Criterion) {
    let p = p1();
    let ks = kernels_for(&p);
    let shape = [16usize, 16, 8];
    let ctx = RunCtx {
        dx: [p.dx; 3],
        ..RunCtx::default()
    };
    let mut fast = ks.mu_full.clone();
    fast.approx.fast_div = true;
    fast.approx.fast_rsqrt = true;
    let mut g = c.benchmark_group("approx_math");
    g.sample_size(10);
    for (name, tape) in [("exact", &ks.mu_full), ("approx", &fast)] {
        g.bench_function(name, |b| {
            let mut store = workload_store(&p, &ks, shape);
            b.iter(|| run_kernel(tape, &mut store, &[], shape, &ctx, ExecMode::Serial));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_variants,
    bench_parallel,
    bench_p2_anisotropy,
    bench_approx_math
);
criterion_main!(benches);
