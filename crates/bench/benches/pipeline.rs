//! Criterion benchmarks of the code-generation pipeline itself: model
//! building, full kernel generation (the paper's "30 to 60 seconds"
//! recompilation budget), the GPU register transformations, and the
//! performance-model machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_core::{build_model, p1};
use pf_ir::{generate, rematerialize, schedule_min_live, GenOptions};
use pf_machine::skylake_8174;
use pf_perfmodel::simulate_sweep;
use pf_stencil::{discretize_full, Discretization, StencilKernel};

fn bench_generation(c: &mut Criterion) {
    let p = p1();
    let mut g = c.benchmark_group("codegen");
    g.sample_size(10);
    g.bench_function("build_model_p1", |b| b.iter(|| build_model(&p)));

    let m = build_model(&p);
    let disc = Discretization::new(p.dim, [p.dx; 3]);
    g.bench_function("discretize_mu_full", |b| {
        b.iter(|| discretize_full(&disc, &m.mu_updates))
    });
    let k = StencilKernel::new("bench_mu", discretize_full(&disc, &m.mu_updates));
    g.bench_function("generate_mu_full", |b| {
        b.iter(|| generate(&k, &GenOptions::default()))
    });
    g.finish();
}

fn bench_gpu_transforms(c: &mut Criterion) {
    let p = p1();
    let m = build_model(&p);
    let disc = Discretization::new(p.dim, [p.dx; 3]);
    let k = StencilKernel::new("bench_mu_t", discretize_full(&disc, &m.mu_updates));
    let tape = generate(&k, &GenOptions::default());
    let mut g = c.benchmark_group("gpu_transforms");
    g.sample_size(10);
    g.bench_function("schedule_beam20", |b| {
        b.iter(|| schedule_min_live(&tape, 20))
    });
    g.bench_function("rematerialize", |b| b.iter(|| rematerialize(&tape, 2)));
    g.finish();
}

fn bench_perfmodel(c: &mut Criterion) {
    let p = p1();
    let m = build_model(&p);
    let disc = Discretization::new(p.dim, [p.dx; 3]);
    let k = StencilKernel::new("bench_mu_pm", discretize_full(&disc, &m.mu_updates));
    let tape = generate(&k, &GenOptions::default());
    let sock = skylake_8174();
    let mut g = c.benchmark_group("perfmodel");
    g.sample_size(10);
    g.bench_function("cache_simulation_16x16x4", |b| {
        b.iter(|| simulate_sweep(&tape, &sock, [16, 16, 4]))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_gpu_transforms,
    bench_perfmodel
);
criterion_main!(benches);
