//! The schema-versioned `BENCH_<name>.json` artifact.
//!
//! Every fig/table binary emits one of these: for each kernel variant the
//! *measured* executor throughput, the ECM-*predicted* throughput for the
//! same kernel on the modeled machine, and their ratio — the feedback loop
//! the paper's methodology implies (model-driven variant selection is only
//! trustworthy while predictions track measurements). A full `pf-trace`
//! metric snapshot rides along, so a bench artifact doubles as a runtime
//! profile (kernel spans, comm counters, checkpoint drains).
//!
//! Schema `pf-bench/6` (v2 added the per-record execution `mode` and made
//! `extra.analysis` mandatory — every artifact now proves which engine was
//! measured and that static verification actually ran; v3 added
//! `extra.measured_overlap` — the *measured* blocking-vs-overlapped
//! distributed step-loop throughput on the bench host, mandatory for the
//! comm-scheduling artifacts `table2` and `fig3` so the Table 2 overlap
//! prediction is always printed next to a real measurement; v4 added
//! `"native"` to the known execution modes — kernel records measured
//! through the compiled-cdylib backend, whose `exec.native.*` cache
//! counters ride along in `metrics`; v5 added `extra.tuning` — per-kernel
//! autotuning outcomes with chosen-vs-best **regret**, mandatory for the
//! tuned artifacts (`table1`) so tuning quality is a number the perf gate
//! can fail on, not a log line; v6 added `extra.weak_scaling` — the
//! measured-vs-predicted weak-scaling series over simulated rank counts at
//! fixed per-rank volume, mandatory for the scaling artifact
//! (`weak_scaling`) so parallel efficiency is gated against the
//! `pf-cluster` prediction the same way ECM predictions gate kernels):
//!
//! ```text
//! {
//!   "schema": "pf-bench/6",
//!   "name": "fig2_left",
//!   "smoke": true,
//!   "machine": {"model": "skylake_8174", "threads_avail": 1},
//!   "kernels": [
//!     {"params": "P1", "kernel": "mu", "variant": "split",
//!      "mode": "serial", "measured_mlups": 0.91,
//!      "predicted_mlups": 1385.2, "ratio": 0.00066,
//!      "ecm": {"t_comp": ..., ...}},
//!     ...
//!   ],
//!   "extra": {
//!     "analysis": {"kernels_verified": ..., ...},
//!     "tuning": {"kernels": [
//!       {"params": "P1", "kernel": "phi",
//!        "chosen_variant": "split", "chosen_mode": "native",
//!        "static_variant": "full", "static_mode": "vectorized",
//!        "candidates": 12, "measured": 27,
//!        "best_mlups": 10.5, "chosen_mlups": 10.5, "static_mlups": 0.5,
//!        "regret_chosen": 0.0, "regret_static": 0.95}, ...]},
//!     ...
//!   },
//!   "metrics": { ... pf_trace::Report JSON ... }
//! }
//! ```
//!
//! `validate` checks structure, value sanity (finite, positive throughputs,
//! ratio consistent with measured/predicted, `mode` a known engine), and
//! that `metrics` parses back as a [`pf_trace::Report`]. `scripts/ci.sh`
//! runs it over every artifact of a bench-smoke run; `scripts/perf_gate.sh`
//! diffs fresh runs against the committed baselines.

use pf_trace::{Json, Report};
use std::collections::BTreeMap;

/// Schema identifier; bump on breaking layout changes.
pub const SCHEMA: &str = "pf-bench/6";

/// Artifacts that exercise the communication-scheduling options and must
/// therefore carry `extra.measured_overlap` (schema pf-bench/3).
pub const COMM_ARTIFACTS: [&str; 2] = ["table2", "fig3"];

/// Artifacts that run the autotuner and must therefore carry
/// `extra.tuning` (schema pf-bench/5).
pub const TUNED_ARTIFACTS: [&str; 1] = ["table1"];

/// Artifacts that sweep simulated rank counts and must therefore carry
/// `extra.weak_scaling` (schema pf-bench/6).
pub const SCALING_ARTIFACTS: [&str; 1] = ["weak_scaling"];

/// Required numeric fields of each `extra.weak_scaling.series[]` point.
pub const WEAK_SCALING_POINT_FIELDS: [&str; 5] = [
    "ranks",
    "measured_mlups_per_rank",
    "measured_efficiency",
    "predicted_mlups_per_rank",
    "predicted_efficiency",
];

/// Required string fields of each `extra.tuning.kernels[]` entry. The two
/// `*_mode` fields must also be members of [`EXEC_MODES`].
pub const TUNING_KERNEL_STR_FIELDS: [&str; 6] = [
    "params",
    "kernel",
    "chosen_variant",
    "chosen_mode",
    "static_variant",
    "static_mode",
];

/// Required numeric fields of each `extra.tuning.kernels[]` entry.
pub const TUNING_KERNEL_NUM_FIELDS: [&str; 7] = [
    "candidates",
    "measured",
    "best_mlups",
    "chosen_mlups",
    "static_mlups",
    "regret_chosen",
    "regret_static",
];

/// Field names of the `extra.measured_overlap` object.
pub const MEASURED_OVERLAP_FIELDS: [&str; 6] = [
    "ranks",
    "global_cells",
    "steps",
    "blocking_mlups",
    "overlapped_mlups",
    "speedup",
];

/// Execution-engine names a kernel record may carry (`KernelPerf::mode`).
pub const EXEC_MODES: [&str; 4] = ["serial", "parallel", "vectorized", "native"];

/// Measured-vs-predicted record for one kernel variant.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelPerf {
    /// Parameterization name ("P1"/"P2").
    pub params: String,
    /// Kernel family ("mu"/"phi").
    pub kernel: String,
    /// Variant within the family ("full"/"split").
    pub variant: String,
    /// Execution engine that produced `measured_mlups` (one of
    /// [`EXEC_MODES`]: "serial", "parallel", "vectorized").
    pub mode: String,
    /// Executor throughput on this host, single core, MLUP/s.
    pub measured_mlups: f64,
    /// ECM-model single-core throughput on the modeled socket, MLUP/s.
    pub predicted_mlups: f64,
    /// ECM decomposition terms (cycles per cache line) and related
    /// diagnostics, free-form name → value.
    pub ecm: BTreeMap<String, f64>,
}

impl KernelPerf {
    /// Measured / predicted. The executor is an interpreter while the
    /// prediction models compiled AVX-512 code, so this sits far below 1;
    /// what matters is that it stays *stable* — a drop means the measured
    /// path regressed relative to what the model promises.
    pub fn ratio(&self) -> f64 {
        self.measured_mlups / self.predicted_mlups
    }

    /// Identity of this record inside a report (diff key). Includes the
    /// execution mode: the same kernel measured under two engines is two
    /// distinct baseline series.
    pub fn key(&self) -> String {
        format!(
            "{}/{}-{}@{}",
            self.params, self.kernel, self.variant, self.mode
        )
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("params".into(), Json::str(&self.params)),
            ("kernel".into(), Json::str(&self.kernel)),
            ("variant".into(), Json::str(&self.variant)),
            ("mode".into(), Json::str(&self.mode)),
            ("measured_mlups".into(), Json::Num(self.measured_mlups)),
            ("predicted_mlups".into(), Json::Num(self.predicted_mlups)),
            ("ratio".into(), Json::Num(self.ratio())),
            (
                "ecm".into(),
                Json::Obj(
                    self.ecm
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<KernelPerf, String> {
        let s = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("kernel entry missing string '{k}'"))
        };
        let n = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("kernel entry missing number '{k}'"))
        };
        let mut ecm = BTreeMap::new();
        for (k, v) in j.get("ecm").and_then(Json::as_obj).into_iter().flatten() {
            ecm.insert(
                k.clone(),
                v.as_f64()
                    .ok_or_else(|| format!("ecm term '{k}' not numeric"))?,
            );
        }
        Ok(KernelPerf {
            params: s("params")?,
            kernel: s("kernel")?,
            variant: s("variant")?,
            mode: s("mode")?,
            measured_mlups: n("measured_mlups")?,
            predicted_mlups: n("predicted_mlups")?,
            ecm,
        })
    }
}

/// One complete bench artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Binary name ("fig2_left", "table1", …).
    pub name: String,
    /// Was this a CI bench-smoke run (tiny grid) rather than a full run?
    pub smoke: bool,
    /// Modeled target machine for the predictions.
    pub machine_model: String,
    /// Host threads available when measuring.
    pub threads_avail: u64,
    pub kernels: Vec<KernelPerf>,
    /// Binary-specific payload (series, tables) — not schema-checked
    /// beyond being an object.
    pub extra: BTreeMap<String, Json>,
    /// `pf_trace` snapshot taken at emission time.
    pub metrics: Report,
}

impl BenchReport {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema".into(), Json::str(SCHEMA)),
            ("name".into(), Json::str(&self.name)),
            ("smoke".into(), Json::Bool(self.smoke)),
            (
                "machine".into(),
                Json::obj([
                    ("model".into(), Json::str(&self.machine_model)),
                    ("threads_avail".into(), Json::Num(self.threads_avail as f64)),
                ]),
            ),
            (
                "kernels".into(),
                Json::Arr(self.kernels.iter().map(KernelPerf::to_json).collect()),
            ),
            ("extra".into(), Json::Obj(self.extra.clone())),
            ("metrics".into(), self.metrics.to_json()),
        ])
    }

    pub fn from_json(j: &Json) -> Result<BenchReport, String> {
        let violations = validate(j);
        if !violations.is_empty() {
            return Err(violations.join("; "));
        }
        let machine = j.get("machine").unwrap();
        Ok(BenchReport {
            name: j.get("name").unwrap().as_str().unwrap().to_string(),
            smoke: j.get("smoke").unwrap().as_bool().unwrap(),
            machine_model: machine.get("model").unwrap().as_str().unwrap().to_string(),
            threads_avail: machine.get("threads_avail").unwrap().as_u64().unwrap(),
            kernels: j
                .get("kernels")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(KernelPerf::from_json)
                .collect::<Result<_, _>>()?,
            extra: j.get("extra").unwrap().as_obj().unwrap().clone(),
            metrics: Report::from_json(j.get("metrics").unwrap())?,
        })
    }

    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let j = pf_trace::parse_json(text).map_err(|e| e.to_string())?;
        BenchReport::from_json(&j)
    }
}

/// Check a parsed document against schema `pf-bench/3`. Returns every
/// violation found (empty = valid).
pub fn validate(j: &Json) -> Vec<String> {
    let mut out = Vec::new();
    match j.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => out.push(format!("schema is '{s}', expected '{SCHEMA}'")),
        None => out.push("missing string field 'schema'".into()),
    }
    match j.get("name").and_then(Json::as_str) {
        Some(n) if !n.is_empty() => {}
        _ => out.push("missing or empty string field 'name'".into()),
    }
    if j.get("smoke").and_then(Json::as_bool).is_none() {
        out.push("missing bool field 'smoke'".into());
    }
    match j.get("machine") {
        Some(m) => {
            if m.get("model").and_then(Json::as_str).is_none() {
                out.push("machine.model missing".into());
            }
            match m.get("threads_avail").and_then(Json::as_u64) {
                Some(t) if t >= 1 => {}
                _ => out.push("machine.threads_avail must be an integer >= 1".into()),
            }
        }
        None => out.push("missing object field 'machine'".into()),
    }
    match j.get("kernels").and_then(Json::as_arr) {
        Some([]) => out.push("kernels array is empty".into()),
        Some(ks) => {
            for (i, k) in ks.iter().enumerate() {
                for field in ["params", "kernel", "variant"] {
                    if k.get(field).and_then(Json::as_str).is_none() {
                        out.push(format!("kernels[{i}].{field} missing"));
                    }
                }
                match k.get("mode").and_then(Json::as_str) {
                    Some(m) if EXEC_MODES.contains(&m) => {}
                    Some(m) => {
                        out.push(format!("kernels[{i}].mode '{m}' not one of {EXEC_MODES:?}"))
                    }
                    None => out.push(format!("kernels[{i}].mode missing")),
                }
                let num = |f: &str| k.get(f).and_then(Json::as_f64);
                match (num("measured_mlups"), num("predicted_mlups"), num("ratio")) {
                    (Some(m), Some(p), Some(r)) => {
                        if !(m.is_finite() && m > 0.0) {
                            out.push(format!("kernels[{i}].measured_mlups must be finite > 0"));
                        }
                        if !(p.is_finite() && p > 0.0) {
                            out.push(format!("kernels[{i}].predicted_mlups must be finite > 0"));
                        }
                        if m > 0.0 && p > 0.0 && ((r - m / p).abs() > 1e-9 * (m / p).abs()) {
                            out.push(format!(
                                "kernels[{i}].ratio {} inconsistent with measured/predicted {}",
                                r,
                                m / p
                            ));
                        }
                    }
                    _ => out.push(format!(
                        "kernels[{i}] missing measured_mlups/predicted_mlups/ratio"
                    )),
                }
            }
        }
        None => out.push("missing array field 'kernels'".into()),
    }
    match j.get("extra").and_then(Json::as_obj) {
        Some(extra) => {
            // Since pf-bench/2 `analysis` is mandatory (and still in v3): an object of numeric
            // statistics covering at least one verified kernel. An artifact
            // without it means the static-verification stage silently never
            // ran over the benched kernels.
            match extra.get("analysis") {
                Some(a) => match a.as_obj() {
                    Some(stats) => {
                        for (k, v) in stats {
                            if v.as_f64().is_none() {
                                out.push(format!("extra.analysis.{k} must be numeric"));
                            }
                        }
                        match stats.get("kernels_verified").and_then(Json::as_f64) {
                            Some(n) if n >= 1.0 => {}
                            Some(_) => {
                                out.push("extra.analysis.kernels_verified must be >= 1".into())
                            }
                            None => out
                                .push("extra.analysis present but kernels_verified missing".into()),
                        }
                    }
                    None => out.push("extra.analysis must be an object".into()),
                },
                None => out.push("missing object field 'extra.analysis'".into()),
            }
            // Since pf-bench/3: comm-scheduling artifacts carry the
            // *measured* blocking-vs-overlapped comparison; any artifact
            // that includes one must have it well-formed.
            let needs_overlap = j
                .get("name")
                .and_then(Json::as_str)
                .is_some_and(|n| COMM_ARTIFACTS.contains(&n));
            match extra.get("measured_overlap") {
                Some(mo) => match mo.as_obj() {
                    Some(fields) => {
                        for f in MEASURED_OVERLAP_FIELDS {
                            match fields.get(f).and_then(Json::as_f64) {
                                Some(v) if v.is_finite() && v > 0.0 => {}
                                _ => out.push(format!(
                                    "extra.measured_overlap.{f} must be a finite number > 0"
                                )),
                            }
                        }
                        let n = |f: &str| fields.get(f).and_then(Json::as_f64);
                        if let (Some(b), Some(o), Some(s)) =
                            (n("blocking_mlups"), n("overlapped_mlups"), n("speedup"))
                        {
                            if b > 0.0 && (s - o / b).abs() > 1e-9 * (o / b).abs() {
                                out.push(format!(
                                    "extra.measured_overlap.speedup {s} inconsistent with \
                                     overlapped/blocking {}",
                                    o / b
                                ));
                            }
                        }
                    }
                    None => out.push("extra.measured_overlap must be an object".into()),
                },
                None if needs_overlap => out.push(
                    "missing object field 'extra.measured_overlap' \
                     (required for comm-scheduling artifacts)"
                        .into(),
                ),
                None => {}
            }
            // Since pf-bench/5: tuned artifacts carry the autotuning
            // outcome per kernel; wherever the block appears it must be
            // well-formed and its regrets self-consistent, so the perf
            // gate can trust `regret_chosen` as a gated number.
            let needs_tuning = j
                .get("name")
                .and_then(Json::as_str)
                .is_some_and(|n| TUNED_ARTIFACTS.contains(&n));
            match extra.get("tuning") {
                Some(t) => match t.get("kernels").and_then(Json::as_arr) {
                    Some([]) | None => {
                        out.push("extra.tuning.kernels must be a non-empty array".into())
                    }
                    Some(ks) => {
                        for (i, k) in ks.iter().enumerate() {
                            for f in TUNING_KERNEL_STR_FIELDS {
                                match k.get(f).and_then(Json::as_str) {
                                    Some(v) if !v.is_empty() => {
                                        if f.ends_with("_mode") && !EXEC_MODES.contains(&v) {
                                            out.push(format!(
                                                "extra.tuning.kernels[{i}].{f} '{v}' \
                                                 not one of {EXEC_MODES:?}"
                                            ));
                                        }
                                    }
                                    _ => out.push(format!(
                                        "extra.tuning.kernels[{i}].{f} missing or empty"
                                    )),
                                }
                            }
                            let num = |f: &str| k.get(f).and_then(Json::as_f64);
                            for f in TUNING_KERNEL_NUM_FIELDS {
                                match num(f) {
                                    Some(v) if v.is_finite() && v >= 0.0 => {}
                                    _ => out.push(format!(
                                        "extra.tuning.kernels[{i}].{f} must be finite >= 0"
                                    )),
                                }
                            }
                            if let (Some(best), Some(chosen), Some(stat), Some(rc), Some(rs)) = (
                                num("best_mlups"),
                                num("chosen_mlups"),
                                num("static_mlups"),
                                num("regret_chosen"),
                                num("regret_static"),
                            ) {
                                if best <= 0.0 {
                                    out.push(format!(
                                        "extra.tuning.kernels[{i}].best_mlups must be > 0"
                                    ));
                                } else {
                                    let tol = 1e-9;
                                    if chosen > best * (1.0 + tol) || stat > best * (1.0 + tol) {
                                        out.push(format!(
                                            "extra.tuning.kernels[{i}]: best_mlups {best} is \
                                             not the maximum of chosen {chosen} / static {stat}"
                                        ));
                                    }
                                    let want_rc = (1.0 - chosen / best).max(0.0);
                                    let want_rs = (1.0 - stat / best).max(0.0);
                                    if (rc - want_rc).abs() > 1e-6 {
                                        out.push(format!(
                                            "extra.tuning.kernels[{i}].regret_chosen {rc} \
                                             inconsistent with 1 - chosen/best = {want_rc}"
                                        ));
                                    }
                                    if (rs - want_rs).abs() > 1e-6 {
                                        out.push(format!(
                                            "extra.tuning.kernels[{i}].regret_static {rs} \
                                             inconsistent with 1 - static/best = {want_rs}"
                                        ));
                                    }
                                }
                            }
                        }
                    }
                },
                None if needs_tuning => out.push(
                    "missing object field 'extra.tuning' (required for tuned artifacts)".into(),
                ),
                None => {}
            }
            // Since pf-bench/6: scaling artifacts carry the weak-scaling
            // series — measured and pf-cluster-predicted per-rank
            // throughput over increasing simulated rank counts at fixed
            // per-rank volume. The measured efficiency normalizes away the
            // host's time-sharing of ranks onto `machine.threads_avail`
            // threads (oversubscription factor max(1, ranks/threads)), so
            // what remains is genuine runtime overhead and the gate can
            // compare it against the analytic prediction.
            let needs_scaling = j
                .get("name")
                .and_then(Json::as_str)
                .is_some_and(|n| SCALING_ARTIFACTS.contains(&n));
            let threads = j
                .get("machine")
                .and_then(|m| m.get("threads_avail"))
                .and_then(Json::as_f64)
                .unwrap_or(1.0);
            match extra.get("weak_scaling") {
                Some(ws) => match ws.as_obj() {
                    Some(fields) => {
                        for f in ["per_rank_cells", "steps"] {
                            match fields.get(f).and_then(Json::as_f64) {
                                Some(v) if v.is_finite() && v > 0.0 => {}
                                _ => out.push(format!(
                                    "extra.weak_scaling.{f} must be a finite number > 0"
                                )),
                            }
                        }
                        match fields.get("series").and_then(Json::as_arr) {
                            Some([]) | None => out
                                .push("extra.weak_scaling.series must be a non-empty array".into()),
                            Some(pts) => {
                                let mut prev_ranks = 0.0f64;
                                let num = |p: &Json, f: &str| p.get(f).and_then(Json::as_f64);
                                let base = pts.first().unwrap();
                                for (i, p) in pts.iter().enumerate() {
                                    for f in WEAK_SCALING_POINT_FIELDS {
                                        match num(p, f) {
                                            Some(v) if v.is_finite() && v > 0.0 => {}
                                            _ => out.push(format!(
                                                "extra.weak_scaling.series[{i}].{f} must be \
                                                 a finite number > 0"
                                            )),
                                        }
                                    }
                                    if let Some(r) = num(p, "ranks") {
                                        if r <= prev_ranks {
                                            out.push(format!(
                                                "extra.weak_scaling.series[{i}].ranks {r} not \
                                                 strictly increasing"
                                            ));
                                        }
                                        prev_ranks = r;
                                    }
                                    let corrected = |p: &Json| -> Option<f64> {
                                        let r = num(p, "ranks")?;
                                        Some(
                                            num(p, "measured_mlups_per_rank")?
                                                * (r / threads).max(1.0),
                                        )
                                    };
                                    if let (Some(c), Some(c0), Some(eff)) = (
                                        corrected(p),
                                        corrected(base),
                                        num(p, "measured_efficiency"),
                                    ) {
                                        let want = c / c0;
                                        if (eff - want).abs() > 1e-6 * want.abs() {
                                            out.push(format!(
                                                "extra.weak_scaling.series[{i}].\
                                                 measured_efficiency {eff} inconsistent with \
                                                 oversubscription-corrected per-rank rates \
                                                 ({want})"
                                            ));
                                        }
                                    }
                                    if let (Some(p_r), Some(p_0), Some(eff)) = (
                                        num(p, "predicted_mlups_per_rank"),
                                        num(base, "predicted_mlups_per_rank"),
                                        num(p, "predicted_efficiency"),
                                    ) {
                                        let want = p_r / p_0;
                                        if (eff - want).abs() > 1e-9 * want.abs() {
                                            out.push(format!(
                                                "extra.weak_scaling.series[{i}].\
                                                 predicted_efficiency {eff} inconsistent with \
                                                 predicted per-rank rates ({want})"
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                    }
                    None => out.push("extra.weak_scaling must be an object".into()),
                },
                None if needs_scaling => out.push(
                    "missing object field 'extra.weak_scaling' \
                     (required for scaling artifacts)"
                        .into(),
                ),
                None => {}
            }
        }
        None => out.push("missing object field 'extra'".into()),
    }
    match j.get("metrics") {
        Some(m) => {
            if let Err(e) = Report::from_json(m) {
                out.push(format!("metrics does not parse as a pf-trace report: {e}"));
            }
        }
        None => out.push("missing object field 'metrics'".into()),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            name: "unit".into(),
            smoke: true,
            machine_model: "skylake_8174".into(),
            threads_avail: 4,
            kernels: vec![KernelPerf {
                params: "P1".into(),
                kernel: "mu".into(),
                variant: "split".into(),
                mode: "serial".into(),
                measured_mlups: 0.5,
                predicted_mlups: 1200.0,
                ecm: [("t_comp".to_string(), 123.0)].into_iter().collect(),
            }],
            extra: [
                ("note".to_string(), Json::str("hello")),
                (
                    "analysis".to_string(),
                    Json::obj([("kernels_verified".to_string(), Json::Num(8.0))]),
                ),
            ]
            .into_iter()
            .collect(),
            metrics: Report::default(),
        }
    }

    #[test]
    fn roundtrip_serialize_parse_equal() {
        let r = sample();
        assert_eq!(BenchReport::parse(&r.to_json().to_pretty()).unwrap(), r);
    }

    #[test]
    fn valid_report_passes_validation() {
        assert!(validate(&sample().to_json()).is_empty());
    }

    #[test]
    fn validation_catches_violations() {
        let mut j = sample().to_json();
        if let Json::Obj(m) = &mut j {
            m.insert("schema".into(), Json::str("pf-bench/999"));
            m.remove("machine");
        }
        let v = validate(&j);
        assert!(v.iter().any(|e| e.contains("schema")));
        assert!(v.iter().any(|e| e.contains("machine")));
    }

    #[test]
    fn validation_catches_bad_ratio_and_nonpositive_mlups() {
        let mut r = sample();
        r.kernels[0].measured_mlups = -1.0;
        let mut j = r.to_json();
        // Also corrupt the ratio field directly.
        if let Some(Json::Arr(ks)) = j.get("kernels").cloned() {
            let mut k0 = ks[0].clone();
            if let Json::Obj(m) = &mut k0 {
                m.insert("measured_mlups".into(), Json::Num(2.0));
                m.insert("ratio".into(), Json::Num(42.0));
            }
            if let Json::Obj(top) = &mut j {
                top.insert("kernels".into(), Json::Arr(vec![k0]));
            }
        }
        let v = validate(&j);
        assert!(v.iter().any(|e| e.contains("ratio")), "{v:?}");
    }

    #[test]
    fn mode_field_is_required_and_enumerated() {
        // key() carries the mode so per-engine series stay distinct.
        assert_eq!(sample().kernels[0].key(), "P1/mu-split@serial");

        let mut r = sample();
        r.kernels[0].mode = "vectorized".into();
        assert!(validate(&r.to_json()).is_empty());

        r.kernels[0].mode = "avx9000".into();
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("mode 'avx9000'")), "{v:?}");

        let mut j = sample().to_json();
        if let Some(Json::Arr(ks)) = j.get("kernels").cloned() {
            let mut k0 = ks[0].clone();
            if let Json::Obj(m) = &mut k0 {
                m.remove("mode");
            }
            if let Json::Obj(top) = &mut j {
                top.insert("kernels".into(), Json::Arr(vec![k0]));
            }
        }
        let v = validate(&j);
        assert!(v.iter().any(|e| e.contains("mode missing")), "{v:?}");
    }

    #[test]
    fn analysis_extra_is_required_and_checked() {
        // Absent: the schema (mandatory since v2) rejects it — verification never ran.
        let mut r = sample();
        r.extra.remove("analysis");
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("extra.analysis")), "{v:?}");

        // Present and well-formed: valid.
        let mut r = sample();
        r.extra.insert(
            "analysis".into(),
            Json::obj([
                ("kernels_verified".to_string(), Json::Num(8.0)),
                ("errors".to_string(), Json::Num(0.0)),
                ("halo_width.phi".to_string(), Json::Num(1.0)),
            ]),
        );
        assert!(validate(&r.to_json()).is_empty());

        // Zero kernels verified means the stage silently did nothing.
        let mut r = sample();
        r.extra.insert(
            "analysis".into(),
            Json::obj([("kernels_verified".to_string(), Json::Num(0.0))]),
        );
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("kernels_verified")), "{v:?}");

        // Non-numeric statistics and non-object payloads are violations.
        let mut r = sample();
        r.extra.insert(
            "analysis".into(),
            Json::obj([
                ("kernels_verified".to_string(), Json::Num(1.0)),
                ("errors".to_string(), Json::str("none")),
            ]),
        );
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("must be numeric")), "{v:?}");

        let mut r = sample();
        r.extra.insert("analysis".into(), Json::str("oops"));
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("must be an object")), "{v:?}");
    }

    #[test]
    fn measured_overlap_is_required_for_comm_artifacts_and_checked() {
        let overlap_obj = |speedup: f64| {
            Json::obj([
                ("ranks".to_string(), Json::Num(2.0)),
                ("global_cells".to_string(), Json::Num(2048.0)),
                ("steps".to_string(), Json::Num(2.0)),
                ("blocking_mlups".to_string(), Json::Num(1.0)),
                ("overlapped_mlups".to_string(), Json::Num(1.1)),
                ("speedup".to_string(), Json::Num(speedup)),
            ])
        };

        // A comm-scheduling artifact without the measurement is invalid…
        let mut r = sample();
        r.name = "table2".into();
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("measured_overlap")), "{v:?}");

        // …and valid once it carries a well-formed one.
        r.extra.insert("measured_overlap".into(), overlap_obj(1.1));
        assert!(validate(&r.to_json()).is_empty());

        // Other artifacts may omit it entirely (sample() does).
        assert!(validate(&sample().to_json()).is_empty());

        // But a present-but-inconsistent speedup is a violation anywhere.
        let mut r = sample();
        r.extra.insert("measured_overlap".into(), overlap_obj(3.0));
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("speedup")), "{v:?}");

        // As is a missing field.
        let mut r = sample();
        r.name = "fig3".into();
        r.extra.insert(
            "measured_overlap".into(),
            Json::obj([("ranks".to_string(), Json::Num(2.0))]),
        );
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("blocking_mlups")), "{v:?}");
    }

    fn tuning_obj(regret_chosen: f64) -> Json {
        let best = 10.0;
        let chosen = best * (1.0 - regret_chosen);
        Json::obj([(
            "kernels".to_string(),
            Json::Arr(vec![Json::obj([
                ("params".to_string(), Json::str("P1")),
                ("kernel".to_string(), Json::str("phi")),
                ("chosen_variant".to_string(), Json::str("split")),
                ("chosen_mode".to_string(), Json::str("native")),
                ("static_variant".to_string(), Json::str("full")),
                ("static_mode".to_string(), Json::str("vectorized")),
                ("candidates".to_string(), Json::Num(12.0)),
                ("measured".to_string(), Json::Num(27.0)),
                ("best_mlups".to_string(), Json::Num(best)),
                ("chosen_mlups".to_string(), Json::Num(chosen)),
                ("static_mlups".to_string(), Json::Num(2.0)),
                ("regret_chosen".to_string(), Json::Num(regret_chosen)),
                ("regret_static".to_string(), Json::Num(0.8)),
            ])]),
        )])
    }

    #[test]
    fn tuning_extra_is_required_for_tuned_artifacts_and_checked() {
        // A tuned artifact without the block is invalid…
        let mut r = sample();
        r.name = "table1".into();
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("extra.tuning")), "{v:?}");

        // …and valid once it carries a well-formed one.
        r.extra.insert("tuning".into(), tuning_obj(0.0));
        assert!(validate(&r.to_json()).is_empty());

        // Other artifacts may omit it entirely (sample() does).
        assert!(validate(&sample().to_json()).is_empty());

        // Inconsistent regret is a violation anywhere the block appears.
        let mut r = sample();
        let mut t = tuning_obj(0.0);
        if let Json::Obj(m) = &mut t {
            if let Some(Json::Arr(ks)) = m.get_mut("kernels") {
                if let Json::Obj(k) = &mut ks[0] {
                    k.insert("regret_chosen".into(), Json::Num(0.5));
                }
            }
        }
        r.extra.insert("tuning".into(), t);
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("regret_chosen")), "{v:?}");

        // An unknown engine name in chosen_mode is a violation.
        let mut r = sample();
        let mut t = tuning_obj(0.0);
        if let Json::Obj(m) = &mut t {
            if let Some(Json::Arr(ks)) = m.get_mut("kernels") {
                if let Json::Obj(k) = &mut ks[0] {
                    k.insert("chosen_mode".into(), Json::str("quantum"));
                }
            }
        }
        r.extra.insert("tuning".into(), t);
        let v = validate(&r.to_json());
        assert!(
            v.iter().any(|e| e.contains("chosen_mode 'quantum'")),
            "{v:?}"
        );

        // An empty kernels array means the tuner silently did nothing.
        let mut r = sample();
        r.extra.insert(
            "tuning".into(),
            Json::obj([("kernels".to_string(), Json::Arr(vec![]))]),
        );
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("non-empty")), "{v:?}");

        // A chosen_mlups above best_mlups breaks the regret invariant.
        let mut r = sample();
        let mut t = tuning_obj(0.0);
        if let Json::Obj(m) = &mut t {
            if let Some(Json::Arr(ks)) = m.get_mut("kernels") {
                if let Json::Obj(k) = &mut ks[0] {
                    k.insert("chosen_mlups".into(), Json::Num(99.0));
                }
            }
        }
        r.extra.insert("tuning".into(), t);
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("not the maximum")), "{v:?}");
    }

    /// A well-formed weak-scaling block for a 4-thread machine (matching
    /// `sample()`'s `threads_avail`): the 8-rank point is 2× oversubscribed,
    /// so its corrected efficiency is `(raw * 2) / raw₀`.
    fn scaling_block() -> Json {
        let pt = |ranks: f64, m: f64, me: f64, p: f64, pe: f64| {
            Json::obj([
                ("ranks".to_string(), Json::Num(ranks)),
                ("measured_mlups_per_rank".to_string(), Json::Num(m)),
                ("measured_efficiency".to_string(), Json::Num(me)),
                ("predicted_mlups_per_rank".to_string(), Json::Num(p)),
                ("predicted_efficiency".to_string(), Json::Num(pe)),
            ])
        };
        Json::obj([
            ("per_rank_cells".to_string(), Json::Num(256.0)),
            ("steps".to_string(), Json::Num(2.0)),
            (
                "series".to_string(),
                Json::Arr(vec![
                    pt(2.0, 0.40, 1.0, 6.0, 1.0),
                    pt(8.0, 0.19, 0.95, 5.9, 5.9 / 6.0),
                ]),
            ),
        ])
    }

    #[test]
    fn scaling_artifacts_require_a_consistent_weak_scaling_block() {
        // The scaling artifact without the block is rejected.
        let mut r = sample();
        r.name = "weak_scaling".into();
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("extra.weak_scaling")), "{v:?}");

        // With a well-formed block it passes.
        let mut r = sample();
        r.name = "weak_scaling".into();
        r.extra.insert("weak_scaling".into(), scaling_block());
        assert!(
            validate(&r.to_json()).is_empty(),
            "{:?}",
            validate(&r.to_json())
        );

        // An efficiency inconsistent with the per-rank rates is caught.
        let mut bad = scaling_block();
        if let Some(Json::Arr(pts)) = bad.get("series").cloned() {
            let mut p1 = pts[1].clone();
            if let Json::Obj(m) = &mut p1 {
                m.insert("measured_efficiency".into(), Json::Num(0.5));
            }
            if let Json::Obj(top) = &mut bad {
                top.insert("series".into(), Json::Arr(vec![pts[0].clone(), p1]));
            }
        }
        let mut r = sample();
        r.name = "weak_scaling".into();
        r.extra.insert("weak_scaling".into(), bad);
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("measured_efficiency")), "{v:?}");

        // Non-increasing rank counts are caught.
        let mut dup = scaling_block();
        if let Some(Json::Arr(pts)) = dup.get("series").cloned() {
            if let Json::Obj(top) = &mut dup {
                top.insert(
                    "series".into(),
                    Json::Arr(vec![pts[0].clone(), pts[0].clone()]),
                );
            }
        }
        let mut r = sample();
        r.name = "weak_scaling".into();
        r.extra.insert("weak_scaling".into(), dup);
        let v = validate(&r.to_json());
        assert!(v.iter().any(|e| e.contains("strictly increasing")), "{v:?}");
    }

    #[test]
    fn committed_baselines_stay_schema_valid() {
        // Schema extensions must never orphan the committed artifacts the
        // perf gate diffs against.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines");
        let mut checked = 0;
        for entry in std::fs::read_dir(dir).expect("baselines/ exists") {
            let path = entry.unwrap().path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let text = std::fs::read_to_string(&path).unwrap();
            BenchReport::parse(&text)
                .unwrap_or_else(|e| panic!("{} no longer validates: {e}", path.display()));
            checked += 1;
        }
        assert!(
            checked >= 9,
            "expected the 9 committed baselines, saw {checked}"
        );
    }
}
