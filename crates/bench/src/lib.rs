//! `pf-bench` — the experiment harness.
//!
//! One binary per table/figure of the paper's evaluation section (see
//! DESIGN.md §5 for the index and EXPERIMENTS.md for paper-vs-measured):
//!
//! | binary       | reproduces |
//! |--------------|------------|
//! | `table1`     | Table 1 — per-cell operation counts of all kernel variants |
//! | `fig2_left`  | Fig. 2 left — ECM vs measurement, µ-split/µ-full scaling |
//! | `fig2_middle`| Fig. 2 middle — φ variants under P1 and P2 |
//! | `fig2_right` | Fig. 2 right — GPU register transformations |
//! | `table2`     | Table 2 — communication options on 128 GPUs |
//! | `fig3`       | Fig. 3 — weak/strong scaling on both machines |
//! | `gpu_approx` | §6.2 — approximate div/sqrt speedup on the µ kernels |
//! | `ablation`   | DESIGN.md §6 — pipeline-pass ablations |
//!
//! This library holds the shared plumbing: canonical kernel builds, the
//! measured-executor timing loop, and text rendering of series/tables.

use pf_backend::{run_kernel, ExecMode, FieldStore, RunCtx};
use pf_core::{generate_kernels, KernelSet, ModelParams};
use pf_fields::{FieldArray, Layout};
use pf_ir::{insert_fences, rematerialize, schedule_min_live, GenOptions, Tape};
use pf_machine::skylake_8174;
use pf_perfmodel::ecm_multi;
use pf_trace::Json;
use std::path::PathBuf;
use std::time::Instant;

pub mod benchjson;
pub use benchjson::{validate, BenchReport, KernelPerf, SCHEMA};

/// The full GPU register-pressure transformation chain the CUDA backend
/// applies before launching a kernel (§3.5): rematerialize cheap values,
/// reschedule for minimal liveness, fence against compiler re-hoisting.
/// GPU-side experiments model kernels in this form.
pub fn gpu_optimized(tape: &Tape) -> Tape {
    insert_fences(&schedule_min_live(&rematerialize(tape, 2), 20), 48)
}

/// Build the canonical kernel set for a parameterization (defaults).
///
/// The bench harness always runs the full pf-analyze verification suite
/// over the set — schema `pf-bench/3` makes `extra.analysis` mandatory, so
/// every artifact proves the benched kernels were statically verified —
/// even when the `PF_VERIFY` env gate that guards ordinary generation is
/// off. (When the gate is on, `generate_kernels` already verified and
/// recorded; don't double-count.)
pub fn kernels_for(p: &ModelParams) -> KernelSet {
    let ks = generate_kernels(p, &GenOptions::default());
    if !pf_ir::verify_enabled() {
        let suite = pf_core::verify_kernel_set(p, &ks);
        if let Some(errs) = suite.errors_rendered() {
            panic!(
                "kernel set for model '{}' failed verification:\n{errs}",
                p.name
            );
        }
        suite.record_trace();
    }
    ks
}

/// Name of an execution mode as it appears in bench artifacts
/// (`KernelPerf::mode`).
pub fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Serial => "serial",
        ExecMode::Parallel => "parallel",
        ExecMode::Vectorized => "vectorized",
        ExecMode::Native => "native",
    }
}

/// Execution engines `standard_kernel_perf` measures. Default: serial,
/// strip-mined vectorized, and — when the sandbox can compile and load
/// cdylibs — the native codegen backend, so every artifact carries the
/// measured/predicted ratio for generated machine code next to the
/// interpreters. `PF_BENCH_EXEC` narrows to a single engine (`serial` |
/// `parallel` | `vectorized` | `native`) — scripts/ci.sh uses `vectorized`
/// for the dedicated smoke rerun.
pub fn bench_exec_modes() -> Vec<ExecMode> {
    match std::env::var("PF_BENCH_EXEC").as_deref() {
        Ok("serial") => vec![ExecMode::Serial],
        Ok("parallel") => vec![ExecMode::Parallel],
        Ok("vectorized") => vec![ExecMode::Vectorized],
        Ok("native") => vec![ExecMode::Native],
        Ok(other) => {
            panic!("PF_BENCH_EXEC must be serial|parallel|vectorized|native, got '{other}'")
        }
        Err(_) => {
            let mut modes = vec![ExecMode::Serial, ExecMode::Vectorized];
            if pf_backend::native_available() {
                modes.push(ExecMode::Native);
            } else {
                eprintln!(
                    "pf-bench: WARNING: rustc cannot produce cdylibs in this sandbox — \
                     skipping the native execution engine (no native kernel records)"
                );
            }
            modes
        }
    }
}

/// Allocate and initialize a realistic simulation state on one block:
/// solid fingers growing into liquid, smooth µ field. Ghosts are filled
/// periodically so every kernel variant can run stand-alone.
pub fn workload_store(p: &ModelParams, ks: &KernelSet, shape: [usize; 3]) -> FieldStore {
    let mut store = FieldStore::new();
    let f = ks.fields;
    for field in [f.phi_src, f.phi_dst, f.mu_src, f.mu_dst] {
        store.allocate(field, shape, 1, Layout::Fzyx);
    }
    let stag_shape = [
        shape[0] + 1,
        shape[1] + 1,
        if p.dim == 3 { shape[2] + 1 } else { shape[2] },
    ];
    for sf in [ks.phi_split.stag_field, ks.mu_split.stag_field] {
        store.insert(
            sf,
            FieldArray::new(&sf.name(), stag_shape, sf.components(), 0, Layout::Fzyx),
        );
    }
    let n = p.phases;
    for alpha in 0..n {
        let arr = store.get_mut(f.phi_src);
        arr.fill_with(alpha, |x, y, z| {
            // Lamellar fingers along x, front along z.
            let lane = (x / 6) % (n - 1) + 1;
            let front = 0.5 * (1.0 - ((z as f64 - shape[2] as f64 * 0.4) / 3.0).tanh());
            let solid = if lane == alpha { front } else { 0.0 };
            let liquid = 1.0 - front;
            let v = if alpha == p.liquid_phase {
                liquid
            } else {
                solid
            };
            // Mild transverse modulation keeps gradients non-trivial.
            v * (1.0 - 1e-3 * ((x + 2 * y) % 7) as f64)
        });
    }
    // Normalize φ to the simplex.
    {
        let arr = store.get_mut(f.phi_src);
        for z in 0..shape[2] as isize {
            for y in 0..shape[1] as isize {
                for x in 0..shape[0] as isize {
                    let mut s = 0.0;
                    for a in 0..n {
                        s += arr.get(a, x, y, z).max(0.0);
                    }
                    if s <= 1e-12 {
                        for a in 0..n {
                            arr.set(a, x, y, z, if a == p.liquid_phase { 1.0 } else { 0.0 });
                        }
                    } else {
                        for a in 0..n {
                            let v = arr.get(a, x, y, z).max(0.0) / s;
                            arr.set(a, x, y, z, v);
                        }
                    }
                }
            }
        }
    }
    for i in 0..p.num_mu() {
        store
            .get_mut(f.mu_src)
            .fill_with(i, |x, y, z| 0.05 * ((x + y + z) % 11) as f64 / 11.0);
    }
    // φ_dst slightly evolved (the µ kernel reads it).
    let phi_src = store.get(f.phi_src).clone();
    let dst = store.get_mut(f.phi_dst);
    for a in 0..n {
        for z in 0..shape[2] as isize {
            for y in 0..shape[1] as isize {
                for x in 0..shape[0] as isize {
                    dst.set(a, x, y, z, phi_src.get(a, x, y, z));
                }
            }
        }
    }
    for field in [f.phi_src, f.phi_dst, f.mu_src] {
        for d in 0..3 {
            store.get_mut(field).apply_periodic(d);
        }
    }
    store
}

/// CI bench-smoke mode: tiny grids, few sweeps — seconds, not minutes.
/// Enabled with `PF_BENCH_SMOKE=1` (scripts/ci.sh does this).
pub fn smoke() -> bool {
    matches!(
        std::env::var("PF_BENCH_SMOKE").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// Where `BENCH_<name>.json` artifacts are written (`PF_BENCH_OUT_DIR`,
/// default: current directory).
pub fn bench_out_dir() -> PathBuf {
    std::env::var_os("PF_BENCH_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Measured-vs-predicted records for the four canonical kernel variants of
/// a parameterization: executor throughput on this host next to the ECM
/// model on the paper's Skylake socket, with the decomposition attached.
/// One record per variant per engine in [`bench_exec_modes`]; non-serial
/// engines are measured inside a 1-thread pool so every record stays
/// comparable to the single-core ECM prediction (the vectorized series
/// then isolates strip-mining speedup from thread scaling).
pub fn standard_kernel_perf(p: &ModelParams, ks: &KernelSet) -> Vec<KernelPerf> {
    let sock = skylake_8174();
    let block = [24usize, 24, 8];
    let (shape, sweeps, reps) = if smoke() {
        ([8usize, 8, 8], 2, 9)
    } else {
        ([12usize, 12, 12], 2, 5)
    };
    let mu_split: Vec<&Tape> = ks
        .mu_split
        .flux_tapes
        .iter()
        .chain([&ks.mu_split.update])
        .collect();
    let phi_split: Vec<&Tape> = ks
        .phi_split
        .flux_tapes
        .iter()
        .chain([&ks.phi_split.update])
        .collect();
    let variants: Vec<(&str, &str, Vec<&Tape>)> = vec![
        ("mu", "full", vec![&ks.mu_full]),
        ("mu", "split", mu_split),
        ("phi", "full", vec![&ks.phi_full]),
        ("phi", "split", phi_split),
    ];
    let modes = bench_exec_modes();
    let mut out = Vec::new();
    for (kernel, variant, tapes) in variants {
        let pred = ecm_multi(&tapes, &sock, block);
        for &mode in &modes {
            // Best-of-N: timing noise (scheduler preemption, shared hosts)
            // only ever slows a run down, so the fastest repetition is the
            // most faithful estimate — and the one stable enough to gate on.
            let one = || {
                (0..reps)
                    .map(|_| measure_mlups(p, ks, &tapes, shape, sweeps, mode))
                    .fold(f64::MIN, f64::max)
            };
            let measured = if matches!(mode, ExecMode::Serial) {
                one()
            } else {
                with_threads(1, one)
            };
            out.push(KernelPerf {
                params: p.name.clone(),
                kernel: kernel.into(),
                variant: variant.into(),
                mode: mode_name(mode).into(),
                measured_mlups: measured,
                predicted_mlups: pred.single_core_mlups(sock.freq_ghz),
                ecm: [
                    ("t_comp".to_string(), pred.t_comp),
                    ("t_nol".to_string(), pred.t_nol),
                    ("t_l1l2".to_string(), pred.t_l1l2),
                    ("t_l2l3".to_string(), pred.t_l2l3),
                    ("t_l3mem".to_string(), pred.t_l3mem),
                    (
                        "saturation_cores".to_string(),
                        pred.saturation_cores().min(1 << 20) as f64,
                    ),
                ]
                .into_iter()
                .collect(),
            });
        }
    }
    out
}

/// Assemble, validate, and write `BENCH_<name>.json`; prints the per-kernel
/// measured/predicted ratios and the artifact path. Every fig/table binary
/// calls this at the end of `main`.
pub fn emit_bench(
    name: &str,
    kernels: Vec<KernelPerf>,
    extra: Vec<(String, Json)>,
) -> std::io::Result<PathBuf> {
    let metrics = pf_trace::snapshot();
    let mut extra: std::collections::BTreeMap<String, Json> = extra.into_iter().collect();
    // Surface the static-analysis statistics (kernels verified, diagnostic
    // counts, per-field halo widths) as a first-class `extra.analysis`
    // object so artifact diffs see verification coverage directly instead
    // of digging through the raw metric snapshot.
    if !extra.contains_key("analysis") {
        let mut analysis: Vec<(String, Json)> = Vec::new();
        for (k, c) in &metrics.counters {
            if let Some(short) = k.strip_prefix("analyze.") {
                analysis.push((short.to_string(), Json::Num(c.total as f64)));
            }
        }
        for (k, g) in &metrics.gauges {
            if let Some(short) = k.strip_prefix("analyze.") {
                analysis.push((short.to_string(), Json::Num(g.value)));
            }
        }
        if !analysis.is_empty() {
            extra.insert("analysis".into(), Json::obj(analysis));
        }
    }
    let report = BenchReport {
        name: name.into(),
        smoke: smoke(),
        machine_model: "skylake_8174".into(),
        threads_avail: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        kernels,
        extra,
        metrics,
    };
    let json = report.to_json();
    let violations = benchjson::validate(&json);
    assert!(
        violations.is_empty(),
        "emit_bench produced a schema-invalid report (bug): {violations:?}"
    );
    let dir = bench_out_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json.to_pretty())?;
    println!("\nmeasured vs ECM-predicted (single core; executor is an interpreter,");
    println!("so ratios sit far below 1 — watch their stability, not their size):");
    for k in &report.kernels {
        println!(
            "  {:18} measured {:>10.4} MLUP/s   predicted {:>9.1} MLUP/s   ratio {:.3e}",
            k.key(),
            k.measured_mlups,
            k.predicted_mlups,
            k.ratio()
        );
    }
    println!("bench artifact: {}", path.display());
    Ok(path)
}

/// Autotune one parameterization on the bench workload and return the
/// per-family reports. Smoke mode shrinks the grid and the repetition
/// budget the same way `standard_kernel_perf` does. The cache honours
/// `PF_TUNE` / `PF_TUNE_CACHE_DIR`; tuning always measures (it is the
/// explicit search entry point — only the *launch* path is measurement
/// free), but a warm cache with a near-best entry keeps its winner so
/// artifacts stay stable across reruns.
pub fn tune_reports(p: &ModelParams, ks: &KernelSet) -> Vec<pf_core::FamilyTuneReport> {
    let sock = skylake_8174();
    let shape = if smoke() { [8, 8, 8] } else { [12, 12, 12] };
    let opts = if smoke() {
        pf_core::TuneOptions {
            reps: 2,
            sweeps: 1,
            ..Default::default()
        }
    } else {
        pf_core::TuneOptions::default()
    };
    let cache = pf_core::TuneCache::from_env();
    pf_core::tune_kernel_set(p, ks, &sock, shape, cache.as_ref(), &opts)
}

/// Render per-parameterization tuning reports as the `extra.tuning`
/// object of schema `pf-bench/5` (see `benchjson::TUNING_KERNEL_*`).
pub fn tuning_extra(per_params: &[(String, Vec<pf_core::FamilyTuneReport>)]) -> Json {
    let kernels: Vec<Json> = per_params
        .iter()
        .flat_map(|(name, reports)| {
            reports.iter().map(move |r| {
                Json::obj([
                    ("params".to_string(), Json::str(name.clone())),
                    ("kernel".to_string(), Json::str(r.family.name())),
                    (
                        "chosen_variant".to_string(),
                        Json::str(pf_core::variant_name(r.entry.variant)),
                    ),
                    (
                        "chosen_mode".to_string(),
                        Json::str(mode_name(r.entry.mode)),
                    ),
                    (
                        "static_variant".to_string(),
                        Json::str(pf_core::variant_name(r.static_variant)),
                    ),
                    (
                        "static_mode".to_string(),
                        Json::str(mode_name(r.static_mode)),
                    ),
                    ("candidates".to_string(), Json::Num(r.candidates as f64)),
                    ("measured".to_string(), Json::Num(r.measured as f64)),
                    ("best_mlups".to_string(), Json::Num(r.best_mlups)),
                    ("chosen_mlups".to_string(), Json::Num(r.chosen_mlups)),
                    ("static_mlups".to_string(), Json::Num(r.static_mlups)),
                    ("regret_chosen".to_string(), Json::Num(r.regret_chosen)),
                    ("regret_static".to_string(), Json::Num(r.regret_static)),
                ])
            })
        })
        .collect();
    Json::obj([("kernels".to_string(), Json::Arr(kernels))])
}

/// Measured executor throughput of one kernel variant, MLUP/s.
pub fn measure_mlups(
    p: &ModelParams,
    ks: &KernelSet,
    tapes: &[&Tape],
    shape: [usize; 3],
    sweeps: usize,
    mode: ExecMode,
) -> f64 {
    let mut store = workload_store(p, ks, shape);
    let ctx = RunCtx {
        dx: [p.dx; 3],
        ..RunCtx::default()
    };
    // Warmup.
    for t in tapes {
        run_kernel(t, &mut store, &[], shape, &ctx, mode);
    }
    let _span = pf_trace::span_lazy(|| format!("bench.measure.{}", tapes[0].name));
    let t0 = Instant::now();
    for _ in 0..sweeps {
        for t in tapes {
            run_kernel(t, &mut store, &[], shape, &ctx, mode);
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let cells = (shape[0] * shape[1] * shape[2]) as f64 * sweeps as f64;
    let mlups = cells / secs / 1e6;
    if pf_trace::enabled() {
        pf_trace::gauge(&format!("bench.mlups.{}", tapes[0].name)).set(mlups);
    }
    mlups
}

/// Measured end-to-end throughput of the distributed step loop on this
/// host (thread-backed ranks), blocking vs overlapped halo schedule.
/// Returns `(blocking, overlapped)` whole-world MLUP/s plus the workload
/// descriptor that goes into `extra.measured_overlap`. The absolute
/// numbers are interpreter-scale (compare against each other, not the
/// model); what the artifact pins is that the overlapped schedule is
/// measured at all, next to the Table 2 prediction, on every run.
pub fn measured_overlap_mlups(
    p: &ModelParams,
    ks: &KernelSet,
    global: [usize; 3],
    ranks: usize,
    steps: usize,
) -> ((f64, f64), Vec<(String, Json)>) {
    let phases = p.phases;
    let liquid = p.liquid_phase;
    let num_mu = p.num_mu();
    let (cx, cy) = (global[0] as f64 / 2.0, global[1] as f64 / 2.0);
    let init_phi = move |x: i64, y: i64, _z: i64| {
        let d = (((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt() - cx * 0.5) / 3.0;
        let s = 0.5 * (1.0 - d.tanh());
        let mut v = vec![0.0; phases];
        v[liquid] = 1.0 - s;
        v[(liquid + 1) % phases] = s;
        v
    };
    let init_mu = move |_: i64, _: i64, _: i64| vec![0.05; num_mu];
    let cells = (global[0] * global[1] * global[2]) as f64;
    let measure = |overlap: bool| {
        let mut cfg = pf_core::dist::DistConfig::new(global, ranks);
        cfg.comm.overlap = overlap;
        // Best-of-2: same rationale as `standard_kernel_perf` — noise only
        // slows a run down.
        (0..2)
            .map(|_| {
                let t0 = Instant::now();
                pf_core::dist::run_distributed(p, ks, &cfg, steps, init_phi, init_mu, |_| ());
                cells * steps as f64 / t0.elapsed().as_secs_f64() / 1e6
            })
            .fold(f64::MIN, f64::max)
    };
    let blocking = measure(false);
    let overlapped = measure(true);
    let extra = vec![
        ("ranks".to_string(), Json::Num(ranks as f64)),
        ("global_cells".to_string(), Json::Num(cells)),
        ("steps".to_string(), Json::Num(steps as f64)),
        ("blocking_mlups".to_string(), Json::Num(blocking)),
        ("overlapped_mlups".to_string(), Json::Num(overlapped)),
        ("speedup".to_string(), Json::Num(overlapped / blocking)),
    ];
    ((blocking, overlapped), extra)
}

/// The measured-overlap workload: small in smoke mode, moderate otherwise.
/// Returns `(global, ranks, steps)`. The z extent dominates so the
/// surface-optimal decomposition splits z and leaves the unit-stride x
/// dimension undivided — the frontier is then whole (x,y) planes that the
/// strip engine sweeps at full SIMD width, the production-shaped case for
/// communication hiding (splitting x instead would shear every frontier
/// row down to the stencil width).
pub fn overlap_workload() -> ([usize; 3], usize, usize) {
    if smoke() {
        ([16, 16, 32], 2, 2)
    } else {
        ([32, 32, 64], 2, 4)
    }
}

/// Run `f` inside a rayon pool of `threads` threads (per-core scaling
/// measurements).
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

/// Render a two-column series as an aligned text block.
pub fn render_series(title: &str, xlabel: &str, ylabel: &str, pts: &[(f64, f64)]) -> String {
    let mut out = format!("# {title}\n# {xlabel:>12} {ylabel:>16}\n");
    for (x, y) in pts {
        out.push_str(&format!("{x:>14.2} {y:>16.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_store_respects_simplex() {
        let p = pf_core::p1();
        let ks = kernels_for(&p);
        let store = workload_store(&p, &ks, [8, 8, 8]);
        let phi = store.get(ks.fields.phi_src);
        for z in 0..8isize {
            for y in 0..8isize {
                for x in 0..8isize {
                    let s: f64 = (0..4).map(|a| phi.get(a, x, y, z)).sum();
                    assert!((s - 1.0).abs() < 1e-12, "simplex violated: {s}");
                }
            }
        }
    }

    #[test]
    fn measured_throughput_is_positive() {
        let p = pf_core::p1();
        let ks = kernels_for(&p);
        let m = measure_mlups(&p, &ks, &[&ks.mu_full], [8, 8, 8], 1, ExecMode::Serial);
        assert!(m > 0.0);
    }
}
