//! `pf-bench` — the experiment harness.
//!
//! One binary per table/figure of the paper's evaluation section (see
//! DESIGN.md §5 for the index and EXPERIMENTS.md for paper-vs-measured):
//!
//! | binary       | reproduces |
//! |--------------|------------|
//! | `table1`     | Table 1 — per-cell operation counts of all kernel variants |
//! | `fig2_left`  | Fig. 2 left — ECM vs measurement, µ-split/µ-full scaling |
//! | `fig2_middle`| Fig. 2 middle — φ variants under P1 and P2 |
//! | `fig2_right` | Fig. 2 right — GPU register transformations |
//! | `table2`     | Table 2 — communication options on 128 GPUs |
//! | `fig3`       | Fig. 3 — weak/strong scaling on both machines |
//! | `gpu_approx` | §6.2 — approximate div/sqrt speedup on the µ kernels |
//! | `ablation`   | DESIGN.md §6 — pipeline-pass ablations |
//!
//! This library holds the shared plumbing: canonical kernel builds, the
//! measured-executor timing loop, and text rendering of series/tables.

use pf_backend::{run_kernel, ExecMode, FieldStore, RunCtx};
use pf_core::{generate_kernels, KernelSet, ModelParams};
use pf_fields::{FieldArray, Layout};
use pf_ir::{insert_fences, rematerialize, schedule_min_live, GenOptions, Tape};
use std::time::Instant;

/// The full GPU register-pressure transformation chain the CUDA backend
/// applies before launching a kernel (§3.5): rematerialize cheap values,
/// reschedule for minimal liveness, fence against compiler re-hoisting.
/// GPU-side experiments model kernels in this form.
pub fn gpu_optimized(tape: &Tape) -> Tape {
    insert_fences(&schedule_min_live(&rematerialize(tape, 2), 20), 48)
}

/// Build the canonical kernel set for a parameterization (defaults).
pub fn kernels_for(p: &ModelParams) -> KernelSet {
    generate_kernels(p, &GenOptions::default())
}

/// Allocate and initialize a realistic simulation state on one block:
/// solid fingers growing into liquid, smooth µ field. Ghosts are filled
/// periodically so every kernel variant can run stand-alone.
pub fn workload_store(p: &ModelParams, ks: &KernelSet, shape: [usize; 3]) -> FieldStore {
    let mut store = FieldStore::new();
    let f = ks.fields;
    for field in [f.phi_src, f.phi_dst, f.mu_src, f.mu_dst] {
        store.allocate(field, shape, 1, Layout::Fzyx);
    }
    let stag_shape = [
        shape[0] + 1,
        shape[1] + 1,
        if p.dim == 3 { shape[2] + 1 } else { shape[2] },
    ];
    for sf in [ks.phi_split.stag_field, ks.mu_split.stag_field] {
        store.insert(
            sf,
            FieldArray::new(&sf.name(), stag_shape, sf.components(), 0, Layout::Fzyx),
        );
    }
    let n = p.phases;
    for alpha in 0..n {
        let arr = store.get_mut(f.phi_src);
        arr.fill_with(alpha, |x, y, z| {
            // Lamellar fingers along x, front along z.
            let lane = (x / 6) % (n - 1) + 1;
            let front = 0.5 * (1.0 - ((z as f64 - shape[2] as f64 * 0.4) / 3.0).tanh());
            let solid = if lane == alpha { front } else { 0.0 };
            let liquid = 1.0 - front;
            let v = if alpha == p.liquid_phase {
                liquid
            } else {
                solid
            };
            // Mild transverse modulation keeps gradients non-trivial.
            v * (1.0 - 1e-3 * ((x + 2 * y) % 7) as f64)
        });
    }
    // Normalize φ to the simplex.
    {
        let arr = store.get_mut(f.phi_src);
        for z in 0..shape[2] as isize {
            for y in 0..shape[1] as isize {
                for x in 0..shape[0] as isize {
                    let mut s = 0.0;
                    for a in 0..n {
                        s += arr.get(a, x, y, z).max(0.0);
                    }
                    if s <= 1e-12 {
                        for a in 0..n {
                            arr.set(a, x, y, z, if a == p.liquid_phase { 1.0 } else { 0.0 });
                        }
                    } else {
                        for a in 0..n {
                            let v = arr.get(a, x, y, z).max(0.0) / s;
                            arr.set(a, x, y, z, v);
                        }
                    }
                }
            }
        }
    }
    for i in 0..p.num_mu() {
        store
            .get_mut(f.mu_src)
            .fill_with(i, |x, y, z| 0.05 * ((x + y + z) % 11) as f64 / 11.0);
    }
    // φ_dst slightly evolved (the µ kernel reads it).
    let phi_src = store.get(f.phi_src).clone();
    let dst = store.get_mut(f.phi_dst);
    for a in 0..n {
        for z in 0..shape[2] as isize {
            for y in 0..shape[1] as isize {
                for x in 0..shape[0] as isize {
                    dst.set(a, x, y, z, phi_src.get(a, x, y, z));
                }
            }
        }
    }
    for field in [f.phi_src, f.phi_dst, f.mu_src] {
        for d in 0..3 {
            store.get_mut(field).apply_periodic(d);
        }
    }
    store
}

/// Measured executor throughput of one kernel variant, MLUP/s.
pub fn measure_mlups(
    p: &ModelParams,
    ks: &KernelSet,
    tapes: &[&Tape],
    shape: [usize; 3],
    sweeps: usize,
    mode: ExecMode,
) -> f64 {
    let mut store = workload_store(p, ks, shape);
    let ctx = RunCtx {
        dx: [p.dx; 3],
        ..RunCtx::default()
    };
    // Warmup.
    for t in tapes {
        run_kernel(t, &mut store, &[], shape, &ctx, mode);
    }
    let t0 = Instant::now();
    for _ in 0..sweeps {
        for t in tapes {
            run_kernel(t, &mut store, &[], shape, &ctx, mode);
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let cells = (shape[0] * shape[1] * shape[2]) as f64 * sweeps as f64;
    cells / secs / 1e6
}

/// Run `f` inside a rayon pool of `threads` threads (per-core scaling
/// measurements).
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

/// Render a two-column series as an aligned text block.
pub fn render_series(title: &str, xlabel: &str, ylabel: &str, pts: &[(f64, f64)]) -> String {
    let mut out = format!("# {title}\n# {xlabel:>12} {ylabel:>16}\n");
    for (x, y) in pts {
        out.push_str(&format!("{x:>14.2} {y:>16.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_store_respects_simplex() {
        let p = pf_core::p1();
        let ks = kernels_for(&p);
        let store = workload_store(&p, &ks, [8, 8, 8]);
        let phi = store.get(ks.fields.phi_src);
        for z in 0..8isize {
            for y in 0..8isize {
                for x in 0..8isize {
                    let s: f64 = (0..4).map(|a| phi.get(a, x, y, z)).sum();
                    assert!((s - 1.0).abs() < 1e-12, "simplex violated: {s}");
                }
            }
        }
    }

    #[test]
    fn measured_throughput_is_positive() {
        let p = pf_core::p1();
        let ks = kernels_for(&p);
        let m = measure_mlups(&p, &ks, &[&ks.mu_full], [8, 8, 8], 1, ExecMode::Serial);
        assert!(m > 0.0);
    }
}
