//! CI gate over `BENCH_<name>.json` artifacts.
//!
//! ```text
//! bench_check validate <file.json>...
//! bench_check diff <baseline-dir> <fresh-dir>
//! ```
//!
//! `validate` parses each artifact and checks it against schema
//! `pf-bench/6` (see `pf_bench::benchjson`) — including the per-record
//! execution `mode` (now also the compiled `native` engine), the
//! mandatory `extra.analysis` verification
//! statistics, the communication artifacts' `extra.measured_overlap`
//! statistics and the tuned artifacts' `extra.tuning` regret block —
//! printing every violation and exiting non-zero if any file fails.
//!
//! `diff` compares a fresh bench-smoke run against the committed
//! baselines: for every kernel record present in both, the fresh
//! `measured_mlups` must not fall below `baseline * (1 - tol)` where
//! `tol` defaults to 0.15 and can be overridden with `PF_PERF_GATE_TOL`.
//! Kernels that only exist on one side are reported but not fatal
//! (adding a kernel must not require regenerating every baseline in the
//! same commit). Missing baseline *files* are fatal: every fresh
//! artifact must have a committed counterpart.
//!
//! `diff` also gates **tuning regret**: every `extra.tuning.kernels[]`
//! entry of a fresh artifact must have `regret_chosen` at or below
//! `PF_TUNE_GATE_TOL` (default 0.10) — if the autotuner's pick leaves
//! more than that on the table against the best measured configuration,
//! the gate fails even when raw throughput still clears its floor.
//!
//! `diff` also gates **weak-scaling efficiency**: every point of a fresh
//! artifact's `extra.weak_scaling.series` must keep its measured parallel
//! efficiency (oversubscription-corrected, see `pf_bench::benchjson`)
//! within `PF_SCALE_GATE_TOL` (default 0.30) of the `pf-cluster`
//! prediction for the same rank count — the distributed runtime's answer
//! to the ECM kernel gate.

use pf_bench::BenchReport;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn tolerance() -> f64 {
    match std::env::var("PF_PERF_GATE_TOL") {
        Ok(s) => match s.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!("PF_PERF_GATE_TOL={s:?} invalid (need 0 <= t < 1); using 0.15");
                0.15
            }
        },
        Err(_) => 0.15,
    }
}

fn tune_tolerance() -> f64 {
    match std::env::var("PF_TUNE_GATE_TOL") {
        Ok(s) => match s.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!("PF_TUNE_GATE_TOL={s:?} invalid (need 0 <= t < 1); using 0.10");
                0.10
            }
        },
        Err(_) => 0.10,
    }
}

fn scale_tolerance() -> f64 {
    match std::env::var("PF_SCALE_GATE_TOL") {
        Ok(s) => match s.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!("PF_SCALE_GATE_TOL={s:?} invalid (need 0 <= t < 1); using 0.30");
                0.30
            }
        },
        Err(_) => 0.30,
    }
}

/// Gate the measured-vs-predicted parallel efficiency of every point in a
/// fresh artifact's `extra.weak_scaling.series`. Schema validation
/// already pinned the fields' presence and self-consistency; this checks
/// the *policy*: the runtime may not fall more than `tol` below what the
/// cluster model says the same workload should sustain.
fn check_weak_scaling(report: &BenchReport, tol: f64, failures: &mut Vec<String>) {
    let Some(series) = report
        .extra
        .get("weak_scaling")
        .and_then(|ws| ws.get("series"))
        .and_then(|s| s.as_arr())
    else {
        return;
    };
    for p in series {
        let num = |f: &str| p.get(f).and_then(|v| v.as_f64());
        let ranks = num("ranks").unwrap_or(f64::NAN);
        let measured = num("measured_efficiency").unwrap_or(f64::NAN);
        let predicted = num("predicted_efficiency").unwrap_or(f64::NAN);
        // NaN (absent/malformed efficiency) must gate, not slide through.
        let bad = !measured.is_finite() || !predicted.is_finite() || measured < predicted - tol;
        let verdict = if bad { "FAIL" } else { "ok" };
        println!(
            "  {verdict:4} {} scaling {ranks:>6.0} ranks: measured efficiency {:.1}% \
             vs predicted {:.1}%",
            report.name,
            measured * 100.0,
            predicted * 100.0,
        );
        if bad {
            failures.push(format!(
                "{} weak scaling at {ranks:.0} ranks: measured efficiency {:.1}% fell more \
                 than PF_SCALE_GATE_TOL {:.0}% below predicted {:.1}%",
                report.name,
                measured * 100.0,
                tol * 100.0,
                predicted * 100.0
            ));
        }
    }
}

/// Gate the chosen-vs-best regret of every `extra.tuning.kernels[]` entry
/// of a fresh artifact. Schema validation (already done by `load`) pinned
/// the fields' presence and consistency; this checks the *policy*: the
/// tuner must pick within `tol` of the best measured configuration.
fn check_regret(report: &BenchReport, tol: f64, failures: &mut Vec<String>) {
    let Some(kernels) = report
        .extra
        .get("tuning")
        .and_then(|t| t.get("kernels"))
        .and_then(|k| k.as_arr())
    else {
        return;
    };
    for k in kernels {
        let label = format!(
            "{}/{}",
            k.get("params").and_then(|v| v.as_str()).unwrap_or("?"),
            k.get("kernel").and_then(|v| v.as_str()).unwrap_or("?")
        );
        let regret = k
            .get("regret_chosen")
            .and_then(|v| v.as_f64())
            .unwrap_or(f64::NAN);
        // NaN (absent/malformed regret) must gate, not slide through.
        let bad = regret.is_nan() || regret > tol;
        let verdict = if bad { "FAIL" } else { "ok" };
        println!(
            "  {verdict:4} {} tuning {label:<10} regret_chosen {:.1}% (static would lose {:.1}%)",
            report.name,
            regret * 100.0,
            k.get("regret_static")
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::NAN)
                * 100.0,
        );
        if bad {
            failures.push(format!(
                "{} tuning {label}: chosen-vs-best regret {:.1}% exceeds PF_TUNE_GATE_TOL {:.0}%",
                report.name,
                regret * 100.0,
                tol * 100.0
            ));
        }
    }
}

fn load(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
    BenchReport::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn validate(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("bench_check validate: no files given");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for f in files {
        match load(Path::new(f)) {
            Ok(r) => {
                let modes: std::collections::BTreeSet<&str> =
                    r.kernels.iter().map(|k| k.mode.as_str()).collect();
                println!(
                    "OK   {f} (name={}, {} kernels, modes={:?}, smoke={})",
                    r.name,
                    r.kernels.len(),
                    modes,
                    r.smoke
                );
            }
            Err(e) => {
                println!("FAIL {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn bench_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .map(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                        .unwrap_or(false)
                })
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

fn diff(baseline_dir: &Path, fresh_dir: &Path) -> ExitCode {
    let tol = tolerance();
    let fresh_files = bench_files(fresh_dir);
    if fresh_files.is_empty() {
        eprintln!(
            "bench_check diff: no BENCH_*.json artifacts in {}",
            fresh_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let tune_tol = tune_tolerance();
    let scale_tol = scale_tolerance();
    println!(
        "perf gate: {} fresh artifacts vs baselines in {} \
         (tolerance {:.0}%, regret gate {:.0}%, scaling gate {:.0}%)",
        fresh_files.len(),
        baseline_dir.display(),
        tol * 100.0,
        tune_tol * 100.0,
        scale_tol * 100.0
    );
    let mut failures = Vec::new();
    for fresh_path in &fresh_files {
        let fname = fresh_path.file_name().unwrap();
        let base_path = baseline_dir.join(fname);
        let fresh = match load(fresh_path) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("fresh artifact invalid: {e}"));
                continue;
            }
        };
        let base = match load(&base_path) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!(
                    "no usable baseline for {}: {e}",
                    fname.to_string_lossy()
                ));
                continue;
            }
        };
        for bk in &base.kernels {
            let Some(fk) = fresh.kernels.iter().find(|k| k.key() == bk.key()) else {
                println!(
                    "  note {}: kernel {} in baseline but not in fresh run",
                    fresh.name,
                    bk.key()
                );
                continue;
            };
            let floor = bk.measured_mlups * (1.0 - tol);
            let delta = (fk.measured_mlups / bk.measured_mlups - 1.0) * 100.0;
            let verdict = if fk.measured_mlups < floor {
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "  {verdict:4} {} {:<14} measured {:>9.3} vs baseline {:>9.3} MLUP/s ({:+.1}%), ratio {:.2e}",
                fresh.name,
                bk.key(),
                fk.measured_mlups,
                bk.measured_mlups,
                delta,
                fk.ratio()
            );
            if fk.measured_mlups < floor {
                failures.push(format!(
                    "{} {}: measured {:.3} MLUP/s fell below baseline {:.3} - {:.0}% = {:.3}",
                    fresh.name,
                    bk.key(),
                    fk.measured_mlups,
                    bk.measured_mlups,
                    tol * 100.0,
                    floor
                ));
            }
        }
        for fk in &fresh.kernels {
            if !base.kernels.iter().any(|k| k.key() == fk.key()) {
                println!(
                    "  note {}: kernel {} is new (no baseline yet)",
                    fresh.name,
                    fk.key()
                );
            }
        }
        check_regret(&fresh, tune_tol, &mut failures);
        check_weak_scaling(&fresh, scale_tol, &mut failures);
    }
    if failures.is_empty() {
        println!("perf gate passed");
        ExitCode::SUCCESS
    } else {
        println!("perf gate FAILED:");
        for f in &failures {
            println!("  - {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("validate") => validate(&args[1..]),
        Some("diff") if args.len() == 3 => diff(Path::new(&args[1]), Path::new(&args[2])),
        _ => {
            eprintln!("usage: bench_check validate <file.json>...");
            eprintln!("       bench_check diff <baseline-dir> <fresh-dir>");
            ExitCode::FAILURE
        }
    }
}
