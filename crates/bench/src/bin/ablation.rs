//! **Pipeline-pass ablations** (DESIGN.md §6) — what each optimizing
//! transformation of §3.3–3.5 buys, measured on the generated P1 kernels:
//!
//! * compile-time parameter binding + simplification vs a generic kernel
//!   (the §5.1 argument: "a generic application without code generation
//!   would have to spend FLOPs to compute unnecessary expressions");
//! * expansion on/off, CSE on/off, LICM on/off — per-cell op counts;
//! * exploiting the analytic temperature (LICM level histogram);
//! * split vs full kernels (cross-reference: table1).

use pf_core::{build_model, p1};
use pf_ir::{generate, level_histogram, GenOptions};
use pf_perfmodel::{census, CountScope};
use pf_stencil::{discretize_full, Discretization, StencilKernel};
use pf_trace::Json;

fn main() {
    let p = p1();
    let m = build_model(&p);
    let disc = Discretization::new(p.dim, [p.dx; 3]);
    let mu = StencilKernel::new("mu_full", discretize_full(&disc, &m.mu_updates));
    let phi = StencilKernel::new("phi_full", discretize_full(&disc, &m.phi_updates));

    let variants: Vec<(&str, GenOptions)> = vec![
        ("all passes", GenOptions::default()),
        (
            "no expand",
            GenOptions {
                expand: false,
                ..GenOptions::default()
            },
        ),
        (
            "no cse",
            GenOptions {
                cse: false,
                ..GenOptions::default()
            },
        ),
        (
            "no licm",
            GenOptions {
                licm: false,
                ..GenOptions::default()
            },
        ),
        ("naive (none)", GenOptions::naive()),
    ];

    println!("Pipeline ablation on P1 (per-cell normalized FLOPS / instruction count)");
    println!("{:<14} {:>22} {:>22}", "variant", "mu-full", "phi-full");
    let mut rows = Vec::new();
    for (name, opts) in &variants {
        let tmu = generate(&mu, opts);
        let tphi = generate(&phi, opts);
        let cm = census(&tmu, CountScope::PerCell);
        let cp = census(&tphi, CountScope::PerCell);
        println!(
            "{:<14} {:>12} / {:>7} {:>12} / {:>7}",
            name,
            cm.normalized_flops(),
            tmu.instrs.len(),
            cp.normalized_flops(),
            tphi.instrs.len()
        );
        rows.push(Json::obj([
            ("variant".into(), Json::str(*name)),
            (
                "mu_norm_flops".into(),
                Json::Num(cm.normalized_flops() as f64),
            ),
            ("mu_instrs".into(), Json::Num(tmu.instrs.len() as f64)),
            (
                "phi_norm_flops".into(),
                Json::Num(cp.normalized_flops() as f64),
            ),
            ("phi_instrs".into(), Json::Num(tphi.instrs.len() as f64)),
        ]));
    }

    // The analytic-temperature effect: with LICM, every T-dependent
    // subexpression leaves the inner loop (the paper's 80x-speedup story
    // in [2] hinged on this being done by hand).
    let tape = generate(&mu, &GenOptions::default());
    let h = level_histogram(&tape.levels);
    println!(
        "\nLICM level histogram of µ-full (loop order {:?}):",
        tape.loop_order
    );
    println!(
        "  invariant: {:>5}   per-z: {:>5}   per-y: {:>5}   per-cell: {:>5}",
        h[0], h[1], h[2], h[3]
    );
    println!("  (T = T0 + G·(z − v·t) depends on z only, so z is chosen outermost");
    println!("   and all temperature chemistry is hoisted out of the x/y loops.)");

    // Fluctuation extension costs (§3.2: "extension of the model by a
    // fluctuation term by adding a single expression to the PDE").
    let mut p_fluct = p1();
    p_fluct.fluctuation_amplitude = 1e-3;
    let mf = build_model(&p_fluct);
    let phif = StencilKernel::new("phi_fluct", discretize_full(&disc, &mf.phi_updates));
    let t_base = generate(&phi, &GenOptions::default());
    let t_fluct = generate(&phif, &GenOptions::default());
    println!(
        "\nfluctuation term: +{} instructions (+{} Philox lanes) on phi-full",
        t_fluct.instrs.len() as i64 - t_base.instrs.len() as i64,
        census(&t_fluct, CountScope::PerCell).rng
    );

    // Config parameter count claim (§5.1).
    println!(
        "\nconfig parameters folded at compile time for {}: {} (paper: >50 for 4 phases / 3 components)",
        p.name,
        p.config_parameter_count()
    );

    let perf = pf_bench::standard_kernel_perf(&p, &pf_bench::kernels_for(&p));
    let extra = vec![
        ("pass_ablation".to_string(), Json::Arr(rows)),
        (
            "licm_level_histogram".to_string(),
            Json::Arr(h.iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
        (
            "fluctuation_extra_instrs".to_string(),
            Json::Num((t_fluct.instrs.len() as i64 - t_base.instrs.len() as i64) as f64),
        ),
        (
            "config_parameters_folded".to_string(),
            Json::Num(p.config_parameter_count() as f64),
        ),
    ];
    pf_bench::emit_bench("ablation", perf, extra).expect("write BENCH_ablation.json");
}
