//! **§6.2 approximate math** — "the use of approximations for square roots
//! and divisions results in a speedup of 25–35 % for the µ kernels, which
//! contain many of these operations."
//!
//! Reports both the modelled GPU speedup (weighted-cost model with
//! `__fdividef`/`__frsqrt_rn` weights) and the numerical error the
//! approximations introduce in the executor (which emulates them in f32).

use pf_backend::{run_kernel, ExecMode, RunCtx};
use pf_bench::{kernels_for, workload_store};
use pf_core::{p1, p2};
use pf_machine::tesla_p100;
use pf_perfmodel::gpu_kernel_model;
use pf_trace::Json;

fn main() {
    let gpu = tesla_p100();
    println!("Approximate division/square-root evaluation (paper: 25-35% on µ kernels)");
    println!(
        "{:<6} {:<10} {:>12} {:>12} {:>9} {:>16}",
        "model", "kernel", "exact ns", "approx ns", "speedup", "max |rel.err|"
    );
    let mut perf = Vec::new();
    let mut rows = Vec::new();
    let mut schedules = Vec::new();
    for p in [p1(), p2()] {
        let ks = kernels_for(&p);
        perf.extend(pf_bench::standard_kernel_perf(&p, &ks));
        for (name, tape) in [("mu", &ks.mu_full), ("phi", &ks.phi_full)] {
            let mut fast = tape.clone();
            fast.approx.fast_div = true;
            fast.approx.fast_sqrt = true;
            fast.approx.fast_rsqrt = true;
            // Register-pressure reschedules are *tuned*, not taken blindly:
            // the beam-search candidates are priced against the identity
            // schedule and the LICM loss only paid when the occupancy
            // payoff wins (previously `gpu_optimized` was unconditional).
            let sched_exact = pf_core::tune_gpu_schedule(tape, &gpu, 8.0 * 10.0, 256);
            let sched_fast = pf_core::tune_gpu_schedule(&fast, &gpu, 8.0 * 10.0, 256);
            let me = gpu_kernel_model(&sched_exact.tape, &gpu, 8.0 * 10.0, 256);
            let mf = gpu_kernel_model(&sched_fast.tape, &gpu, 8.0 * 10.0, 256);
            schedules.push(Json::obj([
                ("params".into(), Json::str(&p.name)),
                ("kernel".into(), Json::str(name)),
                ("schedule".into(), Json::str(&sched_exact.chosen.label)),
                ("adopted".into(), Json::Bool(sched_exact.adopted)),
                ("payoff".into(), Json::Num(sched_exact.payoff())),
                ("licm_lost".into(), Json::Bool(sched_exact.chosen.licm_lost)),
                (
                    "identity_ns_per_cell".into(),
                    Json::Num(sched_exact.identity.ns_per_cell),
                ),
                (
                    "chosen_ns_per_cell".into(),
                    Json::Num(sched_exact.chosen.ns_per_cell),
                ),
                (
                    "candidates".into(),
                    Json::Num(sched_exact.candidates.len() as f64),
                ),
            ]));

            // Numerical error of the emulated approximate ops.
            let shape = [12usize, 12, 12];
            let ctx = RunCtx {
                dx: [p.dx; 3],
                ..RunCtx::default()
            };
            let mut s_exact = workload_store(&p, &ks, shape);
            let mut s_fast = workload_store(&p, &ks, shape);
            run_kernel(tape, &mut s_exact, &[], shape, &ctx, ExecMode::Serial);
            run_kernel(&fast, &mut s_fast, &[], shape, &ctx, ExecMode::Serial);
            let dst = if name == "mu" {
                ks.fields.mu_dst
            } else {
                ks.fields.phi_dst
            };
            let err = s_exact.get(dst).max_abs_diff(s_fast.get(dst));

            println!(
                "{:<6} {:<10} {:>12.3} {:>12.3} {:>8.0}% {:>16.2e}",
                p.name,
                name,
                me.ns_per_cell,
                mf.ns_per_cell,
                (me.ns_per_cell / mf.ns_per_cell - 1.0) * 100.0,
                err
            );
            rows.push(Json::obj([
                ("params".into(), Json::str(&p.name)),
                ("kernel".into(), Json::str(name)),
                ("exact_ns_per_cell".into(), Json::Num(me.ns_per_cell)),
                ("approx_ns_per_cell".into(), Json::Num(mf.ns_per_cell)),
                ("speedup".into(), Json::Num(me.ns_per_cell / mf.ns_per_cell)),
                ("max_rel_err".into(), Json::Num(err)),
            ]));
        }
    }
    println!("\n(µ kernels carry the divisions/rsqrts — mobility, susceptibility and");
    println!("anti-trapping normalizations — so they benefit most, as in the paper.)");

    let extra = vec![
        ("approx_math".to_string(), Json::Arr(rows)),
        (
            "gpu_schedule".to_string(),
            Json::obj([("kernels".to_string(), Json::Arr(schedules))]),
        ),
    ];
    pf_bench::emit_bench("gpu_approx", perf, extra).expect("write BENCH_gpu_approx.json");
}
