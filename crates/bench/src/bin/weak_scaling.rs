//! **Weak scaling** — the distributed runtime past toy rank counts.
//!
//! Sweeps simulated (thread-backed) rank counts at a fixed per-rank block
//! volume and measures whole-world throughput of the real distributed step
//! loop — batched halo exchange, overlapped schedule, the same runtime the
//! bitwise suites pin. Next to each measured point sits the `pf-cluster`
//! analytic prediction for the same workload on SuperMUC-NG, the model the
//! paper's Fig. 3 curves come from.
//!
//! The host time-shares the simulated ranks onto `threads_avail` OS
//! threads, so raw per-rank throughput falls off as 1/oversubscription no
//! matter how good the runtime is. The reported *measured efficiency*
//! multiplies the raw rate by `max(1, ranks/threads)` first; what remains
//! is genuine runtime overhead (exchanges, barriers, retransmit timers),
//! which is what `bench_check` gates against the prediction
//! (`PF_SCALE_GATE_TOL`).

use pf_bench::kernels_for;
use pf_cluster::StepWorkload;
use pf_core::p1;
use pf_grid::{halo_bytes, CommOptions};
use pf_machine::{skylake_8174, supermuc_ng};
use pf_perfmodel::{ecm_model, simulate_sweep};
use pf_trace::Json;
use std::time::Instant;

/// Fixed per-rank interior block; the global domain is this stacked
/// `ranks` times along z.
const BLOCK: [usize; 3] = [8, 8, 4];

fn rank_counts() -> Vec<usize> {
    if pf_bench::smoke() {
        vec![2, 4, 8, 16]
    } else {
        vec![2, 4, 8, 16, 32, 64, 128]
    }
}

/// Measured whole-world MLUP/s of the distributed step loop at `ranks`
/// simulated ranks (best-of-2, same rationale as `standard_kernel_perf`).
fn measured_world_mlups(ranks: usize, steps: usize) -> f64 {
    let p = p1();
    let ks = kernels_for(&p);
    let global = [BLOCK[0], BLOCK[1], BLOCK[2] * ranks];
    let cells = (global[0] * global[1] * global[2]) as f64;
    let phases = p.phases;
    let liquid = p.liquid_phase;
    let num_mu = p.num_mu();
    let (cx, cy) = (global[0] as f64 / 2.0, global[1] as f64 / 2.0);
    let init_phi = move |x: i64, y: i64, _z: i64| {
        let d = (((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt() - cx * 0.5) / 3.0;
        let s = 0.5 * (1.0 - d.tanh());
        let mut v = vec![0.0; phases];
        v[liquid] = 1.0 - s;
        v[(liquid + 1) % phases] = s;
        v
    };
    let init_mu = move |_: i64, _: i64, _: i64| vec![0.05; num_mu];
    let mut cfg = pf_core::dist::DistConfig::new(global, ranks);
    cfg.comm.overlap = true;
    (0..2)
        .map(|_| {
            let t0 = Instant::now();
            pf_core::dist::run_distributed(&p, &ks, &cfg, steps, init_phi, init_mu, |_| ());
            cells * steps as f64 / t0.elapsed().as_secs_f64() / 1e6
        })
        .fold(f64::MIN, f64::max)
}

/// The `pf-cluster` per-rank workload for the fixed block, with kernel
/// times from the ECM model the same way Fig. 3's CPU curves price them.
fn predicted_workload() -> StepWorkload {
    let p = p1();
    let ks = kernels_for(&p);
    let sock = skylake_8174();
    let cells = (BLOCK[0] * BLOCK[1] * BLOCK[2]) as u64;
    let vol_phi = simulate_sweep(&ks.phi_full, &sock, BLOCK);
    let vol_mu = simulate_sweep(&ks.mu_full, &sock, BLOCK);
    let phi_rate = ecm_model(&ks.phi_full, &sock, &vol_phi).mlups(sock.freq_ghz, sock.cores)
        / sock.cores as f64
        * 1e6;
    let mu_rate = ecm_model(&ks.mu_full, &sock, &vol_mu).mlups(sock.freq_ghz, sock.cores)
        / sock.cores as f64
        * 1e6;
    StepWorkload {
        t_phi: cells as f64 / phi_rate,
        t_mu: cells as f64 / mu_rate,
        phi_halo_bytes: halo_bytes(BLOCK, 1, 4),
        mu_halo_bytes: halo_bytes(BLOCK, 1, 2),
        cells,
        mu_inner_fraction: 0.9,
    }
}

fn main() {
    let counts = rank_counts();
    let steps = 2usize;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as f64;
    let per_rank_cells = (BLOCK[0] * BLOCK[1] * BLOCK[2]) as f64;

    let w = predicted_workload();
    let cluster = supermuc_ng();
    let opts = CommOptions {
        overlap: true,
        gpudirect: false,
        ..CommOptions::default()
    };
    let predicted = pf_cluster::weak_scaling(&w, &cluster, opts, &counts);

    println!(
        "weak scaling — {}x{}x{} per rank, {} steps, {} host threads",
        BLOCK[0], BLOCK[1], BLOCK[2], steps, threads
    );
    println!(
        "{:>7} {:>16} {:>13} {:>16} {:>14}",
        "ranks", "measured/rank", "meas. eff.", "predicted/rank", "pred. eff."
    );
    let mut measured = Vec::new();
    for &r in &counts {
        let per_rank = measured_world_mlups(r, steps) / r as f64;
        measured.push((r, per_rank));
    }
    let corrected = |(r, m): (usize, f64)| m * (r as f64 / threads).max(1.0);
    let m0 = corrected(measured[0]);
    let p0 = predicted[0].1;
    let mut series = Vec::new();
    for (&(r, m), &(pr, p)) in measured.iter().zip(&predicted) {
        assert_eq!(r, pr);
        let me = corrected((r, m)) / m0;
        let pe = p / p0;
        println!("{r:>7} {m:>16.4} {me:>13.3} {p:>16.2} {pe:>14.4}");
        series.push(Json::obj([
            ("ranks".into(), Json::Num(r as f64)),
            ("measured_mlups_per_rank".into(), Json::Num(m)),
            ("measured_efficiency".into(), Json::Num(me)),
            ("predicted_mlups_per_rank".into(), Json::Num(p)),
            ("predicted_efficiency".into(), Json::Num(pe)),
        ]));
    }
    println!(
        "paper: per-core rate stays flat to 152k cores (Fig. 3); the analytic \
         prediction above reproduces that, the measured column tracks it modulo \
         host noise.\n"
    );

    let ws = Json::obj([
        ("per_rank_cells".to_string(), Json::Num(per_rank_cells)),
        ("steps".to_string(), Json::Num(steps as f64)),
        ("series".to_string(), Json::Arr(series)),
    ]);
    let p = p1();
    let ks = kernels_for(&p);
    let perf = pf_bench::standard_kernel_perf(&p, &ks);
    pf_bench::emit_bench("weak_scaling", perf, vec![("weak_scaling".into(), ws)])
        .expect("write BENCH_weak_scaling.json");
}
