//! **Fig. 3** — scaling experiments on SuperMUC-NG and Piz Daint.
//!
//! * left: weak scaling on SuperMUC-NG, 60³ block per core, generated vs the
//!   manually optimized 2015 solver (≈6 MLUP/s per core flat to ~150k cores;
//!   the generated code ≈20 % faster than manual),
//! * middle: weak scaling on Piz Daint, 400³ block per GPU (≈440 MLUP/s per
//!   GPU, flat to 2048+ GPUs),
//! * right: strong scaling of a fixed 512×256×256 domain on SuperMUC-NG
//!   (0.2 steps/s at 48 cores → 460 steps/s at 152 064 cores).
//!
//! Usage: `fig3 [weak-cpu|weak-gpu|strong-cpu|all]`

use pf_bench::kernels_for;
use pf_cluster::{mlups_per_unit, strong_scaling, StepWorkload};
use pf_core::p1;
use pf_grid::{halo_bytes, CommOptions};
use pf_machine::{piz_daint, skylake_8174, supermuc_ng, NodeKind};
use pf_perfmodel::{ecm_model, gpu_kernel_model, simulate_sweep};
use pf_trace::Json;

/// Per-core CPU kernel rates from the ECM model (one core's share).
fn cpu_rates() -> (f64, f64) {
    let p = p1();
    let ks = kernels_for(&p);
    let sock = skylake_8174();
    let block = [24usize, 24, 8];
    let vol_phi = simulate_sweep(&ks.phi_full, &sock, block);
    let vol_mu = simulate_sweep(&ks.mu_full, &sock, block);
    // Saturated-socket per-core rates (weak scaling runs full sockets).
    let phi = ecm_model(&ks.phi_full, &sock, &vol_phi).mlups(sock.freq_ghz, sock.cores)
        / sock.cores as f64;
    let mu =
        ecm_model(&ks.mu_full, &sock, &vol_mu).mlups(sock.freq_ghz, sock.cores) / sock.cores as f64;
    (phi * 1e6, mu * 1e6) // LUP/s per core
}

fn weak_cpu() -> Json {
    let cluster = supermuc_ng();
    let (phi_rate, mu_rate) = cpu_rates();
    let block = [60usize, 60, 60];
    let cells = 60u64.pow(3);
    let w = StepWorkload {
        t_phi: cells as f64 / phi_rate,
        t_mu: cells as f64 / mu_rate,
        phi_halo_bytes: halo_bytes(block, 1, 4),
        mu_halo_bytes: halo_bytes(block, 1, 2),
        cells,
        mu_inner_fraction: 0.9,
    };
    let opts = CommOptions {
        overlap: true,
        gpudirect: false,
        ..CommOptions::default()
    };
    println!("Fig. 3 (left) — weak scaling on SuperMUC-NG, 60^3 per core");
    println!(
        "{:>9} {:>22} {:>22}",
        "cores", "generated MLUP/s/core", "manual MLUP/s/core"
    );
    let mut series = Vec::new();
    for cores in [
        16usize, 64, 256, 1024, 4096, 16_384, 65_536, 152_064, 262_144,
    ] {
        let gen = mlups_per_unit(&w, &cluster, opts, cores);
        // The manual 2015 solver: AVX2-specialized, ~20% slower on AVX-512
        // Skylake ("our newly generated application optimizes for AVX512").
        let manual = StepWorkload {
            t_phi: w.t_phi / 0.83,
            t_mu: w.t_mu / 0.83,
            ..w
        };
        let man = mlups_per_unit(&manual, &cluster, opts, cores);
        println!("{cores:>9} {gen:>22.2} {man:>22.2}");
        series.push(Json::obj([
            ("cores".into(), Json::Num(cores as f64)),
            ("generated_mlups_per_core".into(), Json::Num(gen)),
            ("manual_mlups_per_core".into(), Json::Num(man)),
        ]));
    }
    println!("paper: ~6 MLUP/s per core, flat to 3168 nodes (152k cores); manual ~20% lower.\n");
    Json::Arr(series)
}

fn weak_gpu() -> Json {
    let p = p1();
    let ks = kernels_for(&p);
    let cluster = piz_daint();
    let gpu = match &cluster.node {
        NodeKind::Gpu { gpu, .. } => gpu.clone(),
        _ => unreachable!(),
    };
    let block = [400usize, 400, 400];
    let cells = (block[0] * block[1] * block[2]) as u64;
    let phi_m = gpu_kernel_model(&pf_bench::gpu_optimized(&ks.phi_full), &gpu, 8.0 * 9.0, 256);
    let mu_m = gpu_kernel_model(&pf_bench::gpu_optimized(&ks.mu_full), &gpu, 8.0 * 12.0, 256);
    let w = StepWorkload {
        t_phi: phi_m.runtime_ms(cells as usize) * 1e-3,
        t_mu: mu_m.runtime_ms(cells as usize) * 1e-3,
        phi_halo_bytes: halo_bytes(block, 1, 4),
        mu_halo_bytes: halo_bytes(block, 1, 2),
        cells,
        mu_inner_fraction: 0.95,
    };
    let opts = CommOptions {
        overlap: true,
        gpudirect: true,
        ..CommOptions::default()
    };
    println!("Fig. 3 (middle) — weak scaling on Piz Daint, 400^3 per GPU");
    println!("{:>9} {:>18}", "GPUs", "MLUP/s per GPU");
    let mut series = Vec::new();
    for gpus in [1usize, 4, 16, 64, 128, 512, 1024, 2048] {
        let rate = mlups_per_unit(&w, &cluster, opts, gpus);
        println!("{gpus:>9} {rate:>18.0}");
        series.push(Json::obj([
            ("gpus".into(), Json::Num(gpus as f64)),
            ("mlups_per_gpu".into(), Json::Num(rate)),
        ]));
    }
    println!("paper: ~440 MLUP/s per GPU, flat to 2400 nodes.\n");
    Json::Arr(series)
}

fn strong_cpu() -> Json {
    let cluster = supermuc_ng();
    let (phi_rate, mu_rate) = cpu_rates();
    let total = [512usize, 256, 256];
    let total_cells = (total[0] * total[1] * total[2]) as u64;
    let opts = CommOptions {
        overlap: true,
        gpudirect: false,
        ..CommOptions::default()
    };
    println!("Fig. 3 (right) — strong scaling, 512x256x256 on SuperMUC-NG");
    println!("{:>9} {:>18} {:>14}", "cores", "MLUP/s per core", "steps/s");
    let counts = [48usize, 192, 768, 3072, 12_288, 49_152, 152_064];
    let series = strong_scaling(&cluster, opts, &counts, |ranks| {
        let cells = (total_cells / ranks as u64).max(8);
        let side = (cells as f64).cbrt().max(2.0) as usize;
        StepWorkload {
            t_phi: cells as f64 / phi_rate,
            t_mu: cells as f64 / mu_rate,
            phi_halo_bytes: halo_bytes([side, side, side], 1, 4),
            mu_halo_bytes: halo_bytes([side, side, side], 1, 2),
            cells,
            mu_inner_fraction: 0.85,
        }
    });
    let mut out = Vec::new();
    for (ranks, mlups, steps) in &series {
        println!("{ranks:>9} {mlups:>18.2} {steps:>14.1}");
        out.push(Json::obj([
            ("cores".into(), Json::Num(*ranks as f64)),
            ("mlups_per_core".into(), Json::Num(*mlups)),
            ("steps_per_s".into(), Json::Num(*steps)),
        ]));
    }
    println!("paper: 0.2 steps/s at 48 cores; 460 steps/s at 152 064 cores.\n");
    Json::Arr(out)
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let mut extra = Vec::new();
    match arg.as_str() {
        "weak-cpu" => extra.push(("weak_cpu".to_string(), weak_cpu())),
        "weak-gpu" => extra.push(("weak_gpu".to_string(), weak_gpu())),
        "strong-cpu" => extra.push(("strong_cpu".to_string(), strong_cpu())),
        _ => {
            extra.push(("weak_cpu".to_string(), weak_cpu()));
            extra.push(("weak_gpu".to_string(), weak_gpu()));
            extra.push(("strong_cpu".to_string(), strong_cpu()));
        }
    }
    let p = p1();
    let ks = kernels_for(&p);
    // The weak/strong series above assume overlap pays for itself; pin a
    // real measurement of blocking-vs-overlapped next to them.
    let (mgrid, ranks, steps) = pf_bench::overlap_workload();
    let ((blocking, overlapped), mo) =
        pf_bench::measured_overlap_mlups(&p, &ks, mgrid, ranks, steps);
    println!(
        "measured schedules on this host ({ranks} ranks, {}x{}x{} global): \
         blocking {blocking:.3} MLUP/s, overlapped {overlapped:.3} MLUP/s ({:+.1}%)",
        mgrid[0],
        mgrid[1],
        mgrid[2],
        (overlapped / blocking - 1.0) * 100.0
    );
    extra.push(("measured_overlap".to_string(), Json::obj(mo)));
    let perf = pf_bench::standard_kernel_perf(&p, &ks);
    pf_bench::emit_bench("fig3", perf, extra).expect("write BENCH_fig3.json");
}
