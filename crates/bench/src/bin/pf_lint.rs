//! **`pf-lint`** — the static-verification CI driver.
//!
//! Runs the full pf-analyze v2 suite — SSA, halo fit, hazards, schedule
//! lints, value lints, contract-seeded interval dataflow, split-store
//! disjointness — over every generated kernel of P1 and P2, over the
//! GPU-rescheduled forms of those kernels (rematerialize → min-live
//! reschedule → fences, the §3.5 chain), and runs the symbolic
//! communication-protocol verifier over the overlapped distributed
//! schedule: all 2³ divided-patterns (a proof for *any* rank count) plus
//! the concrete 2/4/8-rank decompositions CI actually executes.
//!
//! Output: rustc-style diagnostics on stderr, a machine-readable
//! `LINT_report.json` (diagnostics + `analysis` counter block in the same
//! shape as the bench artifacts' `extra.analysis`) in `PF_BENCH_OUT_DIR`,
//! and a non-zero exit iff any error-severity finding exists. Warnings
//! are reported but do not fail the run.

use pf_analyze::{analyze, AnalyzeOptions, Diagnostic, SuiteReport};
use pf_core::{p1, p2, KernelSet, ModelParams, Variant};
use pf_grid::Decomposition;
use pf_ir::Tape;
use pf_trace::Json;

fn diag_json(d: &Diagnostic) -> Json {
    Json::obj([
        ("code".to_string(), Json::str(d.kind.code())),
        (
            "severity".to_string(),
            Json::str(if d.is_error() { "error" } else { "warning" }),
        ),
        ("kernel".to_string(), Json::str(d.kernel.clone())),
        (
            "instr".to_string(),
            d.instr.map_or(Json::Null, |i| Json::Num(i as f64)),
        ),
        ("message".to_string(), Json::str(d.to_string())),
    ])
}

/// Render a batch of diagnostics to stderr and fold them into the JSON
/// rows + error tally.
fn report(
    stage: &str,
    diags: Vec<Diagnostic>,
    rows: &mut Vec<Json>,
    errors: &mut usize,
    warnings: &mut usize,
) {
    if !diags.is_empty() {
        eprintln!("{}", pf_analyze::render(&diags));
    }
    for d in &diags {
        if d.is_error() {
            *errors += 1;
        } else {
            *warnings += 1;
        }
    }
    rows.extend(diags.iter().map(|d| {
        let Json::Obj(mut o) = diag_json(d) else {
            unreachable!()
        };
        o.insert("stage".into(), Json::str(stage));
        Json::Obj(o)
    }));
}

fn suite_diags(suite: &SuiteReport) -> Vec<Diagnostic> {
    suite
        .analyses
        .iter()
        .flat_map(|a| a.diagnostics.iter())
        .chain(suite.group_diagnostics.iter())
        .cloned()
        .collect()
}

fn set_tapes(ks: &KernelSet) -> Vec<&Tape> {
    let mut tapes: Vec<&Tape> = vec![&ks.phi_full, &ks.mu_full];
    for split in [&ks.phi_split, &ks.mu_split] {
        tapes.extend(split.flux_tapes.iter());
        tapes.push(&split.update);
    }
    tapes
}

fn main() {
    let models: Vec<ModelParams> = vec![p1(), p2()];
    let mut rows: Vec<Json> = Vec::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut kernels_checked = 0usize;

    for p in &models {
        // 1. The canonical kernel set, through the full suite (halo fit
        //    against the real allocation shapes included).
        println!("pf-lint: {} — kernel-set suite", p.name);
        let ks = pf_bench::kernels_for(p);
        let suite = pf_core::verify_kernel_set(p, &ks);
        kernels_checked += suite.kernels_verified();
        suite.record_trace();
        report(
            &format!("{}/kernels", p.name),
            suite_diags(&suite),
            &mut rows,
            &mut errors,
            &mut warnings,
        );

        // 2. GPU-rescheduled forms. The reschedule deliberately trades the
        //    LICM level structure for register pressure, so the
        //    schedule.licm-lost warning is *expected* here; what must hold
        //    is that no error-severity finding appears (the transforms
        //    preserve SSA, value and interval soundness — `field_ranges`
        //    contracts survive the rewrite).
        println!("pf-lint: {} — GPU-rescheduled tapes", p.name);
        let opts = AnalyzeOptions {
            allocs: None,
            hazards: true,
            seeded_rng: true,
            intervals: true,
        };
        let mut gpu_diags = Vec::new();
        for tape in set_tapes(&ks) {
            let gpu = pf_bench::gpu_optimized(tape);
            kernels_checked += 1;
            gpu_diags.extend(analyze(&gpu, &opts).diagnostics);
        }
        report(
            &format!("{}/gpu", p.name),
            gpu_diags,
            &mut rows,
            &mut errors,
            &mut warnings,
        );

        // 3. Symbolic protocol verification of the overlapped distributed
        //    schedule: every variant combination × every divided-pattern.
        //    Rank-count independent — this is the proof obligation that
        //    lets dist.rs demote its runtime frontier check to debug-only.
        println!("pf-lint: {} — comm protocol (all divided-patterns)", p.name);
        for (phi_v, mu_v) in [
            (Variant::Full, Variant::Full),
            (Variant::Full, Variant::Split),
            (Variant::Split, Variant::Full),
            (Variant::Split, Variant::Split),
        ] {
            report(
                &format!("{}/protocol/{:?}-{:?}", p.name, phi_v, mu_v),
                pf_core::verify_overlap_protocol(&ks, phi_v, mu_v),
                &mut rows,
                &mut errors,
                &mut warnings,
            );
        }

        // 4. The concrete decompositions CI executes: 2, 4 and 8 ranks.
        //    Subsumed by the pattern sweep above, but checking the exact
        //    `dim_classes` the runtime derives pins the model-to-runtime
        //    mapping itself.
        for ranks in [2usize, 4, 8] {
            let dec = Decomposition::new([16, 16, 16], ranks, [true; 3]);
            let classes = pf_core::dim_classes(&dec);
            let model =
                pf_core::overlap_protocol_model(&ks, Variant::Full, Variant::Split, classes);
            report(
                &format!("{}/protocol/{}ranks", p.name, ranks),
                pf_analyze::check_protocol(&model),
                &mut rows,
                &mut errors,
                &mut warnings,
            );
        }
    }

    // Machine-readable artifact. The `analysis` block mirrors the
    // `extra.analysis` object of the bench artifacts (same counter names),
    // so downstream tooling can diff verification coverage either way.
    let metrics = pf_trace::snapshot();
    let mut analysis: Vec<(String, Json)> = Vec::new();
    for (k, c) in &metrics.counters {
        if let Some(short) = k.strip_prefix("analyze.") {
            analysis.push((short.to_string(), Json::Num(c.total as f64)));
        }
    }
    for (k, g) in &metrics.gauges {
        if let Some(short) = k.strip_prefix("analyze.") {
            analysis.push((short.to_string(), Json::Num(g.value)));
        }
    }
    let artifact = Json::obj([
        ("schema".to_string(), Json::str("pf-lint/1")),
        (
            "models".to_string(),
            Json::Arr(models.iter().map(|p| Json::str(p.name.clone())).collect()),
        ),
        (
            "kernels_checked".to_string(),
            Json::Num(kernels_checked as f64),
        ),
        ("errors".to_string(), Json::Num(errors as f64)),
        ("warnings".to_string(), Json::Num(warnings as f64)),
        ("diagnostics".to_string(), Json::Arr(rows)),
        ("analysis".to_string(), Json::obj(analysis)),
    ]);
    let dir = pf_bench::bench_out_dir();
    std::fs::create_dir_all(&dir).expect("create out dir");
    let path = dir.join("LINT_report.json");
    std::fs::write(&path, artifact.to_pretty()).expect("write lint artifact");

    println!(
        "pf-lint: {kernels_checked} kernels checked, {errors} error(s), {warnings} warning(s)"
    );
    println!("lint artifact: {}", path.display());
    if errors > 0 {
        eprintln!("pf-lint: FAILED — error-severity findings above");
        std::process::exit(1);
    }
    println!("pf-lint: OK");
}
