//! **Fig. 2 (middle)** — φ-kernel variant comparison for P1 and P2.
//!
//! "To show that different high-level model configurations for the same
//! kernel produce very distinct performance behaviors, we model and
//! measure φ-split and φ-full variants for the P1 and P2 configuration.
//! As predicted by the model, for P1 the full version performs better,
//! while for P2 the φ-split kernel is the faster choice."

use pf_backend::ExecMode;
use pf_bench::{kernels_for, measure_mlups, with_threads};
use pf_core::{p1, p2, ModelParams};
use pf_ir::Tape;
use pf_machine::skylake_8174;
use pf_perfmodel::{ecm_model, simulate_sweep, DataVolumes};
use pf_trace::Json;

fn ecm_for(
    tapes: &[&Tape],
    sock: &pf_machine::CpuSocket,
    block: [usize; 3],
) -> pf_perfmodel::EcmPrediction {
    let mut vols = DataVolumes::default();
    for t in tapes {
        let v = simulate_sweep(t, sock, block);
        vols.l1_l2_bytes += v.l1_l2_bytes;
        vols.l2_l3_bytes += v.l2_l3_bytes;
        vols.l3_mem_bytes += v.l3_mem_bytes;
        vols.cells = v.cells;
    }
    let mut pred = ecm_model(tapes[0], sock, &vols);
    for t in &tapes[1..] {
        let px = ecm_model(
            t,
            sock,
            &DataVolumes {
                cells: 1,
                ..Default::default()
            },
        );
        pred.t_comp += px.t_comp;
        pred.t_nol += px.t_nol;
    }
    pred
}

fn report(p: &ModelParams) -> Json {
    let ks = kernels_for(p);
    let sock = skylake_8174();
    let block = [24usize, 24, 8];
    let full: Vec<&Tape> = vec![&ks.phi_full];
    let split: Vec<&Tape> = ks
        .phi_split
        .flux_tapes
        .iter()
        .chain([&ks.phi_split.update])
        .collect();
    let e_full = ecm_for(&full, &sock, block);
    let e_split = ecm_for(&split, &sock, block);

    println!("\n=== {} ===", p.name);
    println!("# cores | ECM phi-split | ECM phi-full | Bench phi-split | Bench phi-full  (MLUP/s per core)");
    let (shape, sweeps) = if pf_bench::smoke() {
        ([8usize, 8, 8], 1)
    } else {
        ([32usize, 32, 16], 2)
    };
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let core_list: &[usize] = if pf_bench::smoke() {
        &[1]
    } else {
        &[1, 4, 8, 16, 24]
    };
    let mut series = Vec::new();
    for &cores in core_list {
        let es = e_split.mlups(sock.freq_ghz, cores) / cores as f64;
        let ef = e_full.mlups(sock.freq_ghz, cores) / cores as f64;
        let mut point = vec![
            ("cores".to_string(), Json::Num(cores as f64)),
            ("ecm_phi_split".to_string(), Json::Num(es)),
            ("ecm_phi_full".to_string(), Json::Num(ef)),
        ];
        if cores <= avail {
            // Strip-mined vectorized engine: slab-parallel over the pool,
            // matching the compiled-code scaling the ECM columns model.
            let bs = with_threads(cores, || {
                measure_mlups(p, &ks, &split, shape, sweeps, ExecMode::Vectorized)
            }) / cores as f64;
            let bf = with_threads(cores, || {
                measure_mlups(p, &ks, &full, shape, sweeps, ExecMode::Vectorized)
            }) / cores as f64;
            println!("{cores:7} | {es:13.1} | {ef:12.1} | {bs:15.3} | {bf:14.3}");
            point.push(("bench_phi_split".to_string(), Json::Num(bs)));
            point.push(("bench_phi_full".to_string(), Json::Num(bf)));
        } else {
            println!(
                "{cores:7} | {es:13.1} | {ef:12.1} | {:>15} | {:>14}",
                "n/a", "n/a"
            );
        }
        series.push(Json::obj(point));
    }
    let cores = sock.cores;
    let s = e_split.mlups(sock.freq_ghz, cores);
    let f = e_full.mlups(sock.freq_ghz, cores);
    println!(
        "model-based choice at {cores} cores: phi-{}  ({:.0} vs {:.0} MLUP/s)",
        if s >= f { "split" } else { "full" },
        s,
        f
    );
    Json::obj([
        ("scaling_per_core".into(), Json::Arr(series)),
        (
            "model_choice_full_socket".into(),
            Json::str(if s >= f { "phi-split" } else { "phi-full" }),
        ),
    ])
}

fn main() {
    println!("Fig. 2 (middle) — phi kernel variants under P1 and P2");
    let x1 = report(&p1());
    let x2 = report(&p2());
    println!("\npaper shape: P1 -> phi-full wins, P2 -> phi-split wins (the anisotropic");
    println!("P2 model makes staggered-value recomputation much more expensive).");
    println!("See EXPERIMENTS.md for the discussion of where this reproduction's");
    println!("variant choice agrees or deviates.");

    let pa = p1();
    let pb = p2();
    let mut perf = pf_bench::standard_kernel_perf(&pa, &kernels_for(&pa));
    perf.extend(pf_bench::standard_kernel_perf(&pb, &kernels_for(&pb)));
    let extra = vec![("P1".to_string(), x1), ("P2".to_string(), x2)];
    pf_bench::emit_bench("fig2_middle", perf, extra).expect("write BENCH_fig2_middle.json");
}
