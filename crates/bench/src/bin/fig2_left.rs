//! **Fig. 2 (left)** — single-socket model and runtime comparison for the
//! µ kernels under P1: ECM prediction vs measured execution, MLUP/s per
//! core over 1..24 cores.
//!
//! The paper's findings to reproduce in shape:
//! * µ-split's per-core performance *decays* with core count (memory
//!   bound; scalability limit predicted around 32 cores),
//! * µ-full's per-core performance stays *flat* (compute bound, predicted
//!   to scale to ~83 cores),
//! * the model predicts a crossover around 16 cores after which µ-split's
//!   advantage erodes.
//!
//! The "Bench" series here runs our tape executor (an interpreter — its
//! absolute MLUP/s is far below compiled code and it is compute-dominated,
//! so its scaling is flatter than real hardware; the ECM series carries
//! the hardware shape).

use pf_backend::ExecMode;
use pf_bench::{kernels_for, measure_mlups, with_threads};
use pf_core::p1;
use pf_ir::Tape;
use pf_machine::skylake_8174;
use pf_perfmodel::{ecm_model, max_block_size, simulate_sweep, DataVolumes};
use pf_trace::Json;

fn combined_volumes(
    tapes: &[&Tape],
    sock: &pf_machine::CpuSocket,
    block: [usize; 3],
) -> DataVolumes {
    let mut total = DataVolumes::default();
    for t in tapes {
        let v = simulate_sweep(t, sock, block);
        total.l1_l2_bytes += v.l1_l2_bytes;
        total.l2_l3_bytes += v.l2_l3_bytes;
        total.l3_mem_bytes += v.l3_mem_bytes;
        total.cells = v.cells;
    }
    total
}

fn ecm_for(
    tapes: &[&Tape],
    sock: &pf_machine::CpuSocket,
    block: [usize; 3],
) -> pf_perfmodel::EcmPrediction {
    // Sum compute and volumes over the passes of a (possibly split) kernel.
    let vols = combined_volumes(tapes, sock, block);
    let mut pred = ecm_model(tapes[0], sock, &vols);
    for t in &tapes[1..] {
        let p2 = ecm_model(
            t,
            sock,
            &DataVolumes {
                cells: 1,
                ..Default::default()
            },
        );
        pred.t_comp += p2.t_comp;
        pred.t_nol += p2.t_nol;
    }
    pred
}

fn main() {
    let p = p1();
    let ks = kernels_for(&p);
    let sock = skylake_8174();

    // Spatial blocking from the layer condition (§6.1): the paper derives
    // N < 67 from the 1 MB L2 and uses 60³ blocks.
    let lc = max_block_size(&ks.mu_full, sock.l2_kib * 1024);
    println!(
        "layer condition: coefficient {} B/N², N_max(L2) = {lc} (paper: 232 B/N², N<67, used 60³)",
        pf_perfmodel::layer_condition_coefficient(&ks.mu_full)
    );

    let block = [24usize, 24, 8]; // cache-sim tile (small, same regime)
    let mu_full: Vec<&Tape> = vec![&ks.mu_full];
    let mu_split: Vec<&Tape> = ks
        .mu_split
        .flux_tapes
        .iter()
        .chain([&ks.mu_split.update])
        .collect();

    let pred_full = ecm_for(&mu_full, &sock, block);
    let pred_split = ecm_for(&mu_split, &sock, block);
    println!("\nECM decomposition (cycles per cacheline of results):");
    for (n, p_) in [("mu-full", &pred_full), ("mu-split", &pred_split)] {
        println!(
            "  {n:9} T_comp {:7.1}  T_nOL {:6.1}  T_L1L2 {:6.1}  T_L2L3 {:6.1}  T_L3Mem {:6.1}  -> saturates at {} cores",
            p_.t_comp, p_.t_nol, p_.t_l1l2, p_.t_l2l3, p_.t_l3mem,
            p_.saturation_cores()
        );
    }

    println!("\n# cores | ECM mu-split | ECM mu-full | Bench mu-split | Bench mu-full   (MLUP/s per core)");
    let (shape, sweeps) = if pf_bench::smoke() {
        ([8usize, 8, 8], 1)
    } else {
        ([32usize, 32, 16], 2)
    };
    // Measured scaling needs real cores; on smaller hosts the series is
    // truncated (the ECM columns carry the target machine's shape).
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let core_list: &[usize] = if pf_bench::smoke() {
        &[1]
    } else {
        &[1, 2, 4, 8, 12, 16, 20, 24]
    };
    let mut series = Vec::new();
    for &cores in core_list {
        let e_split = pred_split.mlups(sock.freq_ghz, cores) / cores as f64;
        let e_full = pred_full.mlups(sock.freq_ghz, cores) / cores as f64;
        if cores <= avail {
            // Vectorized is the production engine: strip-mined inner loop,
            // slab-parallel over the pool, so it scales with `cores` like
            // the compiled code the ECM columns model.
            let b_split = with_threads(cores, || {
                measure_mlups(&p, &ks, &mu_split, shape, sweeps, ExecMode::Vectorized)
            }) / cores as f64;
            let b_full = with_threads(cores, || {
                measure_mlups(&p, &ks, &mu_full, shape, sweeps, ExecMode::Vectorized)
            }) / cores as f64;
            println!("{cores:7} | {e_split:12.1} | {e_full:11.1} | {b_split:14.3} | {b_full:13.3}");
            series.push(Json::obj([
                ("cores".into(), Json::Num(cores as f64)),
                ("ecm_mu_split".into(), Json::Num(e_split)),
                ("ecm_mu_full".into(), Json::Num(e_full)),
                ("bench_mu_split".into(), Json::Num(b_split)),
                ("bench_mu_full".into(), Json::Num(b_full)),
            ]));
        } else {
            println!(
                "{cores:7} | {e_split:12.1} | {e_full:11.1} | {:>14} | {:>13}",
                "n/a", "n/a"
            );
            series.push(Json::obj([
                ("cores".into(), Json::Num(cores as f64)),
                ("ecm_mu_split".into(), Json::Num(e_split)),
                ("ecm_mu_full".into(), Json::Num(e_full)),
            ]));
        }
    }

    // Variant selection, as Kerncraft-informed selection would do it (§6.1).
    let full_socket = sock.cores;
    let s = pred_split.mlups(sock.freq_ghz, full_socket);
    let f = pred_full.mlups(sock.freq_ghz, full_socket);
    println!(
        "\nmodel-based selection at {full_socket} cores: mu-{} ({}: {:.0} vs {:.0} MLUP/s)",
        if s >= f { "split" } else { "full" },
        if s >= f { "split wins" } else { "full wins" },
        s,
        f
    );
    println!("paper: µ-split chosen for full-socket runs; model crossover at ~16 cores,");
    println!("extrapolated measurement crossover at ~26 cores.");

    let perf = pf_bench::standard_kernel_perf(&p, &ks);
    let extra = vec![
        ("scaling_per_core".to_string(), Json::Arr(series)),
        ("layer_condition_nmax_l2".to_string(), Json::Num(lc as f64)),
        (
            "model_choice_full_socket".to_string(),
            Json::str(if s >= f { "mu-split" } else { "mu-full" }),
        ),
    ];
    pf_bench::emit_bench("fig2_left", perf, extra).expect("write BENCH_fig2_left.json");
}
