//! **Table 2** — communication options on Piz Daint using 128 GPUs.
//!
//! ```text
//! overlap  GPUDirect  MLUP/s per GPU      (paper)
//! no       no         395
//! no       yes        403
//! yes      no         422
//! yes      yes        440
//! ```
//!
//! Kernel times come from the GPU model applied to the generated P1
//! kernels on a 400³ block; halo volumes from the real exchange-pattern
//! accounting; the cluster model prices latency, wire time, PCIe staging
//! and the §4.3 communication-hiding schedule.

use pf_bench::kernels_for;
use pf_cluster::{mlups_per_unit, StepWorkload};
use pf_core::p1;
use pf_grid::{halo_bytes, CommOptions};
use pf_machine::{piz_daint, NodeKind};
use pf_perfmodel::gpu_kernel_model;
use pf_trace::Json;

fn main() {
    let p = p1();
    let ks = kernels_for(&p);
    let cluster = piz_daint();
    let gpu = match &cluster.node {
        NodeKind::Gpu { gpu, .. } => gpu.clone(),
        _ => unreachable!(),
    };

    // Per-cell memory traffic: all field streams touched per update.
    let phi_streams = 2.0 * p.phases as f64; // src + dst
    let mu_streams = 2.0 * p.num_mu() as f64;
    let phi_model = gpu_kernel_model(
        &pf_bench::gpu_optimized(&ks.phi_full),
        &gpu,
        8.0 * (phi_streams + mu_streams * 0.5),
        256,
    );
    let mu_model = gpu_kernel_model(
        &pf_bench::gpu_optimized(&ks.mu_full),
        &gpu,
        8.0 * (phi_streams + mu_streams),
        256,
    );

    let block = [400usize, 400, 400];
    let cells = (block[0] * block[1] * block[2]) as u64;
    let w = StepWorkload {
        t_phi: phi_model.runtime_ms(cells as usize) * 1e-3,
        t_mu: mu_model.runtime_ms(cells as usize) * 1e-3,
        phi_halo_bytes: halo_bytes(block, 1, p.phases),
        mu_halo_bytes: halo_bytes(block, 1, p.num_mu()),
        cells,
        mu_inner_fraction: 0.95,
    };

    println!(
        "Table 2 — communication options on {} with 128 GPUs (P1, 400^3 per GPU)",
        cluster.name
    );
    println!(
        "{:<8} {:<10} {:>16} {:>14}",
        "overlap", "GPUDirect", "MLUP/s per GPU", "paper"
    );
    let paper = [395.0, 403.0, 422.0, 440.0];
    let combos = [(false, false), (false, true), (true, false), (true, true)];
    let mut ours = Vec::new();
    let mut rows = Vec::new();
    for ((overlap, gpudirect), paper_v) in combos.iter().zip(paper) {
        let m = mlups_per_unit(
            &w,
            &cluster,
            CommOptions {
                overlap: *overlap,
                gpudirect: *gpudirect,
                ..CommOptions::default()
            },
            128,
        );
        ours.push(m);
        println!(
            "{:<8} {:<10} {:>16.0} {:>14.0}",
            if *overlap { "yes" } else { "no" },
            if *gpudirect { "yes" } else { "no" },
            m,
            paper_v
        );
        rows.push(Json::obj([
            ("overlap".into(), Json::Bool(*overlap)),
            ("gpudirect".into(), Json::Bool(*gpudirect)),
            ("mlups_per_gpu".into(), Json::Num(m)),
            ("paper_mlups_per_gpu".into(), Json::Num(paper_v)),
        ]));
    }
    println!(
        "\nshape check: ordering no/no < no/yes < yes/no < yes/yes holds: {}",
        ours.windows(2).all(|w| w[0] < w[1])
    );
    println!(
        "overlap gain {:.1}% (paper ~6.8%), GPUDirect-on-top gain {:.1}% (paper ~4.3%)",
        (ours[2] / ours[0] - 1.0) * 100.0,
        (ours[3] / ours[2] - 1.0) * 100.0
    );

    // Model predictions above; now *measure* the two schedules end to end
    // on this host (thread-backed ranks, interpreter-scale numbers — the
    // comparison is overlapped-vs-blocking, not vs the GPU model).
    let (mgrid, ranks, steps) = pf_bench::overlap_workload();
    let ((blocking, overlapped), mo) =
        pf_bench::measured_overlap_mlups(&p, &ks, mgrid, ranks, steps);
    println!(
        "\nmeasured on this host ({ranks} ranks, {}x{}x{} global, {steps} steps):",
        mgrid[0], mgrid[1], mgrid[2]
    );
    println!(
        "  blocking {blocking:.3} MLUP/s, overlapped {overlapped:.3} MLUP/s ({:+.1}%; model predicts +{:.1}%)",
        (overlapped / blocking - 1.0) * 100.0,
        (ours[2] / ours[0] - 1.0) * 100.0
    );

    let perf = pf_bench::standard_kernel_perf(&p, &ks);
    let extra = vec![
        ("comm_options".to_string(), Json::Arr(rows)),
        (
            "ordering_holds".to_string(),
            Json::Bool(ours.windows(2).all(|w| w[0] < w[1])),
        ),
        ("measured_overlap".to_string(), Json::obj(mo)),
    ];
    pf_bench::emit_bench("table2", perf, extra).expect("write BENCH_table2.json");
}
