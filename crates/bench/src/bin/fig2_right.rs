//! **Fig. 2 (right)** — effectiveness of the GPU register-pressure
//! transformation sequences on the µ-full kernel.
//!
//! "Rescheduling of statements is the most effective GPU register usage
//! transformation on its own, as it manages to reduce both the number of
//! alive intermediates and allocated registers below 255. This eliminates
//! spilling, which increases performance by 50 %. … In this case
//! [dupl+sched+fence], the allocated register count drops below 128, which
//! doubles the occupancy, for a total performance improvement of a factor
//! of 2."
//!
//! Series printed per transformation sequence: live-value analysis count
//! (×2 = 32-bit registers), modelled allocated registers (the "nvcc"
//! series), and modelled runtime for a 256³ block on a P100.

use pf_bench::kernels_for;
use pf_core::p1;
use pf_ir::{insert_fences, rematerialize, schedule_min_live, Tape};
use pf_machine::tesla_p100;
use pf_perfmodel::gpu_kernel_model;
use pf_trace::Json;

fn main() {
    let p = p1();
    let ks = kernels_for(&p);
    let gpu = tesla_p100();
    let base = &ks.mu_full;
    let mem_bytes_per_cell = 8.0 * (8.0 + 2.0); // streams: φ×2 gens + µ src/dst

    let variants: Vec<(&str, Tape)> = vec![
        ("none", base.clone()),
        ("sched", schedule_min_live(base, 20)),
        ("dupl", rematerialize(base, 2)),
        ("fence", insert_fences(base, 48)),
        (
            "dupl+sched+fence",
            insert_fences(&schedule_min_live(&rematerialize(base, 2), 20), 48),
        ),
    ];

    println!("Fig. 2 (right) — GPU register transformations on the µ-full kernel (P1)");
    println!(
        "{:<18} {:>14} {:>14} {:>10} {:>12} {:>14}",
        "sequence", "analysis(x2)", "nvcc regs", "spilled", "occupancy", "runtime [ms]"
    );
    let cells = 256usize.pow(3);
    let mut runtimes = Vec::new();
    let mut table = Vec::new();
    for (name, tape) in &variants {
        let m = gpu_kernel_model(tape, &gpu, mem_bytes_per_cell, 256);
        println!(
            "{:<18} {:>14} {:>14} {:>10} {:>11.0}% {:>14.1}",
            name,
            2 * m.regs.analysis_live,
            m.regs.allocated,
            m.regs.spilled,
            m.occupancy * 100.0,
            m.runtime_ms(cells)
        );
        runtimes.push((*name, m.runtime_ms(cells)));
        table.push(Json::obj([
            ("sequence".into(), Json::str(*name)),
            (
                "analysis_regs".into(),
                Json::Num((2 * m.regs.analysis_live) as f64),
            ),
            ("allocated_regs".into(), Json::Num(m.regs.allocated as f64)),
            ("spilled_regs".into(), Json::Num(m.regs.spilled as f64)),
            ("occupancy".into(), Json::Num(m.occupancy)),
            ("runtime_ms".into(), Json::Num(m.runtime_ms(cells))),
        ]));
    }

    let t_none = runtimes[0].1;
    let t_sched = runtimes[1].1;
    let t_combo = runtimes[4].1;
    println!(
        "\nspeedups vs `none`: sched {:.2}x, dupl+sched+fence {:.2}x",
        t_none / t_sched,
        t_none / t_combo
    );
    println!("paper: sched alone ≈1.5x (spilling eliminated); full combination ≈2x");
    println!("(register count below 128 doubles occupancy).");

    // Beam-width sensitivity: "some of that effect can already be seen for
    // a reordering search breadth of one, effectively a greedy search, and
    // there is no consistent improvement for values above 20".
    println!("\nbeam-width sweep (peak live doubles after scheduling):");
    print!("  width:");
    let mut beam = Vec::new();
    for w in [1usize, 2, 4, 8, 20, 40] {
        let s = schedule_min_live(base, w);
        print!("  {w}->{}", pf_ir::liveness(&s).peak);
        beam.push(Json::obj([
            ("width".into(), Json::Num(w as f64)),
            (
                "peak_live".into(),
                Json::Num(pf_ir::liveness(&s).peak as f64),
            ),
        ]));
    }
    println!();

    let perf = pf_bench::standard_kernel_perf(&p, &ks);
    let extra = vec![
        ("gpu_register_table".to_string(), Json::Arr(table)),
        ("beam_width_sweep".to_string(), Json::Arr(beam)),
        ("speedup_sched".to_string(), Json::Num(t_none / t_sched)),
        (
            "speedup_dupl_sched_fence".to_string(),
            Json::Num(t_none / t_combo),
        ),
    ];
    pf_bench::emit_bench("fig2_right", perf, extra).expect("write BENCH_fig2_right.json");
}
