//! **Table 1** — per-cell operation counts for all compute kernels.
//!
//! "Number of floating point operations (additions, multiplications,
//! divisions, square roots, and inverse square roots) for all compute
//! kernels for one lattice cell. … The last row shows normalized FLOPS."
//!
//! For split kernels the first number is the staggered (face) pass, the
//! second the cell-centred update pass, exactly as in the paper's
//! `a + b` notation. Paper values are printed alongside for shape
//! comparison (absolute counts differ: the models are re-derived from
//! scratch and our CAS simplifies differently from sympy).

use pf_bench::kernels_for;
use pf_core::{p1, p2};
use pf_perfmodel::{census, CountScope, OpCensus};

struct Row {
    name: &'static str,
    face: Option<OpCensus>,
    cell: OpCensus,
}

fn split_census(tapes: &[pf_ir::Tape]) -> OpCensus {
    tapes
        .iter()
        .map(|t| census(t, CountScope::PerCell))
        .fold(OpCensus::default(), |a, b| a.add(&b))
}

fn fmt_pair(face: &Option<OpCensus>, f: impl Fn(&OpCensus) -> usize, cell: &OpCensus) -> String {
    match face {
        Some(fc) => format!("{} + {}", f(fc), f(cell)),
        None => format!("{}", f(cell)),
    }
}

fn main() {
    println!("Table 1 — operation counts per lattice cell (this reproduction)");
    println!("================================================================");
    let mut perf = Vec::new();
    let mut extra = Vec::new();
    let mut tuned = Vec::new();
    for p in [p1(), p2()] {
        let ks = kernels_for(&p);
        perf.extend(pf_bench::standard_kernel_perf(&p, &ks));
        // Schema pf-bench/5: table1 is a tuned artifact — run the
        // enumerate→price→shortlist→measure loop for both kernel families
        // and report chosen-vs-best regret so scripts/perf_gate.sh can gate
        // tuning quality alongside raw throughput.
        let reports = pf_bench::tune_reports(&p, &ks);
        for r in &reports {
            println!(
                "  tuned {}/{}: {}@{} {:.3} MLUP/s (static {}@{} {:.3}; \
                 regret chosen {:.1}% static {:.1}%)",
                p.name,
                r.family.name(),
                pf_core::variant_name(r.entry.variant),
                pf_core::mode_name(r.entry.mode),
                r.chosen_mlups,
                pf_core::variant_name(r.static_variant),
                pf_core::mode_name(r.static_mode),
                r.static_mlups,
                r.regret_chosen * 100.0,
                r.regret_static * 100.0,
            );
        }
        tuned.push((p.name.clone(), reports));
        let rows = vec![
            Row {
                name: "mu full",
                face: None,
                cell: census(&ks.mu_full, CountScope::PerCell),
            },
            Row {
                name: "mu partial",
                face: Some(split_census(&ks.mu_split.flux_tapes)),
                cell: census(&ks.mu_split.update, CountScope::PerCell),
            },
            Row {
                name: "phi full",
                face: None,
                cell: census(&ks.phi_full, CountScope::PerCell),
            },
            Row {
                name: "phi partial",
                face: Some(split_census(&ks.phi_split.flux_tapes)),
                cell: census(&ks.phi_split.update, CountScope::PerCell),
            },
        ];
        println!(
            "\n--- {} ({} phases, {} components, {}) ---",
            p.name,
            p.phases,
            p.components,
            if p.anisotropy.is_some() {
                "anisotropic"
            } else {
                "isotropic"
            }
        );
        println!(
            "{:<12} {:>10} {:>10} {:>11} {:>11} {:>9} {:>9} {:>9} {:>12}",
            "kernel", "loads", "stores", "adds", "muls", "divs", "sqrts", "rsqrts", "norm.FLOPS"
        );
        for r in &rows {
            let total_norm = r.face.as_ref().map(|f| f.normalized_flops()).unwrap_or(0)
                + r.cell.normalized_flops();
            println!(
                "{:<12} {:>10} {:>10} {:>11} {:>11} {:>9} {:>9} {:>9} {:>12}",
                r.name,
                fmt_pair(&r.face, |c| c.loads, &r.cell),
                fmt_pair(&r.face, |c| c.stores, &r.cell),
                fmt_pair(&r.face, |c| c.adds, &r.cell),
                fmt_pair(&r.face, |c| c.muls, &r.cell),
                fmt_pair(&r.face, |c| c.divs, &r.cell),
                fmt_pair(&r.face, |c| c.sqrts, &r.cell),
                fmt_pair(&r.face, |c| c.rsqrts, &r.cell),
                total_norm
            );
        }
        // Headline claims to check against the paper:
        let mu_full = census(&ks.mu_full, CountScope::PerCell).normalized_flops();
        let mu_split = split_census(&ks.mu_split.flux_tapes).normalized_flops()
            + census(&ks.mu_split.update, CountScope::PerCell).normalized_flops();
        println!(
            "  -> mu split / mu full = {:.2} (paper P1: 1328/2126 = 0.62 — split avoids recomputing staggered values)",
            mu_split as f64 / mu_full as f64
        );
        extra.push((
            format!("{}.norm_flops", p.name),
            pf_trace::Json::obj([
                ("mu_full".into(), pf_trace::Json::Num(mu_full as f64)),
                ("mu_split".into(), pf_trace::Json::Num(mu_split as f64)),
            ]),
        ));
    }
    println!();
    println!("Paper reference rows (Skylake-normalized, for shape comparison):");
    println!("  P1: mu full 2126 | mu partial 1328 | phi full 1004 | phi partial 818");
    println!("  P2: mu full 1177 | mu partial  756 | phi full 3968 | phi partial 2593");
    println!("  Manual µ-kernel of Bauer et al. 2015: 1384 normalized FLOPS (the");
    println!("  pipeline's automatic simplification slightly outperformed it).");
    extra.push(("tuning".to_string(), pf_bench::tuning_extra(&tuned)));
    pf_bench::emit_bench("table1", perf, extra).expect("write BENCH_table1.json");
}
