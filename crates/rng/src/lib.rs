//! `pf-rng` — Philox 4x32-10 counter-based random number generator.
//!
//! The paper replaces fluctuation terms with "the fast counter-based random
//! number generator Philox \[31\]. This RNG is stateless, i.e., no seed state
//! has to be loaded from memory. The global cell index and current time step
//! are used as counters/keys such that no data dependencies between cell
//! updates are introduced." (§3.3)
//!
//! This crate implements exactly that: the 10-round Philox 4x32 bijection
//! (Salmon et al., SC'11), validated against the reference known-answer
//! vectors from the Random123 distribution, plus the cell-keyed convenience
//! layer used by generated kernels.

#![forbid(unsafe_code)]

mod philox;

pub use philox::{philox4x32, philox4x32_r, Philox4x32Key};

/// Uniform double in [0, 1) from two 32-bit words (53-bit mantissa path).
#[inline]
pub fn u64_to_unit_f64(hi: u32, lo: u32) -> f64 {
    let bits = ((hi as u64) << 32) | lo as u64;
    // Keep the top 53 bits — the full f64 mantissa resolution.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The full persistent RNG state of a run at a point in time.
///
/// Philox is counter-based, so this is *all* there is: the user seed (key
/// material) and the timestep half of the counter. Cell indices supply the
/// rest of the counter at evaluation time. Checkpointing a simulation
/// therefore only needs to save these two values to resume the exact
/// fluctuation stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterState {
    pub seed: u32,
    pub timestep: u64,
}

impl CounterState {
    pub fn new(seed: u32, timestep: u64) -> Self {
        CounterState { seed, timestep }
    }

    /// The generator this state parameterizes.
    pub fn rng(&self) -> CellRng {
        CellRng::new(self.seed)
    }
}

/// The per-cell fluctuation source used by generated kernels.
///
/// Counter layout follows the paper: the three global cell indices and the
/// time step form the 128-bit counter; the user seed and lane id form the
/// key. Two calls with the same inputs always agree (statelessness), and
/// any change to cell index, time step, seed, or lane decorrelates the
/// output.
#[derive(Clone, Copy, Debug)]
pub struct CellRng {
    pub seed: u32,
}

impl CellRng {
    pub fn new(seed: u32) -> Self {
        CellRng { seed }
    }

    /// Snapshot the persistent state at `timestep` (for checkpointing).
    pub fn counter_state(&self, timestep: u64) -> CounterState {
        CounterState::new(self.seed, timestep)
    }

    /// Raw 4x32 output for a cell/timestep.
    #[inline]
    pub fn raw(&self, cell: [i64; 3], timestep: u64, lane: u32) -> [u32; 4] {
        let ctr = [
            cell[0] as u32,
            cell[1] as u32,
            cell[2] as u32,
            timestep as u32,
        ];
        // Mix the high halves into the key so domains larger than 2^32 cells
        // or runs longer than 2^32 steps stay decorrelated.
        let hi_mix = ((cell[0] as u64 >> 32) as u32)
            ^ ((cell[1] as u64 >> 32) as u32).rotate_left(11)
            ^ ((cell[2] as u64 >> 32) as u32).rotate_left(22)
            ^ ((timestep >> 32) as u32).rotate_left(7);
        let key = Philox4x32Key::new([self.seed ^ hi_mix, lane]);
        philox4x32(ctr, key)
    }

    /// Uniform double in [-1, 1], as required by the fluctuation term
    /// `amplitude * random(-1, 1, kind='philox')` on the PDE layer.
    #[inline]
    pub fn uniform_pm1(&self, cell: [i64; 3], timestep: u64, lane: u32) -> f64 {
        let r = self.raw(cell, timestep, lane);
        2.0 * u64_to_unit_f64(r[0], r[1]) - 1.0
    }

    /// Uniform double in [0, 1).
    #[inline]
    pub fn uniform01(&self, cell: [i64; 3], timestep: u64, lane: u32) -> f64 {
        let r = self.raw(cell, timestep, lane);
        u64_to_unit_f64(r[0], r[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_interval_mapping_bounds() {
        assert_eq!(u64_to_unit_f64(0, 0), 0.0);
        let max = u64_to_unit_f64(u32::MAX, u32::MAX);
        assert!(max < 1.0 && max > 0.9999999);
    }

    #[test]
    fn cell_rng_is_stateless_and_reproducible() {
        let rng = CellRng::new(42);
        let a = rng.uniform_pm1([10, 20, 30], 5, 0);
        let b = rng.uniform_pm1([10, 20, 30], 5, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn counter_state_round_trips_the_stream() {
        let rng = CellRng::new(42);
        let state = rng.counter_state(17);
        assert_eq!(state, CounterState::new(42, 17));
        // Rebuilding the generator from saved state continues identically.
        let resumed = state.rng();
        assert_eq!(
            rng.uniform_pm1([1, 2, 3], state.timestep, 0),
            resumed.uniform_pm1([1, 2, 3], state.timestep, 0)
        );
    }

    #[test]
    fn neighbouring_cells_decorrelate() {
        let rng = CellRng::new(42);
        let a = rng.uniform_pm1([10, 20, 30], 5, 0);
        let b = rng.uniform_pm1([11, 20, 30], 5, 0);
        let c = rng.uniform_pm1([10, 20, 30], 6, 0);
        let d = rng.uniform_pm1([10, 20, 30], 5, 1);
        assert!(a != b && a != c && a != d);
    }

    #[test]
    fn output_in_closed_pm1() {
        let rng = CellRng::new(7);
        for i in 0..1000i64 {
            let v = rng.uniform_pm1([i, 2 * i, -i], i as u64, 0);
            assert!((-1.0..=1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn mean_and_variance_are_plausible() {
        // Uniform on [-1,1]: mean 0, variance 1/3.
        let rng = CellRng::new(1234);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n as i64 {
            let v = rng.uniform_pm1([i % 100, (i / 100) % 100, i / 10_000], 0, 0);
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 3.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn large_indices_use_high_bits() {
        let rng = CellRng::new(0);
        // Differ only in bits above 32 of the x index.
        let a = rng.uniform01([1, 0, 0], 0, 0);
        let b = rng.uniform01([1 + (1i64 << 33), 0, 0], 0, 0);
        assert_ne!(a, b);
    }
}
