//! The Philox 4x32 bijection (Salmon, Moraes, Dror, Shaw — "Parallel random
//! numbers: as easy as 1, 2, 3", SC'11).
//!
//! Philox applies R rounds of a Feistel-like mixing built from two 32x32→64
//! multiplications per round; the key is bumped by Weyl constants between
//! rounds. With the recommended R = 10 it passes BigCrush while needing no
//! per-stream state — ideal inside stencil kernels.

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;

/// The 2x32 Philox key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Philox4x32Key(pub [u32; 2]);

impl Philox4x32Key {
    pub fn new(k: [u32; 2]) -> Self {
        Philox4x32Key(k)
    }

    #[inline]
    fn bump(self) -> Self {
        Philox4x32Key([
            self.0[0].wrapping_add(PHILOX_W0),
            self.0[1].wrapping_add(PHILOX_W1),
        ])
    }
}

#[inline]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = (a as u64) * (b as u64);
    ((p >> 32) as u32, p as u32)
}

#[inline]
fn round(ctr: [u32; 4], key: Philox4x32Key) -> [u32; 4] {
    let (hi0, lo0) = mulhilo(PHILOX_M0, ctr[0]);
    let (hi1, lo1) = mulhilo(PHILOX_M1, ctr[2]);
    [hi1 ^ ctr[1] ^ key.0[0], lo1, hi0 ^ ctr[3] ^ key.0[1], lo0]
}

/// Philox 4x32 with a configurable round count (mainly for tests and the
/// round-count ablation; production code uses [`philox4x32`] = 10 rounds).
#[inline]
pub fn philox4x32_r(rounds: u32, mut ctr: [u32; 4], mut key: Philox4x32Key) -> [u32; 4] {
    for r in 0..rounds {
        if r > 0 {
            key = key.bump();
        }
        ctr = round(ctr, key);
    }
    ctr
}

/// The standard 10-round Philox 4x32.
#[inline]
pub fn philox4x32(ctr: [u32; 4], key: Philox4x32Key) -> [u32; 4] {
    philox4x32_r(10, ctr, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer vectors from the Random123 reference distribution
    // (kat_vectors file, philox4x32 10 entries).
    #[test]
    fn kat_zero() {
        let out = philox4x32([0, 0, 0, 0], Philox4x32Key::new([0, 0]));
        assert_eq!(out, [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]);
    }

    #[test]
    fn kat_all_ones() {
        let out = philox4x32([u32::MAX; 4], Philox4x32Key::new([u32::MAX, u32::MAX]));
        assert_eq!(out, [0x408f_276d, 0x41c8_3b0e, 0xa20b_c7c6, 0x6d54_51fd]);
    }

    #[test]
    fn kat_pi_digits() {
        let out = philox4x32(
            [0x243f_6a88, 0x85a3_08d3, 0x1319_8a2e, 0x0370_7344],
            Philox4x32Key::new([0xa409_3822, 0x299f_31d0]),
        );
        assert_eq!(out, [0xd16c_fe09, 0x94fd_cceb, 0x5001_e420, 0x2412_6ea1]);
    }

    #[test]
    fn seven_round_variant_matches_reference() {
        // philox4x32 7, zero input (Random123 kat_vectors).
        let out = philox4x32_r(7, [0, 0, 0, 0], Philox4x32Key::new([0, 0]));
        assert_eq!(out, [0x5f6f_b709, 0x0d89_3f64, 0x4f12_1f81, 0x4f73_0a48]);
    }

    #[test]
    fn bijection_distinguishes_counters() {
        let key = Philox4x32Key::new([1, 2]);
        let a = philox4x32([0, 0, 0, 0], key);
        let b = philox4x32([1, 0, 0, 0], key);
        assert_ne!(a, b);
    }

    #[test]
    fn key_bump_uses_weyl_constants() {
        let k = Philox4x32Key::new([0, 0]).bump();
        assert_eq!(k.0, [PHILOX_W0, PHILOX_W1]);
    }
}
