//! `pf-machine` — models of the hardware the paper evaluates on.
//!
//! The original experiments ran on SuperMUC-NG (Intel Xeon Platinum 8174,
//! Skylake-SP) and Piz Daint (NVIDIA Tesla P100, Cray Aries). Neither is
//! available here, so these descriptions drive the analytic performance
//! models (`pf-perfmodel`) and the cluster-scale discrete-event simulator
//! (`pf-cluster`) instead. Parameters are taken from the paper's §6 and
//! public spec sheets.

#![forbid(unsafe_code)]

/// One CPU socket as seen by the ECM model.
#[derive(Clone, Debug)]
pub struct CpuSocket {
    pub name: String,
    pub cores: usize,
    /// Sustained AVX-512 clock in GHz (Skylake downclocks under AVX-512).
    pub freq_ghz: f64,
    /// f64 lanes per SIMD vector (8 for AVX-512).
    pub simd_f64: usize,
    /// Fused multiply-add available.
    pub fma: bool,
    pub cacheline_bytes: usize,
    pub l1_kib: usize,
    pub l2_kib: usize,
    /// Shared L3 size for the whole socket.
    pub l3_mib: usize,
    /// Skylake's L3 is a non-inclusive victim cache — the paper notes this
    /// makes predictions less certain; the cache simulator models it.
    pub l3_victim: bool,
    /// L1↔L2 bandwidth, bytes per cycle.
    pub l2_bytes_per_cycle: f64,
    /// L2↔L3 bandwidth, bytes per cycle.
    pub l3_bytes_per_cycle: f64,
    /// Sustained main-memory bandwidth for the full socket, GB/s.
    pub mem_bw_gbs: f64,
    /// Vector instruction reciprocal throughputs in cycles per (full-width)
    /// vector instruction, following Fog's tables for Skylake-SP.
    pub thr: VecThroughput,
}

/// Cycles per full-width vector instruction.
#[derive(Clone, Copy, Debug)]
pub struct VecThroughput {
    pub add: f64,
    pub mul: f64,
    pub fma: f64,
    pub div: f64,
    pub sqrt: f64,
    /// `vrsqrt14pd` — the approximate reciprocal sqrt the backend uses.
    pub rsqrt: f64,
    /// Loads the L1 can serve per cycle.
    pub loads_per_cycle: f64,
    /// Stores the L1 can absorb per cycle.
    pub stores_per_cycle: f64,
    /// Transcendental (exp/log/trig) — software sequences.
    pub transcendental: f64,
}

impl CpuSocket {
    /// Stable fingerprint of every field that feeds the performance models.
    /// The autotuning cache keys its entries on this: a tuned choice is only
    /// valid for the machine description it was measured under, so any edit
    /// to a socket model (clock, cache sizes, throughput table) silently
    /// invalidates stale entries instead of replaying them.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.name.as_bytes());
        for v in [
            self.cores as u64,
            self.simd_f64 as u64,
            self.fma as u64,
            self.cacheline_bytes as u64,
            self.l1_kib as u64,
            self.l2_kib as u64,
            self.l3_mib as u64,
            self.l3_victim as u64,
        ] {
            h.write(&v.to_le_bytes());
        }
        for v in [
            self.freq_ghz,
            self.l2_bytes_per_cycle,
            self.l3_bytes_per_cycle,
            self.mem_bw_gbs,
            self.thr.add,
            self.thr.mul,
            self.thr.fma,
            self.thr.div,
            self.thr.sqrt,
            self.thr.rsqrt,
            self.thr.loads_per_cycle,
            self.thr.stores_per_cycle,
            self.thr.transcendental,
        ] {
            h.write(&v.to_bits().to_le_bytes());
        }
        h.finish()
    }
}

/// FNV-1a, the same checksum primitive the checkpoint format uses.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Intel Xeon Platinum 8174 (SuperMUC-NG node socket).
pub fn skylake_8174() -> CpuSocket {
    CpuSocket {
        name: "Xeon Platinum 8174 (Skylake-SP)".into(),
        cores: 24,
        freq_ghz: 2.3,
        simd_f64: 8,
        fma: true,
        cacheline_bytes: 64,
        l1_kib: 32,
        l2_kib: 1024,
        l3_mib: 33,
        l3_victim: true,
        l2_bytes_per_cycle: 64.0,
        l3_bytes_per_cycle: 16.0,
        mem_bw_gbs: 110.0,
        thr: VecThroughput {
            add: 0.5,
            mul: 0.5,
            fma: 0.5,
            div: 16.0,
            sqrt: 10.0,
            rsqrt: 2.0,
            loads_per_cycle: 2.0,
            stores_per_cycle: 1.0,
            transcendental: 20.0,
        },
    }
}

/// A GPU as seen by the occupancy/roofline model.
#[derive(Clone, Debug)]
pub struct Gpu {
    pub name: String,
    pub sms: usize,
    pub freq_ghz: f64,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Hard per-thread register limit (255 on NVIDIA); beyond this the
    /// compiler spills to local memory.
    pub max_regs_per_thread: u32,
    pub max_threads_per_sm: u32,
    pub max_blocks_per_sm: u32,
    /// FP64 FLOPs per cycle per SM (P100: 32 DP cores × 2 for FMA).
    pub dp_flops_per_cycle_per_sm: f64,
    /// HBM bandwidth GB/s.
    pub mem_bw_gbs: f64,
    /// Occupancy (fraction of max threads) needed to hide memory latency.
    pub latency_hiding_occupancy: f64,
}

/// NVIDIA Tesla P100 (Piz Daint).
pub fn tesla_p100() -> Gpu {
    Gpu {
        name: "Tesla P100".into(),
        sms: 56,
        freq_ghz: 1.328,
        regs_per_sm: 65_536,
        max_regs_per_thread: 255,
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 32,
        dp_flops_per_cycle_per_sm: 64.0,
        mem_bw_gbs: 720.0,
        latency_hiding_occupancy: 0.25,
    }
}

/// Interconnect topologies of the two systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// SuperMUC-NG: islands in a fat tree.
    FatTree { nodes_per_island: usize },
    /// Piz Daint: Cray Aries dragonfly.
    Dragonfly,
}

#[derive(Clone, Debug)]
pub struct Interconnect {
    pub name: String,
    pub topology: Topology,
    /// Point-to-point latency, microseconds.
    pub latency_us: f64,
    /// Per-node injection bandwidth, GB/s.
    pub bw_gbs: f64,
    /// Extra latency when crossing the top level (island/group boundary).
    pub cross_boundary_latency_us: f64,
}

pub fn omnipath_fat_tree() -> Interconnect {
    Interconnect {
        name: "Intel Omni-Path fat tree".into(),
        topology: Topology::FatTree {
            nodes_per_island: 810,
        },
        latency_us: 1.1,
        bw_gbs: 12.5,
        cross_boundary_latency_us: 0.8,
    }
}

pub fn aries_dragonfly() -> Interconnect {
    Interconnect {
        name: "Cray Aries dragonfly".into(),
        topology: Topology::Dragonfly,
        latency_us: 1.3,
        // Sustained per-node MPI halo bandwidth (well below the 10+ GB/s
        // peak injection rate for medium-sized face messages).
        bw_gbs: 5.0,
        cross_boundary_latency_us: 0.5,
    }
}

/// Node composition of a cluster.
#[derive(Clone, Debug)]
pub enum NodeKind {
    Cpu { sockets: usize, socket: CpuSocket },
    Gpu { gpus: usize, gpu: Gpu },
}

#[derive(Clone, Debug)]
pub struct Cluster {
    pub name: String,
    pub nodes: usize,
    pub node: NodeKind,
    pub network: Interconnect,
    /// Host↔device transfer bandwidth (GPU nodes), GB/s; staging buffers
    /// pass through here when GPUDirect is off.
    pub pcie_bw_gbs: f64,
    /// Aggregate sustained write bandwidth of the parallel filesystem,
    /// GB/s — the sink checkpoint sets drain into.
    pub fs_bw_gbs: f64,
}

/// SuperMUC-NG (rank 8 on the Nov'18 TOP500 used in the paper).
pub fn supermuc_ng() -> Cluster {
    Cluster {
        name: "SuperMUC-NG".into(),
        nodes: 6480,
        node: NodeKind::Cpu {
            sockets: 2,
            socket: skylake_8174(),
        },
        network: omnipath_fat_tree(),
        pcie_bw_gbs: 0.0,
        // GPFS scratch of SuperMUC-NG (~500 GB/s sustained writes).
        fs_bw_gbs: 500.0,
    }
}

/// Piz Daint (rank 5 on the Nov'18 TOP500 used in the paper).
pub fn piz_daint() -> Cluster {
    Cluster {
        name: "Piz Daint".into(),
        nodes: 5704,
        node: NodeKind::Gpu {
            gpus: 1,
            gpu: tesla_p100(),
        },
        network: aries_dragonfly(),
        pcie_bw_gbs: 11.0,
        // Lustre "Sonexion 3000" scratch (~112 GB/s sustained writes).
        fs_bw_gbs: 112.0,
    }
}

impl Cluster {
    /// Total cores (CPU clusters) or GPUs (GPU clusters) available.
    pub fn total_units(&self) -> usize {
        match &self.node {
            NodeKind::Cpu { sockets, socket } => self.nodes * sockets * socket.cores,
            NodeKind::Gpu { gpus, .. } => self.nodes * gpus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_matches_paper_cache_sizes() {
        let s = skylake_8174();
        assert_eq!(s.cores, 24);
        assert_eq!(s.l2_kib, 1024, "1 MB L2 drives the N<67 blocking bound");
        assert!(s.l3_victim);
    }

    #[test]
    fn p100_register_file_limits() {
        let g = tesla_p100();
        assert_eq!(g.max_regs_per_thread, 255);
        assert_eq!(g.regs_per_sm, 65_536);
    }

    #[test]
    fn supermuc_core_count_covers_the_strong_scaling_run() {
        // The paper time-steps on 152 064 cores; the machine must have them.
        assert!(supermuc_ng().total_units() >= 152_064);
    }

    #[test]
    fn piz_daint_has_the_2400_nodes_used() {
        assert!(piz_daint().total_units() >= 2400);
    }

    #[test]
    fn fingerprint_is_stable_and_model_sensitive() {
        let a = skylake_8174();
        assert_eq!(a.fingerprint(), skylake_8174().fingerprint());
        let mut b = skylake_8174();
        b.freq_ghz = 2.4;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = skylake_8174();
        c.thr.div = 14.0;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = skylake_8174();
        d.simd_f64 = 4;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn normalized_flop_weights_match_throughputs() {
        // Table 1 normalizes: div=16, sqrt=10, rsqrt=2 — "approximately
        // matching their throughput on the Skylake architecture".
        let t = skylake_8174().thr;
        assert_eq!(t.div, 16.0);
        assert_eq!(t.sqrt, 10.0);
        assert_eq!(t.rsqrt, 2.0);
    }
}
