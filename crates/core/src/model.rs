//! The energy-functional and PDE layers of the pipeline (§3.1, §3.2).
//!
//! From a [`ModelParams`] this module builds, symbolically:
//!
//! * the energy density `ε·a(φ,∇φ) + ω(φ)/ε + ψ(φ,µ,T)` (Eq. 3) with the
//!   gradient energy over generalized gradients `q_αβ = φ_α∇φ_β − φ_β∇φ_α`
//!   (Eq. 4, optionally with rotated cubic anisotropy), the multi-obstacle
//!   potential (Eq. 5), and the grand-potential driving force from
//!   parabolic fits (Eq. 6);
//! * the Allen–Cahn update for every φ_α via **automatic variational
//!   derivatives**, Lagrange multiplier and Philox fluctuation (Eq. 7);
//! * the non-variational µ evolution (Eq. 8) with the concentration-based
//!   mobility (Eq. 9) and the anti-trapping current (Eq. 10).
//!
//! Everything is returned as continuous expressions over symbolic fields —
//! the discretization and IR layers downstream neither know nor care that
//! this is a phase-field model.

use crate::params::ModelParams;
use pf_symbolic::{Access, Expr, Field};

/// The four simulation fields of Algorithm 1.
#[derive(Clone, Copy, Debug)]
pub struct ModelFields {
    pub phi_src: Field,
    pub phi_dst: Field,
    pub mu_src: Field,
    pub mu_dst: Field,
}

impl ModelFields {
    pub fn declare(p: &ModelParams) -> ModelFields {
        ModelFields {
            phi_src: Field::new("phi_src", p.phases, p.dim),
            phi_dst: Field::new("phi_dst", p.phases, p.dim),
            mu_src: Field::new("mu_src", p.num_mu(), p.dim),
            mu_dst: Field::new("mu_dst", p.num_mu(), p.dim),
        }
    }
}

/// Continuous update expressions: `dst = expr(src …)` per destination
/// component, ready for the discretization layer.
#[derive(Clone, Debug)]
pub struct ModelExprs {
    pub fields: ModelFields,
    /// The full energy density (diagnostics, tests, documentation).
    pub energy_density: Expr,
    /// φ_dst_α = … (explicit Euler folded in).
    pub phi_updates: Vec<(Access, Expr)>,
    /// µ_dst_i = … (reads φ_src *and* φ_dst for ∂φ/∂t).
    pub mu_updates: Vec<(Access, Expr)>,
}

/// Interpolation function h(φ) = φ²(3 − 2φ): zero slope at 0 and 1,
/// h(0)=0, h(1)=1.
pub fn h_interp(phi: &Expr) -> Expr {
    Expr::powi(phi.clone(), 2) * (Expr::num(3.0) - 2.0 * phi.clone())
}

/// h'(φ) = 6φ(1 − φ).
pub fn h_interp_prime(phi: &Expr) -> Expr {
    6.0 * phi.clone() * (Expr::one() - phi.clone())
}

/// The analytic frozen-gradient temperature T(z, t).
pub fn temperature_expr(p: &ModelParams) -> Expr {
    let t = &p.temperature;
    Expr::num(t.t0)
        + Expr::num(t.gradient) * (Expr::coord(2) - Expr::num(t.velocity) * Expr::time())
}

/// Grand potential density of phase α: ψ_α = Σ_i A_{αi} µ_i² + B_{αi}(T) µ_i + C_α(T).
fn psi_alpha(p: &ModelParams, alpha: usize, mu: &[Expr], temp: &Expr) -> Expr {
    let mut acc = Expr::num(p.c_coeff[alpha].0) + Expr::num(p.c_coeff[alpha].1) * temp.clone();
    for (i, m) in mu.iter().enumerate() {
        let a = p.a_coeff[alpha][i];
        let (b0, b1) = p.b_coeff[alpha][i];
        acc = acc
            + Expr::num(a) * Expr::powi(m.clone(), 2)
            + (Expr::num(b0) + Expr::num(b1) * temp.clone()) * m.clone();
    }
    acc
}

/// Concentration of component i in phase α: c_{αi} = −∂ψ_α/∂µ_i.
fn c_alpha(p: &ModelParams, alpha: usize, i: usize, mu_i: &Expr, temp: &Expr) -> Expr {
    let a = p.a_coeff[alpha][i];
    let (b0, b1) = p.b_coeff[alpha][i];
    -(2.0 * Expr::num(a) * mu_i.clone() + Expr::num(b0) + Expr::num(b1) * temp.clone())
}

/// Build all continuous model expressions for `p`.
pub fn build_model(p: &ModelParams) -> ModelExprs {
    p.validate();
    let fields = ModelFields::declare(p);
    let n = p.phases;
    let dim = p.dim;

    let phi_acc: Vec<Access> = (0..n).map(|a| Access::center(fields.phi_src, a)).collect();
    let phi: Vec<Expr> = phi_acc.iter().map(|&a| Expr::access(a)).collect();
    let phi_dst: Vec<Expr> = (0..n)
        .map(|a| Expr::access(Access::center(fields.phi_dst, a)))
        .collect();
    let mu: Vec<Expr> = (0..p.num_mu())
        .map(|i| Expr::access(Access::center(fields.mu_src, i)))
        .collect();
    let grad = |f: &Expr, d: usize| Expr::d(f.clone(), d);
    let temp = temperature_expr(p);

    // ---- gradient energy a(φ, ∇φ) — Eq. (4) -------------------------------
    let mut a_energy = Expr::zero();
    for alpha in 0..n {
        for beta in (alpha + 1)..n {
            // q_αβ,d = φ_α ∂_d φ_β − φ_β ∂_d φ_α
            let q: Vec<Expr> = (0..dim)
                .map(|d| {
                    phi[alpha].clone() * grad(&phi[beta], d)
                        - phi[beta].clone() * grad(&phi[alpha], d)
                })
                .collect();
            let q2: Expr = q.iter().map(|c| Expr::powi(c.clone(), 2)).sum::<Expr>();
            let aniso = match p.anisotropy {
                None => Expr::one(),
                Some(delta) => {
                    // Rotate q by the solid phase's orientation (about z),
                    // then the cubic anisotropy
                    //   A = 1 − δ(3 − 4 Σ_d q'_d⁴ / (|q|² + η)²).
                    let solid = if alpha == p.liquid_phase { beta } else { alpha };
                    let th = p.orientation[solid];
                    let (c, s) = (th.cos(), th.sin());
                    let qr: Vec<Expr> = if dim == 3 {
                        vec![
                            Expr::num(c) * q[0].clone() - Expr::num(s) * q[1].clone(),
                            Expr::num(s) * q[0].clone() + Expr::num(c) * q[1].clone(),
                            q[2].clone(),
                        ]
                    } else {
                        vec![
                            Expr::num(c) * q[0].clone() - Expr::num(s) * q[1].clone(),
                            Expr::num(s) * q[0].clone() + Expr::num(c) * q[1].clone(),
                        ]
                    };
                    let q4: Expr = qr.iter().map(|c| Expr::powi(c.clone(), 4)).sum::<Expr>();
                    let denom = Expr::powi(q2.clone() + Expr::num(p.eta), 2);
                    Expr::one() - Expr::num(delta) * (Expr::num(3.0) - Expr::num(4.0) * q4 / denom)
                }
            };
            a_energy = a_energy + Expr::num(p.gamma[alpha][beta]) * Expr::powi(aniso, 2) * q2;
        }
    }

    // ---- obstacle potential ω(φ) — Eq. (5) ---------------------------------
    let mut omega = Expr::zero();
    let pre = 16.0 / (std::f64::consts::PI * std::f64::consts::PI);
    for alpha in 0..n {
        for beta in (alpha + 1)..n {
            omega = omega
                + Expr::num(pre * p.gamma[alpha][beta]) * phi[alpha].clone() * phi[beta].clone();
        }
    }
    for alpha in 0..n {
        for beta in (alpha + 1)..n {
            for delta in (beta + 1)..n {
                omega = omega
                    + Expr::num(p.gamma_third)
                        * phi[alpha].clone()
                        * phi[beta].clone()
                        * phi[delta].clone();
            }
        }
    }

    // ---- driving force ψ(φ, µ, T) — Eq. (6) --------------------------------
    let mut psi = Expr::zero();
    for (alpha, phi_a) in phi.iter().enumerate().take(n) {
        psi = psi + psi_alpha(p, alpha, &mu, &temp) * h_interp(phi_a);
    }

    let energy_density = Expr::num(p.eps) * a_energy + omega / p.eps + psi;

    // ---- Allen–Cahn updates — Eq. (7) --------------------------------------
    // δΨ/δφ_α for every phase, then the Lagrange multiplier Λ = (1/N) Σ δΨ/δφ.
    let fd: Vec<Expr> = (0..n)
        .map(|alpha| energy_density.functional_derivative(phi_acc[alpha], dim))
        .collect();
    let fd_sum: Expr = fd.iter().cloned().sum();

    // τ interpolated from pairwise coefficients (the `interpolate(τ, …)`
    // of the paper's PDE-layer listing).
    let mut tau_num = Expr::zero();
    let mut tau_den = Expr::zero();
    for alpha in 0..n {
        for beta in (alpha + 1)..n {
            let pp = phi[alpha].clone() * phi[beta].clone();
            tau_num = tau_num + Expr::num(p.tau[alpha][beta]) * pp.clone();
            tau_den = tau_den + pp;
        }
    }
    let tau_ip = (tau_num + Expr::num(p.eta)) / (tau_den + Expr::num(p.eta));

    let phi_updates: Vec<(Access, Expr)> = (0..n)
        .map(|alpha| {
            let mut rhs = -fd[alpha].clone() + fd_sum.clone() / n as f64;
            if p.fluctuation_amplitude > 0.0 {
                // ξ: one Philox lane per phase, sampled per cell and step.
                rhs = rhs + Expr::num(p.fluctuation_amplitude) * Expr::rand(alpha);
            }
            // τε ∂φ/∂t = rhs  ⇒  φ(t+dt) = φ + dt/(τε)·rhs
            let update =
                phi[alpha].clone() + Expr::num(p.dt) / (tau_ip.clone() * Expr::num(p.eps)) * rhs;
            (Access::center(fields.phi_dst, alpha), update)
        })
        .collect();

    // ---- µ evolution — Eqs. (8)–(10) ----------------------------------------
    let dtdt = temperature_expr(p).diff(&Expr::time());
    let mu_updates: Vec<(Access, Expr)> = (0..p.num_mu())
        .map(|i| {
            // Susceptibility χ_i = ∂c_i/∂µ_i = Σ_α (−2A_{αi}) h_α(φ).
            let chi: Expr = (0..n)
                .map(|alpha| Expr::num(-2.0 * p.a_coeff[alpha][i]) * h_interp(&phi[alpha]))
                .sum();
            // Mobility — Eq. (9), with the simpler interpolation g_α = φ_α:
            // M_i = Σ_α D_α (−2A_{αi}) g_α(φ).
            let mobility: Expr = (0..n)
                .map(|alpha| {
                    Expr::num(p.diffusivity[alpha] * (-2.0 * p.a_coeff[alpha][i]))
                        * phi[alpha].clone()
                })
                .sum();

            // Flux per direction: M ∂_d µ − J_at,d.
            let mut divergence = Expr::zero();
            for d in 0..dim {
                let mut flux = mobility.clone() * grad(&mu[i], d);
                if p.antitrapping {
                    // Anti-trapping current — Eq. (10), regularized.
                    let l = p.liquid_phase;
                    let c_l = c_alpha(p, l, i, &mu[i], &temp);
                    let gphi_l: Vec<Expr> = (0..dim).map(|dd| grad(&phi[l], dd)).collect();
                    let norm_l: Expr = gphi_l
                        .iter()
                        .map(|g| Expr::powi(g.clone(), 2))
                        .sum::<Expr>()
                        + Expr::num(p.eta);
                    for alpha in 0..n {
                        if alpha == l {
                            continue;
                        }
                        let c_a = c_alpha(p, alpha, i, &mu[i], &temp);
                        let dphidt = (phi_dst[alpha].clone() - phi[alpha].clone()) / p.dt;
                        let gphi_a: Vec<Expr> = (0..dim).map(|dd| grad(&phi[alpha], dd)).collect();
                        let norm_a: Expr = gphi_a
                            .iter()
                            .map(|g| Expr::powi(g.clone(), 2))
                            .sum::<Expr>()
                            + Expr::num(p.eta);
                        // Alignment factor (φ̂_α · φ̂_l).
                        let dot: Expr = gphi_a
                            .iter()
                            .zip(&gphi_l)
                            .map(|(a, b)| a.clone() * b.clone())
                            .sum();
                        let align = dot * Expr::rsqrt(norm_a.clone()) * Expr::rsqrt(norm_l.clone());
                        // g_α h_l / sqrt(φ_α φ_l):
                        let weight = phi[alpha].clone()
                            * h_interp(&phi[l])
                            * Expr::rsqrt(phi[alpha].clone() * phi[l].clone() + Expr::num(p.eta));
                        let normal_d = gphi_a[d].clone() * Expr::rsqrt(norm_a);
                        flux = flux
                            - Expr::num(std::f64::consts::PI * p.eps / 4.0)
                                * weight
                                * dphidt
                                * align
                                * (c_l.clone() - c_a)
                                * normal_d;
                    }
                }
                divergence = divergence + Expr::d(flux, d);
            }

            // Σ_α c_{αi} ∂h_α/∂t, with ∂h/∂t from the fresh φ_dst.
            let mut source = Expr::zero();
            for alpha in 0..n {
                let dhdt = (h_interp(&phi_dst[alpha]) - h_interp(&phi[alpha])) / p.dt;
                source = source + c_alpha(p, alpha, i, &mu[i], &temp) * dhdt;
            }

            // (∂c_i/∂T)(∂T/∂t) with ∂c/∂T = Σ_α −b1_{αi} h_α.
            let dcdt_t: Expr = (0..n)
                .map(|alpha| Expr::num(-p.b_coeff[alpha][i].1) * h_interp(&phi[alpha]))
                .sum::<Expr>()
                * dtdt.clone();

            let rhs = (divergence - source - dcdt_t) / chi;
            let update = mu[i].clone() + Expr::num(p.dt) * rhs;
            (Access::center(fields.mu_dst, i), update)
        })
        .collect();

    ModelExprs {
        fields,
        energy_density,
        phi_updates,
        mu_updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{p1, p2};

    #[test]
    fn interpolation_function_properties() {
        let x = Expr::sym("md_h");
        let h = h_interp(&x);
        let mut ctx = pf_symbolic::MapCtx::new();
        ctx.set("md_h", 0.0);
        assert_eq!(h.eval(&ctx), 0.0);
        ctx.set("md_h", 1.0);
        assert_eq!(h.eval(&ctx), 1.0);
        ctx.set("md_h", 0.5);
        assert_eq!(h.eval(&ctx), 0.5);
        // h' from the closed form matches symbolic differentiation.
        let hp = h.diff(&x);
        let hp2 = h_interp_prime(&x);
        for v in [0.1, 0.4, 0.9] {
            ctx.set("md_h", v);
            assert!((hp.eval(&ctx) - hp2.eval(&ctx)).abs() < 1e-12);
        }
    }

    #[test]
    fn p1_model_builds_with_expected_structure() {
        let p = p1();
        let m = build_model(&p);
        assert_eq!(m.phi_updates.len(), 4);
        assert_eq!(m.mu_updates.len(), 2);
        // φ updates are still continuous (contain Diff nodes to discretize).
        assert!(m.phi_updates[0].1.has_diff());
        assert!(m.mu_updates[0].1.has_diff());
        // µ updates read the freshly written φ_dst (Algorithm 1).
        let reads_dst = m.mu_updates[0]
            .1
            .accesses()
            .iter()
            .any(|a| a.field == m.fields.phi_dst);
        assert!(reads_dst, "µ must read φ_dst for ∂φ/∂t");
    }

    #[test]
    fn p2_energy_contains_anisotropy_divisions() {
        let m1 = build_model(&p1());
        let m2 = build_model(&p2());
        // The anisotropic energy has quartic/normalized terms the isotropic
        // one lacks — its expression is substantially larger per pair.
        let s1 = m1.energy_density.size() / 6; // 6 pairs at N=4
        let s2 = m2.energy_density.size() / 3; // 3 pairs at N=3
        assert!(
            s2 > 2 * s1,
            "anisotropy should blow up the per-pair energy: {s2} vs {s1}"
        );
    }

    #[test]
    fn temperature_time_derivative_is_analytic() {
        let p = p1();
        let dtdt = temperature_expr(&p).diff(&Expr::time());
        // ∂T/∂t = −G·v (a pure number).
        assert_eq!(
            dtdt.as_num(),
            Some(-p.temperature.gradient * p.temperature.velocity)
        );
    }

    #[test]
    fn fluctuations_only_when_requested() {
        let mut p = p2();
        p.fluctuation_amplitude = 0.0;
        let m = build_model(&p);
        let has_rand = m.phi_updates.iter().any(|(_, e)| {
            let mut found = false;
            e.visit(&mut |x| {
                if matches!(x.node(), pf_symbolic::Node::Rand(_)) {
                    found = true;
                }
            });
            found
        });
        assert!(!has_rand);
    }
}
