//! Model parameterizations.
//!
//! `ModelParams` holds everything the energy-functional layer needs to
//! instantiate the thermodynamically consistent grand-potential model of
//! §3.1: pairwise surface energies and kinetics, per-phase diffusivities,
//! the parabolic grand-potential fits ψ_α(µ,T) = µ·A µ + B(T)·µ + C(T)
//! (A constant, B and C affine-linear in T), the analytic frozen-gradient
//! temperature field, and the optional cubic anisotropy of the gradient
//! energy.
//!
//! `p1()` and `p2()` reproduce the paper's two benchmark configurations
//! (§5.1): P1 = 4 phases / 3 components, isotropic, analytic temperature
//! gradient (ternary eutectic solidification, the setup hand-optimized in
//! [Bauer et al. 2015]); P2 = 3 phases / 2 components with anisotropic
//! gradient energy (dendritic solidification).

/// Frozen-temperature model `T(z, t) = T0 + G·(z − v·t)` (§3.2: "an
/// analytic temperature gradient depending on time and one spatial
/// coordinate").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TempModel {
    pub t0: f64,
    /// Gradient along z (0 = isothermal).
    pub gradient: f64,
    /// Pulling velocity of the temperature frame.
    pub velocity: f64,
}

/// Full parameterization of the grand-potential multi-phase-field model.
#[derive(Clone, Debug)]
pub struct ModelParams {
    pub name: String,
    /// Number of phases N (φ has N components; index `liquid` is the melt).
    pub phases: usize,
    /// Number of chemical components K (K−1 independent potentials µ).
    pub components: usize,
    pub dim: usize,
    pub dx: f64,
    pub dt: f64,
    /// Interface width parameter ε.
    pub eps: f64,
    /// Pairwise surface energies γ_αβ (symmetric, diagonal unused).
    pub gamma: Vec<Vec<f64>>,
    /// Third-phase suppression coefficient γ_αβδ (one value for all triples).
    pub gamma_third: f64,
    /// Pairwise kinetic coefficients τ_αβ.
    pub tau: Vec<Vec<f64>>,
    /// Per-phase diffusivities D_α.
    pub diffusivity: Vec<f64>,
    /// A_{α,i} of the parabolic fit (negative: ψ concave in µ so that
    /// c = −∂ψ/∂µ is positive).
    pub a_coeff: Vec<Vec<f64>>,
    /// B_{α,i}(T) = b0 + b1·T.
    pub b_coeff: Vec<Vec<(f64, f64)>>,
    /// C_α(T) = c0 + c1·T.
    pub c_coeff: Vec<(f64, f64)>,
    /// Cubic anisotropy strength δ of the gradient energy (None = isotropic,
    /// `A_αβ = 1`).
    pub anisotropy: Option<f64>,
    /// Per-phase crystal orientation: rotation angle around the z axis
    /// applied to the generalized gradient before the anisotropy function
    /// (the paper's `R q_αβ`). Ignored for isotropic models.
    pub orientation: Vec<f64>,
    pub temperature: TempModel,
    /// Amplitude of the Philox fluctuation term ξ (0 = off).
    pub fluctuation_amplitude: f64,
    /// Index of the liquid phase (anti-trapping flows solid → liquid).
    pub liquid_phase: usize,
    /// Include the anti-trapping current J_at (Eq. 10).
    pub antitrapping: bool,
    /// Regularization η for gradient normalizations.
    pub eta: f64,
}

impl ModelParams {
    /// Number of independent chemical potentials.
    pub fn num_mu(&self) -> usize {
        self.components - 1
    }

    /// The configuration-parameter count of §5.1: "the specific form of the
    /// driving force (6) requires 2(N²+N+1) configuration parameters.
    /// Phase-dependent mobility matrices M increase this value by
    /// N·(K−1)²."
    pub fn config_parameter_count(&self) -> usize {
        let n = self.phases;
        let k = self.components;
        2 * (n * n + n + 1) + n * (k - 1) * (k - 1)
    }

    /// Basic consistency checks.
    pub fn validate(&self) {
        let n = self.phases;
        assert!(n >= 2, "need at least two phases");
        assert!(self.components >= 2, "need at least two components");
        assert_eq!(self.gamma.len(), n);
        assert_eq!(self.tau.len(), n);
        assert_eq!(self.diffusivity.len(), n);
        assert_eq!(self.a_coeff.len(), n);
        assert_eq!(self.b_coeff.len(), n);
        assert_eq!(self.c_coeff.len(), n);
        assert!(self.liquid_phase < n);
        assert!((2..=3).contains(&self.dim));
        for row in &self.a_coeff {
            assert_eq!(row.len(), self.num_mu());
            assert!(
                row.iter().all(|&a| a < 0.0),
                "A must be negative definite so concentrations are positive"
            );
        }
        for (g, t) in self.gamma.iter().zip(&self.tau) {
            assert_eq!(g.len(), n);
            assert_eq!(t.len(), n);
        }
        assert!(self.eps > 0.0 && self.dx > 0.0 && self.dt > 0.0);
    }
}

/// Uniform symmetric pair matrix with zero diagonal.
fn pair_matrix(n: usize, v: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|a| (0..n).map(|b| if a == b { 0.0 } else { v }).collect())
        .collect()
}

/// **P1**: 4 phases, 3 components, isotropic gradient energy, analytic
/// temperature gradient — the ternary eutectic directional solidification
/// setup the paper validates against the manually optimized solver of
/// Bauer et al. (2015).
pub fn p1() -> ModelParams {
    let n = 4;
    let num_mu = 2;
    // Three solid phases with staggered equilibrium potentials, one liquid.
    let a_coeff: Vec<Vec<f64>> = (0..n).map(|_| vec![-0.5; num_mu]).collect();
    let b_coeff: Vec<Vec<(f64, f64)>> = (0..n)
        .map(|alpha| {
            (0..num_mu)
                .map(|i| {
                    // Solid phases prefer different compositions; B couples
                    // to T so the driving force follows the gradient.
                    let base = match (alpha, i) {
                        (0, _) => 0.0, // liquid reference
                        (a, i) if a - 1 == i => 0.45,
                        _ => -0.25,
                    };
                    (base, 0.08)
                })
                .collect()
        })
        .collect();
    let c_coeff: Vec<(f64, f64)> = (0..n)
        .map(|alpha| if alpha == 0 { (0.0, 0.25) } else { (0.02, 0.0) })
        .collect();
    ModelParams {
        name: "P1".into(),
        phases: n,
        components: 3,
        dim: 3,
        dx: 1.0,
        dt: 0.02,
        eps: 4.0,
        gamma: pair_matrix(n, 0.36),
        gamma_third: 12.0,
        tau: pair_matrix(n, 1.0),
        diffusivity: vec![1.0, 0.05, 0.05, 0.05],
        a_coeff,
        b_coeff,
        c_coeff,
        anisotropy: None,
        orientation: vec![0.0; n],
        temperature: TempModel {
            t0: 1.0,
            gradient: -0.002,
            velocity: 0.001,
        },
        fluctuation_amplitude: 0.0,
        liquid_phase: 0,
        antitrapping: true,
        eta: 1e-9,
    }
}

/// **P2**: 3 phases, 2 components, **anisotropic** gradient energy —
/// dendritic directional solidification of a binary alloy with misoriented
/// seeds ("this drastically increases the amount of computation required
/// for the evolution of φ", §5.1).
pub fn p2() -> ModelParams {
    let n = 3;
    let num_mu = 1;
    let a_coeff: Vec<Vec<f64>> = (0..n).map(|_| vec![-0.5; num_mu]).collect();
    let b_coeff: Vec<Vec<(f64, f64)>> = (0..n)
        .map(|alpha| {
            (0..num_mu)
                .map(|_| {
                    let base = if alpha == 0 { 0.0 } else { 0.4 };
                    (base, 0.1)
                })
                .collect()
        })
        .collect();
    let c_coeff: Vec<(f64, f64)> = (0..n)
        .map(|alpha| if alpha == 0 { (0.0, 0.3) } else { (0.015, 0.0) })
        .collect();
    ModelParams {
        name: "P2".into(),
        phases: n,
        components: 2,
        dim: 3,
        dx: 1.0,
        dt: 0.015,
        eps: 4.0,
        gamma: pair_matrix(n, 0.30),
        gamma_third: 10.0,
        tau: pair_matrix(n, 1.0),
        diffusivity: vec![1.0, 0.02, 0.02],
        a_coeff,
        b_coeff,
        c_coeff,
        anisotropy: Some(0.3),
        // Three orientations as in the dendrite simulation (Fig. 4): one
        // aligned with the gradient, two misoriented.
        orientation: vec![0.0, 0.35, -0.6],
        temperature: TempModel {
            t0: 1.0,
            gradient: -0.0025,
            velocity: 0.0012,
        },
        fluctuation_amplitude: 1e-4,
        liquid_phase: 0,
        antitrapping: true,
        eta: 1e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_and_p2_validate() {
        p1().validate();
        p2().validate();
    }

    #[test]
    fn p1_matches_paper_shape() {
        let p = p1();
        assert_eq!(p.phases, 4);
        assert_eq!(p.components, 3);
        assert!(p.anisotropy.is_none());
        assert!(p.temperature.gradient != 0.0);
    }

    #[test]
    fn p2_matches_paper_shape() {
        let p = p2();
        assert_eq!(p.phases, 3);
        assert_eq!(p.components, 2);
        assert!(p.anisotropy.is_some());
    }

    #[test]
    fn config_parameter_count_formula() {
        // "For a model with 4 phases, 3 components … more than 50
        // material-dependent quantities are required" (§5.1).
        let p = p1();
        assert_eq!(p.config_parameter_count(), 2 * (16 + 4 + 1) + 4 * 4);
        assert!(p.config_parameter_count() > 50);
    }
}
