//! Post-processing diagnostics.
//!
//! waLBerla ships "postprocessing and I/O capabilities specifically
//! developed for phase-field simulations" (§4.1); this module provides the
//! analysis primitives the examples, tests and experiment harness use:
//! phase fractions, interface positions, front velocities, and the
//! concentration field reconstructed from (φ, µ, T).

use crate::params::ModelParams;
use crate::sim::Simulation;
use pf_fields::FieldArray;

/// Volume fraction of phase `alpha` over the interior.
pub fn phase_fraction(phi: &FieldArray, alpha: usize) -> f64 {
    let s = phi.shape();
    phi.interior_sum(alpha) / (s[0] * s[1] * s[2]) as f64
}

/// Position (in cells, interpolated) where φ_alpha crosses 0.5 along +x at
/// fixed (y, z); `None` when no crossing exists.
pub fn front_position_x(phi: &FieldArray, alpha: usize, y: usize, z: usize) -> Option<f64> {
    let nx = phi.shape()[0];
    for x in 0..nx - 1 {
        let a = phi.get(alpha, x as isize, y as isize, z as isize);
        let b = phi.get(alpha, x as isize + 1, y as isize, z as isize);
        if (a - 0.5) * (b - 0.5) <= 0.0 && a != b {
            return Some(x as f64 + (0.5 - a) / (b - a));
        }
    }
    None
}

/// Effective radius of a (2D) solid disk of phase `alpha`: from the covered
/// area, `r = sqrt(A/π)`.
pub fn disk_radius(phi: &FieldArray, alpha: usize) -> f64 {
    let area = phi.interior_sum(alpha);
    (area / std::f64::consts::PI).sqrt()
}

/// 10–90% interface width along +x through (y, z), in cells.
pub fn interface_width_x(phi: &FieldArray, alpha: usize, y: usize, z: usize) -> Option<f64> {
    let nx = phi.shape()[0];
    let profile: Vec<f64> = (0..nx)
        .map(|x| phi.get(alpha, x as isize, y as isize, z as isize))
        .collect();
    let cross = |level: f64| -> Option<f64> {
        for x in 0..nx - 1 {
            let (a, b) = (profile[x], profile[x + 1]);
            if (a - level) * (b - level) <= 0.0 && a != b {
                return Some(x as f64 + (level - a) / (b - a));
            }
        }
        None
    };
    match (cross(0.9), cross(0.1)) {
        (Some(a), Some(b)) => Some((a - b).abs()),
        _ => None,
    }
}

/// Concentration of component `i` at a cell, reconstructed from the model:
/// c_i = Σ_α c_{αi}(µ_i, T) h_α(φ).
pub fn concentration_at(
    p: &ModelParams,
    phi: &FieldArray,
    mu: &FieldArray,
    temp: f64,
    i: usize,
    at: [isize; 3],
) -> f64 {
    let mui = mu.get(i, at[0], at[1], at[2]);
    let mut c = 0.0;
    for alpha in 0..p.phases {
        let pv = phi.get(alpha, at[0], at[1], at[2]);
        let h = pv * pv * (3.0 - 2.0 * pv);
        let a = p.a_coeff[alpha][i];
        let (b0, b1) = p.b_coeff[alpha][i];
        c += -(2.0 * a * mui + b0 + b1 * temp) * h;
    }
    c
}

/// Total solute content of component `i` over the interior (a conserved
/// quantity under no-flux boundaries up to the explicit-scheme error).
pub fn total_solute(sim: &Simulation, i: usize) -> f64 {
    let p = &sim.params;
    let phi = sim.phi();
    let mu = sim.mu();
    let shape = sim.cfg.shape;
    let t = p.temperature.t0; // bulk reference; fine for diagnostics
    let mut total = 0.0;
    for z in 0..shape[2] as isize {
        for y in 0..shape[1] as isize {
            for x in 0..shape[0] as isize {
                total += concentration_at(p, phi, mu, t, i, [x, y, z]);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_fields::Layout;

    #[test]
    fn front_position_interpolates() {
        let mut f = FieldArray::new("an_f", [8, 1, 1], 1, 1, Layout::Fzyx);
        f.fill_with(0, |x, _, _| if x < 3 { 1.0 } else { 0.0 });
        // Crossing between x=2 (1.0) and x=3 (0.0) at 2.5.
        let p = front_position_x(&f, 0, 0, 0).expect("has a front");
        assert!((p - 2.5).abs() < 1e-12);
    }

    #[test]
    fn disk_radius_from_area() {
        let mut f = FieldArray::new("an_d", [32, 32, 1], 1, 1, Layout::Fzyx);
        f.fill_with(0, |x, y, _| {
            let dx = x as f64 - 16.0;
            let dy = y as f64 - 16.0;
            if dx * dx + dy * dy <= 64.0 {
                1.0
            } else {
                0.0
            }
        });
        let r = disk_radius(&f, 0);
        assert!((r - 8.0).abs() < 0.5, "got {r}");
    }

    #[test]
    fn phase_fraction_of_uniform_field() {
        let mut f = FieldArray::new("an_p", [4, 4, 4], 2, 1, Layout::Fzyx);
        f.fill_with(0, |_, _, _| 0.25);
        assert!((phase_fraction(&f, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn interface_width_of_sharp_step_is_small() {
        let mut f = FieldArray::new("an_w", [16, 1, 1], 1, 1, Layout::Fzyx);
        f.fill_with(0, |x, _, _| {
            let d = (x as f64 - 8.0) / 2.0;
            0.5 * (1.0 - d.tanh())
        });
        let w = interface_width_x(&f, 0, 0, 0).expect("has interface");
        // tanh profile with ε=2: 10–90 width ≈ 2·atanh(0.8)·2 ≈ 4.39 cells.
        assert!((w - 4.39).abs() < 0.6, "got {w}");
    }
}
