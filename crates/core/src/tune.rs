//! Autotuning: variant/blocking selection by search (§6.1 closed loop).
//!
//! The paper prices kernel candidates with the ECM model plus cache
//! simulation and picks the fastest; `select_variants` reproduces that
//! static rating. This module closes the remaining gap to a real
//! autotuner with the classical enumerate → price → shortlist → measure →
//! persist loop:
//!
//! 1. **Enumerate** candidate configurations per (kernel family, shape):
//!    variant (full/split) × loop order × (y,z) cache-blocking tile ×
//!    SIMD strip width.
//! 2. **Price** every candidate with [`pf_perfmodel::price_candidate`]
//!    (ECM + exact cache simulation) — thousands of model evaluations cost
//!    less than one real run.
//! 3. **Shortlist** the top-K *executable* configurations (blocking and
//!    strip width are pricing dimensions — the strip engine fixes its
//!    width at [`pf_backend::STRIP_WIDTH`] and blocks internally — so
//!    candidates that differ only there collapse onto one measurement).
//! 4. **Measure** the shortlist with short best-of-N sweeps through the
//!    real backend ([`pf_backend::time_tapes`]) under every available
//!    execution engine, including compiled-native kernels.
//! 5. **Persist** the winner to a versioned, checksummed on-disk cache
//!    keyed on (machine-model fingerprint, kernel structural hashes,
//!    geometry) that [`select_variants_tuned`] consults at launch.
//!
//! Measurement stays strictly off the default launch path: a warm cache
//! hit costs one small file read, a miss falls back to the static
//! heuristic (warn-free — cold misses are normal), and corrupt or
//! version-mismatched entries fall back warn-once. `PF_TUNE=off` kills the
//! whole consult; `PF_TUNE_CACHE_DIR` relocates the cache.
//!
//! The same pricing discipline rescues the GPU-approx path:
//! [`tune_gpu_schedule`] prices the register-pressure reschedules (which
//! trade LICM for live-range width) against the occupancy payoff instead
//! of applying them unconditionally.

use crate::kernels::KernelSet;
use crate::params::ModelParams;
use crate::select::{default_exec_mode, select_variants};
use crate::sim::{SimConfig, Simulation, Variant};
use pf_backend::ExecMode;
use pf_ir::Tape;
use pf_machine::{CpuSocket, Gpu};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Cache keying
// ---------------------------------------------------------------------------

/// On-disk format version. Bump on any layout change: readers reject other
/// versions *before* the checksum check, so old processes sharing a cache
/// directory with new ones degrade to the static heuristic instead of
/// misparsing each other's entries.
pub const TUNE_FORMAT_VERSION: u32 = 1;

const TUNE_MAGIC: &[u8; 8] = b"PFTUNE01";

/// FNV-1a — the same checksum primitive the checkpoint format uses.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Identity of one kernel family's full search space: the structural hashes
/// of *both* variants' canonical tapes. Any change to the generated code —
/// model parameters, discretization, IR pipeline — moves this fingerprint
/// and silently invalidates stale tuning entries.
pub fn family_fingerprint(ks: &KernelSet, family: Family) -> u64 {
    let mut h = Fnv::new();
    let (full, split) = match family {
        Family::Phi => (&ks.phi_full, &ks.phi_split),
        Family::Mu => (&ks.mu_full, &ks.mu_split),
    };
    h.write(&full.structural_hash().to_le_bytes());
    for t in &split.flux_tapes {
        h.write(&t.structural_hash().to_le_bytes());
    }
    h.write(&split.update.structural_hash().to_le_bytes());
    h.finish()
}

/// The two kernel families of Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    Phi,
    Mu,
}

impl Family {
    pub fn name(self) -> &'static str {
        match self {
            Family::Phi => "phi",
            Family::Mu => "mu",
        }
    }
}

// ---------------------------------------------------------------------------
// Cache entries
// ---------------------------------------------------------------------------

/// One persisted tuning decision: the measured-fastest configuration of a
/// kernel family on a (machine model, kernel set, geometry) triple.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneEntry {
    pub variant: Variant,
    pub mode: ExecMode,
    /// Cache-blocking tile of the best-priced pricing point (model-side
    /// only — the strip engine blocks internally).
    pub block: [usize; 3],
    pub loop_order: [usize; 3],
    /// SIMD strip width of the best-priced pricing point.
    pub strip_width: usize,
    /// Measured MLUP/s of this configuration when it was persisted.
    pub measured_mlups: f64,
    /// ECM-predicted MLUP/s of the best pricing point of this config.
    pub predicted_mlups: f64,
}

/// Typed reasons a cache entry is unusable. Everything except `Io` means
/// the *file* was rejected; the caller falls back to static selection.
#[derive(Debug)]
pub enum TuneCacheError {
    Io(std::io::Error),
    BadMagic,
    /// Written by a different format version (field carries the version
    /// found). Checked before the checksum so future formats are cleanly
    /// rejected rather than reported as corruption.
    UnsupportedVersion(u32),
    Truncated,
    ChecksumMismatch,
    /// The entry decodes but was written for a different (machine, kernel,
    /// shape) key — filename collision paranoia.
    KeyMismatch,
    Malformed(&'static str),
}

impl std::fmt::Display for TuneCacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneCacheError::Io(e) => write!(f, "i/o error: {e}"),
            TuneCacheError::BadMagic => write!(f, "bad magic"),
            TuneCacheError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "format version {v} (this build reads {TUNE_FORMAT_VERSION})"
                )
            }
            TuneCacheError::Truncated => write!(f, "truncated entry"),
            TuneCacheError::ChecksumMismatch => write!(f, "checksum mismatch"),
            TuneCacheError::KeyMismatch => write!(f, "entry written for a different key"),
            TuneCacheError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

fn encode_variant(v: Variant) -> u8 {
    match v {
        Variant::Full => 0,
        Variant::Split => 1,
    }
}

fn decode_variant(b: u8) -> Result<Variant, TuneCacheError> {
    match b {
        0 => Ok(Variant::Full),
        1 => Ok(Variant::Split),
        _ => Err(TuneCacheError::Malformed("variant")),
    }
}

fn encode_mode(m: ExecMode) -> u8 {
    match m {
        ExecMode::Serial => 0,
        ExecMode::Parallel => 1,
        ExecMode::Vectorized => 2,
        ExecMode::Native => 3,
    }
}

fn decode_mode(b: u8) -> Result<ExecMode, TuneCacheError> {
    match b {
        0 => Ok(ExecMode::Serial),
        1 => Ok(ExecMode::Parallel),
        2 => Ok(ExecMode::Vectorized),
        3 => Ok(ExecMode::Native),
        _ => Err(TuneCacheError::Malformed("exec mode")),
    }
}

/// Human-readable engine name (matches the bench schema's mode strings).
pub fn mode_name(m: ExecMode) -> &'static str {
    match m {
        ExecMode::Serial => "serial",
        ExecMode::Parallel => "parallel",
        ExecMode::Vectorized => "vectorized",
        ExecMode::Native => "native",
    }
}

/// Human-readable variant name (matches the bench schema's variant strings).
pub fn variant_name(v: Variant) -> &'static str {
    match v {
        Variant::Full => "full",
        Variant::Split => "split",
    }
}

// ---------------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------------

/// A directory of tuning entries, one file per (machine, kernel family,
/// shape) key. Installs are atomic (unique tmp file + rename, the same
/// discipline as the native artifact cache), so concurrent ranks sharing a
/// directory never observe half-written entries.
#[derive(Clone, Debug)]
pub struct TuneCache {
    dir: PathBuf,
}

/// Is the launch-path cache consult enabled? `PF_TUNE=off|0|false` is the
/// kill switch; anything else (including unset) leaves tuning on.
pub fn tune_enabled() -> bool {
    !matches!(
        std::env::var("PF_TUNE").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    )
}

/// Cache directory: `PF_TUNE_CACHE_DIR`, else `$TMPDIR/pf-tune-cache`.
pub fn tune_cache_dir() -> PathBuf {
    match std::env::var_os("PF_TUNE_CACHE_DIR") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join("pf-tune-cache"),
    }
}

impl TuneCache {
    /// Cache rooted at an explicit directory (tests and tools; the launch
    /// path uses [`TuneCache::from_env`]).
    pub fn at(dir: impl Into<PathBuf>) -> TuneCache {
        TuneCache { dir: dir.into() }
    }

    /// Environment-resolved cache, or `None` when `PF_TUNE` turns the
    /// tuning consult off.
    pub fn from_env() -> Option<TuneCache> {
        tune_enabled().then(|| TuneCache::at(tune_cache_dir()))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache key: machine-model fingerprint × kernel-family structural
    /// fingerprint × block geometry.
    pub fn key(machine_fp: u64, tapes_fp: u64, shape: [usize; 3]) -> u64 {
        let mut h = Fnv::new();
        h.write(&machine_fp.to_le_bytes());
        h.write(&tapes_fp.to_le_bytes());
        for d in shape {
            h.write(&(d as u64).to_le_bytes());
        }
        h.finish()
    }

    /// Path of the entry file for a key.
    pub fn entry_path(&self, machine_fp: u64, tapes_fp: u64, shape: [usize; 3]) -> PathBuf {
        self.dir.join(format!(
            "tune-{:016x}.ptc",
            Self::key(machine_fp, tapes_fp, shape)
        ))
    }

    /// Load the entry for a key. `None` on any miss; rejected files
    /// (corruption, version mismatch) warn once per process and bump typed
    /// counters — callers uniformly fall back to static selection.
    pub fn load(&self, machine_fp: u64, tapes_fp: u64, shape: [usize; 3]) -> Option<TuneEntry> {
        let path = self.entry_path(machine_fp, tapes_fp, shape);
        if !path.exists() {
            bump("tune.cache.miss");
            return None;
        }
        match read_entry(&path, machine_fp, tapes_fp, shape) {
            Ok(entry) => {
                bump("tune.cache.hit");
                Some(entry)
            }
            Err(err) => {
                match err {
                    TuneCacheError::UnsupportedVersion(_) => bump("tune.cache.version_mismatch"),
                    _ => bump("tune.cache.corrupt"),
                }
                bump("tune.cache.miss");
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: ignoring tuning cache entry {} ({err}); \
                         falling back to static variant selection",
                        path.display()
                    );
                });
                None
            }
        }
    }

    /// Persist an entry atomically (unique tmp + rename — see the native
    /// artifact cache for why in-place writes are forbidden here).
    pub fn store(
        &self,
        machine_fp: u64,
        tapes_fp: u64,
        shape: [usize; 3],
        entry: &TuneEntry,
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let bytes = encode_entry(machine_fp, tapes_fp, shape, entry);
        let path = self.entry_path(machine_fp, tapes_fp, shape);
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".tune-{}-{}-{}.tmp",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            Self::key(machine_fp, tapes_fp, shape)
        ));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        match std::fs::rename(&tmp, &path) {
            Ok(()) => {
                bump("tune.cache.store");
                Ok(path)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

fn bump(name: &str) {
    if pf_trace::enabled() {
        pf_trace::counter(name).incr(1);
    }
}

fn encode_entry(machine_fp: u64, tapes_fp: u64, shape: [usize; 3], e: &TuneEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(TUNE_MAGIC);
    out.extend_from_slice(&TUNE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&machine_fp.to_le_bytes());
    out.extend_from_slice(&tapes_fp.to_le_bytes());
    for d in shape {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.push(encode_variant(e.variant));
    out.push(encode_mode(e.mode));
    for d in e.block {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for d in e.loop_order {
        out.push(d as u8);
    }
    out.extend_from_slice(&(e.strip_width as u32).to_le_bytes());
    out.extend_from_slice(&e.measured_mlups.to_bits().to_le_bytes());
    out.extend_from_slice(&e.predicted_mlups.to_bits().to_le_bytes());
    let mut h = Fnv::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TuneCacheError> {
        if self.pos + n > self.buf.len() {
            return Err(TuneCacheError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, TuneCacheError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, TuneCacheError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, TuneCacheError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, TuneCacheError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

fn read_entry(
    path: &Path,
    machine_fp: u64,
    tapes_fp: u64,
    shape: [usize; 3],
) -> Result<TuneEntry, TuneCacheError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(TuneCacheError::Io)?;
    let mut c = Cursor {
        buf: &bytes,
        pos: 0,
    };
    if c.take(8)? != TUNE_MAGIC {
        return Err(TuneCacheError::BadMagic);
    }
    let version = c.u32()?;
    if version != TUNE_FORMAT_VERSION {
        return Err(TuneCacheError::UnsupportedVersion(version));
    }
    // Whole-file checksum over everything before the trailing 8 bytes.
    if bytes.len() < 8 + c.pos {
        return Err(TuneCacheError::Truncated);
    }
    let body_len = bytes.len() - 8;
    let mut h = Fnv::new();
    h.write(&bytes[..body_len]);
    let want = u64::from_le_bytes(bytes[body_len..].try_into().unwrap());
    if h.finish() != want {
        return Err(TuneCacheError::ChecksumMismatch);
    }
    if c.u64()? != machine_fp || c.u64()? != tapes_fp {
        return Err(TuneCacheError::KeyMismatch);
    }
    for d in shape {
        if c.u64()? != d as u64 {
            return Err(TuneCacheError::KeyMismatch);
        }
    }
    let variant = decode_variant(c.u8()?)?;
    let mode = decode_mode(c.u8()?)?;
    let mut block = [0usize; 3];
    for b in &mut block {
        *b = c.u64()? as usize;
    }
    let mut loop_order = [0usize; 3];
    for d in &mut loop_order {
        *d = c.u8()? as usize;
        if *d > 2 {
            return Err(TuneCacheError::Malformed("loop order"));
        }
    }
    let strip_width = c.u32()? as usize;
    let measured_mlups = c.f64()?;
    let predicted_mlups = c.f64()?;
    if !measured_mlups.is_finite() || !predicted_mlups.is_finite() {
        return Err(TuneCacheError::Malformed("non-finite rating"));
    }
    Ok(TuneEntry {
        variant,
        mode,
        block,
        loop_order,
        strip_width,
        measured_mlups,
        predicted_mlups,
    })
}

// ---------------------------------------------------------------------------
// Launch-path selection
// ---------------------------------------------------------------------------

/// Where a [`TunedChoice`] came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChoiceSource {
    /// Both families hit valid cache entries — zero measurement done.
    Tuned,
    /// Static ECM heuristic (cache off, cold, or rejected).
    Static,
}

/// Outcome of the cache-consulting selection. Supersets
/// [`crate::select::VariantChoice`] with the tuned execution engine.
///
/// **Bitwise contract:** the only launch-time knob a cache state may flip
/// on an *existing* configuration is `mode` — and all execution engines are
/// proven bitwise identical, so tuning can change speed but never results.
/// Variant recommendations (`phi`/`mu`) change floating-point summation
/// order (≈1e-15 per step); they are configuration-time decisions that
/// checkpoints pin, exactly like the static heuristic's recommendations.
#[derive(Clone, Debug)]
pub struct TunedChoice {
    pub phi: Variant,
    pub mu: Variant,
    /// Measured-fastest engine (`None` on static fallback: keep the
    /// shape-based default).
    pub mode: Option<ExecMode>,
    pub source: ChoiceSource,
    /// Static ECM ratings (φ-split, φ-full, µ-split, µ-full), kept for
    /// parity with [`crate::select::VariantChoice`].
    pub predicted_mlups: [f64; 4],
}

/// Cache-consulting variant selection: the launch-path entry point.
///
/// On a warm cache this does **zero measurement** — one file read per
/// family. On any miss it degrades to [`select_variants`] (the paper's
/// static ECM rating). `PF_TUNE=off` skips the consult entirely.
pub fn select_variants_tuned(
    ks: &KernelSet,
    sock: &CpuSocket,
    cores: usize,
    block: [usize; 3],
    shape: [usize; 3],
) -> TunedChoice {
    select_variants_tuned_in(
        TuneCache::from_env().as_ref(),
        ks,
        sock,
        cores,
        block,
        shape,
    )
}

/// [`select_variants_tuned`] against an explicit cache (tests, tools);
/// `None` always selects statically.
pub fn select_variants_tuned_in(
    cache: Option<&TuneCache>,
    ks: &KernelSet,
    sock: &CpuSocket,
    cores: usize,
    block: [usize; 3],
    shape: [usize; 3],
) -> TunedChoice {
    let stat = select_variants(ks, sock, cores, block);
    let static_choice = |pred: [f64; 4]| TunedChoice {
        phi: stat.phi,
        mu: stat.mu,
        mode: None,
        source: ChoiceSource::Static,
        predicted_mlups: pred,
    };
    let Some(cache) = cache else {
        return static_choice(stat.predicted_mlups);
    };
    let machine_fp = sock.fingerprint();
    let phi = cache.load(machine_fp, family_fingerprint(ks, Family::Phi), shape);
    let mu = cache.load(machine_fp, family_fingerprint(ks, Family::Mu), shape);
    match (phi, mu) {
        (Some(phi), Some(mu)) => {
            // One engine drives the whole step; follow the family that
            // dominates the step time (the slower measured kernel).
            let mode = if phi.measured_mlups <= mu.measured_mlups {
                phi.mode
            } else {
                mu.mode
            };
            TunedChoice {
                phi: phi.variant,
                mu: mu.variant,
                mode: Some(mode),
                source: ChoiceSource::Tuned,
                predicted_mlups: stat.predicted_mlups,
            }
        }
        // A lone hit is not enough to flip the configuration: selection is
        // all-or-nothing so the launch decision is reproducible from a
        // single cache state.
        _ => static_choice(stat.predicted_mlups),
    }
}

/// Launch-path engine consult: the measured-fastest execution engine for
/// this (machine, kernel set, block shape), if both families hit the
/// cache. This is the bitwise-neutral subset of [`TunedChoice`] — engines
/// are proven bitwise identical, so callers may apply it to an *existing*
/// configuration (e.g. a rank resuming from a checkpoint) without
/// perturbing results. Zero measurement, two file reads, no ECM rating.
pub fn tuned_exec_mode(
    cache: Option<&TuneCache>,
    ks: &KernelSet,
    sock: &CpuSocket,
    shape: [usize; 3],
) -> Option<ExecMode> {
    let cache = cache?;
    let machine_fp = sock.fingerprint();
    let phi = cache.load(machine_fp, family_fingerprint(ks, Family::Phi), shape);
    let mu = cache.load(machine_fp, family_fingerprint(ks, Family::Mu), shape);
    match (phi, mu) {
        // One engine drives the whole step; follow the time-dominant
        // (slower measured) family. All-or-nothing, like the variant
        // consult: a lone hit keeps the shape default.
        (Some(phi), Some(mu)) => Some(if phi.measured_mlups <= mu.measured_mlups {
            phi.mode
        } else {
            mu.mode
        }),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The tuner
// ---------------------------------------------------------------------------

/// Tuning effort knobs.
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Executable configurations measured per family (after pricing).
    pub top_k: usize,
    /// Best-of-N repetitions per (configuration, engine).
    pub reps: usize,
    /// Timed sweeps per repetition.
    pub sweeps: usize,
    /// Core count the ECM pricing assumes.
    pub cores: usize,
    /// Persist winners to the cache (off for pure measurement runs).
    pub persist: bool,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            top_k: 3,
            reps: 3,
            sweeps: 2,
            cores: 1,
            persist: true,
        }
    }
}

/// One priced (and possibly measured) candidate configuration.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub variant: Variant,
    pub loop_order: [usize; 3],
    /// Best-priced blocking tile for this executable configuration.
    pub block: [usize; 3],
    /// Best-priced strip width for this executable configuration.
    pub strip_width: usize,
    pub predicted_mlups: f64,
    /// Measured MLUP/s per engine (empty if the candidate missed the
    /// shortlist).
    pub measured: Vec<(ExecMode, f64)>,
}

impl Candidate {
    fn best_measured(&self) -> Option<(ExecMode, f64)> {
        self.measured
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Everything the tuner learned about one kernel family.
#[derive(Clone, Debug)]
pub struct FamilyTuneReport {
    pub family: Family,
    pub shape: [usize; 3],
    /// Size of the priced enumeration (variant × order × block × width).
    pub candidates: usize,
    /// Number of timed (configuration, engine) measurements.
    pub measured: usize,
    /// The configuration selection will use (cache-hit entry if one was
    /// valid, else the fresh winner).
    pub entry: TuneEntry,
    /// Best measured MLUP/s over the whole shortlist.
    pub best_mlups: f64,
    /// Measured MLUP/s of the entry's configuration.
    pub chosen_mlups: f64,
    /// Measured MLUP/s of the static heuristic's choice under the default
    /// engine.
    pub static_mlups: f64,
    pub static_variant: Variant,
    pub static_mode: ExecMode,
    /// `1 - chosen/best`: what the tuned selection leaves on the table.
    pub regret_chosen: f64,
    /// `1 - static/best`: what the *static* heuristic leaves on the table
    /// (the tuner's payoff).
    pub regret_static: f64,
    pub all: Vec<Candidate>,
}

fn family_variant_tapes(ks: &KernelSet, family: Family, variant: Variant) -> Vec<Tape> {
    match (family, variant) {
        (Family::Phi, Variant::Full) => vec![ks.phi_full.clone()],
        (Family::Mu, Variant::Full) => vec![ks.mu_full.clone()],
        (Family::Phi, Variant::Split) => {
            let mut v = ks.phi_split.flux_tapes.clone();
            v.push(ks.phi_split.update.clone());
            v
        }
        (Family::Mu, Variant::Split) => {
            let mut v = ks.mu_split.flux_tapes.clone();
            v.push(ks.mu_split.update.clone());
            v
        }
    }
}

/// (y,z) blocking tiles to price, clamped to the shape. x is never blocked
/// (unit stride).
fn candidate_blocks(shape: [usize; 3]) -> Vec<[usize; 3]> {
    let mut out = Vec::new();
    for (by, bz) in [(24, 8), (16, 16), (8, 32), (32, 4)] {
        let b = [shape[0], by.min(shape[1]).max(1), bz.min(shape[2]).max(1)];
        if !out.contains(&b) {
            out.push(b);
        }
    }
    out
}

/// Strip widths to price: the socket's native width plus one half-width
/// alternative (only the native width is executable today; the narrower
/// rating documents what a remainder-dominated strip would cost).
fn candidate_widths(sock: &CpuSocket) -> Vec<usize> {
    let mut v = vec![sock.simd_f64];
    if sock.simd_f64 >= 2 && !v.contains(&(sock.simd_f64 / 2)) {
        v.push(sock.simd_f64 / 2);
    }
    v
}

/// The loop orders the LICM pass can produce (x always innermost).
const LOOP_ORDERS: [[usize; 3]; 2] = [[2, 1, 0], [1, 2, 0]];

/// Engines worth measuring for a shape on this host.
fn available_modes(shape: [usize; 3]) -> Vec<ExecMode> {
    let mut v = vec![ExecMode::Serial];
    if shape[0] >= pf_backend::STRIP_WIDTH {
        v.push(ExecMode::Vectorized);
    }
    if pf_backend::native_available() {
        v.push(ExecMode::Native);
    }
    v
}

/// Run the full enumerate → price → shortlist → measure → persist loop for
/// both kernel families of `ks` at block geometry `shape`.
///
/// This is the *explicit* tuning entry point (bench binaries, CI smoke, a
/// future `pf tune` tool) — it always measures, which is exactly why the
/// launch path never calls it: launches consult the cache through
/// [`select_variants_tuned`] and fall back to the static heuristic.
pub fn tune_kernel_set(
    p: &ModelParams,
    ks: &KernelSet,
    sock: &CpuSocket,
    shape: [usize; 3],
    cache: Option<&TuneCache>,
    opts: &TuneOptions,
) -> Vec<FamilyTuneReport> {
    // One workload serves every candidate: seed a diffuse front, take one
    // real step so both field generations and the staggered temporaries
    // hold representative data, then refresh all ghosts.
    let mut sim = Simulation::new(p.clone(), ks.clone(), SimConfig::new(shape));
    seed_tune_workload(&mut sim);
    let ctx = sim.ctx();
    let machine_fp = sock.fingerprint();
    let modes = available_modes(shape);

    [Family::Phi, Family::Mu]
        .into_iter()
        .map(|family| {
            tune_family(
                family, ks, sock, shape, cache, opts, &mut sim, &ctx, machine_fp, &modes,
            )
        })
        .collect()
}

fn seed_tune_workload(sim: &mut Simulation) {
    let shape = sim.cfg.shape;
    let eps = sim.params.eps.max(1e-6);
    let phases = sim.params.phases;
    let liquid = sim.params.liquid_phase;
    let solid = (liquid + 1) % phases;
    sim.init_phi(|x, _, _| {
        let d = (x as f64 - shape[0] as f64 / 3.0) / eps;
        let s = 0.5 * (1.0 - d.tanh());
        let mut v = vec![0.0; phases];
        v[liquid] = 1.0 - s;
        v[solid] = s;
        v
    });
    let n_mu = sim.params.num_mu();
    sim.init_mu(move |x, y, _| vec![0.05 + 0.001 * ((x + y) % 5) as f64; n_mu]);
    // One real step fills φ_dst/µ_dst and the staggered flux arrays with
    // representative values, so candidate sweeps touch warm, finite data.
    sim.step();
    let f = sim.kernels.fields;
    for field in [f.phi_src, f.phi_dst, f.mu_src, f.mu_dst] {
        sim.apply_bc(field);
    }
}

#[allow(clippy::too_many_arguments)]
fn tune_family(
    family: Family,
    ks: &KernelSet,
    sock: &CpuSocket,
    shape: [usize; 3],
    cache: Option<&TuneCache>,
    opts: &TuneOptions,
    sim: &mut Simulation,
    ctx: &pf_backend::RunCtx,
    machine_fp: u64,
    modes: &[ExecMode],
) -> FamilyTuneReport {
    let tapes_fp = family_fingerprint(ks, family);
    let prior = cache.and_then(|c| c.load(machine_fp, tapes_fp, shape));

    // Enumerate + price. Executable configurations are (variant, order):
    // blocking tiles and strip widths are model-side dimensions, so each
    // config keeps its best pricing point. Alternate loop orders apply to
    // the full variant only (split flux tapes are direction-bound).
    let mut enumerated = 0usize;
    let mut configs: Vec<(Candidate, Vec<Tape>)> = Vec::new();
    for variant in [Variant::Full, Variant::Split] {
        let orders: &[[usize; 3]] = match variant {
            Variant::Full => &LOOP_ORDERS,
            Variant::Split => &LOOP_ORDERS[..1],
        };
        for &order in orders {
            let mut tapes = family_variant_tapes(ks, family, variant);
            if variant == Variant::Full {
                for t in &mut tapes {
                    pf_ir::apply_loop_order(t, order);
                }
            }
            let refs: Vec<&Tape> = tapes.iter().collect();
            let mut best: Option<([usize; 3], usize, f64)> = None;
            for block in candidate_blocks(shape) {
                for width in candidate_widths(sock) {
                    enumerated += 1;
                    let mlups =
                        pf_perfmodel::price_candidate(&refs, sock, block, width, opts.cores);
                    if best.is_none() || mlups > best.unwrap().2 {
                        best = Some((block, width, mlups));
                    }
                }
            }
            let (block, strip_width, predicted) = best.unwrap();
            configs.push((
                Candidate {
                    variant,
                    loop_order: if variant == Variant::Full {
                        order
                    } else {
                        tapes[0].loop_order
                    },
                    block,
                    strip_width,
                    predicted_mlups: predicted,
                    measured: Vec::new(),
                },
                tapes,
            ));
        }
    }

    // Shortlist: top-K by predicted MLUP/s, with the static heuristic's
    // pick always measured (it is the regret baseline).
    let stat = select_variants(ks, sock, sock.cores, [24, 24, 8]);
    let static_variant = match family {
        Family::Phi => stat.phi,
        Family::Mu => stat.mu,
    };
    let static_mode = default_exec_mode(shape);
    let default_order = family_variant_tapes(ks, family, static_variant)[0].loop_order;
    configs.sort_by(|a, b| b.0.predicted_mlups.total_cmp(&a.0.predicted_mlups));
    let is_static = |c: &Candidate| c.variant == static_variant && c.loop_order == default_order;
    let mut shortlist: Vec<usize> = (0..configs.len().min(opts.top_k)).collect();
    if let Some(si) = configs.iter().position(|(c, _)| is_static(c)) {
        if !shortlist.contains(&si) {
            shortlist.push(si);
        }
    }

    // Measure the shortlist: best-of-N short sweeps through the production
    // launch path, per available engine.
    let mut measured = 0usize;
    for &i in &shortlist {
        let (cand, tapes) = &mut configs[i];
        let refs: Vec<&Tape> = tapes.iter().collect();
        for &mode in modes {
            let mut best = 0.0f64;
            for _ in 0..opts.reps {
                let mlups = pf_backend::time_tapes(
                    &refs,
                    &mut sim.store,
                    &[],
                    shape,
                    ctx,
                    mode,
                    opts.sweeps,
                );
                best = best.max(mlups);
                measured += 1;
                bump("tune.measurements");
            }
            cand.measured.push((mode, best));
        }
    }

    // Winner, baseline, regrets.
    let candidates: Vec<Candidate> = configs.iter().map(|(c, _)| c.clone()).collect();
    let (best_cand, best_mode, best_mlups) = candidates
        .iter()
        .filter_map(|c| c.best_measured().map(|(m, v)| (c, m, v)))
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("shortlist is never empty");
    let static_mlups = candidates
        .iter()
        .find(|c| is_static(c))
        .and_then(|c| {
            c.measured
                .iter()
                .find(|(m, _)| *m == static_mode)
                .map(|(_, v)| *v)
        })
        .unwrap_or(0.0);

    let fresh = TuneEntry {
        variant: best_cand.variant,
        mode: best_mode,
        block: best_cand.block,
        loop_order: best_cand.loop_order,
        strip_width: best_cand.strip_width,
        measured_mlups: best_mlups,
        predicted_mlups: best_cand.predicted_mlups,
    };
    // A valid prior entry *is* what launch-time selection will use — report
    // its regret, not the fresh winner's (which is 0 by construction).
    let chosen = prior
        .as_ref()
        .filter(|e| {
            candidates
                .iter()
                .any(|c| c.variant == e.variant && c.loop_order == e.loop_order)
        })
        .cloned()
        .unwrap_or_else(|| fresh.clone());
    let chosen_mlups = candidates
        .iter()
        .find(|c| c.variant == chosen.variant && c.loop_order == chosen.loop_order)
        .and_then(|c| {
            c.measured
                .iter()
                .find(|(m, _)| *m == chosen.mode)
                .map(|(_, v)| *v)
        })
        .unwrap_or(best_mlups);
    let regret = |v: f64| {
        if best_mlups > 0.0 {
            (1.0 - v / best_mlups).max(0.0)
        } else {
            0.0
        }
    };
    let regret_chosen = regret(chosen_mlups);
    let regret_static = regret(static_mlups);

    // Persist the fresh winner on a cold cache, or refresh a prior entry
    // that measurably drifted (>2% regret) — otherwise leave the cache
    // untouched so repeated tuning runs don't churn mtimes.
    if opts.persist {
        if let Some(cache) = cache {
            let stale = prior.is_none() || regret_chosen > 0.02;
            if stale {
                if let Err(e) = cache.store(machine_fp, tapes_fp, shape, &fresh) {
                    bump("tune.cache.store_fail");
                    eprintln!("warning: could not persist tuning entry: {e}");
                }
            }
        }
    }

    FamilyTuneReport {
        family,
        shape,
        candidates: enumerated,
        measured,
        entry: if regret_chosen > 0.02 { fresh } else { chosen },
        best_mlups,
        chosen_mlups,
        static_mlups,
        static_variant,
        static_mode,
        regret_chosen,
        regret_static,
        all: candidates,
    }
}

// ---------------------------------------------------------------------------
// GPU schedule tuning
// ---------------------------------------------------------------------------

/// One priced GPU schedule candidate.
#[derive(Clone, Debug)]
pub struct GpuCandidate {
    pub label: String,
    pub ns_per_cell: f64,
    pub occupancy: f64,
    pub regs_per_thread: u32,
    /// The schedule broke level monotonicity, so executors lose LICM
    /// hoisting (the `schedule.licm-lost` condition from the analyzer).
    pub licm_lost: bool,
}

/// Outcome of pricing the register-pressure reschedules for one tape.
#[derive(Clone, Debug)]
pub struct GpuScheduleChoice {
    /// The tape to run: the best-priced candidate (the untouched input
    /// when no reschedule pays for its LICM loss).
    pub tape: Tape,
    /// A reschedule beat the identity schedule.
    pub adopted: bool,
    pub chosen: GpuCandidate,
    pub identity: GpuCandidate,
    pub candidates: Vec<GpuCandidate>,
}

impl GpuScheduleChoice {
    /// Modelled speedup of the chosen schedule over the identity (>1 means
    /// the reschedule pays).
    pub fn payoff(&self) -> f64 {
        self.identity.ns_per_cell / self.chosen.ns_per_cell.max(1e-12)
    }
}

fn levels_monotone(tape: &Tape) -> bool {
    tape.levels.windows(2).all(|w| w[0] <= w[1])
}

/// Price the beam-search register-pressure reschedules against the
/// occupancy payoff and adopt one only when the model says it wins.
///
/// Before this, the GPU-approx path applied
/// `insert_fences(schedule_min_live(rematerialize(tape)))` unconditionally
/// — costing LICM hoisting (`schedule.licm-lost`) whether or not register
/// pressure was actually the bottleneck. Here the identity schedule is a
/// first-class candidate: a reschedule must beat it on modelled
/// `ns_per_cell` (occupancy × spill penalty included) to be taken.
pub fn tune_gpu_schedule(
    tape: &Tape,
    gpu: &Gpu,
    mem_bytes_per_cell: f64,
    threads_per_block: u32,
) -> GpuScheduleChoice {
    let price = |label: &str, t: &Tape| {
        let m = pf_perfmodel::gpu_kernel_model(t, gpu, mem_bytes_per_cell, threads_per_block);
        GpuCandidate {
            label: label.to_string(),
            ns_per_cell: m.ns_per_cell,
            occupancy: m.occupancy,
            regs_per_thread: m.regs.allocated,
            licm_lost: !levels_monotone(t),
        }
    };
    let mut tapes: Vec<(Tape, GpuCandidate)> = vec![(tape.clone(), price("identity", tape))];
    for (remat, window, fence) in [(2u32, 20usize, 48usize), (1, 12, 64), (3, 28, 32)] {
        let label = format!("remat{remat}-beam{window}-fence{fence}");
        let t = pf_ir::insert_fences(
            &pf_ir::schedule_min_live(&pf_ir::rematerialize(tape, remat), window),
            fence,
        );
        let c = price(&label, &t);
        tapes.push((t, c));
    }
    let identity = tapes[0].1.clone();
    let best = tapes
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.ns_per_cell.total_cmp(&b.1 .1.ns_per_cell))
        .map(|(i, _)| i)
        .unwrap();
    // Ties go to the identity schedule: never pay LICM loss for nothing.
    let best = if tapes[best].1.ns_per_cell >= identity.ns_per_cell * (1.0 - 1e-9) {
        0
    } else {
        best
    };
    let adopted = best != 0;
    bump(if adopted {
        "tune.gpu.reschedule_adopted"
    } else {
        "tune.gpu.reschedule_rejected"
    });
    let candidates: Vec<GpuCandidate> = tapes.iter().map(|(_, c)| c.clone()).collect();
    let (tape, chosen) = tapes.swap_remove(best);
    GpuScheduleChoice {
        tape,
        adopted,
        chosen,
        identity,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::generate_kernels;
    use pf_ir::GenOptions;
    use pf_machine::skylake_8174;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pf-tune-test-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry() -> TuneEntry {
        TuneEntry {
            variant: Variant::Split,
            mode: ExecMode::Vectorized,
            block: [16, 16, 4],
            loop_order: [2, 1, 0],
            strip_width: 8,
            measured_mlups: 123.5,
            predicted_mlups: 150.25,
        }
    }

    #[test]
    fn entry_roundtrips_bitwise() {
        let dir = scratch("roundtrip");
        let cache = TuneCache::at(&dir);
        let e = entry();
        cache.store(1, 2, [8, 8, 8], &e).unwrap();
        assert_eq!(cache.load(1, 2, [8, 8, 8]), Some(e));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_fields_are_rejected() {
        let dir = scratch("key");
        let cache = TuneCache::at(&dir);
        cache.store(1, 2, [8, 8, 8], &entry()).unwrap();
        // Same file read back under a different fingerprint must not parse.
        let path = cache.entry_path(1, 2, [8, 8, 8]);
        let err = read_entry(&path, 9, 2, [8, 8, 8]).unwrap_err();
        assert!(matches!(err, TuneCacheError::KeyMismatch), "{err:?}");
        // And a different shape hashes to a different file: clean miss.
        assert_eq!(cache.load(1, 2, [16, 8, 8]), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pricing_enumeration_is_nonempty_and_positive() {
        let ks = generate_kernels(&crate::kernels::tests::mini_model(), &GenOptions::default());
        let sock = skylake_8174();
        for family in [Family::Phi, Family::Mu] {
            for variant in [Variant::Full, Variant::Split] {
                let tapes = family_variant_tapes(&ks, family, variant);
                let refs: Vec<&Tape> = tapes.iter().collect();
                for block in candidate_blocks([16, 16, 4]) {
                    for width in candidate_widths(&sock) {
                        let m = pf_perfmodel::price_candidate(&refs, &sock, block, width, 1);
                        assert!(m > 0.0 && m.is_finite(), "{family:?} {variant:?}: {m}");
                    }
                }
            }
        }
    }

    #[test]
    fn family_fingerprint_separates_families_and_tracks_tapes() {
        let ks = generate_kernels(&crate::kernels::tests::mini_model(), &GenOptions::default());
        assert_ne!(
            family_fingerprint(&ks, Family::Phi),
            family_fingerprint(&ks, Family::Mu)
        );
        let mut ks2 = ks.clone();
        pf_ir::apply_loop_order(&mut ks2.phi_full, [1, 2, 0]);
        assert_ne!(
            family_fingerprint(&ks, Family::Phi),
            family_fingerprint(&ks2, Family::Phi),
            "loop order is execution-relevant and must move the fingerprint"
        );
        assert_eq!(
            family_fingerprint(&ks, Family::Mu),
            family_fingerprint(&ks2, Family::Mu)
        );
    }

    #[test]
    fn gpu_reschedule_is_priced_not_unconditional() {
        let ks = generate_kernels(&crate::kernels::tests::mini_model(), &GenOptions::default());
        let gpu = pf_machine::tesla_p100();
        let choice = tune_gpu_schedule(&ks.mu_full, &gpu, 80.0, 256);
        assert_eq!(choice.candidates.len(), 4);
        assert!(!choice.identity.licm_lost, "input tape is LICM-clean");
        assert!(choice.chosen.ns_per_cell <= choice.identity.ns_per_cell * (1.0 + 1e-12));
        if choice.adopted {
            assert!(
                choice.payoff() > 1.0,
                "an adopted reschedule must model a win: {}",
                choice.payoff()
            );
        } else {
            assert_eq!(choice.tape.structural_hash(), ks.mu_full.structural_hash());
        }
    }
}
