//! Model-informed kernel-variant selection (§6.1).
//!
//! "The major challenge in code generation and performance optimizing
//! transformations is identifying and selecting the fastest variant. We use
//! Kerncraft's automated performance modeling capability to provide a
//! performance rating of the candidates." This module does exactly that:
//! rate φ-full vs φ-split and µ-full vs µ-split with the ECM model on a
//! given socket and pick the faster combination — automatically
//! reproducing the paper's observation that the right choice flips between
//! model configurations (P1 vs P2, Fig. 2 middle).

use crate::kernels::KernelSet;
use crate::sim::Variant;
use pf_backend::ExecMode;
use pf_ir::Tape;
use pf_machine::CpuSocket;
use pf_perfmodel::ecm_multi;

/// Outcome of the automatic selection.
#[derive(Clone, Debug)]
pub struct VariantChoice {
    pub phi: Variant,
    pub mu: Variant,
    /// Predicted full-socket MLUP/s for (φ-split, φ-full, µ-split, µ-full).
    pub predicted_mlups: [f64; 4],
}

/// Pick the execution engine for a block shape: the strip-mined vectorized
/// engine whenever the unit-stride extent can fill at least one strip of
/// [`pf_backend::STRIP_WIDTH`] lanes, scalar-serial for thinner blocks
/// (where strips would be all remainder loop). `PF_EXEC_MODE` overrides
/// (`serial` | `parallel` | `vectorized` | `native`) for experiments and
/// CI; an unrecognized value warns once and falls back to the shape-based
/// default instead of silently (or fatally) derailing a long run over a
/// typo. `native` requests compiled-kernel execution; if `rustc` cannot
/// produce cdylibs the executor degrades to `vectorized` per launch.
pub fn default_exec_mode(shape: [usize; 3]) -> ExecMode {
    let shape_default = || {
        if shape[0] >= pf_backend::STRIP_WIDTH {
            ExecMode::Vectorized
        } else {
            ExecMode::Serial
        }
    };
    // Every downgrade away from a requested engine records *why* under a
    // typed reason suffix (plus the legacy aggregate), so a CI log showing
    // serial numbers where vectorized/native ones were expected is
    // diagnosable from the counter dump alone.
    let fallback = |reason: &str| {
        if pf_trace::enabled() {
            pf_trace::counter("select.exec_mode_fallback").incr(1);
            pf_trace::counter(&format!("select.exec_mode_fallback.{reason}")).incr(1);
        }
    };
    match std::env::var("PF_EXEC_MODE").as_deref() {
        Ok("serial") => ExecMode::Serial,
        Ok("parallel") => ExecMode::Parallel,
        Ok("vectorized") => {
            if shape[0] >= pf_backend::STRIP_WIDTH {
                ExecMode::Vectorized
            } else {
                // Thinner than one SIMD strip: the vector engine would run
                // entirely in its scalar remainder loop. Same results
                // (engines are bitwise identical), so select the engine
                // that does that work without strip bookkeeping.
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: PF_EXEC_MODE=vectorized but the block is only {} cells wide \
                         (< STRIP_WIDTH {}); running serial",
                        shape[0],
                        pf_backend::STRIP_WIDTH
                    );
                });
                fallback("thin_block");
                ExecMode::Serial
            }
        }
        Ok("native") => {
            if pf_backend::native_available() {
                ExecMode::Native
            } else {
                // Downgrade at selection time instead of letting every
                // launch rediscover the missing toolchain.
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: PF_EXEC_MODE=native but rustc cannot produce loadable \
                         cdylibs here; using the default engine"
                    );
                });
                fallback("native_unavailable");
                shape_default()
            }
        }
        Ok(other) => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: unrecognized PF_EXEC_MODE '{other}' \
                     (expected serial|parallel|vectorized|native); using the default engine"
                );
            });
            fallback("unrecognized");
            shape_default()
        }
        Err(_) => shape_default(),
    }
}

/// Rate both variants of both kernels at `cores` cores and return the
/// faster combination. `block` is the cache-simulation tile (use something
/// in the regime of the production blocking, e.g. `[24, 24, 8]`).
pub fn select_variants(
    ks: &KernelSet,
    sock: &CpuSocket,
    cores: usize,
    block: [usize; 3],
) -> VariantChoice {
    let rate = |tapes: &[&Tape]| ecm_multi(tapes, sock, block).mlups(sock.freq_ghz, cores);
    let phi_split_tapes: Vec<&Tape> = ks
        .phi_split
        .flux_tapes
        .iter()
        .chain([&ks.phi_split.update])
        .collect();
    let mu_split_tapes: Vec<&Tape> = ks
        .mu_split
        .flux_tapes
        .iter()
        .chain([&ks.mu_split.update])
        .collect();
    let phi_split = rate(&phi_split_tapes);
    let phi_full = rate(&[&ks.phi_full]);
    let mu_split = rate(&mu_split_tapes);
    let mu_full = rate(&[&ks.mu_full]);
    VariantChoice {
        phi: if phi_split >= phi_full {
            Variant::Split
        } else {
            Variant::Full
        },
        mu: if mu_split >= mu_full {
            Variant::Split
        } else {
            Variant::Full
        },
        predicted_mlups: [phi_split, phi_full, mu_split, mu_full],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::generate_kernels;
    use pf_ir::GenOptions;
    use pf_machine::skylake_8174;

    #[test]
    #[ignore = "full P1/P2 generation + cache simulation; run with --ignored"]
    fn selection_flips_between_p1_and_p2_for_phi() {
        let sock = skylake_8174();
        let ks1 = generate_kernels(&crate::params::p1(), &GenOptions::default());
        let ks2 = generate_kernels(&crate::params::p2(), &GenOptions::default());
        let c1 = select_variants(&ks1, &sock, sock.cores, [24, 24, 8]);
        let c2 = select_variants(&ks2, &sock, sock.cores, [24, 24, 8]);
        // Fig. 2 middle: P1 → φ-full, P2 → φ-split.
        assert_eq!(c1.phi, Variant::Full, "{:?}", c1.predicted_mlups);
        assert_eq!(c2.phi, Variant::Split, "{:?}", c2.predicted_mlups);
    }

    #[test]
    fn unrecognized_exec_mode_env_warns_and_falls_back() {
        // Mutating the env here cannot disturb concurrent tests: the
        // fallback for an unrecognized value IS the unset-default path, so
        // every interleaving sees the same selection.
        let before = fallback_count("select.exec_mode_fallback.unrecognized");
        std::env::set_var("PF_EXEC_MODE", "simd4life");
        let wide = default_exec_mode([64, 8, 8]);
        let thin = default_exec_mode([4, 8, 8]);
        std::env::remove_var("PF_EXEC_MODE");
        assert_eq!(wide, ExecMode::Vectorized, "wide blocks keep the default");
        assert_eq!(thin, ExecMode::Serial, "thin blocks keep the default");
        if pf_trace::enabled() {
            let after = fallback_count("select.exec_mode_fallback.unrecognized");
            assert!(after >= before + 2, "reason counter: {before} -> {after}");
        }
    }

    fn fallback_count(name: &str) -> u64 {
        pf_trace::snapshot()
            .counters
            .get(name)
            .map(|c| c.total)
            .unwrap_or(0)
    }

    #[test]
    fn thin_block_vectorized_request_downgrades_with_typed_reason() {
        // Benign env mutation: for wide shapes "vectorized" matches the
        // unset default, and for thin shapes the downgrade lands on the
        // unset default too — concurrent selections are unaffected.
        let agg_before = fallback_count("select.exec_mode_fallback");
        let before = fallback_count("select.exec_mode_fallback.thin_block");
        std::env::set_var("PF_EXEC_MODE", "vectorized");
        let wide = default_exec_mode([64, 8, 8]);
        let thin = default_exec_mode([4, 8, 8]);
        std::env::remove_var("PF_EXEC_MODE");
        assert_eq!(wide, ExecMode::Vectorized);
        assert_eq!(thin, ExecMode::Serial, "sub-strip width must run serial");
        if pf_trace::enabled() {
            let after = fallback_count("select.exec_mode_fallback.thin_block");
            assert!(after > before, "reason counter: {before} -> {after}");
            let agg_after = fallback_count("select.exec_mode_fallback");
            assert!(agg_after > agg_before, "aggregate counter still bumps");
        }
    }

    #[test]
    fn selection_runs_on_a_small_model() {
        let sock = skylake_8174();
        let ks = generate_kernels(&crate::kernels::tests::mini_model(), &GenOptions::default());
        let c = select_variants(&ks, &sock, sock.cores, [16, 16, 4]);
        assert!(c.predicted_mlups.iter().all(|m| *m > 0.0));
    }
}
